"""Property-based tests for the way-partitioning defense (Hypothesis).

The defense's whole security argument is two structural properties of
:class:`WayPartitionedCache` under *any* access schedule:

* a domain's lines never exceed its way budget in any set, and
* an insertion by one domain never evicts another domain's line.

Random schedules of inserts/removes/ownership transfers across domains
probe both, plus the `effective_ways` probe the eviction-set machinery
sizes its sets with.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.defenses import WayPartitionedCache
from repro.defenses.partition import OTHER_DOMAIN
from repro.memsys.hierarchy import NOISE_OWNER, SHARED_OWNER

N_SETS = 4
PARTITIONS = {"att": 3, "vic": 2, OTHER_DOMAIN: 2}
DOMAINS = {0: "att", 1: "att", 2: "vic", 3: "vic"}


def _domain_of(owner: int) -> str:
    if owner in (NOISE_OWNER, SHARED_OWNER):
        return OTHER_DOMAIN
    return DOMAINS.get(owner, OTHER_DOMAIN)


def _make_cache(policy: str = "lru") -> WayPartitionedCache:
    return WayPartitionedCache(
        "SF", N_SETS, policy, make_rng(17), dict(PARTITIONS), _domain_of
    )


#: op: (kind, set_idx, tag, owner) — kind 0/1 insert, 2 remove, 3 flush_all.
_ops = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, N_SETS - 1),
        st.integers(0, 30),
        st.sampled_from([0, 1, 2, 3, SHARED_OWNER, NOISE_OWNER]),
    ),
    max_size=200,
)


def _replay(cache: WayPartitionedCache, ops) -> None:
    for kind, set_idx, tag, owner in ops:
        if kind in (0, 1):
            evicted = cache.insert(set_idx, tag, owner=owner)
            # No cross-domain eviction: whatever fell out must belong to
            # the inserting owner's domain.
            if evicted is not None:
                assert _domain_of(evicted[1]) == _domain_of(owner)
        elif kind == 2:
            cache.remove(set_idx, tag)
        else:
            cache.flush_all(now=0)


# (tree_plru is absent: it needs power-of-two ways, and the "att"
# partition deliberately has 3 to exercise uneven budgets.)
@pytest.mark.parametrize("policy", ["lru", "srrip", "qlru", "random"])
@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_domain_occupancy_never_exceeds_way_budget(policy, ops):
    cache = _make_cache(policy)
    _replay(cache, ops)
    for domain, budget in PARTITIONS.items():
        part = cache._parts[domain]
        for s in range(N_SETS):
            assert part.occupancy(s) <= budget
        # Every resident line of the partition belongs to the domain.
        for s in range(N_SETS):
            for tag in part.tags_in_set(s):
                assert _domain_of(part.owner_of(s, tag)) == domain


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_victim_domain_lines_survive_attacker_hammering(ops):
    """Pre-filled victim lines survive any schedule that never acts as vic."""
    cache = _make_cache()
    victim_tags = [100, 101]
    for s in range(N_SETS):
        for tag in victim_tags:
            cache.insert(s, tag, owner=2)
    # Replay arbitrary traffic from every non-victim owner (tags < 100, so
    # no removes/ownership transfers can target the victim's lines either).
    _replay(cache, [op for op in ops if op[3] not in (2, 3) and op[0] != 3])
    for s in range(N_SETS):
        for tag in victim_tags:
            assert cache.contains(s, tag)
            assert cache.owner_of(s, tag) == 2


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_line_resides_in_at_most_one_partition(ops):
    cache = _make_cache()
    _replay(cache, ops)
    for s in range(N_SETS):
        tags = cache.tags_in_set(s)
        assert len(tags) == len(set(tags))
        assert cache.occupancy(s) == len(tags)


def test_effective_ways_reports_domain_budget():
    cache = _make_cache()
    assert cache.effective_ways(0) == PARTITIONS["att"]
    assert cache.effective_ways(2) == PARTITIONS["vic"]
    assert cache.effective_ways(SHARED_OWNER) == PARTITIONS[OTHER_DOMAIN]
    assert cache.effective_ways(NOISE_OWNER) == PARTITIONS[OTHER_DOMAIN]
    assert cache.effective_ways(99) == PARTITIONS[OTHER_DOMAIN]
    assert cache.ways == sum(PARTITIONS.values())
