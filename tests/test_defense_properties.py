"""Property-based tests for the defense layer (Hypothesis).

Each defense's security argument is a structural property that must hold
under *any* access schedule:

* :class:`WayPartitionedCache` — a domain's lines never exceed its way
  budget in any set, and an insertion by one domain never evicts another
  domain's line;
* :class:`SoftCopyCache` — the same no-cross-domain-eviction guarantee,
  plus copy-on-access semantics: a domain only ever touches its *own*
  copy of a line, and coherence removals clear every copy;
* :class:`KeyedSetIndex` — the keyed index is a bijection on the set
  range within any epoch (no two external sets alias internally), and
  rekeying changes the map;
* :class:`CeaserCache` — rekey invalidates exactly the lines whose keyed
  index moved, and survivors remain locatable;
* :class:`SkewedCache` — per-skew occupancy never exceeds the skew's way
  budget and a tag resides in at most one skew.

Random schedules of inserts/removes/ownership transfers across domains
probe all of them, plus the `effective_ways` probe the eviction-set
machinery sizes its sets with.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.defenses import CeaserCache, SkewedCache, SoftCopyCache, WayPartitionedCache
from repro.defenses.partition import OTHER_DOMAIN
from repro.memsys.hierarchy import NOISE_OWNER, SHARED_OWNER
from repro.memsys.randomize import KeyedSetIndex

N_SETS = 4
PARTITIONS = {"att": 3, "vic": 2, OTHER_DOMAIN: 2}
DOMAINS = {0: "att", 1: "att", 2: "vic", 3: "vic"}


def _domain_of(owner: int) -> str:
    if owner in (NOISE_OWNER, SHARED_OWNER):
        return OTHER_DOMAIN
    return DOMAINS.get(owner, OTHER_DOMAIN)


def _make_cache(policy: str = "lru", cls=WayPartitionedCache):
    return cls(
        "SF", N_SETS, policy, make_rng(17), dict(PARTITIONS), _domain_of
    )


#: op: (kind, set_idx, tag, owner) — kind 0/1 insert, 2 remove, 3 flush_all.
_ops = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, N_SETS - 1),
        st.integers(0, 30),
        st.sampled_from([0, 1, 2, 3, SHARED_OWNER, NOISE_OWNER]),
    ),
    max_size=200,
)


def _replay(cache: WayPartitionedCache, ops) -> None:
    for kind, set_idx, tag, owner in ops:
        if kind in (0, 1):
            evicted = cache.insert(set_idx, tag, owner=owner)
            # No cross-domain eviction: whatever fell out must belong to
            # the inserting owner's domain.
            if evicted is not None:
                assert _domain_of(evicted[1]) == _domain_of(owner)
        elif kind == 2:
            cache.remove(set_idx, tag)
        else:
            cache.flush_all(now=0)


# (tree_plru is absent: it needs power-of-two ways, and the "att"
# partition deliberately has 3 to exercise uneven budgets.)
# Both isolation defenses must uphold the budget/no-cross-eviction
# properties: the hardware partition by migrating lines, the soft
# copy-on-access scheme by never touching another domain's copy.
@pytest.mark.parametrize("cache_cls", [WayPartitionedCache, SoftCopyCache])
@pytest.mark.parametrize("policy", ["lru", "srrip", "qlru", "random"])
@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_domain_occupancy_never_exceeds_way_budget(cache_cls, policy, ops):
    cache = _make_cache(policy, cls=cache_cls)
    _replay(cache, ops)
    for domain, budget in PARTITIONS.items():
        part = cache._parts[domain]
        for s in range(N_SETS):
            assert part.occupancy(s) <= budget
        # Every resident line of the partition belongs to the domain.
        for s in range(N_SETS):
            for tag in part.tags_in_set(s):
                assert _domain_of(part.owner_of(s, tag)) == domain


@pytest.mark.parametrize("cache_cls", [WayPartitionedCache, SoftCopyCache])
@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_victim_domain_lines_survive_attacker_hammering(cache_cls, ops):
    """Pre-filled victim lines survive any schedule that never acts as vic."""
    cache = _make_cache(cls=cache_cls)
    victim_tags = [100, 101]
    for s in range(N_SETS):
        for tag in victim_tags:
            cache.insert(s, tag, owner=2)
    # Replay arbitrary traffic from every non-victim owner (tags < 100, so
    # no removes/ownership transfers can target the victim's lines either).
    _replay(cache, [op for op in ops if op[3] not in (2, 3) and op[0] != 3])
    for s in range(N_SETS):
        for tag in victim_tags:
            assert cache.contains(s, tag)
            assert cache.owner_of(s, tag) == 2


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_line_resides_in_at_most_one_partition(ops):
    cache = _make_cache()
    _replay(cache, ops)
    for s in range(N_SETS):
        tags = cache.tags_in_set(s)
        assert len(tags) == len(set(tags))
        assert cache.occupancy(s) == len(tags)


def test_effective_ways_reports_domain_budget():
    cache = _make_cache()
    assert cache.effective_ways(0) == PARTITIONS["att"]
    assert cache.effective_ways(2) == PARTITIONS["vic"]
    assert cache.effective_ways(SHARED_OWNER) == PARTITIONS[OTHER_DOMAIN]
    assert cache.effective_ways(NOISE_OWNER) == PARTITIONS[OTHER_DOMAIN]
    assert cache.effective_ways(99) == PARTITIONS[OTHER_DOMAIN]
    assert cache.ways == sum(PARTITIONS.values())


# --- Soft-copy isolation (copy-on-access) -----------------------------------


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_soft_copy_never_shares_a_line_between_domains(ops):
    """Every resident copy lives in (and is owned by) exactly one domain's
    quota; cross-domain inserts create fresh copies, never shared lines."""
    cache = _make_cache(cls=SoftCopyCache)
    _replay(cache, ops)
    for domain, part in cache.parts().items():
        for s in range(N_SETS):
            for tag in part.tags_in_set(s):
                assert _domain_of(part.owner_of(s, tag)) == domain


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_soft_copy_remove_clears_every_copy(ops):
    cache = _make_cache(cls=SoftCopyCache)
    _replay(cache, [op for op in ops if op[0] != 2])
    for s in range(N_SETS):
        for tag in set(cache.tags_in_set(s)):
            assert cache.remove(s, tag)
            assert all(
                not part.contains(s, tag) for part in cache.parts().values()
            )


def test_soft_copy_keeps_per_domain_copies():
    cache = _make_cache(cls=SoftCopyCache)
    cache.insert(0, 42, owner=0)  # att's copy
    cache.insert(0, 42, owner=2)  # vic's own copy — att's stays resident
    parts = cache.parts()
    assert parts["att"].contains(0, 42)
    assert parts["vic"].contains(0, 42)
    assert cache.remove(0, 42)
    assert not any(p.contains(0, 42) for p in parts.values())


# --- Keyed-index (CEASER / skew) properties ---------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n_sets=st.integers(1, 96),
    seed=st.integers(0, 2**32 - 1),
    tag=st.integers(0, 2**40),
    epochs=st.integers(0, 3),
)
def test_keyed_index_is_a_bijection_per_epoch(n_sets, seed, tag, epochs):
    """Within any epoch, the keyed map is a permutation of the set range
    for every tag tweak — no two external sets alias internally."""
    index = KeyedSetIndex(n_sets, seed, label="prop")
    for _ in range(epochs):
        index.rekey()
    image = [index.index_of(s, tag) for s in range(n_sets)]
    assert sorted(image) == list(range(n_sets))


def test_rekey_changes_the_map():
    index = KeyedSetIndex(64, 7, label="prop")
    before = [index.index_of(s, 1234) for s in range(64)]
    index.rekey()
    assert [index.index_of(s, 1234) for s in range(64)] != before


#: op: (insert?, tag, owner) over a deliberately tiny address range so
#: randomized sets overflow and evict.
_addr_ops = st.lists(
    st.tuples(st.integers(0, 1), st.integers(0, 400), st.integers(0, 3)),
    max_size=150,
)


@settings(max_examples=40, deadline=None)
@given(ops=_addr_ops, seed=st.integers(0, 2**16))
def test_ceaser_rekey_invalidates_exactly_the_remapped_lines(ops, seed):
    n_sets = 8
    cache = CeaserCache("SF", n_sets, 4, "lru", make_rng(3), seed=seed)
    for kind, tag, owner in ops:
        if kind == 0:
            cache.insert(tag % n_sets, tag, owner=owner)
        else:
            cache.remove(tag % n_sets, tag)
    resident = set(cache.resident_tags())
    old_place = {tag: cache._place(tag) for tag in resident}
    removed_tags = {tag for tag, _ in cache.rekey()}
    for tag in resident:
        moved = cache._place(tag) != old_place[tag]
        assert (tag in removed_tags) == moved
        assert cache.contains(tag % n_sets, tag) == (not moved)
    cache.validate()


@settings(max_examples=40, deadline=None)
@given(ops=_addr_ops, seed=st.integers(0, 2**16))
def test_skew_occupancy_bounded_and_single_residency(ops, seed):
    n_sets = 8
    cache = SkewedCache(
        "LLC", n_sets, 5, "lru", make_rng(5), seed=seed, n_skews=2
    )
    for kind, tag, owner in ops:
        if kind == 0:
            cache.insert(tag % n_sets, tag, owner=owner)
        else:
            cache.remove(tag % n_sets, tag)
    parts = cache.parts()
    assert sum(p.ways for p in parts.values()) == cache.ways
    seen = set()
    for part in parts.values():
        for s in range(n_sets):
            assert part.occupancy(s) <= part.ways
            for tag in part.tags_in_set(s):
                assert tag not in seen  # a tag lives in at most one skew
                seen.add(tag)
    cache.validate()


@settings(max_examples=25, deadline=None)
@given(ops=_addr_ops, seed=st.integers(0, 2**16))
def test_skew_rekey_invalidates_exactly_the_remapped_lines(ops, seed):
    n_sets = 8
    cache = SkewedCache(
        "LLC", n_sets, 4, "lru", make_rng(9), seed=seed, n_skews=2
    )
    for kind, tag, owner in ops:
        if kind == 0:
            cache.insert(tag % n_sets, tag, owner=owner)
        else:
            cache.remove(tag % n_sets, tag)
    resident = set(cache.resident_tags())
    skew_of = {}
    place = {}
    for tag in resident:
        inner, idx = cache._locate(tag)
        skew_of[tag] = cache._skews.index(inner)
        place[tag] = idx
    removed_tags = {tag for tag, _ in cache.rekey()}
    for tag in resident:
        moved = cache._place(skew_of[tag], tag) != place[tag]
        assert (tag in removed_tags) == moved
        assert cache.contains(tag % n_sets, tag) == (not moved)
    cache.validate()
