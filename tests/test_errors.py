"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    AddressError,
    BudgetExceededError,
    ConfigurationError,
    CryptoError,
    EvictionSetError,
    ExtractionError,
    NotTrainedError,
    ReproError,
    ScanError,
)

ALL = [
    AddressError,
    BudgetExceededError,
    ConfigurationError,
    CryptoError,
    EvictionSetError,
    ExtractionError,
    NotTrainedError,
    ScanError,
]


@pytest.mark.parametrize("exc", ALL)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_budget_is_eviction_set_error():
    """Budget exhaustion is a kind of construction failure."""
    assert issubclass(BudgetExceededError, EvictionSetError)


def test_catchable_at_boundary():
    try:
        raise ScanError("not found")
    except ReproError as exc:
        assert "not found" in str(exc)
