"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (
    cloud_run_noise,
    no_noise,
    skylake_sp_small,
    tiny_machine,
)
from repro.core.context import AttackerContext
from repro.memsys.machine import Machine


@pytest.fixture
def tiny() -> Machine:
    """A minimal quiet machine for fast structural tests."""
    return Machine(tiny_machine(), noise=no_noise(), seed=7)


@pytest.fixture
def quiet_machine() -> Machine:
    """A small Skylake-like machine with no background noise."""
    return Machine(skylake_sp_small(), noise=no_noise(), seed=7)


@pytest.fixture
def noisy_machine() -> Machine:
    """A small Skylake-like machine with Cloud Run noise."""
    return Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=7)


@pytest.fixture
def ctx(quiet_machine) -> AttackerContext:
    """An attacker context on the quiet machine, thresholds calibrated."""
    context = AttackerContext(quiet_machine, seed=3)
    context.calibrate()
    return context
