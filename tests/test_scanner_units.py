"""Unit tests for scanner configuration and the attack report (pure logic)."""

from __future__ import annotations

import pytest

from repro.core.extraction import ExtractionScore
from repro.core.pipeline import AttackConfig, AttackReport
from repro.core.scanner import ScannerConfig, ScanResult


class TestScannerConfig:
    def test_trace_cycles_at_2ghz(self):
        cfg = ScannerConfig(trace_us=500.0)
        assert cfg.trace_cycles(2.0) == 1_000_000

    def test_count_bounds_scale_with_expectation(self):
        cfg = ScannerConfig(trace_us=500.0, expected_period_cycles=4850.0)
        lo, hi = cfg.count_bounds(2.0)
        expected = 1_000_000 / 4850.0
        assert lo == max(4, int(expected * 0.25))
        assert hi == int(expected * 2.0)
        assert lo < expected < hi

    def test_paper_proportions(self):
        """The paper keeps 50-400 counts for ~200 expected per 500 us."""
        cfg = ScannerConfig()
        lo, hi = cfg.count_bounds(2.0)
        assert 30 <= lo <= 80
        assert 300 <= hi <= 500

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ScannerConfig().trace_us = 1.0


class TestScanResult:
    def test_rate_and_seconds(self):
        result = ScanResult(
            found=True, evset=None, trace=None,
            elapsed_cycles=2_000_000_000, sets_scanned=500, sweeps=3,
        )
        assert result.elapsed_seconds(2.0) == pytest.approx(1.0)
        assert result.scan_rate_sets_per_s(2.0) == pytest.approx(500.0)

    def test_zero_elapsed_rate(self):
        result = ScanResult(
            found=False, evset=None, trace=None,
            elapsed_cycles=0, sets_scanned=0, sweeps=0,
        )
        assert result.scan_rate_sets_per_s(2.0) == 0.0


class TestAttackReport:
    def _score(self, recovered, total, errors=0):
        return ExtractionScore(
            n_true_bits=total, n_recovered=recovered, n_errors=errors
        )

    def test_phase_totals(self):
        report = AttackReport(
            target_identified=True,
            evset_build_cycles=100,
            scan_cycles=200,
            collect_cycles=300,
        )
        assert report.total_cycles == 600
        assert report.total_seconds(2.0) == pytest.approx(600 / 2e9)

    def test_median_and_mean_fractions(self):
        report = AttackReport(target_identified=True)
        report.scores = [
            self._score(50, 100), self._score(80, 100), self._score(90, 100)
        ]
        assert report.median_recovered_fraction == pytest.approx(0.8)
        assert report.mean_recovered_fraction == pytest.approx(220 / 300)

    def test_ber_ignores_empty_recoveries(self):
        report = AttackReport(target_identified=True)
        report.scores = [self._score(0, 100), self._score(50, 100, errors=5)]
        assert report.mean_bit_error_rate == pytest.approx(0.1)

    def test_empty_scores(self):
        report = AttackReport(target_identified=False)
        assert report.median_recovered_fraction == 0.0
        assert report.mean_bit_error_rate == 0.0


class TestAttackConfig:
    def test_defaults(self):
        cfg = AttackConfig()
        assert cfg.algorithm == "bins"
        assert cfg.n_traces == 10
        assert cfg.evset.budget_ms == 100.0  # filtered budget

    def test_extraction_defaults_match_victim(self):
        cfg = AttackConfig()
        assert cfg.extraction.iter_cycles == 9700
