"""Tests for the set-associative cache structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.memsys.cache import SetAssociativeCache


def make_cache(ways=4, sets=8, policy="lru"):
    return SetAssociativeCache("T", sets, ways, policy, make_rng(0))


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(0, 100)
        c.insert(0, 100)
        assert c.lookup(0, 100)

    def test_contains_no_side_effects(self):
        c = make_cache(ways=2)
        c.insert(0, 1)
        c.insert(0, 2)
        # contains() must not touch recency: line 1 stays LRU.
        for _ in range(5):
            assert c.contains(0, 1)
        evicted = c.insert(0, 3)
        assert evicted == (1, 0)

    def test_insert_existing_is_touch(self):
        c = make_cache(ways=2)
        c.insert(0, 1)
        c.insert(0, 2)
        c.insert(0, 1)  # touch
        assert c.insert(0, 3) == (2, 0)

    def test_eviction_returns_tag_and_owner(self):
        c = make_cache(ways=2)
        c.insert(0, 1, owner=5)
        c.insert(0, 2, owner=6)
        assert c.insert(0, 3, owner=7) == (1, 5)

    def test_sets_independent(self):
        c = make_cache(ways=1)
        c.insert(0, 1)
        c.insert(1, 2)
        assert c.contains(0, 1) and c.contains(1, 2)

    def test_occupancy(self):
        c = make_cache(ways=4)
        assert c.occupancy(3) == 0
        c.insert(3, 9)
        c.insert(3, 10)
        assert c.occupancy(3) == 2

    def test_remove(self):
        c = make_cache()
        c.insert(0, 5)
        assert c.remove(0, 5)
        assert not c.contains(0, 5)
        assert not c.remove(0, 5)

    def test_removed_way_reused_first(self):
        c = make_cache(ways=2)
        c.insert(0, 1)
        c.insert(0, 2)
        c.remove(0, 1)
        assert c.insert(0, 3) is None  # free way, no eviction
        assert c.contains(0, 2) and c.contains(0, 3)

    def test_owner_of(self):
        c = make_cache()
        c.insert(0, 7, owner=3)
        assert c.owner_of(0, 7) == 3
        assert c.owner_of(0, 8) is None

    def test_peek_victim_none_when_free(self):
        c = make_cache(ways=2)
        c.insert(0, 1)
        assert c.peek_victim(0) is None

    def test_peek_victim_is_next_evicted(self):
        c = make_cache(ways=2)
        c.insert(0, 1)
        c.insert(0, 2)
        victim = c.peek_victim(0)
        evicted = c.insert(0, 3)
        assert evicted[0] == victim

    def test_lazy_materialization(self):
        c = make_cache(sets=1 << 16)
        assert c.touched_sets == 0
        c.insert(12345, 1)
        assert c.touched_sets == 1

    def test_flush_all(self):
        c = make_cache()
        c.insert(0, 1)
        c.flush_all()
        assert not c.contains(0, 1)
        assert c.touched_sets == 0


class TestInvariants:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 30)), max_size=120
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_no_duplicates_and_bounded(self, ops):
        """No set ever holds duplicate tags or exceeds its associativity."""
        c = make_cache(ways=4, sets=4)
        for set_idx, tag in ops:
            c.insert(set_idx, tag)
            tags = c.tags_in_set(set_idx)
            assert len(tags) == len(set(tags))
            assert len(tags) <= 4

    @given(
        tags=st.lists(st.integers(0, 1000), min_size=5, max_size=50, unique=True)
    )
    @settings(max_examples=40, deadline=None)
    def test_property_lru_keeps_most_recent(self, tags):
        """With LRU, the W most recently inserted distinct tags remain."""
        c = make_cache(ways=4, sets=1)
        for tag in tags:
            c.insert(0, tag)
        expected = tags[-4:]
        assert sorted(c.tags_in_set(0)) == sorted(expected)
