"""Tests for the non-inclusive LLC + Snoop Filter hierarchy semantics."""

from __future__ import annotations

import pytest

from repro.config import no_noise, tiny_machine
from repro.memsys.hierarchy import Level
from repro.memsys.machine import Machine


@pytest.fixture
def machine():
    return Machine(tiny_machine(cores=3), noise=no_noise(), seed=5)


def fresh_lines(machine, n, offset=0):
    space = machine.new_address_space()
    pages = space.alloc_pages(n)
    return [space.translate_line(p + offset) for p in pages]


class TestBasicPath:
    def test_first_access_is_dram_and_private(self, machine):
        (line,) = fresh_lines(machine, 1)
        level, _ = machine.access(0, line)
        assert level == Level.DRAM
        hier = machine.hierarchy
        assert hier.in_sf(line)
        assert not hier.in_llc(line)
        assert hier.in_private_cache(0, line)

    def test_second_access_hits_l1(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        level, latency = machine.access(0, line)
        assert level == Level.L1
        assert latency == machine.cfg.latency.l1_hit

    def test_cross_core_read_makes_shared(self, machine):
        """E -> S: SF entry freed, line moves into the LLC (Section 2.3)."""
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        level, _ = machine.access(1, line)
        assert level == Level.SF_TRANSFER
        hier = machine.hierarchy
        assert hier.in_llc(line)
        assert not hier.in_sf(line)

    def test_shared_line_read_stays_shared(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        machine.access(1, line)
        machine.hierarchy._invalidate_private(2, line)
        level, _ = machine.access(2, line)
        assert level == Level.LLC
        assert machine.hierarchy.in_llc(line)

    def test_latency_ordering(self, machine):
        lat = machine.cfg.latency
        assert lat.l1_hit < lat.l2_hit < lat.llc_hit < lat.dram


class TestWritePath:
    def test_store_makes_exclusive(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        machine.access(1, line)  # now shared
        assert machine.hierarchy.in_llc(line)
        machine.access(0, line, write=True)
        hier = machine.hierarchy
        assert hier.in_sf(line)
        assert not hier.in_llc(line)
        sidx = hier.shared_set_index(line)
        assert hier.sf.owner_of(sidx, line) == 0

    def test_store_invalidates_other_sharers(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        machine.access(1, line)
        machine.access(0, line, write=True)
        assert not machine.hierarchy.in_private_cache(1, line)

    def test_store_steals_exclusivity(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        machine.access(1, line, write=True)
        hier = machine.hierarchy
        sidx = hier.shared_set_index(line)
        assert hier.sf.owner_of(sidx, line) == 1
        assert not hier.in_private_cache(0, line)

    def test_store_hit_when_already_exclusive(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line, write=True)
        level, _ = machine.access(0, line, write=True)
        assert level in (Level.L1, Level.L2)


class TestSnoopFilterEviction:
    def _congruent_lines(self, machine, count):
        """Find `count` lines mapping to one shared set (brute force)."""
        space = machine.new_address_space()
        hier = machine.hierarchy
        buckets = {}
        while True:
            page = space.alloc_page()
            line = space.translate_line(page)
            sidx = hier.shared_set_index(line)
            buckets.setdefault(sidx, []).append(line)
            if len(buckets[sidx]) >= count:
                return buckets[sidx][:count]

    def test_sf_overflow_back_invalidates(self, machine):
        """Filling an SF set past its ways back-invalidates the oldest
        owner's private copy — the attack's observable event."""
        ways = machine.cfg.sf.ways
        lines = self._congruent_lines(machine, ways + 1)
        victim_line = lines[0]
        machine.access(0, victim_line)
        assert machine.hierarchy.in_private_cache(0, victim_line)
        for other in lines[1:]:
            machine.access(1, other, write=True)
        hier = machine.hierarchy
        assert not hier.in_sf(victim_line)
        assert not hier.in_private_cache(0, victim_line)
        assert hier.stats.sf_back_invalidations >= 1

    def test_back_invalidated_reload_is_slow(self, machine):
        ways = machine.cfg.sf.ways
        lines = self._congruent_lines(machine, ways + 1)
        victim_line = lines[0]
        machine.access(0, victim_line)
        for other in lines[1:]:
            machine.access(1, other, write=True)
        level, latency = machine.access(0, victim_line)
        assert level in (Level.DRAM, Level.LLC)
        assert latency > machine.cfg.latency.l2_hit

    def test_llc_eviction_invalidates_sharers(self, machine):
        """Evicting a shared line's LLC entry (the directory entry for S
        lines) invalidates its private copies everywhere."""
        ways = machine.cfg.llc.ways
        lines = self._congruent_lines(machine, ways + 2)
        target = lines[0]
        machine.access(0, target)
        machine.access(1, target)  # shared, in LLC
        assert machine.hierarchy.in_llc(target)
        for other in lines[1:]:
            machine.access(0, other)
            machine.access(1, other)  # shared -> LLC inserts
        hier = machine.hierarchy
        if not hier.in_llc(target):  # evicted by the congruent insertions
            assert not hier.in_private_cache(0, target)
            assert not hier.in_private_cache(1, target)


class TestFlush:
    def test_flush_removes_everywhere(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.access(0, line)
        machine.access(1, line)
        machine.flush(line)
        hier = machine.hierarchy
        assert not hier.cached_anywhere(line)

    def test_flush_batch_cheaper_than_individual(self, machine):
        lines = fresh_lines(machine, 8)
        for line in lines:
            machine.access(0, line)
        t0 = machine.now
        machine.flush_batch(lines)
        batch_cost = machine.now - t0
        lat = machine.cfg.latency
        assert batch_cost < len(lines) * lat.flush
        assert all(not machine.hierarchy.cached_anywhere(l) for l in lines)


class TestStats:
    def test_stats_count_accesses(self, machine):
        (line,) = fresh_lines(machine, 1)
        machine.hierarchy.stats.reset()
        machine.access(0, line)
        machine.access(0, line)
        stats = machine.hierarchy.stats
        assert stats.accesses == 2
        assert stats.dram_fetches == 1
        assert stats.l1_hits == 1

    def test_stats_as_dict(self, machine):
        d = machine.hierarchy.stats.as_dict()
        assert "sf_back_invalidations" in d
