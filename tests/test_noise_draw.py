"""Properties of the ``BackgroundNoise._draw`` small-mean fast path.

``_draw`` (and the copies of it inlined into ``reconcile`` and the fused
kernels) replaces a Poisson draw with a single-uniform Bernoulli when
``lam < 0.01``.  That substitution is only sound if

1. it really costs exactly one uniform draw (the point of the fast path:
   reconciliation runs on *every* access), and
2. the distributional error is bounded by ``P(N >= 2) <= lam**2 / 2``,
   which at the 0.01 threshold is at most 5e-5 per reconciliation —
   negligible against the paper's noise rates.

Above the threshold ``_draw`` must delegate to :func:`repro._util.poisson`
draw-for-draw, so the two branches never diverge in RNG consumption for
the same ``lam``.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng, poisson
from repro.cloud.noise import BackgroundNoise
from repro.config import NoiseConfig


class CountingRandom(random.Random):
    """random.Random that counts primitive variate draws."""

    def __init__(self, seed):
        super().__init__(seed)
        self.uniform_draws = 0
        self.gauss_draws = 0

    def random(self):
        self.uniform_draws += 1
        return super().random()

    def gauss(self, mu, sigma):
        self.gauss_draws += 1
        return super().gauss(mu, sigma)


def _noise(rng=None) -> BackgroundNoise:
    cfg = NoiseConfig(name="test", llc_accesses_per_ms_per_set=11.5)
    return BackgroundNoise(cfg, 2.0, rng or make_rng(0))


# --- Draw-count contract ----------------------------------------------------


@given(lam=st.floats(min_value=1e-9, max_value=0.0099999), seed=st.integers(0, 2**20))
@settings(max_examples=200, deadline=None)
def test_small_mean_costs_exactly_one_uniform(lam, seed):
    rng = CountingRandom(seed)
    noise = _noise(rng)
    n = noise._draw(rng, lam)
    assert rng.uniform_draws == 1
    assert rng.gauss_draws == 0
    assert n in (0, 1)


@given(lam=st.floats(min_value=0.01, max_value=64.0), seed=st.integers(0, 2**20))
@settings(max_examples=100, deadline=None)
def test_large_mean_matches_poisson_draw_for_draw(lam, seed):
    noise = _noise()
    a, b = random.Random(seed), random.Random(seed)
    assert noise._draw(a, lam) == poisson(b, lam)
    assert a.getstate() == b.getstate()


def test_zero_mean_draws_nothing_from_poisson():
    rng = CountingRandom(7)
    assert poisson(rng, 0.0) == 0
    assert rng.uniform_draws == 0


# --- Distributional error bound ---------------------------------------------


@given(lam=st.floats(min_value=1e-9, max_value=0.0099999))
@settings(max_examples=200, deadline=None)
def test_bernoulli_error_is_bounded_by_lam_squared_over_two(lam):
    """Analytic check: the Bernoulli(lam) approximation differs from
    Poisson(lam) only on the event ``N >= 2`` (plus the matching mass it
    borrows from N in {0, 1}), and ``P(N >= 2) = 1 - e^-lam (1 + lam)``
    is bounded by ``lam**2 / 2`` for every ``lam > 0``."""
    # expm1 keeps the tiny-lam case exact; the naive 1 - e^-lam (1 + lam)
    # cancels catastrophically below lam ~ 1e-8.
    p_ge_2 = -math.expm1(-lam) - lam * math.exp(-lam)
    # The bound holds exactly in the reals (the Taylor series alternates);
    # a hair of relative slack absorbs double-rounding at tiny lam.
    assert 0.0 <= p_ge_2 <= (lam * lam / 2.0) * (1.0 + 1e-6)
    # Total-variation distance between Bernoulli(lam) and Poisson(lam):
    # both P(0) and P(1) mismatches are themselves O(lam^2).
    tv = 0.5 * (
        abs(lam + math.expm1(-lam))  # |(1 - lam) - e^-lam|
        + (-lam * math.expm1(-lam))  # lam (1 - e^-lam)
        + p_ge_2
    )
    assert tv <= lam * lam * (1.0 + 1e-6)

def test_empirical_means_agree_at_threshold_edge():
    """Monte-Carlo sanity: just under the threshold the fast path's mean
    matches the exact Poisson mean to within sampling error."""
    lam = 0.009
    trials = 200_000
    noise = _noise()
    fast = random.Random(123)
    exact = random.Random(456)
    mean_fast = sum(noise._draw(fast, lam) for _ in range(trials)) / trials
    mean_exact = sum(poisson(exact, lam) for _ in range(trials)) / trials
    # std error of the mean ~ sqrt(lam/trials) ~ 2.1e-4; allow 5 sigma.
    assert abs(mean_fast - lam) < 1.1e-3
    assert abs(mean_exact - lam) < 1.1e-3


# --- exp(-lam) memoization keeps draw-for-draw parity ------------------------


@given(
    lam=st.floats(min_value=1e-6, max_value=64.0),
    seed=st.integers(0, 2**20),
)
@settings(max_examples=200, deadline=None)
def test_exp_memo_keeps_rng_stream_identical(lam, seed):
    """The memoized inversion threshold must change nothing about the
    draw sequence: cold-cache and warm-cache calls consume the RNG
    identically and return the same variate."""
    from repro import _util

    _util._EXP_NEG.clear()
    cold_rng = random.Random(seed)
    cold = poisson(cold_rng, lam)
    assert lam in _util._EXP_NEG  # first call populated the memo
    warm_rng = random.Random(seed)
    warm = poisson(warm_rng, lam)
    assert cold == warm
    assert cold_rng.getstate() == warm_rng.getstate()
    # The cached threshold is bit-equal to a fresh computation.
    assert _util._EXP_NEG[lam] == math.exp(-lam)


def test_exp_memo_cap_clears_wholesale():
    from repro import _util

    _util._EXP_NEG.clear()
    for i in range(_util._EXP_NEG_CAP):
        _util._EXP_NEG[1.0 + i * 1e-9] = 0.5
    poisson(random.Random(3), 2.5)  # at cap: clears, then repopulates
    assert len(_util._EXP_NEG) == 1
    assert 2.5 in _util._EXP_NEG


# --- reconcile() keeps the same contract ------------------------------------


class _StubCache:
    def __init__(self, ways):
        self.ways = ways
        self._clock = {}

    def exchange_noise_clock(self, sidx, now):
        prev = self._clock.get(sidx, 0)
        self._clock[sidx] = now
        return prev


class _StubHier:
    def __init__(self):
        self.sf = _StubCache(12)
        self.llc = _StubCache(16)
        self.inserted = []

    def noise_insert_sf(self, sidx):
        self.inserted.append(("sf", sidx))

    def noise_insert_llc(self, sidx):
        self.inserted.append(("llc", sidx))


def test_reconcile_small_window_draws_one_uniform_per_structure():
    rng = CountingRandom(11)
    noise = _noise(rng)
    hier = _StubHier()
    noise.reconcile(hier, 3, now=10)  # first visit: dt=10, lam tiny
    assert rng.uniform_draws == 2  # one SF draw + one LLC draw
    noise.reconcile(hier, 3, now=10)  # dt == 0: no draws at all
    assert rng.uniform_draws == 2


def test_reconcile_inline_fast_path_matches_draw():
    """The Bernoulli branch inlined in reconcile() must stay in lockstep
    with ``_draw`` for the same elapsed window."""
    seed = 99
    sidx, now = 5, 40  # small dt: both structures in the lam < 0.01 regime
    noise_a = _noise(random.Random(seed))
    hier = _StubHier()
    noise_a.reconcile(hier, sidx, now)
    rng_b = random.Random(seed)
    noise_b = _noise(make_rng(1))
    expected = 0
    for rate, cache in ((noise_b._sf_rate, hier.sf), (noise_b._llc_rate, hier.llc)):
        expected += noise_b._draw(rng_b, rate * now)
    assert noise_a.events == expected
    assert noise_a._rng.getstate() == rng_b.getstate()
