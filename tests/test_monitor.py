"""Tests for the Prime+Probe monitoring strategies (Section 6.1)."""

from __future__ import annotations

import pytest

from repro.config import cloud_run_noise, no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import (
    LatencySummary,
    ParallelProbing,
    PrimeScopeAlt,
    PrimeScopeFlush,
    make_monitor,
    monitor_set,
)
from repro.errors import ConfigurationError
from repro.memsys.machine import Machine

PAGE_OFFSET = 0x2C0


def build_setup(noise=None, seed=51):
    machine = Machine(skylake_sp_small(), noise=noise or no_noise(), seed=seed)
    ctx = AttackerContext(machine, seed=1)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(
        ctx, "bins", PAGE_OFFSET, EvsetConfig(budget_ms=100)
    )
    assert len(bulk.evsets) >= 2
    evsets = list(bulk.evsets)
    # PS-Alt uses evsets[0] + evsets[1] together; its interleaved chase
    # thrashes the L2 (destroying the EVC) if they share an L2 set, so
    # order an L2-disjoint pair first — free knowledge from filtering.
    alt = next(
        (e for e in evsets[1:]
         if ctx.true_l2_set_of(e.target_va)
         != ctx.true_l2_set_of(evsets[0].target_va)),
        evsets[1],
    )
    evsets.remove(alt)
    evsets.insert(1, alt)
    return machine, ctx, evsets


@pytest.fixture(scope="module")
def quiet_setup():
    return build_setup()


def schedule_sender(machine, ctx, evset, interval, count, start=None):
    """A victim-like sender storing a fresh line in the monitored set."""
    target_set = ctx.true_set_of(evset.target_va)
    offset = evset.target_va % 4096  # congruence requires this page offset
    space = machine.new_address_space()
    # Find a line in the same shared set, owned by the sender.
    while True:
        page = space.alloc_page()
        line = space.translate_line(page + offset)
        if machine.hierarchy.shared_set_index(line) == target_set:
            break
    hier = machine.hierarchy
    sender_core = machine.cfg.cores - 1
    t0 = machine.now + 2000 if start is None else start
    times = []
    for i in range(count):
        when = t0 + i * interval
        times.append(when)
        machine.schedule(
            when, lambda t, l=line: hier.access(sender_core, l, t, write=True)
        )
    return times


class TestStrategies:
    @pytest.mark.slow
    def test_factory(self, quiet_setup):
        machine, ctx, evsets = quiet_setup
        assert isinstance(make_monitor("parallel", ctx, evsets[0]), ParallelProbing)
        assert isinstance(make_monitor("ps-flush", ctx, evsets[0]), PrimeScopeFlush)
        assert isinstance(
            make_monitor("ps-alt", ctx, evsets[0], alternate=evsets[1]),
            PrimeScopeAlt,
        )

    @pytest.mark.slow
    def test_ps_alt_requires_second_set(self, quiet_setup):
        _, ctx, evsets = quiet_setup
        with pytest.raises(ConfigurationError):
            make_monitor("ps-alt", ctx, evsets[0])

    @pytest.mark.slow
    def test_unknown_strategy(self, quiet_setup):
        _, ctx, evsets = quiet_setup
        with pytest.raises(ConfigurationError):
            make_monitor("quantum", ctx, evsets[0])

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["parallel", "ps-flush", "ps-alt"])
    def test_quiet_set_no_detections(self, name):
        machine, ctx, evsets = build_setup(seed=52)
        monitor = make_monitor(name, ctx, evsets[0], alternate=evsets[1])
        trace = monitor_set(monitor, duration_cycles=200_000)
        assert trace.access_count() == 0

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name,min_detections",
        [("parallel", 12), ("ps-flush", 10), ("ps-alt", 0)],
        # PS-Alt's zero floor is the paper's finding taken to our model's
        # extreme: it "often later fails to prime the monitored line as
        # the EVC" (Section 6.1); without a flush step its prime cannot
        # displace a stranded foreign SF entry under LRU, so a one-line
        # sender can silence it entirely (see EXPERIMENTS.md, Figure 6).
    )
    def test_detects_sender_accesses(self, name, min_detections):
        machine, ctx, evsets = build_setup(seed=53)
        interval = 50_000
        times = schedule_sender(machine, ctx, evsets[0], interval, count=20)
        monitor = make_monitor(name, ctx, evsets[0], alternate=evsets[1])
        trace = monitor_set(monitor, duration_cycles=25 * interval)
        assert trace.access_count() >= min_detections

    @pytest.mark.slow
    def test_detection_timeliness_parallel(self):
        """Detections land within ~one probe loop plus a DRAM round trip.

        (The paper's 250 ns bound assumes its tighter native probe loop;
        our simulated loop costs ~220 cycles of bookkeeping per probe.)
        """
        machine, ctx, evsets = build_setup(seed=54)
        interval = 20_000
        times = schedule_sender(machine, ctx, evsets[0], interval, count=30)
        monitor = ParallelProbing(ctx, evsets[0])
        trace = monitor_set(monitor, duration_cycles=35 * interval)
        matched = sum(
            1
            for t in times
            if any(t < d <= t + 1200 for d in trace.timestamps)
        )
        assert matched >= 0.7 * len(times)


class TestLatencies:
    @pytest.mark.slow
    def test_parallel_prime_cheaper_than_ps_flush(self):
        machine, ctx, evsets = build_setup(seed=55)
        par = ParallelProbing(ctx, evsets[0])
        flush = PrimeScopeFlush(ctx, evsets[1])
        for _ in range(20):
            par.prime()
            flush.prime()
        s_par = par.latency_summary()
        s_flush = flush.latency_summary()
        assert s_par.prime_mean < s_flush.prime_mean / 2

    @pytest.mark.slow
    def test_probe_latency_ordering(self):
        """Parallel probe only slightly above the single-line EVC probe."""
        machine, ctx, evsets = build_setup(seed=56)
        par = ParallelProbing(ctx, evsets[0])
        flush = PrimeScopeFlush(ctx, evsets[1])
        par.prime()
        flush.prime()
        for _ in range(30):
            par.probe()
            flush.probe()
        p = par.latency_summary().probe_mean
        f = flush.latency_summary().probe_mean
        assert f < p < 4 * f

    def test_outlier_exclusion(self):
        summary = LatencySummary.from_samples("x", [100, 30_000], [90, 50_000])
        assert summary.prime_mean == 100
        assert summary.probe_mean == 90


class TestMonitorLoop:
    @pytest.mark.slow
    def test_trace_window_covers_duration(self, quiet_setup):
        machine, ctx, evsets = quiet_setup
        monitor = ParallelProbing(ctx, evsets[0])
        trace = monitor_set(monitor, duration_cycles=100_000)
        assert trace.end - trace.start >= 100_000

    @pytest.mark.slow
    def test_max_events_cap(self):
        machine, ctx, evsets = build_setup(seed=57)
        schedule_sender(machine, ctx, evsets[0], 5_000, count=100)
        monitor = ParallelProbing(ctx, evsets[0])
        trace = monitor_set(monitor, duration_cycles=10**6, max_events=5)
        assert trace.access_count() == 5

    @pytest.mark.slow
    def test_noise_produces_detections(self):
        """Figure 2's measurement loop: background noise IS detectable."""
        machine, ctx, evsets = build_setup(noise=cloud_run_noise(), seed=58)
        monitor = ParallelProbing(ctx, evsets[0], llc_scrub_period=0)
        trace = monitor_set(monitor, duration_cycles=4_000_000)  # 2 ms
        # ~11.5 LLC + 9.2 SF events/ms; detection needs only a fraction.
        assert trace.access_count() >= 5
