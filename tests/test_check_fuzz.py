"""Differential fuzzer smoke tests: trace generation, replay, shrink, self-test."""

from __future__ import annotations

import json

import pytest

from repro.check import (
    TIERS,
    FuzzConfig,
    fuzz_campaign,
    fuzz_trial,
    generate_trace,
    load_artifact,
    replay_artifact,
    replacement_policy_mutation,
    run_selftest,
    run_tiers,
    run_trace,
    shrink_trace,
    write_artifact,
)
from repro.errors import ReproError
from repro.exec import ExecPolicy, run_campaign

QUIET = FuzzConfig(machine="tiny", noise="none", partition="never", n_ops=8)


class TestGenerateTrace:
    def test_deterministic_for_seed(self):
        assert generate_trace(QUIET, 4) == generate_trace(QUIET, 4)

    def test_seed_changes_trace(self):
        assert generate_trace(QUIET, 4) != generate_trace(QUIET, 5)

    def test_trace_is_json_round_trippable(self):
        trace = generate_trace(QUIET, 1)
        assert json.loads(json.dumps(trace)) == trace

    def test_partition_always_includes_partition_spec(self):
        cfg = FuzzConfig(machine="tiny", noise="none", partition="always", n_ops=6)
        trace = generate_trace(cfg, 0)
        assert trace["partition"] is not None
        assert "att" in trace["partition"]["sf"]

    def test_ops_start_with_calibrate_and_pool(self):
        trace = generate_trace(QUIET, 9)
        assert trace["ops"][0] == ["calibrate"]
        assert trace["ops"][1][0] == "pool"

    def test_defense_axis_deterministic(self):
        cfg = FuzzConfig(machine="tiny", noise="none", n_ops=8)  # full mix
        assert generate_trace(cfg, 11) == generate_trace(cfg, 11)

    def test_partition_never_means_undefended(self):
        """The legacy knob keeps its exact pre-axis meaning."""
        trace = generate_trace(QUIET, 3)
        assert trace["partition"] is None
        assert trace["defense"] is None

    @pytest.mark.parametrize("defense", ["ceaser", "skew", "soft-copy"])
    def test_explicit_defense_carried_in_trace(self, defense):
        cfg = FuzzConfig(
            machine="tiny", noise="none", n_ops=8, defense=defense
        )
        trace = generate_trace(cfg, 1)
        assert trace["defense"]["kind"] == defense
        assert trace["partition"] is None
        assert json.loads(json.dumps(trace)) == trace

    def test_explicit_way_partition_uses_legacy_key(self):
        """Explicit defense=way-partition emits the legacy trace shape, so
        pre-axis artifacts and new traces replay through one code path."""
        cfg = FuzzConfig(
            machine="tiny", noise="none", n_ops=8, defense="way-partition"
        )
        trace = generate_trace(cfg, 1)
        assert trace["partition"] is not None
        assert trace["defense"] is None

    def test_rekey_ops_only_on_randomized_defenses(self):
        for defense in ("none", "way-partition", "soft-copy"):
            cfg = FuzzConfig(
                machine="tiny", noise="none", n_ops=30, defense=defense
            )
            ops = generate_trace(cfg, 5)["ops"]
            assert not any(op[0] == "rekey" for op in ops)
        found = False
        for seed in range(6):
            cfg = FuzzConfig(
                machine="tiny", noise="none", n_ops=30, defense="ceaser"
            )
            ops = generate_trace(cfg, seed)["ops"]
            found = found or any(op[0] == "rekey" for op in ops)
        assert found

    def test_mix_draws_every_defense(self):
        cfg = FuzzConfig(machine="tiny", noise="none", n_ops=4)
        kinds = set()
        for seed in range(120):
            trace = generate_trace(cfg, seed)
            if trace["partition"] is not None:
                kinds.add("way-partition")
            elif trace["defense"] is not None:
                kinds.add(trace["defense"]["kind"])
            else:
                kinds.add("none")
        assert kinds == {"none", "way-partition", "ceaser", "skew", "soft-copy"}


class TestRunTrace:
    def test_reference_tier_replays(self):
        out = run_trace(generate_trace(QUIET, 2), "reference")
        assert out["violation"] is None
        assert out["checks"] > 0
        assert out["records"]

    def test_unknown_tier_rejected(self):
        with pytest.raises(ReproError):
            run_trace(generate_trace(QUIET, 2), "warp")


@pytest.mark.slow
class TestFuzzSmoke:
    """The CI smoke: fixed seeds, all four tiers must agree exactly."""

    @pytest.mark.parametrize("seed", range(6))
    def test_quiet_seeds_agree(self, seed):
        result = run_tiers(generate_trace(QUIET, seed))
        assert result["ok"], result

    @pytest.mark.parametrize("seed", range(3))
    def test_noisy_partitioned_seeds_agree(self, seed):
        cfg = FuzzConfig(
            machine="tiny", noise="cloud-quiet", partition="always", n_ops=8
        )
        result = run_tiers(generate_trace(cfg, seed))
        assert result["ok"], result

    @pytest.mark.parametrize("defense", ["ceaser", "skew", "soft-copy"])
    @pytest.mark.parametrize("seed", range(2))
    def test_defended_seeds_agree(self, defense, seed):
        cfg = FuzzConfig(
            machine="tiny", noise="cloud-quiet", n_ops=8, defense=defense
        )
        result = run_tiers(generate_trace(cfg, seed))
        assert result["ok"], result

    def test_campaign_runs_through_executor(self):
        campaign = fuzz_campaign(QUIET, seeds=3)
        result = run_campaign(campaign, ExecPolicy(jobs=1))
        assert result.ok
        assert all(r["ok"] for r in result.values())

    def test_trial_seed_recorded(self):
        trial = fuzz_trial(QUIET, 7)
        assert trial["seed"] == 7
        assert trial["ok"]


class TestShrinker:
    def _trace(self, n=12):
        ops = [["calibrate"], ["pool", 0x240, 10]]
        ops += [["advance", i] for i in range(n)]
        return {"machine": "tiny", "noise": "none", "seed": 0,
                "ctx_seed": 1, "partition": None, "ops": ops}

    def test_minimizes_to_single_culprit(self):
        trace = self._trace()

        def failing(t):
            return any(op[0] == "advance" and op[1] == 5 for op in t["ops"])

        shrunk = shrink_trace(trace, failing)
        advances = [op for op in shrunk["ops"] if op[0] == "advance"]
        assert advances == [["advance", 5]]

    def test_keeps_pair_dependencies(self):
        trace = self._trace()

        def failing(t):
            hits = {op[1] for op in t["ops"] if op[0] == "advance"}
            return {2, 9} <= hits

        shrunk = shrink_trace(trace, failing)
        advances = sorted(op[1] for op in shrunk["ops"] if op[0] == "advance")
        assert advances == [2, 9]

    def test_input_not_mutated(self):
        trace = self._trace()
        before = json.dumps(trace, sort_keys=True)
        shrink_trace(trace, lambda t: len(t["ops"]) > 2)
        assert json.dumps(trace, sort_keys=True) == before

    def test_non_failing_trace_returned_whole(self):
        trace = self._trace(n=3)
        assert shrink_trace(trace, lambda t: False)["ops"] == trace["ops"]


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        trace = generate_trace(QUIET, 3)
        path = write_artifact(tmp_path / "a" / "t.json", trace, {"ok": True})
        loaded, result = load_artifact(path)
        assert loaded == trace
        assert result == {"ok": True}

    def test_replay_artifact_fresh_verdict(self, tmp_path):
        trace = generate_trace(QUIET, 3)
        path = write_artifact(tmp_path / "t.json", trace, {})
        assert replay_artifact(path)["ok"]

    def test_rejects_non_artifact(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"version": 9}))
        with pytest.raises(ReproError):
            load_artifact(path)


@pytest.mark.slow
class TestMutationSelfTest:
    def test_mutation_is_caught_and_shrunk(self, tmp_path):
        summary = run_selftest(max_seeds=25, artifact_dir=tmp_path)
        assert summary["caught"]
        assert summary["shrunk_still_fails"]
        assert summary["clean_after_unpatch"]
        assert summary["ops_after"] <= summary["ops_before"]
        trace, result = load_artifact(summary["artifact"])
        assert result["kind"] == "mutation-selftest"
        # The artifact replays clean on pristine code and diverges mutated.
        assert run_tiers(trace)["ok"]
        with replacement_policy_mutation():
            assert not run_tiers(trace)["ok"]
