"""Tests for repro.exec.journal: resume, crash-safety, cache hits."""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.exec import (
    Campaign,
    CampaignJournal,
    ExecPolicy,
    run_campaign,
)


def counted_trial(cfg, seed):
    """Records every execution in a scratch directory, then computes."""
    marker_dir = Path(cfg["marker_dir"])
    marker_dir.mkdir(parents=True, exist_ok=True)
    (marker_dir / f"seed-{seed}-{os.getpid()}-{os.urandom(4).hex()}").touch()
    return seed * 3 + 1


def flaky_trial(cfg, seed):
    """Crashes the worker on ``crash_seed`` until a flag file appears."""
    if seed == cfg["crash_seed"] and not Path(cfg["flag_file"]).exists():
        os._exit(9)
    return seed * 3 + 1


def _executions(cfg) -> int:
    marker_dir = Path(cfg["marker_dir"])
    return len(list(marker_dir.glob("seed-*"))) if marker_dir.exists() else 0


class TestResume:
    def test_rerun_serves_all_trials_from_journal(self, tmp_path):
        cfg = {"marker_dir": str(tmp_path / "markers")}
        campaign = Campaign.build("journal-t", counted_trial, cfg, trials=5)
        journal_dir = tmp_path / "journals"

        first = run_campaign(
            campaign, ExecPolicy(jobs=1),
            journal=CampaignJournal(journal_dir, campaign),
        )
        assert first.ok and _executions(cfg) == 5

        second = run_campaign(
            campaign, ExecPolicy(jobs=1),
            journal=CampaignJournal(journal_dir, campaign),
        )
        assert second.ok
        assert _executions(cfg) == 5  # nothing re-ran
        assert second.metrics.cached == 5
        assert second.metrics.completed == 0
        assert all(r.cached for r in second.records)
        assert second.values() == first.values()

    def test_killed_campaign_resumes_without_rerunning_finished_trials(
        self, tmp_path
    ):
        """Acceptance: a campaign killed mid-run (worker death) resumed
        from its JSONL journal completes without re-running the trials
        that already finished."""
        flag = tmp_path / "fixed.flag"
        cfg = {
            "crash_seed": None,  # filled per-campaign below
            "flag_file": str(flag),
        }
        campaign = Campaign.build(
            "journal-crash", flaky_trial, dict(cfg, crash_seed=None),
            trials=6, seed_mode="arithmetic", base_seed=50,
        )
        crash_seed = campaign.seeds[3]
        campaign = Campaign.build(
            "journal-crash", flaky_trial, dict(cfg, crash_seed=crash_seed),
            trials=6, seed_mode="arithmetic", base_seed=50,
        )
        journal_dir = tmp_path / "journals"

        # First run: one trial hard-kills its worker every attempt, so the
        # campaign ends with that trial crashed and the rest journaled.
        first = run_campaign(
            campaign, ExecPolicy(jobs=2, max_retries=2),
            journal=CampaignJournal(journal_dir, campaign),
        )
        assert not first.ok
        crashed = [r for r in first.records if r.status == "crashed"]
        assert [r.seed for r in crashed] == [crash_seed]
        assert crashed[0].attempts == 3
        finished_before = {r.index for r in first.records if r.ok}
        assert finished_before  # some trials did complete and were journaled

        # "Fix the environment" and resume the same campaign.
        flag.touch()
        second = run_campaign(
            campaign, ExecPolicy(jobs=2, max_retries=2),
            journal=CampaignJournal(journal_dir, campaign),
        )
        assert second.ok
        for rec in second.records:
            if rec.index in finished_before:
                assert rec.cached, f"trial {rec.index} was re-run after resume"
        assert second.values() == [s * 3 + 1 for s in campaign.seeds]

    def test_non_ok_records_are_not_cached(self, tmp_path):
        campaign = Campaign.build(
            "journal-fail", flaky_trial,
            {"crash_seed": None, "flag_file": str(tmp_path / "nope")},
            trials=3,
        )
        journal = CampaignJournal(tmp_path, campaign)
        run_campaign(campaign, ExecPolicy(jobs=1), journal=journal)
        # Rewrite trial 0's record as a timeout; it must re-run on resume.
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        rewritten = []
        for line in lines:
            obj = json.loads(line)
            if obj.get("kind") == "trial" and obj["index"] == 0:
                obj["status"] = "timeout"
            rewritten.append(json.dumps(obj))
        journal.path.write_text("\n".join(rewritten) + "\n", encoding="utf-8")
        completed = CampaignJournal(tmp_path, campaign).load_completed()
        assert set(completed) == {1, 2}


class TestCrashSafety:
    def _journaled_campaign(self, tmp_path):
        cfg = {"marker_dir": str(tmp_path / "markers")}
        campaign = Campaign.build("journal-io", counted_trial, cfg, trials=4)
        journal = CampaignJournal(tmp_path / "j", campaign)
        run_campaign(campaign, ExecPolicy(jobs=1), journal=journal)
        return campaign, journal

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        campaign, journal = self._journaled_campaign(tmp_path)
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "trial", "index": 2, "sta')  # killed mid-write
        completed = CampaignJournal(tmp_path / "j", campaign).load_completed()
        assert set(completed) == {0, 1, 2, 3}

    def test_tampered_seed_is_ignored(self, tmp_path):
        campaign, journal = self._journaled_campaign(tmp_path)
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        rewritten = []
        for line in lines:
            obj = json.loads(line)
            if obj.get("kind") == "trial" and obj["index"] == 1:
                obj["seed"] = obj["seed"] + 1
            rewritten.append(json.dumps(obj))
        journal.path.write_text("\n".join(rewritten) + "\n", encoding="utf-8")
        completed = CampaignJournal(tmp_path / "j", campaign).load_completed()
        assert set(completed) == {0, 2, 3}

    def test_header_fingerprint_mismatch_ignores_file(self, tmp_path):
        campaign, journal = self._journaled_campaign(tmp_path)
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 64
        lines[0] = json.dumps(header)
        journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert CampaignJournal(tmp_path / "j", campaign).load_completed() == {}

    def test_different_configs_use_different_files(self, tmp_path):
        cfg_a = {"marker_dir": str(tmp_path / "a")}
        cfg_b = {"marker_dir": str(tmp_path / "b")}
        ca = Campaign.build("journal-x", counted_trial, cfg_a, trials=2)
        cb = Campaign.build("journal-x", counted_trial, cfg_b, trials=2)
        ja = CampaignJournal(tmp_path / "j", ca)
        jb = CampaignJournal(tmp_path / "j", cb)
        assert ja.path != jb.path

    def test_decoded_values_round_trip_through_journal(self, tmp_path):
        campaign, journal = self._journaled_campaign(tmp_path)
        completed = CampaignJournal(tmp_path / "j", campaign).load_completed()
        assert [completed[i]["value"] for i in sorted(completed)] == [
            s * 3 + 1 for s in campaign.seeds
        ]
