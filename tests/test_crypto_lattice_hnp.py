"""Tests for LLL reduction and Hidden-Number-Problem key recovery."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro._util import make_rng
from repro.crypto.curves import curve_by_name
from repro.crypto.ecdsa import generate_keypair, sign
from repro.crypto.hnp import (
    HnpSample,
    leading_bits_from_extraction,
    recover_private_key_hnp,
    sample_from_signature,
    samples_needed,
)
from repro.crypto.lattice import lll_reduce, shortest_vector
from repro.errors import CryptoError

KTEST = curve_by_name("K-TEST")


def norm2(v):
    return sum(x * x for x in v)


class TestLLL:
    def test_identity_unchanged(self):
        basis = [[1, 0], [0, 1]]
        assert sorted(lll_reduce(basis)) == sorted(basis)

    def test_classic_example(self):
        """Wikipedia's worked example reduces to short vectors."""
        basis = [[1, 1, 1], [-1, 0, 2], [3, 5, 6]]
        reduced = lll_reduce(basis)
        norms = sorted(norm2(v) for v in reduced)
        assert norms[0] <= 2  # contains (0,1,0) or similar

    def test_preserves_determinant_up_to_sign(self):
        """2x2: |det| is a lattice invariant."""
        basis = [[201, 37], [1648, 297]]
        reduced = lll_reduce(basis)
        det0 = basis[0][0] * basis[1][1] - basis[0][1] * basis[1][0]
        det1 = reduced[0][0] * reduced[1][1] - reduced[0][1] * reduced[1][0]
        assert abs(det0) == abs(det1)

    def test_finds_short_vector_with_planted_structure(self):
        """An HNP-shaped lattice with a planted short vector yields it."""
        rng = make_rng(7)
        q = (1 << 61) - 1
        short = [rng.randint(-50, 50) for _ in range(4)]
        # Square basis: q*e_i rows plus one row congruent to `short` mod q
        # carrying a unit marker column (as the HNP embedding does).
        basis = [
            [q if i == j else 0 for j in range(5)] for i in range(4)
        ]
        basis.append([s + q * rng.randint(1, 5) for s in short] + [1])
        reduced = lll_reduce(basis)
        best = min(norm2(v) for v in reduced if any(v))
        assert best <= norm2(short) + 1

    def test_shortest_vector_helper(self):
        # The lattice {a(7,0)+b(3,1)}'s true minimum is (1,-2), norm 5.
        v = shortest_vector([[7, 0], [3, 1]])
        assert norm2(v) == 5

    def test_bad_delta_rejected(self):
        with pytest.raises(CryptoError):
            lll_reduce([[1, 0], [0, 1]], delta=Fraction(1, 8))

    def test_dependent_rows_rejected(self):
        with pytest.raises(CryptoError):
            lll_reduce([[1, 2], [2, 4]])

    def test_ragged_rejected(self):
        with pytest.raises(CryptoError):
            lll_reduce([[1, 2], [3]])

    def test_empty(self):
        assert lll_reduce([]) == []


def collect_samples(curve, keypair, n_known, count, seed=9):
    """HNP samples with a fixed unknown-suffix width (uniform bound).

    Nonces vary in bit length (the subgroup order need not sit just under
    a power of two), so the *shift* is fixed and the number of known bits
    adapts per sample: n_known_i = bitlen_i - shift.
    """
    rng = random.Random(seed)
    shift = curve.n.bit_length() - n_known
    samples = []
    while len(samples) < count:
        msg = rng.getrandbits(64).to_bytes(8, "big")
        sig, k = sign(keypair, msg, rng)
        bitlen = k.bit_length()
        if bitlen <= shift:
            continue  # nonce too short to expose any known bits; skip
        samples.append(
            sample_from_signature(
                curve, msg, sig, k >> shift, bitlen - shift,
                nonce_bits=bitlen,
            )
        )
    return samples


class TestHnp:
    def test_sample_relation_holds(self):
        """b = u + t*d (mod q) with b below the bound, by construction."""
        rng = random.Random(3)
        kp = generate_keypair(KTEST, rng)
        msg = b"check"
        sig, k = sign(kp, msg, rng)
        bits = k.bit_length()
        n_known = 5
        sample = sample_from_signature(
            KTEST, msg, sig, k >> (bits - n_known), n_known, nonce_bits=bits
        )
        b = (sample.u + sample.t * kp.d) % KTEST.n
        assert b == k - ((k >> (bits - n_known)) << (bits - n_known))
        assert 0 <= b < sample.bound

    def test_recovers_key_ktest(self):
        rng = random.Random(4)
        kp = generate_keypair(KTEST, rng)
        samples = collect_samples(KTEST, kp, n_known=6, count=6)
        d = recover_private_key_hnp(KTEST, samples, kp.public_point)
        assert d == kp.d

    def test_fails_gracefully_with_too_few_bits(self):
        rng = random.Random(5)
        kp = generate_keypair(KTEST, rng)
        samples = collect_samples(KTEST, kp, n_known=1, count=3, seed=11)
        assert recover_private_key_hnp(KTEST, samples, kp.public_point) in (
            None,
            kp.d,  # tiny curve: may still get lucky
        )

    def test_requires_uniform_bounds(self):
        with pytest.raises(CryptoError):
            recover_private_key_hnp(
                KTEST,
                [HnpSample(1, 1, 4), HnpSample(1, 1, 8)],
                KTEST.generator,
            )

    def test_requires_samples(self):
        with pytest.raises(CryptoError):
            recover_private_key_hnp(KTEST, [], KTEST.generator)

    def test_samples_needed_scales(self):
        assert samples_needed(KTEST, 4) > samples_needed(KTEST, 8)
        with pytest.raises(CryptoError):
            samples_needed(KTEST, 0)


class TestLeadingBits:
    def test_prefix_with_implicit_one(self):
        value, n = leading_bits_from_extraction([0, 1, 1, 0])
        assert (value, n) == (0b10110, 5)

    def test_truncates_to_max(self):
        value, n = leading_bits_from_extraction([1] * 100, max_bits=7)
        assert n == 8
        assert value == 0b11111111

    def test_empty_extraction_gives_leading_one(self):
        assert leading_bits_from_extraction([]) == (1, 1)


@pytest.mark.slow
class TestHnpK163:
    def test_recovers_key_k163(self):
        """Full-scale HNP: 163-bit key from 24 known bits x 10 signatures.

        (Kept at lattice dimension 12 so the pure-Python LLL stays in the
        seconds range on a single-core machine.)
        """
        curve = curve_by_name("K-163")
        rng = random.Random(6)
        kp = generate_keypair(curve, rng)
        samples = collect_samples(curve, kp, n_known=24, count=10, seed=21)
        d = recover_private_key_hnp(curve, samples, kp.public_point)
        assert d == kp.d
