"""Determinism lint: no module-level (global) RNG calls in ``src/``.

Every result in this repository is keyed by explicit seeds (``make_rng`` /
``spawn_rng``), and the campaign engine guarantees bit-identical trials
regardless of worker count.  A single call into Python's or NumPy's global
RNG would silently break that: it draws from interpreter-wide state that
depends on import order and whatever ran before.  This test greps the
source tree for such calls so the regression is caught at review time.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Module-level RNG entry points.  ``random.Random(seed)`` (constructing an
#: explicit generator) is fine; ``random.random()`` and friends are not.
_GLOBAL_RNG = re.compile(
    r"(?<![\w.])"
    r"(?:random\.(?:random|randint|randrange|choice|choices|shuffle|sample"
    r"|uniform|gauss|betavariate|expovariate|seed|getrandbits)\s*\("
    r"|(?:np|numpy)\.random\.)"
)

_COMMENT = re.compile(r"(?<!['\"])#.*$")


def _violations():
    found = []
    for path in sorted(SRC.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _GLOBAL_RNG.search(_COMMENT.sub("", line)):
                found.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    return found


def test_no_global_rng_calls_in_src():
    found = _violations()
    assert not found, (
        "module-level RNG calls break seeded determinism; route randomness "
        "through make_rng/spawn_rng instead:\n" + "\n".join(found)
    )


def test_lint_catches_a_violation(tmp_path):
    """Self-check: the pattern actually matches the calls it bans."""
    assert _GLOBAL_RNG.search("x = random.random()")
    assert _GLOBAL_RNG.search("idx = np.random.randint(0, 4)")
    assert _GLOBAL_RNG.search("random.shuffle(items)")
    assert not _GLOBAL_RNG.search("rng = random.Random(seed)")
    assert not _GLOBAL_RNG.search("self._rng.random()")
    assert not _GLOBAL_RNG.search("ctx.rng.shuffle(candidates)")
