"""Tests for the attacker context and the TestEviction primitive."""

from __future__ import annotations

import pytest

from repro.config import skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import build_candidate_set, candidate_set_size
from repro.core.evset.primitives import EvictionTester
from repro.errors import ConfigurationError
from repro.memsys.machine import Machine


@pytest.fixture(scope="module")
def setup():
    """One shared quiet machine + candidates, grouped by true set."""
    from repro.config import no_noise

    machine = Machine(skylake_sp_small(), noise=no_noise(), seed=21)
    ctx = AttackerContext(machine, seed=2)
    ctx.calibrate()
    cand = build_candidate_set(ctx, page_offset=0x200)
    target = cand.vas.pop()
    tset = ctx.true_set_of(target)
    congruent = [v for v in cand.vas if ctx.true_set_of(v) == tset]
    others = [v for v in cand.vas if ctx.true_set_of(v) != tset]
    return ctx, target, congruent, others


class TestContext:
    def test_calibrated_thresholds_ordered(self, setup):
        ctx, *_ = setup
        lat = ctx.machine.cfg.latency
        assert lat.l2_hit < ctx.threshold_private < lat.llc_hit + lat.timer_overhead
        assert lat.llc_hit < ctx.threshold_llc < lat.dram + lat.timer_overhead

    def test_line_memoization(self, setup):
        ctx, target, *_ = setup
        assert ctx.line(target) == ctx.line(target)

    def test_rejects_same_cores(self, quiet_machine):
        with pytest.raises(ConfigurationError):
            AttackerContext(quiet_machine, main_core=0, helper_core=0)

    def test_page_pool_reuse(self, ctx):
        pages = ctx.alloc_pages(5)
        ctx.release_pages(pages)
        again = ctx.alloc_pages(3)
        assert set(again) <= set(pages)

    def test_load_shared_puts_line_in_llc(self, setup):
        ctx, _, congruent, _ = setup
        va = congruent[0]
        ctx.load_shared(va)
        assert ctx.machine.hierarchy.in_llc(ctx.line(va))

    def test_store_makes_sf_tracked(self, setup):
        ctx, _, _, others = setup
        va = others[0]
        ctx.store(va)
        assert ctx.machine.hierarchy.in_sf(ctx.line(va))


class TestCandidates:
    def test_size_formula(self):
        cfg = skylake_sp_small()
        assert candidate_set_size(cfg, "sf") == 3 * cfg.u_llc * cfg.sf.ways
        assert candidate_set_size(cfg, "l2") == 3 * cfg.u_l2 * cfg.l2.ways

    def test_candidates_have_requested_offset(self, setup):
        ctx, *_ = setup
        cand = build_candidate_set(ctx, page_offset=0x340, size=40)
        assert all(va % 4096 == 0x340 for va in cand.vas)

    def test_rejects_unaligned_offset(self, ctx):
        with pytest.raises(ConfigurationError):
            build_candidate_set(ctx, page_offset=0x241, size=8)

    def test_candidates_spread_over_all_sets(self, setup):
        """3UW candidates must cover every set at the offset (coupon bound)."""
        ctx, target, congruent, others = setup
        u = ctx.machine.cfg.u_llc
        sets = {ctx.true_set_of(v) for v in [target] + congruent + others}
        assert len(sets) == u

    def test_enough_congruent_for_any_set(self, setup):
        ctx, _, congruent, _ = setup
        assert len(congruent) >= ctx.machine.cfg.sf.ways


class TestEvictionPrimitive:
    def test_llc_mode_detects_exactly_at_associativity(self, setup):
        ctx, target, congruent, others = setup
        w = ctx.machine.cfg.llc.ways
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        assert tester.test(target, congruent[:w])
        assert not tester.test(target, congruent[: w - 1])

    def test_llc_mode_noncongruent_never_evicts(self, setup):
        ctx, target, _, others = setup
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        assert not tester.test(target, others[:300])

    def test_llc_mode_mixed(self, setup):
        ctx, target, congruent, others = setup
        w = ctx.machine.cfg.llc.ways
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        mixed = others[:100] + congruent[:w] + others[100:150]
        assert tester.test(target, mixed)

    def test_sequential_mode_same_verdicts(self, setup):
        ctx, target, congruent, others = setup
        w = ctx.machine.cfg.llc.ways
        tester = EvictionTester(ctx, mode="llc", parallel=False)
        assert tester.test(target, congruent[:w])
        assert not tester.test(target, others[:50])

    def test_sequential_slower_than_parallel(self, setup):
        ctx, target, congruent, others = setup
        vas = others[:200]
        par = EvictionTester(ctx, mode="llc", parallel=True)
        seq = EvictionTester(ctx, mode="llc", parallel=False)
        t0 = ctx.machine.now
        par.test(target, vas)
        t_par = ctx.machine.now - t0
        t0 = ctx.machine.now
        seq.test(target, vas)
        t_seq = ctx.machine.now - t0
        assert t_seq > 3 * t_par

    def test_sf_mode_needs_one_more_than_llc(self, setup):
        """SF has 12 ways vs LLC's 11: the extension test's foundation."""
        ctx, target, congruent, _ = setup
        w_sf = ctx.machine.cfg.sf.ways
        tester = EvictionTester(ctx, mode="sf", parallel=True)
        assert tester.test(target, congruent[:w_sf])
        assert not tester.test(target, congruent[: w_sf - 1])

    def test_l2_mode(self, setup):
        ctx, _, congruent, others = setup
        w_l2 = ctx.machine.cfg.l2.ways
        target = others[0]
        same_l2 = [
            v
            for v in others[1:] + congruent
            if ctx.true_l2_set_of(v) == ctx.true_l2_set_of(target)
        ]
        assert len(same_l2) >= w_l2
        tester = EvictionTester(ctx, mode="l2", parallel=True)
        assert tester.test(target, same_l2[:w_l2])
        assert not tester.test(target, same_l2[: w_l2 - 1])

    def test_n_prefix_respected(self, setup):
        ctx, target, congruent, others = setup
        w = ctx.machine.cfg.llc.ways
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        vas = congruent[:w] + others[:10]
        # Prefix excludes all congruent lines -> no eviction.
        assert not tester.test(target, others[:50] + congruent, n=50)

    def test_is_eviction_set_majority(self, setup):
        ctx, target, congruent, _ = setup
        w = ctx.machine.cfg.llc.ways
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        assert tester.is_eviction_set(target, congruent[:w], votes=3)

    def test_counters_advance(self, setup):
        ctx, target, _, others = setup
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        tester.test(target, others[:10])
        assert tester.n_tests == 1
        assert tester.traversed_addresses == 10

    def test_unknown_mode_rejected(self, setup):
        ctx, *_ = setup
        with pytest.raises(ConfigurationError):
            EvictionTester(ctx, mode="l3")
