"""Tests for the from-scratch ML substrate (SVM, trees, forests, metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotTrainedError, ReproError
from repro.ml import (
    SVC,
    BinaryClassificationReport,
    DecisionTreeClassifier,
    RandomForestClassifier,
    StandardScaler,
    evaluate_binary,
    linear_kernel,
    poly_kernel,
    rbf_kernel,
)


def linearly_separable(n=120, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    y = (x[:, 0] + 0.7 * x[:, 1] - 0.2 > 0).astype(int)
    return x, y


def xor_data(n=200, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


class TestScaler:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 3))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_unfitted_raises(self):
        with pytest.raises(NotTrainedError):
            StandardScaler().transform([[1.0]])


class TestKernels:
    def test_linear(self):
        x = np.array([[1.0, 2.0]])
        z = np.array([[3.0, 4.0]])
        assert linear_kernel()(x, z)[0, 0] == 11.0

    def test_poly(self):
        x = np.array([[1.0, 0.0]])
        assert poly_kernel(degree=2, gamma=1.0, coef0=1.0)(x, x)[0, 0] == 4.0

    def test_rbf_self_is_one(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert rbf_kernel(0.5)(x, x)[0, 0] == pytest.approx(1.0)

    def test_rbf_decays(self):
        k = rbf_kernel(1.0)
        a = np.array([[0.0]])
        b = np.array([[3.0]])
        assert k(a, b)[0, 0] < 1e-3


class TestSVC:
    def test_separable_accuracy(self):
        x, y = linearly_separable()
        svm = SVC(kernel=linear_kernel(), c=10.0, seed=0).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.95

    def test_poly_kernel_solves_xor(self):
        x, y = xor_data()
        svm = SVC(kernel=poly_kernel(degree=2, gamma=1.0), c=10.0, seed=0).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.9

    def test_rbf_solves_xor(self):
        x, y = xor_data(seed=2)
        svm = SVC(kernel=rbf_kernel(2.0), c=10.0, seed=0).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.9

    def test_generalizes(self):
        x, y = linearly_separable(n=300, seed=4)
        svm = SVC(kernel=linear_kernel(), c=5.0).fit(x[:200], y[:200])
        assert (svm.predict(x[200:]) == y[200:]).mean() > 0.9

    def test_arbitrary_labels(self):
        x, y = linearly_separable()
        labels = np.where(y == 1, "target", "other")
        svm = SVC(kernel=linear_kernel(), c=5.0).fit(x, labels)
        assert set(svm.predict(x)) <= {"target", "other"}

    def test_rejects_multiclass(self):
        x = np.zeros((6, 2))
        with pytest.raises(ReproError):
            SVC().fit(x, [0, 1, 2, 0, 1, 2])

    def test_unfitted_raises(self):
        with pytest.raises(NotTrainedError):
            SVC().predict([[0.0, 0.0]])

    def test_decision_function_sign_matches_predict(self):
        x, y = linearly_separable(seed=7)
        svm = SVC(kernel=linear_kernel(), c=5.0).fit(x, y)
        scores = svm.decision_function(x)
        preds = svm.predict(x)
        assert np.all((scores >= 0) == (preds == svm.classes_[1]))

    def test_has_support_vectors(self):
        x, y = linearly_separable()
        svm = SVC(kernel=linear_kernel(), c=1.0).fit(x, y)
        assert 0 < svm.n_support <= len(x)


class TestDecisionTree:
    def test_pure_leaf_fit(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(x, y)
        assert list(tree.predict(x)) == [0, 0, 1, 1]

    def test_xor_with_depth(self):
        # Greedy Gini splits are uninformative at the XOR root, so the tree
        # needs a few extra levels before the quadrant structure emerges.
        x, y = xor_data(seed=3)
        tree = DecisionTreeClassifier(max_depth=8).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.9

    def test_max_depth_respected(self):
        x, y = xor_data(seed=4)
        tree = DecisionTreeClassifier(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_predict_proba_sums_to_one(self):
        x, y = linearly_separable()
        tree = DecisionTreeClassifier(max_depth=3).fit(x, y)
        proba = tree.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_single_class(self):
        x = np.zeros((5, 2))
        tree = DecisionTreeClassifier().fit(x, np.ones(5))
        assert list(tree.predict(x)) == [1.0] * 5

    def test_unfitted_raises(self):
        with pytest.raises(NotTrainedError):
            DecisionTreeClassifier().predict([[1.0]])


class TestRandomForest:
    def test_xor(self):
        x, y = xor_data(seed=5)
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.9

    def test_generalizes_better_than_chance(self):
        x, y = xor_data(n=400, seed=6)
        forest = RandomForestClassifier(n_estimators=25, seed=1).fit(
            x[:300], y[:300]
        )
        assert (forest.predict(x[300:]) == y[300:]).mean() > 0.8

    def test_deterministic_given_seed(self):
        x, y = xor_data(seed=7)
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(x, y).predict(x)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_proba_shape(self):
        x, y = linearly_separable()
        forest = RandomForestClassifier(n_estimators=5).fit(x, y)
        assert forest.predict_proba(x[:7]).shape == (7, 2)

    def test_unfitted_raises(self):
        with pytest.raises(NotTrainedError):
            RandomForestClassifier().predict([[1.0]])


class TestMetrics:
    def test_perfect(self):
        rep = evaluate_binary([1, 0, 1], [1, 0, 1])
        assert rep.accuracy == 1.0
        assert rep.false_negative_rate == 0.0
        assert rep.false_positive_rate == 0.0

    def test_confusion_counts(self):
        rep = evaluate_binary([1, 1, 0, 0], [1, 0, 1, 0])
        assert (rep.true_positives, rep.false_negatives) == (1, 1)
        assert (rep.false_positives, rep.true_negatives) == (1, 1)
        assert rep.accuracy == 0.5

    def test_rates(self):
        rep = BinaryClassificationReport(
            true_positives=98, true_negatives=9990,
            false_positives=10, false_negatives=2,
        )
        assert rep.false_negative_rate == pytest.approx(0.02)
        assert rep.false_positive_rate == pytest.approx(0.001)
        assert rep.recall == pytest.approx(0.98)

    def test_empty_denominators(self):
        rep = evaluate_binary([0, 0], [0, 0])
        assert rep.false_negative_rate == 0.0
        assert rep.precision == 0.0
