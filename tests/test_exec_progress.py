"""Tests for the campaign progress reporter (repro.exec.progress)."""

from __future__ import annotations

import io
from types import SimpleNamespace

from repro.analysis.progress import format_progress
from repro.exec import ProgressReporter


def _record(ok=True, attempts=1):
    return SimpleNamespace(ok=ok, attempts=attempts)


def _reporter(**kwargs):
    stream = io.StringIO()
    reporter = ProgressReporter(stream=stream, interval_s=0.0, **kwargs)
    return reporter, stream


class TestProgressReporter:
    def test_emits_one_line_per_update_at_zero_interval(self):
        reporter, stream = _reporter()
        reporter.start("demo", total=3)
        for _ in range(3):
            reporter.update(_record())
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 3
        assert all("demo" in line for line in lines)

    def test_counters_track_failures_and_retries(self):
        reporter, _ = _reporter()
        reporter.start("demo", total=4)
        reporter.update(_record())
        reporter.update(_record(ok=False))
        reporter.update(_record(attempts=3))
        snap = reporter.snapshot()
        assert (snap.completed, snap.failed, snap.retried) == (3, 1, 2)
        assert snap.total == 4
        assert snap.elapsed_s >= 0.0

    def test_disabled_reporter_stays_silent(self):
        reporter, stream = _reporter(enabled=False)
        reporter.start("demo", total=2, cached=1)
        reporter.update(_record(ok=False))
        reporter.finish(reporter.snapshot())
        assert stream.getvalue() == ""

    def test_rate_limit_suppresses_fast_updates(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval_s=3600.0)
        reporter.start("demo", total=50)
        for _ in range(50):
            reporter.update(_record())
        # At most the first update gets through; the rest are rate-limited.
        assert len(stream.getvalue().splitlines()) <= 1
        assert reporter.completed == 50

    def test_start_announces_cached_trials(self):
        reporter, stream = _reporter()
        reporter.start("demo", total=5, cached=2)
        assert "2/5 trials cached from journal" in stream.getvalue()

    def test_start_resets_counters(self):
        reporter, _ = _reporter()
        reporter.start("a", total=2)
        reporter.update(_record(ok=False, attempts=2))
        reporter.start("b", total=7)
        snap = reporter.snapshot()
        assert (snap.completed, snap.failed, snap.retried) == (0, 0, 0)
        assert reporter.label == "b"

    def test_snapshot_line_carries_rate_and_eta(self):
        reporter, _ = _reporter()
        reporter.start("demo", total=4)
        reporter.update(_record())
        reporter.update(_record())
        line = format_progress(reporter.snapshot(), label="demo")
        assert "trials/s" in line
        assert "ETA" in line
        assert "(50%)" in line

    def test_finish_line_carries_rate(self):
        reporter, stream = _reporter()
        reporter.start("demo", total=2)
        reporter.update(_record())
        reporter.update(_record())
        reporter.finish(reporter.snapshot())
        last = stream.getvalue().splitlines()[-1]
        assert "trials/s" in last
        assert "(100%)" in last

    def test_zero_total_campaign_is_safe(self):
        reporter, stream = _reporter()
        reporter.start("empty", total=0)
        metrics = reporter.snapshot()
        assert metrics.percent_done == 100.0
        assert metrics.remaining == 0
        assert metrics.eta_s == 0.0
        reporter.finish(metrics)
        last = stream.getvalue().splitlines()[-1]
        assert "0/0 trials (100%)" in last
        assert "trials/s" in last

    def test_finish_marks_done(self):
        reporter, stream = _reporter()
        reporter.start("demo", total=1)
        reporter.update(_record())
        metrics = reporter.snapshot()
        reporter.finish(metrics)
        last = stream.getvalue().splitlines()[-1]
        assert last.endswith("| done")
        assert format_progress(metrics, label="demo") in last
