"""Tests for the pruning algorithms: GT, GTOp, Song, PS, PsOp, BinS."""

from __future__ import annotations

import pytest

from repro.config import cloud_run_noise, exposure_matched, no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    construct_l2_evset,
    construct_sf_evset,
    make_algorithm,
)
from repro.core.evset.driver import algorithm_names
from repro.errors import EvictionSetError
from repro.memsys.machine import Machine

ALGOS = ["gt", "gtop", "gt-song", "ps", "psop", "bins", "ppp"]


def fresh_setup(seed=30, noise=None):
    machine = Machine(
        skylake_sp_small(), noise=noise or no_noise(), seed=seed
    )
    ctx = AttackerContext(machine, seed=1)
    ctx.calibrate()
    cand = build_candidate_set(ctx, page_offset=0x280)
    target = cand.vas.pop()
    return ctx, target, cand.vas


def is_valid_sf_evset(ctx, target, evset):
    sets = {ctx.true_set_of(v) for v in evset.vas}
    return (
        len(evset.vas) == ctx.machine.cfg.sf.ways
        and len(sets) == 1
        and ctx.true_set_of(target) in sets
    )


class TestRegistry:
    def test_all_names(self):
        assert set(algorithm_names()) == set(ALGOS)

    def test_unknown_raises(self):
        with pytest.raises(EvictionSetError):
            make_algorithm("quantum-search")

    def test_parallel_preference(self):
        assert make_algorithm("gt").wants_parallel
        assert make_algorithm("bins").wants_parallel
        assert make_algorithm("ppp").wants_parallel
        assert not make_algorithm("ps").wants_parallel


@pytest.mark.parametrize("algo", ALGOS)
class TestQuietConstruction:
    def test_builds_valid_minimal_sf_evset(self, algo):
        ctx, target, pool = fresh_setup(seed=30)
        outcome = construct_sf_evset(ctx, algo, target, pool, EvsetConfig())
        assert outcome.success, outcome.failure_reason
        assert is_valid_sf_evset(ctx, target, outcome.evset)

    def test_outcome_accounting(self, algo):
        ctx, target, pool = fresh_setup(seed=31)
        outcome = construct_sf_evset(ctx, algo, target, pool, EvsetConfig())
        assert outcome.elapsed_cycles > 0
        assert outcome.stats.tests > 0
        assert outcome.stats.attempts >= 1
        assert outcome.elapsed_ms(2.0) > 0


class TestBinSSpecifics:
    def test_logarithmic_test_count(self):
        """BinS runs O(W log N) TestEvictions per attempt (Section 5.2)."""
        import math

        ctx, target, pool = fresh_setup(seed=32)
        outcome = construct_sf_evset(ctx, "bins", target, pool, EvsetConfig())
        assert outcome.success
        cfg = ctx.machine.cfg
        # Bound per attempt: W_llc searches of <= ceil(log2 N) + 2 tests,
        # plus the SF extension scan and final verifications.
        per_attempt = cfg.llc.ways * (math.ceil(math.log2(len(pool))) + 2)
        slack = 4 * cfg.u_llc  # extension scan + verify overheads
        assert outcome.stats.tests <= outcome.stats.attempts * per_attempt + slack

    def test_small_candidate_set_rejected(self):
        ctx, target, pool = fresh_setup(seed=33)
        outcome = construct_sf_evset(ctx, "bins", target, pool[:5], EvsetConfig())
        assert not outcome.success

    def test_works_under_measured_cloud_noise(self):
        """BinS survives the paper's measured Cloud Run rate (11.5/ms/set).

        (Unfiltered construction under the exposure-*matched* rate is
        intentionally marginal — the paper only runs BinS with filtering.)
        """
        ctx, target, pool = fresh_setup(seed=34, noise=cloud_run_noise())
        outcome = construct_sf_evset(
            ctx, "bins", target, pool, EvsetConfig(budget_ms=1000)
        )
        assert outcome.success
        assert is_valid_sf_evset(ctx, target, outcome.evset)


class TestL2Construction:
    def test_l2_evset_valid(self):
        ctx, target, pool = fresh_setup(seed=35)
        outcome = construct_l2_evset(ctx, "bins", target, pool)
        assert outcome.success
        w = ctx.machine.cfg.l2.ways
        assert len(outcome.evset.vas) == w
        target_l2 = ctx.true_l2_set_of(target)
        assert all(ctx.true_l2_set_of(v) == target_l2 for v in outcome.evset.vas)

    def test_l2_evset_kind(self):
        ctx, target, pool = fresh_setup(seed=36)
        outcome = construct_l2_evset(ctx, "gtop", target, pool)
        assert outcome.success
        assert outcome.evset.kind == "l2"


class TestBudgets:
    def test_budget_is_enforced(self):
        ctx, target, pool = fresh_setup(seed=37)
        outcome = construct_sf_evset(
            ctx, "bins", target, pool, EvsetConfig(budget_ms=0.001)
        )
        assert not outcome.success
        assert "budget" in outcome.failure_reason

    def test_target_excluded_from_pool(self):
        ctx, target, pool = fresh_setup(seed=38)
        outcome = construct_sf_evset(
            ctx, "bins", target, [target] + pool, EvsetConfig()
        )
        assert outcome.success
        assert target not in outcome.evset.vas
