"""Tests for repro._util (RNG, distributions, statistics, chunking)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import (
    chunked,
    exponential,
    make_rng,
    mean,
    median,
    percentile,
    poisson,
    spawn_rng,
    stddev,
)


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_make_rng_accepts_tuples(self):
        a = make_rng(("machine", 1))
        b = make_rng(("machine", 1))
        assert a.random() == b.random()

    def test_make_rng_distinguishes_tuples(self):
        assert make_rng(("a", 1)).random() != make_rng(("a", 2)).random()

    def test_spawn_rng_independent_streams(self):
        parent = make_rng(0)
        child_a = spawn_rng(parent, "a")
        parent2 = make_rng(0)
        child_a2 = spawn_rng(parent2, "a")
        assert child_a.random() == child_a2.random()

    def test_spawn_rng_differs_by_tag(self):
        parent = make_rng(0)
        a = spawn_rng(parent, "a")
        parent = make_rng(0)
        b = spawn_rng(parent, "b")
        assert a.random() != b.random()


class TestPoisson:
    def test_zero_rate(self):
        assert poisson(make_rng(1), 0.0) == 0

    def test_negative_rate(self):
        assert poisson(make_rng(1), -1.0) == 0

    @pytest.mark.parametrize("lam", [0.5, 3.0, 20.0, 100.0])
    def test_mean_matches(self, lam):
        rng = make_rng(123)
        n = 4000
        draws = [poisson(rng, lam) for _ in range(n)]
        observed = sum(draws) / n
        assert observed == pytest.approx(lam, rel=0.1)

    @pytest.mark.parametrize("lam", [2.0, 50.0])
    def test_variance_matches(self, lam):
        rng = make_rng(5)
        n = 6000
        draws = [poisson(rng, lam) for _ in range(n)]
        mu = sum(draws) / n
        var = sum((d - mu) ** 2 for d in draws) / n
        assert var == pytest.approx(lam, rel=0.15)

    def test_non_negative(self):
        rng = make_rng(9)
        assert all(poisson(rng, 70.0) >= 0 for _ in range(500))


class TestExponential:
    def test_zero_rate_is_infinite(self):
        assert exponential(make_rng(0), 0.0) == math.inf

    def test_mean(self):
        rng = make_rng(2)
        draws = [exponential(rng, 4.0) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(0.25, rel=0.1)


class TestStats:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_mean_basic(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_stddev_constant(self):
        assert stddev([5.0, 5.0, 5.0]) == 0.0

    def test_stddev_known(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(2.0)

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_percentile_bounds(self):
        vals = list(range(101))
        assert percentile(vals, 0) == 0
        assert percentile(vals, 100) == 100
        assert percentile(vals, 50) == 50

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_percentile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestChunked:
    def test_even_split(self):
        assert chunked(list(range(6)), 3) == [[0, 1], [2, 3], [4, 5]]

    def test_uneven_split_front_loaded(self):
        groups = chunked(list(range(7)), 3)
        assert [len(g) for g in groups] == [3, 2, 2]

    def test_more_chunks_than_items(self):
        groups = chunked([1, 2], 4)
        assert [len(g) for g in groups] == [1, 1, 0, 0]

    def test_preserves_order_and_content(self):
        items = list(range(23))
        groups = chunked(items, 5)
        assert [x for g in groups for x in g] == items

    def test_rejects_zero_chunks(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    @given(st.lists(st.integers(), max_size=60), st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_property_partition(self, items, n):
        groups = chunked(items, n)
        assert len(groups) == n
        assert [x for g in groups for x in g] == items
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1
