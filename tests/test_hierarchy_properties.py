"""Property-based invariants of the cache hierarchy under random traffic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import cloud_run_noise, no_noise, tiny_machine
from repro.memsys.hierarchy import NOISE_OWNER, SHARED_OWNER, _NOISE_TAG_BASE
from repro.memsys.machine import Machine

N_LINES = 24


def apply_ops(machine, ops):
    """Replay a random op sequence against a fixed pool of lines."""
    space = machine.new_address_space()
    lines = [space.translate_line(p) for p in space.alloc_pages(N_LINES)]
    for kind, core, idx, dt in ops:
        line = lines[idx % N_LINES]
        core %= machine.cfg.cores
        if kind == 0:
            machine.access(core, line)
        elif kind == 1:
            machine.access(core, line, write=True)
        elif kind == 2:
            machine.flush(line)
        else:
            machine.advance(dt)
    return lines


def check_invariants(machine, lines):
    hier = machine.hierarchy
    cfg = machine.cfg
    for line in lines:
        sidx = hier.shared_set_index(line)
        # 1. A line is never tracked by the SF and resident in the LLC at
        #    the same time (private XOR shared).
        assert not (hier.in_sf(line) and hier.in_llc(line)), hex(line)
        # 2. SF ownership annotations are valid cores or the noise marker.
        owner = hier.sf.owner_of(sidx, line)
        if owner is not None:
            assert owner == NOISE_OWNER or 0 <= owner < cfg.cores
        # 3. LLC-resident attacker lines are marked shared.
        if hier.in_llc(line):
            assert hier.llc.owner_of(sidx, line) == SHARED_OWNER
    # 4. No set exceeds its associativity, no duplicate tags (every set of
    #    every structure; the tiny preset keeps this cheap).
    for cache in [hier.sf, hier.llc] + hier.l1 + hier.l2:
        for set_idx in range(cache.n_sets):
            tags = cache.tags_in_set(set_idx)
            assert len(tags) <= cache.ways
            assert len(tags) == len(set(tags))
            assert len(tags) == cache.occupancy(set_idx)
    # 5. Noise tags never appear in private caches.
    for cache in hier.l1 + hier.l2:
        for set_idx in range(cache.n_sets):
            assert all(t < _NOISE_TAG_BASE for t in cache.tags_in_set(set_idx))


ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),          # op kind
        st.integers(0, 3),          # core
        st.integers(0, N_LINES - 1),  # line index
        st.integers(1, 50_000),     # advance amount
    ),
    max_size=80,
)


@given(ops=ops_strategy)
@settings(max_examples=30, deadline=None)
def test_property_invariants_quiet(ops):
    machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=1)
    lines = apply_ops(machine, ops)
    check_invariants(machine, lines)


@given(ops=ops_strategy, seed=st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_property_invariants_under_noise(ops, seed):
    machine = Machine(
        tiny_machine(cores=3), noise=cloud_run_noise().scaled(50), seed=seed
    )
    lines = apply_ops(machine, ops)
    check_invariants(machine, lines)


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None)
def test_property_reload_after_flush_is_dram(ops):
    """After any history, flush + reload always misses to DRAM."""
    from repro.memsys.hierarchy import Level

    machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=2)
    lines = apply_ops(machine, ops)
    machine.flush(lines[0])
    level, _ = machine.access(0, lines[0])
    assert level == Level.DRAM


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None)
def test_property_write_always_ends_exclusive(ops):
    machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=3)
    lines = apply_ops(machine, ops)
    hier = machine.hierarchy
    machine.access(1, lines[0], write=True)
    sidx = hier.shared_set_index(lines[0])
    assert hier.sf.owner_of(sidx, lines[0]) == 1
    assert not hier.in_llc(lines[0])
    assert hier.in_private_cache(1, lines[0])
