"""Tests for ECDSA over binary curves and the nonce-leak identities."""

from __future__ import annotations

import pytest

from repro._util import make_rng
from repro.crypto.curves import curve_by_name
from repro.crypto.ecdsa import (
    generate_keypair,
    hash_to_int,
    recover_nonce,
    recover_private_key,
    sign,
    sign_with_nonce,
    verify,
)
from repro.errors import CryptoError

KTEST = curve_by_name("K-TEST")
K163 = curve_by_name("K-163")


@pytest.fixture(scope="module")
def keypair163():
    return generate_keypair(K163, make_rng(11))


class TestKeygen:
    def test_private_in_range(self):
        kp = generate_keypair(KTEST, make_rng(1))
        assert 1 <= kp.d < KTEST.n

    def test_public_on_curve(self):
        kp = generate_keypair(KTEST, make_rng(2))
        assert KTEST.is_on_curve(kp.public_point)

    def test_deterministic_from_rng(self):
        a = generate_keypair(KTEST, make_rng(5))
        b = generate_keypair(KTEST, make_rng(5))
        assert a.d == b.d


class TestSignVerify:
    def test_roundtrip(self, keypair163):
        sig, k = sign(keypair163, b"hello world", make_rng(3))
        assert verify(K163, keypair163.public_point, b"hello world", sig)

    def test_wrong_message_fails(self, keypair163):
        sig, _ = sign(keypair163, b"msg", make_rng(4))
        assert not verify(K163, keypair163.public_point, b"other", sig)

    def test_wrong_key_fails(self, keypair163):
        other = generate_keypair(K163, make_rng(99))
        sig, _ = sign(keypair163, b"msg", make_rng(5))
        assert not verify(K163, other.public_point, b"msg", sig)

    def test_tampered_signature_fails(self, keypair163):
        sig, _ = sign(keypair163, b"msg", make_rng(6))
        from repro.crypto.ecdsa import EcdsaSignature

        bad = EcdsaSignature(sig.r, (sig.s + 1) % K163.n)
        assert not verify(K163, keypair163.public_point, b"msg", bad)

    def test_out_of_range_rejected(self, keypair163):
        from repro.crypto.ecdsa import EcdsaSignature

        assert not verify(
            K163, keypair163.public_point, b"m", EcdsaSignature(0, 1)
        )
        assert not verify(
            K163, keypair163.public_point, b"m", EcdsaSignature(1, K163.n)
        )

    def test_explicit_nonce_rejected_out_of_range(self, keypair163):
        with pytest.raises(CryptoError):
            sign_with_nonce(keypair163, b"m", 0)
        with pytest.raises(CryptoError):
            sign_with_nonce(keypair163, b"m", K163.n)

    def test_nonce_changes_signature(self, keypair163):
        s1 = sign_with_nonce(keypair163, b"m", 1234567)
        s2 = sign_with_nonce(keypair163, b"m", 7654321)
        assert s1 != s2


class TestHashToInt:
    def test_truncated_to_order_bits(self):
        e = hash_to_int(b"x" * 100, KTEST)
        assert e.bit_length() <= KTEST.n.bit_length()

    def test_deterministic(self):
        assert hash_to_int(b"abc", K163) == hash_to_int(b"abc", K163)


class TestNonceLeakEndgame:
    """One known nonce reveals the private key — why the leak is fatal."""

    def test_recover_private_key(self, keypair163):
        message = b"pay $100 to mallory"
        sig, k = sign(keypair163, message, make_rng(7))
        assert recover_private_key(K163, message, sig, k) == keypair163.d

    def test_recover_nonce_ground_truth(self, keypair163):
        message = b"request"
        sig, k = sign(keypair163, message, make_rng(8))
        assert recover_nonce(K163, message, sig, keypair163.d) == k

    def test_recovered_key_can_forge(self, keypair163):
        message = b"original"
        sig, k = sign(keypair163, message, make_rng(9))
        stolen_d = recover_private_key(K163, message, sig, k)
        from repro.crypto.ecdsa import EcdsaKeyPair

        forged_keypair = EcdsaKeyPair(
            K163, stolen_d, keypair163.qx, keypair163.qy
        )
        forged, _ = sign(forged_keypair, b"forged payment", make_rng(10))
        assert verify(K163, keypair163.public_point, b"forged payment", forged)

    def test_wrong_nonce_gives_wrong_key(self, keypair163):
        message = b"x"
        sig, k = sign(keypair163, message, make_rng(12))
        wrong = recover_private_key(K163, message, sig, (k + 1) % K163.n or 1)
        assert wrong != keypair163.d
