"""Fused-kernel vs unfused-path parity (DESIGN.md §2.3).

The fused attack kernels in :mod:`repro.memsys.kernels` promise
*bit-identical* trials: every kernel consumes the hierarchy, noise,
preemption, and jitter RNG streams in exactly the per-access order of the
unfused Machine path, and advances the clock by the same amounts.  These
suites hold them to it:

* **Dynamic parity** — the same TestEviction batteries, monitor loops,
  and eviction-set constructions run twice, fused and unfused
  (``use_kernels=False`` / :func:`repro.memsys.kernels_disabled`), and
  every observable must agree exactly: verdicts, hierarchy stats, the
  simulated clock, noise event counts, and the full ``getstate()`` of
  every RNG stream (so not just the same number of draws — the same
  draws).
* **Golden fingerprints** — sha256 digests of the fused runs, captured
  from the unfused path.  They freeze trial behavior against drift in
  *either* path: a kernel "optimization" that reorders RNG draws and a
  Machine change that forgets the kernels both show up here.

Everything here is fast-lane sized (small machine, tiny pools, short
budgets) so CI runs it on every push.
"""

from __future__ import annotations

import pytest

from tests._parity import _h, _machine_digest

from repro.config import cloud_run_noise, no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig
from repro.core.evset.candidates import build_candidate_set
from repro.core.evset.filtering import build_l2_eviction_set
from repro.core.evset.primitives import EvictionTester
from repro.core.evset.types import EvictionSet
from repro.core.monitor import ParallelProbing, PrimeScopeFlush, monitor_set
from repro.memsys import kernels_disabled
from repro.memsys.kernels import KERNELS_ENABLED
from repro.memsys.machine import Machine


# --- TestEviction parity ----------------------------------------------------


def _tester_battery(mode: str, noisy: bool, fused: bool) -> dict:
    """One deterministic battery of test()/test_many() calls."""
    noise = cloud_run_noise() if noisy else no_noise()
    machine = Machine(skylake_sp_small(), noise=noise, seed=23)
    ctx = AttackerContext(machine, seed=2)
    ctx.calibrate()
    cand = build_candidate_set(ctx, 0x140, size=40)
    tester = EvictionTester(ctx, mode=mode, parallel=True, use_kernels=fused)
    target, pool = cand.vas[0], cand.vas[1:]
    verdicts = [tester.test(target, pool, n) for n in (39, 20, 10, 5)]
    verdicts += tester.test_many(cand.vas[:4], cand.vas[4:], 24)
    # A repeated traversal exercises the repeats loop inside the kernel.
    deep = EvictionTester(ctx, mode=mode, parallel=True, repeats=2,
                          use_kernels=fused)
    verdicts.append(deep.test(target, pool, 16))
    return {"verdicts": verdicts, **_machine_digest(machine)}


@pytest.mark.parametrize("noisy", [False, True], ids=["quiet", "noisy"])
@pytest.mark.parametrize("mode", ["llc", "sf", "l2"])
class TestEvictionKernelParity:
    def test_battery_bitwise_identical(self, mode, noisy):
        fused = _tester_battery(mode, noisy, fused=True)
        unfused = _tester_battery(mode, noisy, fused=False)
        assert fused == unfused


def test_kernels_enabled_by_default():
    assert KERNELS_ENABLED


def test_kernels_disabled_context_forces_unfused():
    machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
    ctx = AttackerContext(machine, seed=1)
    tester = EvictionTester(ctx, mode="l2")
    with kernels_disabled():
        assert tester._kernels() is None
    assert tester._kernels() is not None


def test_reference_cache_disengages_kernels():
    """The seed oracle (and any duck-typed stand-in) must bypass kernels."""
    import repro.memsys.hierarchy as hmod
    from repro.memsys._reference import ReferenceSetAssociativeCache

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = ReferenceSetAssociativeCache
    try:
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
    finally:
        hmod.SetAssociativeCache = original
    ctx = AttackerContext(machine, seed=1)
    assert not ctx.attack_kernels().engaged()
    assert EvictionTester(ctx, mode="l2")._kernels() is None


# --- Monitor parity ---------------------------------------------------------


def _congruent_evset(ctx: AttackerContext, kind: str, n: int, offset: int = 0x2C0):
    """Assemble an eviction set from known-congruent lines (no pruning)."""
    machine = ctx.machine
    target_va = ctx.alloc_pages(1)[0] + offset
    tset = machine.hierarchy.shared_set_index(ctx.line(target_va))
    vas = []
    while len(vas) < n:
        for page in ctx.alloc_pages(32):
            va = page + offset
            if machine.hierarchy.shared_set_index(ctx.line(va)) == tset:
                vas.append(va)
    return EvictionSet(kind=kind, vas=vas[:n], target_va=target_va), tset


def _monitor_run(strategy_cls, fused: bool) -> dict:
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=31)
    ctx = AttackerContext(machine, seed=3)
    ctx.calibrate()
    evset, tset = _congruent_evset(ctx, "sf", machine.cfg.sf.ways)
    # A victim on another core hammers the monitored set.
    space = machine.new_address_space()
    while True:
        line = space.translate_line(space.alloc_page() + 0x2C0)
        if machine.hierarchy.shared_set_index(line) == tset:
            break
    interval = 20_000
    for i in range(15):
        machine.schedule(
            machine.now + 3_000 + i * interval,
            lambda t, line=line: machine.hierarchy.access(3, line, t, write=True),
        )
    import contextlib

    guard = contextlib.nullcontext() if fused else kernels_disabled()
    with guard:
        trace = monitor_set(
            strategy_cls(ctx, evset), duration_cycles=15 * interval + 30_000
        )
    return {
        "trace": [trace.timestamps, trace.start, trace.end,
                  trace.probe_latencies, trace.prime_latencies],
        **_machine_digest(machine),
    }


@pytest.mark.parametrize(
    "strategy_cls", [ParallelProbing, PrimeScopeFlush],
    ids=["parallel", "prime-scope"],
)
def test_monitor_parity(strategy_cls):
    assert _monitor_run(strategy_cls, True) == _monitor_run(strategy_cls, False)


# --- Construction parity ----------------------------------------------------


def _l2_construction(fused: bool) -> dict:
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=47)
    ctx = AttackerContext(machine, seed=5)
    ctx.calibrate()
    target_va = ctx.alloc_pages(1)[0] + 0x180
    guard = kernels_disabled() if not fused else None
    if guard is None:
        evset = build_l2_eviction_set(ctx, target_va,
                                      EvsetConfig(budget_ms=50.0))
    else:
        with guard:
            evset = build_l2_eviction_set(ctx, target_va,
                                          EvsetConfig(budget_ms=50.0))
    return {"vas": sorted(evset.vas), **_machine_digest(machine)}


def test_l2_construction_parity():
    assert _l2_construction(True) == _l2_construction(False)


# --- Golden fingerprints (captured from the unfused path) -------------------

GOLDEN_BATTERY_NOISY_SF = "20d53b2141cf92e4"
GOLDEN_MONITOR_PARALLEL = "9b0e8bd69a10f584"
GOLDEN_L2_CONSTRUCTION = "27d41eff975b2212"


class TestGoldenFingerprints:
    def test_battery(self):
        assert _h(_tester_battery("sf", True, fused=True)) == GOLDEN_BATTERY_NOISY_SF

    def test_monitor(self):
        assert _h(_monitor_run(ParallelProbing, True)) == GOLDEN_MONITOR_PARALLEL

    def test_construction(self):
        assert _h(_l2_construction(True)) == GOLDEN_L2_CONSTRUCTION
