"""Tests for the Machine: clock, events, traversals, preemption, noise."""

from __future__ import annotations

import pytest

from repro.config import (
    NoiseConfig,
    cloud_run_noise,
    no_noise,
    skylake_sp_small,
    tiny_machine,
)
from repro.memsys.hierarchy import Level
from repro.memsys.machine import Machine


class TestClockAndEvents:
    def test_access_advances_clock(self, tiny):
        space = tiny.new_address_space()
        line = space.translate_line(space.alloc_page())
        before = tiny.now
        _, latency = tiny.access(0, line)
        assert tiny.now == before + latency

    def test_events_fire_in_order(self, tiny):
        fired = []
        tiny.schedule(100, lambda t: fired.append(("a", t)))
        tiny.schedule(50, lambda t: fired.append(("b", t)))
        tiny.advance(200)
        assert fired == [("b", 50), ("a", 100)]

    def test_event_in_past_fires_immediately(self, tiny):
        tiny.advance(500)
        fired = []
        tiny.schedule(100, lambda t: fired.append(t))
        tiny.advance(1)
        assert fired  # clamped to now

    def test_run_until(self, tiny):
        tiny.run_until(1234)
        assert tiny.now == 1234
        tiny.run_until(100)  # no going back
        assert tiny.now == 1234

    def test_event_can_reschedule(self, tiny):
        fired = []

        def tick(t):
            fired.append(t)
            if len(fired) < 3:
                tiny.schedule(t + 100, tick)

        tiny.schedule(100, tick)
        tiny.advance(1000)
        assert fired == [100, 200, 300]

    def test_seconds_conversion(self, tiny):
        tiny.advance(2_000_000_000)
        assert tiny.seconds() == pytest.approx(1.0)


class TestTraversals:
    def _lines(self, machine, n):
        space = machine.new_address_space()
        return [space.translate_line(p) for p in space.alloc_pages(n)]

    def test_parallel_much_faster_than_chase(self, quiet_machine):
        """The MLP property behind parallel TestEviction (Section 4.1)."""
        m = quiet_machine
        lines = self._lines(m, 64)
        m.access_parallel(0, lines)  # warm nothing in particular
        m.flush_batch(lines)
        t_par = m.access_parallel(0, lines)
        m.flush_batch(lines)
        t_chase = m.access_chase(0, lines)
        assert t_chase > 4 * t_par

    def test_parallel_applies_state(self, quiet_machine):
        m = quiet_machine
        lines = self._lines(m, 10)
        m.access_parallel(0, lines)
        assert all(m.hierarchy.in_private_cache(0, l) for l in lines)

    def test_parallel_empty(self, quiet_machine):
        assert quiet_machine.access_parallel(0, []) == 0

    def test_advance_false_keeps_clock(self, quiet_machine):
        m = quiet_machine
        lines = self._lines(m, 4)
        before = m.now
        m.access_parallel(0, lines, advance=False)
        assert m.now == before
        assert all(m.hierarchy.in_private_cache(0, l) for l in lines)

    def test_hit_traversal_cheaper(self, quiet_machine):
        m = quiet_machine
        lines = self._lines(m, 16)
        m.access_parallel(0, lines)
        t_hit = m.access_parallel(0, lines)
        m.flush_batch(lines)
        t_miss = m.access_parallel(0, lines)
        assert t_hit < t_miss


class TestTimedAccess:
    def test_hit_vs_miss_distinguishable(self, quiet_machine):
        m = quiet_machine
        space = m.new_address_space()
        line = space.translate_line(space.alloc_page())
        t_miss = m.timed_access(0, line)
        t_hit = m.timed_access(0, line)
        assert t_miss > m.hit_threshold_llc() > m.hit_threshold_private() > t_hit

    def test_jitter_bounded(self, quiet_machine):
        m = quiet_machine
        space = m.new_address_space()
        line = space.translate_line(space.alloc_page())
        m.access(0, line)
        lat = m.cfg.latency
        samples = {m.timed_access(0, line) for _ in range(40)}
        low = lat.l1_hit + lat.timer_overhead - lat.timer_jitter
        high = lat.l1_hit + lat.timer_overhead + lat.timer_jitter
        assert all(low <= s <= high for s in samples)


class TestNoiseIntegration:
    def test_quiet_machine_has_no_noise_source(self, quiet_machine):
        assert quiet_machine.hierarchy.noise_source is None

    def test_noise_evicts_idle_shared_line(self):
        """A shared line left alone under cloud noise eventually leaves the
        LLC, and its private copies are invalidated with it."""
        m = Machine(
            skylake_sp_small(), noise=cloud_run_noise().scaled(20), seed=3
        )
        space = m.new_address_space()
        line = space.translate_line(space.alloc_page())
        m.access(0, line)
        m.access(1, line)  # shared
        assert m.hierarchy.in_llc(line)
        m.advance(20_000_000)  # 10 ms of noise
        level, _ = m.access(0, line)
        assert level == Level.DRAM

    def test_noise_events_counted(self):
        m = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=3)
        space = m.new_address_space()
        line = space.translate_line(space.alloc_page())
        m.access(0, line)
        m.advance(4_000_000)
        m.access(0, line)
        assert m.noise.events > 0

    def test_deterministic_given_seed(self):
        def run(seed):
            m = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=seed)
            space = m.new_address_space()
            lines = [space.translate_line(p) for p in space.alloc_pages(20)]
            out = []
            for line in lines:
                out.append(m.access(0, line))
                m.advance(10_000)
            return out, m.noise.events, lines

        assert run(5) == run(5)
        # Different seeds place pages on different frames.
        assert run(5)[2] != run(6)[2]


class TestPreemption:
    def test_preemption_outliers_appear(self):
        noise = NoiseConfig(
            name="preempty",
            llc_accesses_per_ms_per_set=0.0,
            preemption_rate_hz=200_000.0,
            preemption_cycles=30_000,
        )
        m = Machine(skylake_sp_small(), noise=noise, seed=1)
        space = m.new_address_space()
        line = space.translate_line(space.alloc_page())
        m.access(0, line)
        samples = [m.timed_access(0, line) for _ in range(3000)]
        assert any(s > 20_000 for s in samples)
