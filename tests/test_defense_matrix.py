"""The defense-evaluation matrix campaign: trials, summary, registration.

Full-pipeline trials run for minutes; these tests exercise the campaign
plumbing on ``skylake-small`` with the construct stage only (``tiny`` is
too degenerate for bulk SF construction), which keeps them cheap while
still proving the trial contract end-to-end: defended env build, bulk
construction, dataclass journaling through the parallel engine, CLI and
fleet registration.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.defenses import DEFENSE_NAMES
from repro.defenses.matrix import (
    STAGES,
    DefenseTrialConfig,
    DefenseTrialSample,
    defended_env,
    defense_matrix_campaign,
    defense_trial,
    summarize_defense_samples,
)
from repro.envs import EnvSpec
from repro.exec import ExecPolicy, run_campaign
from repro.exec.campaigns import CLI_CAMPAIGNS
from repro.exec.journal import CampaignJournal
from repro.memsys.cache import SetAssociativeCache

#: Cheap env for defense-application checks (no construction).
TINY = EnvSpec(machine="tiny", noise="cloud-quiet")

#: Smallest machine whose geometry supports bulk SF construction.
SMALL = EnvSpec(machine="skylake-small", noise="none")

CHEAP = dict(env=SMALL, budget_ms=10.0, bulk_budget_ms=60.0,
             stages=("construct",))


class TestDefendedEnv:
    def test_applies_the_requested_defense(self):
        machine, ctx = defended_env(TINY, 3, "ceaser")
        assert machine.hierarchy.sf.kind == "ceaser"
        assert machine.hierarchy.llc.kind == "ceaser"
        # Calibration ran on the defended machine.
        assert ctx.threshold_llc > ctx.threshold_private

    def test_none_leaves_the_machine_undefended(self):
        machine, _ctx = defended_env(TINY, 3, "none")
        assert type(machine.hierarchy.sf) is SetAssociativeCache

    def test_named_env_and_spec_share_the_code_path(self):
        machine, _ctx = defended_env("local", 3, "skew")
        assert machine.hierarchy.llc.kind == "skew"


class TestDefenseTrial:
    def test_construct_only_trial_on_undefended_machine(self):
        cfg = DefenseTrialConfig(defense="none", **CHEAP)
        sample = defense_trial(cfg, 5)
        assert sample.defense == "none"
        assert sample.n_evsets > 0
        assert sample.construct_rate > 0.9
        assert sample.target_covered
        # Later stages were skipped, not failed.
        assert sample.error == ""
        assert sample.monitor_accuracy == 0.0
        assert sample.recovered_fraction == 0.0

    def test_trial_is_deterministic(self):
        cfg = DefenseTrialConfig(defense="way-partition", **CHEAP)
        assert defense_trial(cfg, 5) == defense_trial(cfg, 5)

    @pytest.mark.slow
    def test_randomized_defense_degrades_construction(self):
        """The matrix's headline contrast: the keyed index breaks the
        page-offset → set contract, so construction produces nothing
        (and the overall deadline keeps the defeated trial bounded)."""
        none = defense_trial(DefenseTrialConfig(defense="none", **CHEAP), 5)
        ceaser = defense_trial(
            DefenseTrialConfig(
                env=SMALL, defense="ceaser", budget_ms=10.0,
                bulk_budget_ms=10.0, stages=("construct",),
            ),
            5,
        )
        assert none.construct_rate > 0.9
        assert ceaser.construct_rate == 0.0
        assert ceaser.construct_timed_out or ceaser.n_evsets == 0
        assert ceaser.error == ""  # degraded honestly, did not crash

    def test_empty_stage_tuple_short_circuits(self):
        cfg = dataclasses.replace(
            DefenseTrialConfig(defense="none", **CHEAP), stages=()
        )
        sample = defense_trial(cfg, 5)
        assert sample.n_evsets == 0 and sample.error == ""


class TestCampaign:
    def test_grid_pairs_seeds_across_defenses(self):
        campaign = defense_matrix_campaign(
            env=TINY, defenses=["none", "ceaser"], trials_per_defense=3
        )
        assert len(campaign.configs) == 6
        assert campaign.seeds == (1000, 1001, 1002) * 2
        assert [c.defense for c in campaign.configs[:3]] == ["none"] * 3

    def test_defaults_to_every_defense(self):
        campaign = defense_matrix_campaign(env=TINY, trials_per_defense=1)
        assert [c.defense for c in campaign.configs] == list(DEFENSE_NAMES)

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError):
            defense_matrix_campaign(env=TINY, defenses=["mirage"])

    def test_runs_through_the_engine_and_journals_dataclasses(self, tmp_path):
        def build():
            return defense_matrix_campaign(
                env=SMALL,
                defenses=["none", "way-partition"],
                trials_per_defense=1,
                budget_ms=10.0,
                stages=("construct",),
            )

        campaign = build()
        result = run_campaign(
            campaign,
            ExecPolicy(jobs=1),
            journal=CampaignJournal(tmp_path, campaign),
        )
        assert result.ok
        values = list(result.values())
        assert all(isinstance(v, DefenseTrialSample) for v in values)
        assert [v.defense for v in values] == ["none", "way-partition"]
        # The codec round-trips through the journal: resuming the same
        # campaign replays the journaled samples bit-identically.
        rerun = build()
        again = run_campaign(
            rerun, ExecPolicy(jobs=1), journal=CampaignJournal(tmp_path, rerun)
        )
        assert list(again.values()) == values

    def test_registered_with_cli_and_fleet(self):
        from repro.fleet.service import SUBMITTABLE

        assert "defense-matrix" in CLI_CAMPAIGNS
        assert "defense-matrix" in SUBMITTABLE


class TestSummary:
    def test_aggregates_per_defense(self):
        samples = [
            DefenseTrialSample("none", construct_rate=1.0,
                               target_covered=True, monitor_accuracy=0.9,
                               target_identified=True,
                               recovered_fraction=0.4, bit_error_rate=0.1),
            DefenseTrialSample("none", construct_rate=0.5,
                               target_covered=True, monitor_accuracy=0.7,
                               recovered_fraction=0.2, bit_error_rate=0.3),
            DefenseTrialSample("ceaser", error="monitor: no eviction set"),
        ]
        rows = summarize_defense_samples(samples)
        assert [r["defense"] for r in rows] == ["none", "ceaser"]
        none_row = rows[0]
        assert none_row["trials"] == 2
        assert none_row["construct_rate"] == pytest.approx(0.75)
        assert none_row["monitor_accuracy"] == pytest.approx(0.8)
        assert none_row["identified"] == pytest.approx(0.5)
        assert none_row["errors"] == 0
        assert rows[1]["errors"] == 1

    def test_stage_order_is_pipeline_order(self):
        assert STAGES == ("construct", "monitor", "recover")
