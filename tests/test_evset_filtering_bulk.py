"""Tests for L2-driven candidate filtering and bulk construction."""

from __future__ import annotations

import pytest

from repro.config import no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    build_l2_eviction_set,
    bulk_construct_page_offset,
    bulk_construct_whole_sys,
    filter_candidates,
    shift_candidates,
)
from repro.errors import EvictionSetError
from repro.memsys.machine import Machine


@pytest.fixture(scope="module")
def setup():
    machine = Machine(skylake_sp_small(), noise=no_noise(), seed=41)
    ctx = AttackerContext(machine, seed=1)
    ctx.calibrate()
    cand = build_candidate_set(ctx, page_offset=0x180)
    return ctx, cand


class TestFiltering:
    def test_filter_keeps_only_l2_congruent(self, setup):
        ctx, cand = setup
        target = cand.vas[0]
        l2e = build_l2_eviction_set(ctx, target)
        filtered = filter_candidates(ctx, l2e, cand.vas[1:400])
        target_l2 = ctx.true_l2_set_of(target)
        assert filtered
        assert all(ctx.true_l2_set_of(v) == target_l2 for v in filtered)

    def test_filter_reduction_ratio(self, setup):
        """Filtered size ~= N / U_L2 (Section 5.1's whole point)."""
        ctx, cand = setup
        target = cand.vas[0]
        l2e = build_l2_eviction_set(ctx, target)
        sample = cand.vas[1:801]
        filtered = filter_candidates(ctx, l2e, sample)
        expected = len(sample) / ctx.machine.cfg.u_l2
        assert len(filtered) == pytest.approx(expected, rel=0.35)

    def test_filter_keeps_congruent_candidates(self, setup):
        """No LLC-congruent candidate may be lost by filtering."""
        ctx, cand = setup
        target = cand.vas[0]
        tset = ctx.true_set_of(target)
        l2e = build_l2_eviction_set(ctx, target)
        sample = cand.vas[1:801]
        filtered = set(filter_candidates(ctx, l2e, sample))
        congruent = [v for v in sample if ctx.true_set_of(v) == tset]
        lost = [v for v in congruent if v not in filtered]
        assert len(lost) <= max(1, len(congruent) // 10)

    def test_shift_candidates(self):
        shifted = shift_candidates([0x1000, 0x2040], 0x80)
        assert shifted == [0x1080, 0x20C0]

    def test_shift_rejects_page_crossing(self):
        with pytest.raises(EvictionSetError):
            shift_candidates([0x1FC0], 0x80)

    def test_shift_preserves_l2_congruence(self, setup):
        ctx, cand = setup
        target = cand.vas[0]
        l2e = build_l2_eviction_set(ctx, target)
        filtered = filter_candidates(ctx, l2e, cand.vas[1:300])
        shifted = shift_candidates(filtered, 0x40)
        l2_sets = {ctx.true_l2_set_of(v) for v in shifted}
        assert len(l2_sets) == 1


@pytest.mark.slow
class TestBulkPageOffset:
    @pytest.fixture(scope="class")
    def bulk(self):
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=42)
        ctx = AttackerContext(machine, seed=2)
        ctx.calibrate()
        result = bulk_construct_page_offset(
            ctx, "bins", 0x240, EvsetConfig(budget_ms=100.0)
        )
        return ctx, result

    def test_covers_nearly_all_sets(self, bulk):
        ctx, result = bulk
        expected = ctx.machine.cfg.u_llc
        valid, covered = result.coverage(ctx)
        assert covered >= expected - 2

    def test_all_evsets_minimal(self, bulk):
        ctx, result = bulk
        w = ctx.machine.cfg.sf.ways
        assert all(len(e.vas) == w for e in result.evsets)

    def test_no_duplicate_sets(self, bulk):
        """The Section 2.2.3 dedup: one eviction set per cache set."""
        ctx, result = bulk
        valid_sets = [
            next(iter({ctx.true_set_of(v) for v in e.vas}))
            for e in result.evsets
            if len({ctx.true_set_of(v) for v in e.vas}) == 1
        ]
        dupes = len(valid_sets) - len(set(valid_sets))
        assert dupes <= 1

    def test_success_rate_high_quiet(self, bulk):
        ctx, result = bulk
        assert result.success_rate(ctx) > 0.9

    def test_accounting(self, bulk):
        _, result = bulk
        assert result.elapsed_cycles > 0
        assert result.filtering_cycles > 0
        assert result.n_targets_attempted >= len(result.evsets)


@pytest.mark.slow
class TestBulkWholeSys:
    def test_two_offsets_reuse_filtering(self):
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=43)
        ctx = AttackerContext(machine, seed=3)
        ctx.calibrate()
        result = bulk_construct_whole_sys(
            ctx, "bins", EvsetConfig(budget_ms=100.0), offsets=[0x0, 0x40]
        )
        expected = 2 * ctx.machine.cfg.u_llc
        _, covered = result.coverage(ctx)
        assert covered >= expected - 4
        # Filtering ran once (for the base offset), not once per offset.
        assert result.filtering_cycles < result.elapsed_cycles / 2

    def test_deadline_cuts_run_short(self):
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=44)
        ctx = AttackerContext(machine, seed=4)
        ctx.calibrate()
        deadline = machine.now + int(0.004 * machine.clock_hz)
        result = bulk_construct_whole_sys(
            ctx, "bins", EvsetConfig(budget_ms=100.0),
            offsets=[0x0, 0x40, 0x80], deadline=deadline,
        )
        assert result.timed_out
        assert len(result.evsets) < 3 * ctx.machine.cfg.u_llc
