"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evset_defaults(self):
        args = build_parser().parse_args(["evset"])
        assert args.algo == "bins"
        assert args.env == "cloud"
        assert args.machine == "skylake-small"

    def test_page_offset_accepts_hex(self):
        args = build_parser().parse_args(["evset", "--page-offset", "0x3c0"])
        assert args.page_offset == 0x3C0

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evset", "--algo", "magic"])

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evset", "--machine", "epyc"])


class TestCommands:
    def test_machines_lists(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "skylake-small" in out
        assert "U_LLC=896" in out  # the full-scale preset's paper numbers

    def test_noise_lists(self, capsys):
        assert main(["noise"]) == 0
        out = capsys.readouterr().out
        assert "11.5" in out  # the paper's measured Cloud Run rate

    def test_evset_runs_quiet(self, capsys):
        rc = main([
            "evset", "--env", "none", "--trials", "1", "--seed", "3",
            "--budget-ms", "500",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "valid: 1/1" in out

    def test_monitor_runs(self, capsys):
        rc = main([
            "monitor", "--env", "none", "--duration-us", "50", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "monitored one SF set" in out
