"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evset_defaults(self):
        args = build_parser().parse_args(["evset"])
        assert args.algo == "bins"
        assert args.env == "cloud"
        assert args.machine == "skylake-small"

    def test_page_offset_accepts_hex(self):
        args = build_parser().parse_args(["evset", "--page-offset", "0x3c0"])
        assert args.page_offset == 0x3C0

    def test_rejects_unknown_algo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evset", "--algo", "magic"])

    def test_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evset", "--machine", "epyc"])

    def test_evset_jobs_flag(self):
        args = build_parser().parse_args(["evset", "--jobs", "4"])
        assert args.jobs == 4

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.name == "construction"
        assert args.campaign_env == "cloud"
        assert args.jobs == 1
        assert not args.no_journal

    def test_campaign_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--name", "magic"])

    def test_campaign_rejects_unknown_env(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--campaign-env", "mars"])


class TestCommands:
    def test_machines_lists(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "skylake-small" in out
        assert "U_LLC=896" in out  # the full-scale preset's paper numbers

    def test_noise_lists(self, capsys):
        assert main(["noise"]) == 0
        out = capsys.readouterr().out
        assert "11.5" in out  # the paper's measured Cloud Run rate

    def test_evset_runs_quiet(self, capsys):
        rc = main([
            "evset", "--env", "none", "--trials", "1", "--seed", "3",
            "--budget-ms", "500",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "valid: 1/1" in out

    @pytest.mark.slow
    def test_monitor_runs(self, capsys):
        rc = main([
            "monitor", "--env", "none", "--duration-us", "50", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "monitored one SF set" in out

    def test_evset_parallel_matches_serial(self, capsys):
        argv = [
            "evset", "--env", "none", "--trials", "2", "--seed", "11",
            "--budget-ms", "500",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        assert "valid: 2/2" in serial_out

    def test_campaign_runs_and_resumes_from_journal(self, capsys, tmp_path):
        argv = [
            "campaign", "--name", "construction", "--campaign-env", "local",
            "--algo", "gtop", "--trials", "2", "--budget-ms", "500",
            "--journal-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "campaign: construction-local-gtop" in first
        assert "fingerprint:" in first
        assert "2/2 trials" in first

        # Rerun: every trial must come from the journal, summary unchanged.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 cached" in second
        assert (
            second.split("Construction campaign summary")[1]
            == first.split("Construction campaign summary")[1]
        )

    def test_campaign_resumes_after_partial_crash(self, capsys, tmp_path):
        """A journal truncated mid-append must resume, not crash or rerun all."""
        argv = [
            "campaign", "--name", "construction", "--campaign-env", "local",
            "--algo", "gtop", "--trials", "3", "--budget-ms", "500",
            "--journal-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        journal = next(tmp_path.glob("*.jsonl"))
        lines = journal.read_text().splitlines()
        # Simulate a kill mid-append: drop one full record, truncate another.
        journal.write_text("\n".join(lines[:-2]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 cached" in out  # header + 1 intact trial survive

    def test_campaign_ignores_tampered_journal_header(self, capsys, tmp_path):
        argv = [
            "campaign", "--name", "construction", "--campaign-env", "local",
            "--algo", "gtop", "--trials", "2", "--budget-ms", "500",
            "--journal-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        journal = next(tmp_path.glob("*.jsonl"))
        lines = journal.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 64
        journal.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cached" not in out  # mismatched journal is ignored wholesale


class TestFuzzCommand:
    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.seeds == 50
        assert args.machine == "tiny"
        assert args.noise == "mix"
        assert args.partition == "mix"

    def test_fuzz_rejects_unknown_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--machine", "epyc"])

    def test_fuzz_rejects_unknown_noise(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--noise", "hurricane"])

    def test_fuzz_rejects_unknown_partition_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--partition", "sometimes"])

    @pytest.mark.slow
    def test_fuzz_smoke_run(self, capsys, tmp_path):
        rc = main([
            "fuzz", "--seeds", "4", "--noise", "none", "--partition", "never",
            "--artifact-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 tier divergences, 0 invariant violations" in out
        assert not list(tmp_path.glob("*.json"))  # no artifacts when clean

    def test_fuzz_replay_round_trip(self, capsys, tmp_path):
        from repro.check import FuzzConfig, generate_trace, write_artifact

        cfg = FuzzConfig(machine="tiny", noise="none", partition="never", n_ops=6)
        path = write_artifact(
            tmp_path / "trace.json", generate_trace(cfg, 2), {}
        )
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_fuzz_replay_rejects_non_artifact(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"version": 99}))
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "cannot replay" in capsys.readouterr().out

    def test_fuzz_replay_rejects_missing_file(self, capsys, tmp_path):
        assert main(["fuzz", "--replay", str(tmp_path / "nope.json")]) == 2
        assert "cannot replay" in capsys.readouterr().out
