"""Tests for repro.exec.spec: trial specs, seed streams, fingerprints."""

from __future__ import annotations

import pickle

import pytest

from repro.exec import (
    Campaign,
    ConstructionSample,
    TrialSpec,
    arithmetic_seeds,
    dataclass_codec,
    seed_stream,
)
from repro.exec.spec import stable_repr


def toy_trial(cfg, seed):
    return (cfg["k"], seed)


class TestSeedStreams:
    def test_arithmetic_matches_historical_convention(self):
        assert arithmetic_seeds(1000, 4) == (1000, 1001, 1002, 1003)
        assert arithmetic_seeds(5, 3, stride=10) == (5, 15, 25)

    def test_hashed_stream_is_deterministic(self):
        assert seed_stream(42, 6) == seed_stream(42, 6)

    def test_hashed_stream_prefix_stable(self):
        # Growing a campaign must not perturb existing trials' seeds.
        assert seed_stream(42, 10)[:6] == seed_stream(42, 6)

    def test_hashed_stream_unique_and_tagged(self):
        seeds = seed_stream(0, 64)
        assert len(set(seeds)) == 64
        assert seed_stream(0, 4) != seed_stream(1, 4)
        assert seed_stream(0, 4) != seed_stream(0, 4, tag="other")

    def test_hashed_seeds_fit_in_63_bits(self):
        assert all(0 <= s < 2**63 for s in seed_stream(7, 32))


class TestCampaign:
    def test_build_produces_indexed_trials(self):
        campaign = Campaign.build("t", toy_trial, {"k": 1}, trials=3, base_seed=9)
        specs = campaign.trials()
        assert [s.index for s in specs] == [0, 1, 2]
        assert [s.seed for s in specs] == list(campaign.seeds)
        assert all(s.fn is toy_trial for s in specs)

    def test_build_arithmetic_mode(self):
        campaign = Campaign.build(
            "t", toy_trial, {}, trials=3, base_seed=100, seed_mode="arithmetic"
        )
        assert campaign.seeds == (100, 101, 102)

    def test_build_rejects_unknown_seed_mode(self):
        with pytest.raises(ValueError):
            Campaign.build("t", toy_trial, {}, trials=2, seed_mode="magic")

    def test_mismatched_configs_and_seeds_rejected(self):
        with pytest.raises(ValueError):
            Campaign(name="t", fn=toy_trial, configs=({},), seeds=(1, 2))

    def test_trial_spec_is_picklable(self):
        campaign = Campaign.build("t", toy_trial, {"k": 1}, trials=1)
        spec = campaign.trials()[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.fn(clone.config, clone.seed) == toy_trial(
            spec.config, spec.seed
        )


class TestFingerprint:
    def test_stable_across_calls(self):
        c = Campaign.build("t", toy_trial, {"k": 1}, trials=4, base_seed=3)
        assert c.fingerprint() == c.fingerprint()

    def test_sensitive_to_inputs(self):
        base = Campaign.build("t", toy_trial, {"k": 1}, trials=4, base_seed=3)
        others = [
            Campaign.build("u", toy_trial, {"k": 1}, trials=4, base_seed=3),
            Campaign.build("t", toy_trial, {"k": 2}, trials=4, base_seed=3),
            Campaign.build("t", toy_trial, {"k": 1}, trials=5, base_seed=3),
            Campaign.build("t", toy_trial, {"k": 1}, trials=4, base_seed=4),
        ]
        prints = {c.fingerprint() for c in others}
        assert base.fingerprint() not in prints
        assert len(prints) == len(others)

    def test_sensitive_to_code_version(self):
        c = Campaign.build("t", toy_trial, {"k": 1}, trials=2)
        assert c.fingerprint("v1") != c.fingerprint("v2")


class TestStableRepr:
    def test_dict_key_order_irrelevant(self):
        assert stable_repr({"a": 1, "b": 2}) == stable_repr({"b": 2, "a": 1})

    def test_dataclass_renders_fields(self):
        sample = ConstructionSample(True, True, 1.5, 10, 2, 300)
        text = stable_repr(sample)
        assert "ConstructionSample" in text
        assert "elapsed_ms=1.5" in text

    def test_callables_render_by_qualname(self):
        assert "toy_trial" in stable_repr(toy_trial)


class TestDataclassCodec:
    def test_round_trip(self):
        codec = dataclass_codec(ConstructionSample)
        sample = ConstructionSample(True, False, 3.25, 7, 1, 42)
        encoded = codec.encode(sample)
        assert isinstance(encoded, dict)
        assert codec.decode(encoded) == sample

    def test_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            dataclass_codec(int)
