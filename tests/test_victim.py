"""Tests for the ECDSA victim model and its leak schedule."""

from __future__ import annotations

import pytest

from repro._util import make_rng
from repro.config import no_noise, skylake_sp_small
from repro.crypto.ecdsa import recover_nonce, verify
from repro.errors import ConfigurationError
from repro.memsys.address import AddressSpace
from repro.memsys.machine import Machine
from repro.victim import (
    EcdsaVictim,
    VictimConfig,
    VictimLayout,
    expected_target_frequency,
    run_victim_alone,
)


@pytest.fixture
def machine():
    return Machine(skylake_sp_small(), noise=no_noise(), seed=13)


@pytest.fixture
def victim(machine):
    return EcdsaVictim(machine, core=2, cfg=VictimConfig(), seed=4)


class TestLayout:
    def test_monitored_offset_unique(self, machine):
        layout = VictimLayout(machine.new_address_space(), make_rng(0))
        mon_off = layout.monitored_va % 4096
        others = [va % 4096 for va in layout.ladder_vas + layout.data_vas]
        assert mon_off not in others

    def test_target_page_offset_line_aligned(self, machine):
        layout = VictimLayout(machine.new_address_space(), make_rng(1))
        assert layout.target_page_offset % 64 == 0

    def test_physical_views_consistent(self, machine):
        layout = VictimLayout(machine.new_address_space(), make_rng(2))
        assert layout.monitored_line == layout.aspace.translate_line(
            layout.monitored_va
        )
        assert len(layout.ladder_lines_physical()) == len(layout.ladder_vas)

    def test_rejects_too_few_pages(self, machine):
        with pytest.raises(ConfigurationError):
            VictimLayout(machine.new_address_space(), make_rng(3), code_pages=1)


class TestVictimConfig:
    def test_access_period_half_iteration(self):
        cfg = VictimConfig()
        assert cfg.access_period_cycles == cfg.iter_cycles / 2

    def test_expected_frequency_matches_paper(self):
        """2 GHz / 4,850 cycles ~= 0.41 MHz (Section 6.2)."""
        f = expected_target_frequency(VictimConfig(), 2e9)
        assert f == pytest.approx(0.4124e6, rel=0.01)

    def test_rejects_bad_duty_cycle(self):
        with pytest.raises(ConfigurationError):
            VictimConfig(duty_cycle=0.0)

    def test_rejects_excessive_jitter(self):
        with pytest.raises(ConfigurationError):
            VictimConfig(iter_cycles=100, iter_jitter=60)


class TestSigningSchedule:
    def test_ground_truth_shape(self, machine, victim):
        truth = victim.schedule_signing(machine.now + 100)
        assert truth.n_bits == len(truth.boundaries) - 1
        assert truth.boundaries[0] == truth.start
        assert truth.boundaries[-1] == truth.end
        assert truth.n_bits >= victim.curve.nonce_bits - 8

    def test_bits_match_nonce(self, machine, victim):
        truth = victim.schedule_signing(machine.now + 100)
        k = truth.nonce
        expected = [
            (k >> i) & 1 for i in range(k.bit_length() - 2, -1, -1)
        ]
        assert truth.bits == expected

    def test_iteration_durations_in_range(self, machine, victim):
        truth = victim.schedule_signing(machine.now + 100)
        cfg = victim.cfg
        for a, b in zip(truth.boundaries, truth.boundaries[1:]):
            assert cfg.iter_cycles - cfg.iter_jitter <= b - a
            assert b - a <= cfg.iter_cycles + cfg.iter_jitter

    def test_monitored_line_access_pattern(self, machine, victim):
        """Boundary fetch every iteration; midpoint fetch for 0 bits."""
        mon = victim.layout.monitored_line
        hits = []
        hier = machine.hierarchy
        orig = hier.access

        def spy(core, line, now, write=False, reconcile=True):
            if core == victim.core and line == mon:
                hits.append(now)
            return orig(core, line, now, write=write, reconcile=reconcile)

        hier.access = spy
        truth = victim.schedule_signing(machine.now + 100)
        machine.run_until(truth.end + 1)
        zeros = truth.bits.count(0)
        # One fetch per boundary (incl. the loop-exit check) + one per 0 bit.
        assert len(hits) == truth.n_bits + 1 + zeros

    def test_real_signing_produces_valid_signature(self, machine, victim):
        truth = victim.schedule_signing(machine.now + 100, real=True)
        assert truth.signature is not None
        assert verify(
            victim.curve, victim.keypair.public_point, truth.message,
            truth.signature,
        )
        # The recorded nonce is the real one.
        assert (
            recover_nonce(
                victim.curve, truth.message, truth.signature, victim.keypair.d
            )
            == truth.nonce
        )

    def test_fast_mode_skips_signature(self, machine, victim):
        truth = victim.schedule_signing(machine.now + 100, real=False)
        assert truth.signature is None
        assert 1 <= truth.nonce < victim.curve.n


class TestSessions:
    def test_session_duty_cycle(self, machine, victim):
        start = machine.now + 100
        end = victim.schedule_session(start)
        truth = victim.truths[-1]
        signing = truth.end - truth.start
        assert signing / (end - start) == pytest.approx(
            victim.cfg.duty_cycle, rel=0.2
        )

    def test_run_continuously_self_schedules(self, machine, victim):
        victim.run_continuously(machine.now + 10)
        machine.advance(30_000_000)
        assert len(victim.truths) >= 2

    def test_stop_halts_scheduling(self, machine, victim):
        victim.run_continuously(machine.now + 10)
        machine.advance(15_000_000)
        victim.stop()
        count = len(victim.truths)
        machine.advance(50_000_000)
        assert len(victim.truths) <= count + 1  # at most one in-flight session

    def test_run_victim_alone(self, machine, victim):
        truths = run_victim_alone(machine, victim, n_signings=2)
        assert len(truths) == 2
        assert truths[1].start > truths[0].end


class TestDeterminism:
    def test_same_seed_same_nonces(self):
        def nonces(seed):
            m = Machine(skylake_sp_small(), noise=no_noise(), seed=1)
            v = EcdsaVictim(m, core=2, seed=seed)
            return [v.schedule_signing(1000 + i * 10**7).nonce for i in range(3)]

        assert nonces(9) == nonces(9)
        assert nonces(9) != nonces(10)
