"""Tests for the way-partitioning defense (and that it stops the attack)."""

from __future__ import annotations

import pytest

from repro._util import make_rng
from repro.config import no_noise, skylake_sp_small, tiny_machine
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set
from repro.defenses import WayPartitionedCache, apply_way_partitioning
from repro.defenses.partition import OTHER_DOMAIN
from repro.errors import ConfigurationError
from repro.memsys.machine import Machine


def make_partitioned_cache(parts=None):
    parts = parts or {"a": 4, "b": 4, OTHER_DOMAIN: 4}
    domains = {0: "a", 1: "a", 2: "b", 3: "b"}
    return WayPartitionedCache(
        "SF", 64, "lru", make_rng(0), parts,
        lambda owner: domains.get(owner, OTHER_DOMAIN),
    )


class TestWayPartitionedCache:
    def test_total_ways(self):
        cache = make_partitioned_cache()
        assert cache.ways == 12

    def test_requires_other_domain(self):
        with pytest.raises(ConfigurationError):
            make_partitioned_cache({"a": 6, "b": 6})

    def test_insert_lookup_roundtrip(self):
        cache = make_partitioned_cache()
        cache.insert(3, 100, owner=0)
        assert cache.lookup(3, 100)
        assert cache.owner_of(3, 100) == 0

    def test_cross_domain_no_eviction(self):
        """Domain b's insertions never evict domain a's lines."""
        cache = make_partitioned_cache()
        for tag in range(4):
            cache.insert(0, tag, owner=0)  # fill domain a's 4 ways
        for tag in range(100, 130):
            cache.insert(0, tag, owner=2)  # hammer domain b
        assert all(cache.contains(0, t) for t in range(4))

    def test_within_domain_eviction(self):
        cache = make_partitioned_cache()
        for tag in range(6):
            evicted = cache.insert(0, tag, owner=0)
        assert not cache.contains(0, 0)
        assert cache.contains(0, 5)

    def test_move_between_domains(self):
        cache = make_partitioned_cache()
        cache.insert(0, 42, owner=0)
        cache.insert(0, 42, owner=2)  # ownership transfer
        assert cache.owner_of(0, 42) == 2
        assert cache.occupancy(0) == 1

    def test_remove(self):
        cache = make_partitioned_cache()
        cache.insert(1, 7, owner=0)
        assert cache.remove(1, 7)
        assert not cache.contains(1, 7)

    def test_occupancy_aggregates(self):
        cache = make_partitioned_cache()
        cache.insert(2, 1, owner=0)
        cache.insert(2, 2, owner=2)
        cache.insert(2, 3, owner=-1)  # noise -> other
        assert cache.occupancy(2) == 3


class TestApplyPartitioning:
    def test_must_apply_before_traffic(self):
        machine = Machine(tiny_machine(), noise=no_noise(), seed=1)
        space = machine.new_address_space()
        machine.access(0, space.translate_line(space.alloc_page()))
        with pytest.raises(ConfigurationError):
            apply_way_partitioning(
                machine, {0: "att"}, {"att": 3, OTHER_DOMAIN: 3}
            )

    def test_partitioned_hierarchy_functional(self):
        machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=2)
        apply_way_partitioning(
            machine,
            {0: "att", 1: "att", 2: "vic"},
            {"att": 2, "vic": 2, OTHER_DOMAIN: 2},
        )
        space = machine.new_address_space()
        line = space.translate_line(space.alloc_page())
        machine.access(0, line)
        assert machine.hierarchy.in_sf(line)
        machine.access(2, line)  # cross-core read -> shared
        assert machine.hierarchy.in_llc(line)


@pytest.mark.slow
class TestDefenseStopsAttack:
    # Failed from the seed commit until ISSUE 5: the llc-mode traversal
    # makes lines *shared*, so they land in the OTHER domain's ways while
    # the tester sized sets for the static config associativity — BinS
    # returned supersets whose SF extension failed for every target.
    # Fixed by the partition-aware `effective_ways` probe (EvictionTester)
    # plus direct-SF pruning in construct_sf_evset.
    def test_victim_cannot_evict_attacker_lines(self):
        """The core guarantee: Prime+Probe goes blind under partitioning."""
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=3)
        apply_way_partitioning(
            machine,
            {0: "att", 1: "att", 2: "vic", 3: "vic"},
            {"att": 12, "vic": 4, OTHER_DOMAIN: 4},
        )
        ctx = AttackerContext(machine, seed=1)
        ctx.calibrate()
        bulk = bulk_construct_page_offset(
            ctx, "bins", 0x240, EvsetConfig(budget_ms=100)
        )
        # The attacker can still build eviction sets inside its own ways.
        assert bulk.evsets
        evset = bulk.evsets[0]
        # A victim hammering the same set produces zero detections.
        target_set = ctx.true_set_of(evset.target_va)
        offset = evset.target_va % 4096
        space = machine.new_address_space()
        while True:
            page = space.alloc_page()
            line = space.translate_line(page + offset)
            if machine.hierarchy.shared_set_index(line) == target_set:
                break
        hier = machine.hierarchy
        for i in range(40):
            machine.schedule(
                machine.now + 4_000 + i * 10_000,
                lambda t, l=line: hier.access(2, l, t, write=True),
            )
        trace = monitor_set(ParallelProbing(ctx, evset), 46 * 10_000)
        assert trace.access_count() == 0
