"""Tests for the defense layer: partitioning, randomized indexes, soft
isolation, and the registry that applies them (and that they stop the
attack)."""

from __future__ import annotations

import pytest

from repro._util import make_rng
from repro.config import no_noise, skylake_sp_small, tiny_machine
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set
from repro.defenses import (
    DEFENSE_NAMES,
    CeaserCache,
    SkewedCache,
    SoftCopyCache,
    WayPartitionedCache,
    apply_defense,
    apply_soft_copy_partitioning,
    apply_way_partitioning,
    default_defense_spec,
)
from repro.defenses.partition import OTHER_DOMAIN
from repro.errors import ConfigurationError
from repro.memsys.machine import Machine
from repro.memsys.randomize import KeyedSetIndex


def make_partitioned_cache(parts=None):
    parts = parts or {"a": 4, "b": 4, OTHER_DOMAIN: 4}
    domains = {0: "a", 1: "a", 2: "b", 3: "b"}
    return WayPartitionedCache(
        "SF", 64, "lru", make_rng(0), parts,
        lambda owner: domains.get(owner, OTHER_DOMAIN),
    )


class TestWayPartitionedCache:
    def test_total_ways(self):
        cache = make_partitioned_cache()
        assert cache.ways == 12

    def test_requires_other_domain(self):
        with pytest.raises(ConfigurationError):
            make_partitioned_cache({"a": 6, "b": 6})

    def test_insert_lookup_roundtrip(self):
        cache = make_partitioned_cache()
        cache.insert(3, 100, owner=0)
        assert cache.lookup(3, 100)
        assert cache.owner_of(3, 100) == 0

    def test_cross_domain_no_eviction(self):
        """Domain b's insertions never evict domain a's lines."""
        cache = make_partitioned_cache()
        for tag in range(4):
            cache.insert(0, tag, owner=0)  # fill domain a's 4 ways
        for tag in range(100, 130):
            cache.insert(0, tag, owner=2)  # hammer domain b
        assert all(cache.contains(0, t) for t in range(4))

    def test_within_domain_eviction(self):
        cache = make_partitioned_cache()
        for tag in range(6):
            evicted = cache.insert(0, tag, owner=0)
        assert not cache.contains(0, 0)
        assert cache.contains(0, 5)

    def test_move_between_domains(self):
        cache = make_partitioned_cache()
        cache.insert(0, 42, owner=0)
        cache.insert(0, 42, owner=2)  # ownership transfer
        assert cache.owner_of(0, 42) == 2
        assert cache.occupancy(0) == 1

    def test_remove(self):
        cache = make_partitioned_cache()
        cache.insert(1, 7, owner=0)
        assert cache.remove(1, 7)
        assert not cache.contains(1, 7)

    def test_occupancy_aggregates(self):
        cache = make_partitioned_cache()
        cache.insert(2, 1, owner=0)
        cache.insert(2, 2, owner=2)
        cache.insert(2, 3, owner=-1)  # noise -> other
        assert cache.occupancy(2) == 3


class TestApplyPartitioning:
    def test_must_apply_before_traffic(self):
        machine = Machine(tiny_machine(), noise=no_noise(), seed=1)
        space = machine.new_address_space()
        machine.access(0, space.translate_line(space.alloc_page()))
        with pytest.raises(ConfigurationError):
            apply_way_partitioning(
                machine, {0: "att"}, {"att": 3, OTHER_DOMAIN: 3}
            )

    def test_partitioned_hierarchy_functional(self):
        machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=2)
        apply_way_partitioning(
            machine,
            {0: "att", 1: "att", 2: "vic"},
            {"att": 2, "vic": 2, OTHER_DOMAIN: 2},
        )
        space = machine.new_address_space()
        line = space.translate_line(space.alloc_page())
        machine.access(0, line)
        assert machine.hierarchy.in_sf(line)
        machine.access(2, line)  # cross-core read -> shared
        assert machine.hierarchy.in_llc(line)


class TestKeyedSetIndex:
    def test_rejects_empty_domain(self):
        with pytest.raises(ConfigurationError):
            KeyedSetIndex(0, 1)

    def test_index_in_range(self):
        index = KeyedSetIndex(10, 3)
        for s in range(10):
            for tag in (0, 7, 123456789):
                assert 0 <= index.index_of(s, tag) < 10

    def test_tag_tweak_changes_mapping(self):
        index = KeyedSetIndex(64, 3)
        maps = {
            tag: tuple(index.index_of(s, tag) for s in range(64))
            for tag in (1, 2)
        }
        assert maps[1] != maps[2]

    def test_rekey_advances_epoch(self):
        index = KeyedSetIndex(8, 0)
        assert index.epoch == 0
        assert index.rekey() == 1
        assert index.epoch == 1


class TestCeaserCache:
    def _cache(self, **kw):
        return CeaserCache("SF", 16, 4, "lru", make_rng(1), seed=5, **kw)

    def test_insert_lookup_roundtrip(self):
        cache = self._cache()
        cache.insert(3, 100, owner=2)
        assert cache.lookup(3, 100)
        assert cache.contains(0, 100)  # located by address, not set_idx
        assert cache.owner_of(3, 100) == 2

    def test_external_views_track_inserted_set(self):
        cache = self._cache()
        cache.insert(7, 42)
        assert cache.occupancy(7) == 1
        assert cache.tags_in_set(7) == [42]
        assert cache.peek_victim(7) is None

    def test_remove(self):
        cache = self._cache()
        cache.insert(1, 9)
        assert cache.remove(1, 9)
        assert not cache.contains(1, 9)
        assert cache.occupancy(1) == 0

    def test_flush_all_clears_residency(self):
        cache = self._cache()
        for tag in range(10):
            cache.insert(tag % 16, tag)
        cache.flush_all(now=100)
        assert not cache.resident_tags()
        assert cache.noise_clock(3) == 100

    def test_auto_rekey_by_insert_count(self):
        cache = self._cache(epoch_accesses=8)
        for tag in range(20):
            cache.insert(tag % 16, tag)
        assert cache.epoch >= 2

    def test_validate_catches_stale_residency(self):
        cache = self._cache()
        cache.insert(0, 5)
        cache._ext[77] = 0  # corrupt the wrapper map
        with pytest.raises(ConfigurationError):
            cache.validate()

    def test_snapshot_extra_roundtrip(self):
        cache = self._cache()
        for tag in range(6):
            cache.insert(tag, tag)
        extra = cache.snapshot_extra()
        cache.rekey()
        cache.insert(0, 50)
        cache.restore_extra(extra)
        assert cache.epoch == 0
        assert set(extra["ext"]) == set(cache.resident_tags())


class TestSkewedCache:
    def _cache(self, ways=4, n_skews=2):
        return SkewedCache(
            "LLC", 16, ways, "lru", make_rng(2), seed=3, n_skews=n_skews
        )

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ConfigurationError):
            self._cache(n_skews=1)
        with pytest.raises(ConfigurationError):
            self._cache(ways=1)

    def test_uneven_ways_split_across_skews(self):
        cache = self._cache(ways=5)
        assert [p.ways for p in cache.parts().values()] == [3, 2]

    def test_insert_hit_stays_in_holding_skew(self):
        cache = self._cache()
        cache.insert(0, 10, owner=1)
        inner, idx = cache._locate(10)
        cache.insert(0, 10, owner=2)  # hit: same skew, owner update
        assert cache._locate(10) == (inner, idx)
        assert cache.owner_of(0, 10) == 2

    def test_rekey_rotates_select_key(self):
        cache = self._cache()
        before = cache._select_key
        cache.rekey()
        assert cache.epoch == 1
        assert cache._select_key != before


class TestSoftCopyApply:
    def test_quota_sum_bounded_by_physical_ways(self):
        machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=4)
        with pytest.raises(ConfigurationError):
            apply_soft_copy_partitioning(
                machine, {0: "att"}, {"att": 5, OTHER_DOMAIN: 5}
            )

    def test_soft_copy_hierarchy_functional(self):
        machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=5)
        apply_soft_copy_partitioning(
            machine,
            {0: "att", 1: "att", 2: "vic"},
            {"att": 2, "vic": 2, OTHER_DOMAIN: 2},
            llc_quotas={"att": 1, "vic": 1, OTHER_DOMAIN: 2},
        )
        assert isinstance(machine.hierarchy.sf, SoftCopyCache)
        space = machine.new_address_space()
        line = space.translate_line(space.alloc_page())
        machine.access(0, line)
        assert machine.hierarchy.in_sf(line)


class TestDefenseRegistry:
    def test_default_specs_cover_every_name(self):
        cfg = skylake_sp_small()
        for kind in DEFENSE_NAMES:
            spec = default_defense_spec(cfg, kind, seed=3)
            assert spec["kind"] == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            default_defense_spec(skylake_sp_small(), "ascend")
        machine = Machine(tiny_machine(), noise=no_noise(), seed=0)
        with pytest.raises(ConfigurationError):
            apply_defense(machine, {"kind": "ascend"})

    @pytest.mark.parametrize("kind", ["ceaser", "skew"])
    def test_apply_randomized_swaps_both_shared_caches(self, kind):
        machine = Machine(tiny_machine(cores=3), noise=no_noise(), seed=6)
        apply_defense(
            machine, default_defense_spec(machine.cfg, kind, seed=9)
        )
        cls = CeaserCache if kind == "ceaser" else SkewedCache
        hier = machine.hierarchy
        assert isinstance(hier.sf, cls) and isinstance(hier.llc, cls)
        assert hier.sf.ways == machine.cfg.sf.ways
        assert hier.llc.ways == machine.cfg.llc.ways
        space = machine.new_address_space()
        line = space.translate_line(space.alloc_page())
        machine.access(0, line)
        assert hier.in_sf(line)
        machine.access(2, line)  # cross-core read -> shared
        assert hier.in_llc(line)

    def test_apply_none_is_a_no_op(self):
        machine = Machine(tiny_machine(), noise=no_noise(), seed=7)
        before = type(machine.hierarchy.sf)
        apply_defense(machine, {"kind": "none"})
        apply_defense(machine, None)
        assert type(machine.hierarchy.sf) is before

    def test_apply_requires_pristine_machine(self):
        machine = Machine(tiny_machine(), noise=no_noise(), seed=8)
        space = machine.new_address_space()
        machine.access(0, space.translate_line(space.alloc_page()))
        with pytest.raises(ConfigurationError):
            apply_defense(
                machine, default_defense_spec(machine.cfg, "ceaser")
            )


@pytest.mark.slow
class TestDefenseStopsAttack:
    # Failed from the seed commit until ISSUE 5: the llc-mode traversal
    # makes lines *shared*, so they land in the OTHER domain's ways while
    # the tester sized sets for the static config associativity — BinS
    # returned supersets whose SF extension failed for every target.
    # Fixed by the partition-aware `effective_ways` probe (EvictionTester)
    # plus direct-SF pruning in construct_sf_evset.
    def test_victim_cannot_evict_attacker_lines(self):
        """The core guarantee: Prime+Probe goes blind under partitioning."""
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=3)
        apply_way_partitioning(
            machine,
            {0: "att", 1: "att", 2: "vic", 3: "vic"},
            {"att": 12, "vic": 4, OTHER_DOMAIN: 4},
        )
        ctx = AttackerContext(machine, seed=1)
        ctx.calibrate()
        bulk = bulk_construct_page_offset(
            ctx, "bins", 0x240, EvsetConfig(budget_ms=100)
        )
        # The attacker can still build eviction sets inside its own ways.
        assert bulk.evsets
        evset = bulk.evsets[0]
        # A victim hammering the same set produces zero detections.
        target_set = ctx.true_set_of(evset.target_va)
        offset = evset.target_va % 4096
        space = machine.new_address_space()
        while True:
            page = space.alloc_page()
            line = space.translate_line(page + offset)
            if machine.hierarchy.shared_set_index(line) == target_set:
                break
        hier = machine.hierarchy
        for i in range(40):
            machine.schedule(
                machine.now + 4_000 + i * 10_000,
                lambda t, l=line: hier.access(2, l, t, write=True),
            )
        trace = monitor_set(ParallelProbing(ctx, evset), 46 * 10_000)
        assert trace.access_count() == 0
