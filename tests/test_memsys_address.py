"""Tests for virtual/physical addressing and page allocation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.config import PAGE_BYTES
from repro.errors import AddressError
from repro.memsys.address import (
    AddressSpace,
    line_address,
    line_offset_in_page,
    page_offset,
)


class TestHelpers:
    def test_line_address_strips_offset(self):
        assert line_address(0x1234) == 0x1234 >> 6

    def test_page_offset(self):
        assert page_offset(0x12345) == 0x345

    def test_line_offset_in_page(self):
        assert line_offset_in_page(0x1000 + 5 * 64 + 3) == 5

    @given(st.integers(0, 2**40))
    @settings(max_examples=60, deadline=None)
    def test_page_offset_preserved_by_line_math(self, addr):
        assert (line_address(addr) << 6) | (addr & 63) == addr


class TestAddressSpace:
    def _space(self, seed=0, phys_bits=30):
        return AddressSpace(phys_bits, make_rng(seed))

    def test_alloc_returns_contiguous_vas(self):
        space = self._space()
        pages = space.alloc_pages(4)
        deltas = [b - a for a, b in zip(pages, pages[1:])]
        assert deltas == [PAGE_BYTES] * 3

    def test_translation_preserves_page_offset(self):
        space = self._space()
        page = space.alloc_page()
        for off in (0, 64, 1234, 4095):
            assert space.translate(page + off) % PAGE_BYTES == off

    def test_distinct_frames(self):
        space = self._space()
        pages = space.alloc_pages(200)
        frames = {space.translate(p) >> 12 for p in pages}
        assert len(frames) == 200

    def test_frames_randomized(self):
        space = self._space()
        pages = space.alloc_pages(50)
        frames = [space.translate(p) >> 12 for p in pages]
        # Random frames should not be consecutive.
        assert frames != sorted(frames)

    def test_unmapped_translation_raises(self):
        space = self._space()
        with pytest.raises(AddressError):
            space.translate(0xDEAD_BEEF_000)

    def test_is_mapped(self):
        space = self._space()
        page = space.alloc_page()
        assert space.is_mapped(page + 100)
        assert not space.is_mapped(page + 100 * PAGE_BYTES)

    def test_shared_frame_pool_prevents_collisions(self):
        used = set()
        a = AddressSpace(26, make_rng(1), used_frames=used)
        b = AddressSpace(26, make_rng(2), used_frames=used, va_base=0x5000_0000)
        frames_a = {a.translate(p) >> 12 for p in a.alloc_pages(300)}
        frames_b = {b.translate(p) >> 12 for p in b.alloc_pages(300)}
        assert not frames_a & frames_b

    def test_overfill_raises(self):
        space = AddressSpace(16, make_rng(0))  # 16 frames total
        with pytest.raises(AddressError):
            space.alloc_pages(9)  # more than half

    def test_deterministic_given_seed(self):
        s1, s2 = self._space(seed=9), self._space(seed=9)
        assert [s1.translate(p) for p in s1.alloc_pages(10)] == [
            s2.translate(p) for p in s2.alloc_pages(10)
        ]

    def test_lines_at_offset(self):
        space = self._space()
        pages = space.alloc_pages(3)
        vas = space.lines_at_offset(pages, 0x240)
        assert [va % PAGE_BYTES for va in vas] == [0x240] * 3

    def test_lines_at_offset_rejects_unaligned(self):
        space = self._space()
        with pytest.raises(AddressError):
            space.lines_at_offset([0], 0x241)

    def test_translate_line(self):
        space = self._space()
        page = space.alloc_page()
        assert space.translate_line(page + 64) == space.translate(page + 64) >> 6
