"""Counter-RNG contract: cross-tier parity, memo-replay, statistics (§2.7).

The event-keyed RNG mode (``MachineConfig.rng_mode == "counter"``) breaks
the serial draw-order contract on purpose: every stochastic draw becomes a
pure function of ``(trial_seed, stream, event key)``, so the *same* trial
must come out bit-identical no matter which execution tier draws in which
order.  These suites pin that promise:

* four-way path parity (unfused / kernels / live lanes / memo-replay vec)
  on the kernel batteries and the monitor loop, quiet and noisy;
* the reference-tier oracle via the differential fuzzer's ``run_tiers``;
* golden fingerprints for the counter mode (captured from the unfused
  path — the vectorized tiers must reproduce them exactly, the same
  collapse-the-oracle-chain structure as ``tests/test_lane_parity.py``);
* :class:`~repro.memsys.vec.VecKernels` replay-vs-live equivalence;
* statistical sanity of the keyed draws (uniformity per stream,
  Poisson moments, scalar/vector agreement, order independence).

CI runs this file twice — with and without ``REPRO_NO_NUMPY=1`` — so the
no-NumPy fallback (vec and lanes quietly disengage, scalar draws carry the
contract alone) is exercised for real.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math

import pytest

from tests._parity import _h, _machine_digest

from repro import rng as rngmod
from repro.config import cloud_run_noise, no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset.candidates import build_candidate_set
from repro.core.evset.primitives import EvictionTester
from repro.core.evset.types import EvictionSet
from repro.core.monitor import ParallelProbing, PrimeScopeFlush, monitor_set
from repro.memsys import kernels_disabled, lanes_disabled, vec_disabled
from repro.memsys import lanes as lanesmod
from repro.memsys.machine import Machine
from repro.memsys.vec import VecKernels
from repro.rng import (
    RNG_MODES,
    S_NOISE_LLC,
    S_NOISE_SF,
    S_SF_REUSE,
    S_VICTIM,
    CounterRng,
    resolve_rng_mode,
)


def _counter_cfg():
    return dataclasses.replace(skylake_sp_small(), rng_mode="counter")


def _path_guard(path: str):
    """unfused -> no kernels; kernels -> scalar kernels; lanes -> live
    LaneKernels rounds (memo-replay off); vec -> the default resolution."""
    if path == "unfused":
        return kernels_disabled()
    if path == "kernels":
        return lanes_disabled()
    if path == "lanes":
        return vec_disabled()
    return contextlib.nullcontext()


PATHS = ["unfused", "kernels", "lanes", "vec"]


# --- TestEviction parity ----------------------------------------------------


def _tester_battery(mode: str, noisy: bool, path: str) -> dict:
    """The lane-parity battery, on a counter-mode machine."""
    fused = path != "unfused"
    noise = cloud_run_noise() if noisy else no_noise()
    machine = Machine(_counter_cfg(), noise=noise, seed=23)
    ctx = AttackerContext(machine, seed=2)
    with _path_guard(path):
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x140, size=40)
        tester = EvictionTester(ctx, mode=mode, parallel=True, use_kernels=fused)
        target, pool = cand.vas[0], cand.vas[1:]
        verdicts = [tester.test(target, pool, n) for n in (39, 20, 10, 5)]
        verdicts += tester.test_many(cand.vas[:4], cand.vas[4:], 24)
        deep = EvictionTester(ctx, mode=mode, parallel=True, repeats=2,
                              use_kernels=fused)
        verdicts.append(deep.test(target, pool, 16))
    return {"verdicts": verdicts, **_machine_digest(machine)}


@pytest.mark.parametrize("noisy", [False, True], ids=["quiet", "noisy"])
@pytest.mark.parametrize("mode", ["llc", "sf", "l2"])
class TestCounterFourWayParity:
    def test_battery_bitwise_identical(self, mode, noisy):
        runs = {path: _tester_battery(mode, noisy, path) for path in PATHS}
        assert runs["vec"] == runs["lanes"]
        assert runs["lanes"] == runs["kernels"]
        assert runs["kernels"] == runs["unfused"]


# --- Monitor parity (the loop memo-replay accelerates) ----------------------


def _monitor_run(strategy_cls, path: str, seed: int = 31) -> dict:
    machine = Machine(_counter_cfg(), noise=cloud_run_noise(), seed=seed)
    ctx = AttackerContext(machine, seed=3)
    with _path_guard(path):
        ctx.calibrate()
        target_va = ctx.alloc_pages(1)[0] + 0x2C0
        tset = machine.hierarchy.shared_set_index(ctx.line(target_va))
        vas = []
        while len(vas) < machine.cfg.sf.ways:
            for page in ctx.alloc_pages(32):
                va = page + 0x2C0
                if machine.hierarchy.shared_set_index(ctx.line(va)) == tset:
                    vas.append(va)
        evset = EvictionSet(
            kind="sf", vas=vas[: machine.cfg.sf.ways], target_va=target_va
        )
        space = machine.new_address_space()
        while True:
            line = space.translate_line(space.alloc_page() + 0x2C0)
            if machine.hierarchy.shared_set_index(line) == tset:
                break
        interval = 20_000
        for i in range(15):
            machine.schedule(
                machine.now + 3_000 + i * interval,
                lambda t, line=line: machine.hierarchy.access(
                    3, line, t, write=True),
            )
        trace = monitor_set(
            strategy_cls(ctx, evset), duration_cycles=15 * interval + 30_000
        )
    return {
        "trace": [trace.timestamps, trace.start, trace.end,
                  trace.probe_latencies, trace.prime_latencies],
        **_machine_digest(machine),
    }


@pytest.mark.parametrize(
    "strategy_cls", [ParallelProbing, PrimeScopeFlush],
    ids=["parallel", "prime-scope"],
)
def test_monitor_four_way_parity(strategy_cls):
    runs = {path: _monitor_run(strategy_cls, path) for path in PATHS}
    assert runs["vec"] == runs["lanes"]
    assert runs["lanes"] == runs["kernels"]
    assert runs["kernels"] == runs["unfused"]


def test_vec_replay_actually_engages():
    """The memo-replay path must fire on the steady-state monitor loop
    (otherwise the vec tier silently degenerates to live lanes and the
    parity above proves nothing about replay)."""
    if not lanesmod.HAVE_NUMPY:
        pytest.skip("vec tier needs NumPy")
    machine = Machine(_counter_cfg(), noise=cloud_run_noise(), seed=31)
    ctx = AttackerContext(machine, seed=3)
    ctx.calibrate()
    kern = ctx.lane_kernels()
    assert type(kern) is VecKernels
    cand = build_candidate_set(ctx, 0x2C0, size=machine.cfg.sf.ways)
    evset = EvictionSet(
        kind="sf", vas=list(cand.vas[:-1]), target_va=cand.vas[-1]
    )
    monitor_set(ParallelProbing(ctx, evset), duration_cycles=200_000)
    replayed = sum(
        len(geom.entries) > 0 for geom in kern._vmemo.values()
    )
    assert kern._vmemo and replayed > 0


# --- Reference tier (fuzz oracle) -------------------------------------------


class TestReferenceTierCounter:
    def test_four_tiers_agree_on_counter_traces(self):
        from repro.check import FuzzConfig, generate_trace, run_tiers

        cfg = FuzzConfig(
            machine="tiny", noise="mix", partition="mix", n_ops=8,
            rng_mode="counter",
        )
        for seed in range(4):
            trace = generate_trace(cfg, seed)
            assert trace["rng"] == "counter"
            result = run_tiers(trace)
            assert result["ok"], (seed, result)

    def test_counter_trace_differs_from_serial(self):
        """Same seed, different contract -> different (both valid) trial."""
        from repro.check import FuzzConfig, generate_trace, run_trace

        mk = lambda mode: dataclasses.replace(
            FuzzConfig(machine="tiny", noise="cloud", partition="never",
                       n_ops=8),
            rng_mode=mode,
        )
        serial = run_trace(generate_trace(mk("serial"), 1), "reference")
        counter = run_trace(generate_trace(mk("counter"), 1), "reference")
        assert serial["digest"] != counter["digest"]


# --- Golden fingerprints ----------------------------------------------------
# Captured from the unfused path on the counter contract; every vectorized
# tier must reproduce them exactly.  (Serial-mode goldens live unchanged in
# tests/test_kernel_parity.py / test_lane_parity.py — this mode adds new
# goldens, it never moves old ones.)

GOLDEN_COUNTER_BATTERY_NOISY_SF = "bd83113e62527f7d"
GOLDEN_COUNTER_MONITOR_PARALLEL = "50ef3beb9c57ecb0"


class TestCounterGoldenFingerprints:
    def test_battery_vec(self):
        assert _h(_tester_battery("sf", True, "vec")) == \
            GOLDEN_COUNTER_BATTERY_NOISY_SF

    def test_battery_kernels(self):
        assert _h(_tester_battery("sf", True, "kernels")) == \
            GOLDEN_COUNTER_BATTERY_NOISY_SF

    def test_monitor_vec(self):
        assert _h(_monitor_run(ParallelProbing, "vec")) == \
            GOLDEN_COUNTER_MONITOR_PARALLEL


# --- Mode plumbing ----------------------------------------------------------


class TestModePlumbing:
    def test_resolve_rng_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG", raising=False)
        assert resolve_rng_mode() == "serial"
        assert resolve_rng_mode("counter") == "counter"
        monkeypatch.setenv("REPRO_RNG", "counter")
        assert resolve_rng_mode() == "counter"
        assert resolve_rng_mode("serial") == "serial"
        with pytest.raises(ValueError):
            resolve_rng_mode("splitmix")
        assert set(RNG_MODES) == {"serial", "counter"}

    def test_serial_machine_has_no_crng(self):
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=1)
        assert machine.hierarchy.crng is None

    def test_counter_machine_has_crng(self):
        machine = Machine(_counter_cfg(), noise=no_noise(), seed=1)
        assert machine.hierarchy.crng is not None
        assert machine.hierarchy.crng.seed == 1


# --- Statistical sanity of the keyed draws ----------------------------------


class TestCounterStatistics:
    def _chi2_uniform(self, samples, bins: int = 20) -> float:
        n = len(samples)
        counts = [0] * bins
        for u in samples:
            counts[min(int(u * bins), bins - 1)] += 1
        e = n / bins
        return sum((c - e) ** 2 / e for c in counts)

    @pytest.mark.parametrize(
        "stream", [S_NOISE_SF, S_NOISE_LLC, S_SF_REUSE, S_VICTIM]
    )
    def test_u01_uniform_per_stream(self, stream):
        """Chi-square on 20 bins, 20k draws; df=19, p=0.001 cutoff 43.8."""
        crng = CounterRng(7)
        samples = [crng.u01(stream, k1, k2, 0)
                   for k1 in range(20) for k2 in range(1000)]
        assert self._chi2_uniform(samples) < 43.8
        assert all(0.0 < u < 1.0 for u in samples)

    def test_streams_decorrelated(self):
        """Identical event keys on different streams share no structure."""
        crng = CounterRng(7)
        a = [crng.u01(S_NOISE_SF, 3, k, 0) for k in range(4000)]
        b = [crng.u01(S_NOISE_LLC, 3, k, 0) for k in range(4000)]
        mean_a = sum(a) / len(a)
        mean_b = sum(b) / len(b)
        cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b)) / len(a)
        var_a = sum((x - mean_a) ** 2 for x in a) / len(a)
        var_b = sum((y - mean_b) ** 2 for y in b) / len(b)
        assert abs(cov / math.sqrt(var_a * var_b)) < 0.05

    def test_u01_deterministic_and_order_free(self):
        crng = CounterRng(11)
        forward = [crng.u01(S_NOISE_SF, 1, k, 0) for k in range(100)]
        fresh = CounterRng(11)
        backward = [fresh.u01(S_NOISE_SF, 1, k, 0)
                    for k in reversed(range(100))]
        assert forward == backward[::-1]
        assert CounterRng(11).u01(S_NOISE_SF, 1, 5, 0) == forward[5]
        assert CounterRng(12).u01(S_NOISE_SF, 1, 5, 0) != forward[5]

    def test_noise_poisson_bernoulli_rate(self):
        """lam < 0.01 path: hit frequency tracks lam."""
        crng = CounterRng(3)
        lam = 0.005
        n = 200_000
        hits = sum(crng.noise_poisson(S_NOISE_SF, 1, old, lam)
                   for old in range(n))
        # Binomial(200k, 0.005): mean 1000, sd ~31.5; allow 5 sd.
        assert abs(hits - n * lam) < 5 * math.sqrt(n * lam)

    def test_noise_poisson_knuth_moments(self):
        """0.01 <= lam <= 64 path: sample mean and variance match lam."""
        crng = CounterRng(5)
        lam = 5.0
        draws = [crng.noise_poisson(S_NOISE_LLC, 2, old, lam)
                 for old in range(20_000)]
        mean = sum(draws) / len(draws)
        var = sum((d - mean) ** 2 for d in draws) / len(draws)
        assert abs(mean - lam) < 0.1
        assert abs(var - lam) < 0.35

    def test_noise_poisson_normal_tail(self):
        """lam > 64 path: clamped normal approximation, right moments."""
        crng = CounterRng(9)
        lam = 200.0
        draws = [crng.noise_poisson(S_NOISE_SF, 4, old, lam)
                 for old in range(5_000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - lam) < 1.5
        assert min(draws) >= 0

    def test_poisson_deterministic_per_key(self):
        crng = CounterRng(13)
        a = [crng.noise_poisson(S_NOISE_SF, 6, old, 2.5) for old in range(500)]
        b = [CounterRng(13).noise_poisson(S_NOISE_SF, 6, old, 2.5)
             for old in range(500)]
        assert a == b

    def test_staging_is_value_neutral(self):
        """A pre-staged draw is consumed verbatim; unkeyed draws unaffected."""
        crng = CounterRng(17)
        live = crng.noise_poisson(S_NOISE_SF, 8, 1000, 0.005)
        staged = CounterRng(17)
        staged._pre[(S_NOISE_SF, 8, 1000)] = live
        assert staged.noise_poisson(S_NOISE_SF, 8, 1000, 0.005) == live
        assert not staged._pre  # consumed
        assert (staged.noise_poisson(S_NOISE_LLC, 8, 1000, 0.005)
                == crng.noise_poisson(S_NOISE_LLC, 8, 1000, 0.005))


class TestVectorScalarAgreement:
    """The numpy bulk draws must be bit-identical to the scalar ones."""

    def setup_method(self):
        if rngmod._np is None:
            pytest.skip("NumPy unavailable (REPRO_NO_NUMPY leg)")

    def test_u01_many_matches_scalar(self):
        np = rngmod._np
        crng = CounterRng(21)
        k1s = np.arange(512, dtype=np.int64) % 64
        k2s = (np.arange(512, dtype=np.int64) * 977) % 100_000
        vec = crng.u01_many(S_NOISE_SF, k1s, k2s, 0)
        for j in range(512):
            assert vec[j] == crng.u01(S_NOISE_SF, int(k1s[j]), int(k2s[j]), 0)

    def test_u01_keyed_many_matches_scalar_across_trials(self):
        np = rngmod._np
        rngs = [CounterRng(seed) for seed in range(40)]
        keys = np.array([r._key for r in rngs], dtype=np.uint64)
        streams = np.full(40, S_NOISE_LLC, dtype=np.uint64)
        k1s = np.arange(40, dtype=np.uint64) % 8
        k2s = np.arange(40, dtype=np.uint64) * 1313
        vec = CounterRng.u01_keyed_many(keys, streams, k1s, k2s, 0)
        for j, r in enumerate(rngs):
            assert vec[j] == r.u01(S_NOISE_LLC, int(k1s[j]), int(k2s[j]), 0)

    def test_noise_poisson_many_matches_scalar(self):
        np = rngmod._np
        crng = CounterRng(23)
        sidxs = np.arange(100, dtype=np.int64) % 16
        olds = np.arange(100, dtype=np.int64) * 53
        lams = np.where(np.arange(100) % 3 == 0, 0.004, 1.7)
        lams[0] = 0.0
        vec = crng.noise_poisson_many(S_NOISE_SF, sidxs, olds, lams)
        fresh = CounterRng(23)
        for j in range(100):
            assert vec[j] == fresh.noise_poisson(
                S_NOISE_SF, int(sidxs[j]), int(olds[j]), float(lams[j])
            )
