"""Tests for the signal-processing substrate (windows, Welch PSD, peaks)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import signal as scipy_signal

from repro.dsp import (
    bin_trace,
    find_peaks,
    hann_window,
    peak_strength_at,
    periodogram,
    psd_feature_vector,
    rectangular_window,
    welch_psd,
)
from repro.errors import ReproError


class TestWindows:
    def test_hann_endpoints(self):
        w = hann_window(64)
        assert w[0] == pytest.approx(0.0)
        assert max(w) <= 1.0

    def test_hann_matches_scipy_periodic(self):
        w = hann_window(128)
        ref = scipy_signal.get_window("hann", 128, fftbins=True)
        assert np.allclose(w, ref)

    def test_rectangular(self):
        assert np.all(rectangular_window(10) == 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            hann_window(0)


class TestPeriodogram:
    def test_pure_tone_peak(self):
        fs = 1000.0
        t = np.arange(1024) / fs
        x = np.sin(2 * np.pi * 100.0 * t)
        freqs, psd = periodogram(x, fs=fs)
        assert freqs[np.argmax(psd)] == pytest.approx(100.0, abs=fs / 1024)

    def test_parseval(self):
        """The one-sided density integrates to the signal variance."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096)
        fs = 2.0
        freqs, psd = periodogram(x, fs=fs)
        df = freqs[1] - freqs[0]
        assert np.sum(psd) * df == pytest.approx(np.var(x), rel=0.05)

    def test_rejects_short(self):
        with pytest.raises(ReproError):
            periodogram(np.array([1.0]))


class TestWelch:
    def _tone_plus_noise(self, f=0.41e6, fs=4e6, n=8192, snr=1.0, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(n) / fs
        return np.sin(2 * np.pi * f * t) * snr + rng.standard_normal(n)

    def test_matches_scipy(self):
        x = self._tone_plus_noise()
        f1, p1 = welch_psd(x, fs=4e6, nperseg=256)
        f2, p2 = scipy_signal.welch(
            x, fs=4e6, nperseg=256, noverlap=128, window="hann",
            detrend="constant",
        )
        assert np.allclose(f1, f2)
        assert np.allclose(p1, p2, rtol=1e-9)

    def test_finds_the_victim_frequency(self):
        """A 0.41 MHz tone in noise — the paper's expected PSD peak."""
        x = self._tone_plus_noise()
        freqs, psd = welch_psd(x, fs=4e6, nperseg=256)
        ratio, f_found = peak_strength_at(freqs, psd, 0.41e6)
        assert ratio > 10.0
        assert f_found == pytest.approx(0.41e6, rel=0.1)

    def test_noise_only_has_no_peak(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(8192)
        freqs, psd = welch_psd(x, fs=4e6, nperseg=256)
        ratio, _ = peak_strength_at(freqs, psd, 0.41e6)
        assert ratio < 10.0

    def test_variance_reduction_vs_periodogram(self):
        """Averaging segments reduces estimator variance — Welch's point."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal(8192)
        _, p_w = welch_psd(x, fs=1.0, nperseg=256)
        _, p_p = periodogram(x, fs=1.0)
        assert np.std(p_w) < np.std(p_p)

    def test_segment_clamped_to_signal(self):
        x = np.sin(np.arange(100))
        freqs, psd = welch_psd(x, nperseg=4096)
        assert len(freqs) == 100 // 2 + 1

    def test_rejects_bad_overlap(self):
        with pytest.raises(ReproError):
            welch_psd(np.ones(64), overlap=1.0)


class TestPeaks:
    def test_find_peaks_simple(self):
        v = np.ones(50)
        v[20] = 100.0
        assert find_peaks(v) == [20]

    def test_no_peaks_in_flat(self):
        assert find_peaks(np.ones(50)) == []

    def test_rejects_short(self):
        with pytest.raises(ReproError):
            find_peaks(np.array([1.0, 2.0]))

    def test_peak_strength_outside_band(self):
        v = np.ones(100)
        v[90] = 500.0
        freqs = np.linspace(0, 1e6, 100)
        ratio, _ = peak_strength_at(freqs, v, 0.1e6, rel_tolerance=0.1)
        assert ratio < 5.0

    def test_peak_strength_rejects_nonpositive_freq(self):
        with pytest.raises(ReproError):
            peak_strength_at(np.arange(10.0), np.ones(10), 0.0)


class TestBinning:
    def test_counts_land_in_bins(self):
        sig = bin_trace([0, 100, 150, 999], start=0, end=1000, bin_cycles=100)
        assert sig[0] == 1
        assert sig[1] == 2
        assert sig[9] == 1

    def test_out_of_window_ignored(self):
        sig = bin_trace([-5, 2000], start=0, end=1000, bin_cycles=100)
        assert sig.sum() == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ReproError):
            bin_trace([], start=10, end=10, bin_cycles=1)


class TestFeatureVector:
    def _periodic_trace(self, period=4850, n=200, jitter=0, seed=0):
        rng = np.random.default_rng(seed)
        t = 0
        out = []
        for _ in range(n):
            out.append(t)
            t += period + (rng.integers(-jitter, jitter + 1) if jitter else 0)
        return out

    def test_fixed_length(self):
        trace = self._periodic_trace()
        v = psd_feature_vector(trace, 0, 10**6, 500, 2e9, n_bands=24)
        assert v.shape == (28,)

    def test_periodic_vs_random_distinguishable(self):
        periodic = self._periodic_trace()
        rng = np.random.default_rng(3)
        random_trace = sorted(rng.integers(0, 10**6, size=200).tolist())
        v1 = psd_feature_vector(periodic, 0, 10**6, 500, 2e9)
        v2 = psd_feature_vector(random_trace, 0, 10**6, 500, 2e9)
        # The peak-ratio feature (index -3) separates them clearly.
        assert v1[-3] > v2[-3] + 0.5

    def test_empty_trace_works(self):
        v = psd_feature_vector([], 0, 10**6, 500, 2e9)
        assert np.all(np.isfinite(v))

    def test_deterministic(self):
        t = self._periodic_trace()
        a = psd_feature_vector(t, 0, 10**6, 500, 2e9)
        b = psd_feature_vector(t, 0, 10**6, 500, 2e9)
        assert np.array_equal(a, b)
