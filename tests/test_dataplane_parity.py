"""Old-vs-new parity for the flat array-backed data plane.

Two oracles pin :class:`repro.memsys.cache.SetAssociativeCache` to the seed
implementation preserved in :mod:`repro.memsys._reference`:

* **Dynamic parity** — the same randomized operation strings and the same
  simulated attack flows are driven through both implementations and every
  observable (hit levels, latencies, evicted lines, clock, noise events,
  hierarchy stats) must agree exactly.
* **Golden fingerprints** — sha256 digests of end-to-end runs (raw access
  streams, bulk eviction-set construction, a Prime+Probe monitor trace)
  captured from the pristine seed code before the refactor.  These freeze
  seed behavior against drift in *both* implementations.

Satellite regression coverage lives here too: the ``flush_all`` noise-clock
carry and the ``insert`` owner-update semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.config import cloud_run_noise, skylake_sp_small, tiny_machine
from repro.memsys._reference import ReferenceSetAssociativeCache
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.machine import Machine
from repro.memsys.replacement import policy_names
from tests._parity import _h


# --- Cache-level dynamic parity ---------------------------------------------


def _snapshot(cache, sets):
    return {
        "occ": [cache.occupancy(s) for s in sets],
        "tags": [sorted(cache.tags_in_set(s)) for s in sets],
        "touched": cache.touched_sets,
    }


#: op: (kind, set_idx, tag, owner) — kind 0=insert 1=remove 2=lookup
#: 3=contains/owner_of 4=peek_victim.
_cache_ops = st.lists(
    st.tuples(
        st.integers(0, 4), st.integers(0, 3), st.integers(0, 40), st.integers(0, 3)
    ),
    max_size=250,
)


@pytest.mark.parametrize("policy", policy_names())
class TestCacheMatchesReference:
    @given(ops=_cache_ops)
    @settings(max_examples=30, deadline=None)
    def test_randomized_op_strings(self, policy, ops):
        ways = 4
        sets = 8
        flat = SetAssociativeCache("F", sets, ways, policy, make_rng(("p", policy)))
        ref = ReferenceSetAssociativeCache(
            "R", sets, ways, policy, make_rng(("p", policy))
        )
        for kind, set_idx, tag, owner in ops:
            if kind == 0:
                assert flat.insert(set_idx, tag, owner) == ref.insert(
                    set_idx, tag, owner
                )
            elif kind == 1:
                assert flat.remove(set_idx, tag) == ref.remove(set_idx, tag)
            elif kind == 2:
                assert flat.lookup(set_idx, tag) == ref.lookup(set_idx, tag)
            elif kind == 3:
                assert flat.contains(set_idx, tag) == ref.contains(set_idx, tag)
                assert flat.owner_of(set_idx, tag) == ref.owner_of(set_idx, tag)
            else:
                assert flat.peek_victim(set_idx) == ref.peek_victim(set_idx)
        all_sets = range(sets)
        assert _snapshot(flat, all_sets) == _snapshot(ref, all_sets)
        assert (flat.policy_touches, flat.policy_fills, flat.policy_victims) == (
            ref.policy_touches,
            ref.policy_fills,
            ref.policy_victims,
        )


# --- Machine-level dynamic parity (reference swapped into the hierarchy) ----


def _machine_with(cache_cls, seed=11) -> Machine:
    import repro.memsys.hierarchy as hmod

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = cache_cls
    try:
        return Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=seed)
    finally:
        hmod.SetAssociativeCache = original


def _drive(machine: Machine):
    space = machine.new_address_space()
    pages = space.alloc_pages(48)
    lines = [space.translate_line(p) for p in pages]
    observed = []
    for rep in range(5):
        for i, line in enumerate(lines):
            level, lat = machine.access(i % 2, line, write=(rep % 2 == 1))
            observed.append((int(level), lat))
    observed.append(machine.access_batch(0, lines[:16], same_shared_set=False))
    observed.append(machine.access_batch(0, lines[:8], write=True, shadow_core=None))
    observed.append(machine.access_chase(1, lines[:12], shadow_core=0))
    observed.append(machine.flush_batch(lines[:10]))
    observed.extend(machine.timed_access(0, line) for line in lines[:10])
    return {
        "observed": observed,
        "now": machine.now,
        "noise_events": machine.noise.events,
        "stats": machine.hierarchy.stats.as_dict(),
    }


class TestMachineMatchesReference:
    def test_full_flow_bitwise_identical(self):
        flat = _drive(_machine_with(SetAssociativeCache))
        ref = _drive(_machine_with(ReferenceSetAssociativeCache))
        assert flat == ref


# --- Golden fingerprints (captured from the pristine seed implementation) ---

GOLDEN_RAW_STREAM = "4aba39adac0b72f1"
GOLDEN_BULK_EVSETS = "d6826d537c69f322"
GOLDEN_BULK_NOISE_EVENTS = 17855
GOLDEN_MONITOR_PARALLEL = "564a3f6768517a4b"


class TestGoldenFingerprints:
    def test_raw_access_stream(self):
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=9)
        space = machine.new_address_space()
        pages = space.alloc_pages(64)
        levels = []
        for rep in range(6):
            for i, p in enumerate(pages):
                line = space.translate_line(p)
                lvl, lat = machine.access(i % 2, line, write=(rep % 3 == 2))
                levels.append((int(lvl), lat))
        machine.flush_batch([space.translate_line(p) for p in pages[:16]])
        lat2 = [machine.timed_access(0, space.translate_line(p)) for p in pages[:16]]
        digest = _h(
            [levels, lat2, machine.now, machine.hierarchy.stats.as_dict(),
             machine.noise.events]
        )
        assert digest == GOLDEN_RAW_STREAM

    @pytest.mark.slow
    def test_bulk_construction_and_monitor(self):
        from repro.core.context import AttackerContext
        from repro.core.evset import EvsetConfig, bulk_construct_page_offset
        from repro.core.monitor import ParallelProbing, monitor_set
        from repro.envs import make_env

        machine, ctx = make_env("cloud", seed=7)
        bulk = bulk_construct_page_offset(
            ctx, "bins", 0x2C0, EvsetConfig(budget_ms=100)
        )
        assert _h([sorted(e.vas) for e in bulk.evsets]) == GOLDEN_BULK_EVSETS
        assert machine.noise.events == GOLDEN_BULK_NOISE_EVENTS

        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=51)
        ctx = AttackerContext(machine, seed=1)
        ctx.calibrate()
        bulk = bulk_construct_page_offset(
            ctx, "bins", 0x2C0, EvsetConfig(budget_ms=100)
        )
        evset = bulk.evsets[0]
        target_set = ctx.true_set_of(evset.target_va)
        offset = evset.target_va % 4096
        space = machine.new_address_space()
        while True:
            page = space.alloc_page()
            line = space.translate_line(page + offset)
            if machine.hierarchy.shared_set_index(line) == target_set:
                break
        interval = 40_000
        for i in range(30):
            machine.schedule(
                machine.now + 5_000 + i * interval,
                lambda t, line=line: machine.hierarchy.access(3, line, t, write=True),
            )
        trace = monitor_set(
            ParallelProbing(ctx, evset), duration_cycles=30 * interval + 50_000
        )
        digest = _h(
            [trace.timestamps, trace.start, trace.end, trace.probe_latencies,
             trace.prime_latencies]
        )
        assert digest == GOLDEN_MONITOR_PARALLEL


# --- Satellite: flush_all carries the noise-reconciliation clock ------------


class TestFlushCarriesNoiseClock:
    def test_cache_keeps_clock_by_default(self):
        c = SetAssociativeCache("T", 8, 4, "lru", make_rng(0))
        c.insert(5, 1)
        c.set_noise_clock(5, 10**9)
        c.flush_all()
        assert not c.contains(5, 1)
        assert c.noise_clock(5) == 10**9

    def test_cache_floors_clocks_at_now(self):
        c = SetAssociativeCache("T", 8, 4, "lru", make_rng(0))
        c.set_noise_clock(2, 500)
        c.flush_all(now=10**9)
        assert c.noise_clock(2) == 10**9
        assert c.noise_clock(7) == 10**9  # never-reconciled set floored too

    def test_reference_cache_matches(self):
        r = ReferenceSetAssociativeCache("R", 8, 4, "lru", make_rng(0))
        r.set_noise_clock(5, 10**9)
        r.flush_all()
        assert r.noise_clock(5) == 10**9
        r.flush_all(now=2 * 10**9)
        assert r.noise_clock(3) == 2 * 10**9

    def test_no_poisson_catchup_after_flush_at_large_now(self):
        """Regression: a flush at large ``now`` must not make the next
        access drain a whole-history Poisson catch-up (the seed reset the
        per-set clock to zero, so after e.g. 10^8 cycles every post-flush
        access drew the capped maximum of noise insertions)."""
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=5)
        space = machine.new_address_space()
        line = space.translate_line(space.alloc_page())
        machine.access(0, line)
        machine.advance(100_000_000)
        machine.flush_all_caches()
        before = machine.noise.events
        machine.access(0, line)
        drawn = machine.noise.events - before
        # At the cloud-run rate the post-flush window is a few hundred
        # cycles: lam << 1, so at most a stray single event — never the
        # 3x-associativity cap a zeroed clock would produce.
        assert drawn <= 2


# --- Satellite: insert() owner-update semantics -----------------------------


@pytest.mark.parametrize(
    "cache_cls", [SetAssociativeCache, ReferenceSetAssociativeCache]
)
class TestInsertOwnerSemantics:
    def test_reinsert_updates_owner_by_default(self, cache_cls):
        c = cache_cls("T", 8, 4, "lru", make_rng(0))
        c.insert(0, 7, owner=1)
        c.insert(0, 7, owner=2)
        assert c.owner_of(0, 7) == 2

    def test_reinsert_with_update_owner_false_preserves_owner(self, cache_cls):
        c = cache_cls("T", 8, 4, "lru", make_rng(0))
        c.insert(0, 7, owner=1)
        assert c.insert(0, 7, owner=2, update_owner=False) is None
        assert c.owner_of(0, 7) == 1

    def test_recency_refresh_still_touches(self, cache_cls):
        c = cache_cls("T", 8, 2, "lru", make_rng(0))
        c.insert(0, 1, owner=1)
        c.insert(0, 2, owner=1)
        c.insert(0, 1, owner=9, update_owner=False)  # refresh, not reassign
        # Tag 1 became MRU, so tag 2 is the victim.
        assert c.insert(0, 3, owner=1) == (2, 1)

    def test_write_hit_refresh_never_reassigns_sf_entry(self, cache_cls):
        """The hierarchy's write-hit path refreshes SF recency with
        update_owner=False; the entry's owner must survive unchanged."""
        import repro.memsys.hierarchy as hmod

        original = hmod.SetAssociativeCache
        hmod.SetAssociativeCache = cache_cls
        try:
            machine = Machine(tiny_machine(), seed=3)
        finally:
            hmod.SetAssociativeCache = original
        space = machine.new_address_space()
        line = space.translate_line(space.alloc_page())
        hier = machine.hierarchy
        sidx = hier.shared_set_index(line)
        machine.access(0, line, write=True)
        assert hier.sf.owner_of(sidx, line) == 0
        machine.access(0, line, write=True)  # L1 write hit -> recency refresh
        assert hier.sf.owner_of(sidx, line) == 0
