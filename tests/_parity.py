"""Shared digest helpers for the parity suites and the fuzz oracle.

The three parity suites (data plane, kernels, lanes) and the differential
fuzzer all fingerprint a machine the same way.  The implementation lives
in :mod:`repro.check.digest` — the fuzz oracle diffs exactly what the
golden fingerprints pin — and this module re-exports it under the
historical helper names the suites use.
"""

from __future__ import annotations

from repro.check.digest import diff_keys, machine_digest, obj_digest, rng_state_digests

#: sha256(json(obj, sort_keys))[:16] — the golden-fingerprint hash.
_h = obj_digest

#: Digest of every Machine RNG stream's full ``getstate()``.
_rng_states = rng_state_digests

#: The canonical observable-state dict the goldens are captured from.
_machine_digest = machine_digest

__all__ = [
    "_h",
    "_machine_digest",
    "_rng_states",
    "diff_keys",
    "machine_digest",
    "obj_digest",
    "rng_state_digests",
]
