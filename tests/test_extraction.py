"""Tests for nonce-bit extraction (boundary decoding, bit readout, scoring)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.extraction import (
    ExtractedBit,
    ExtractionConfig,
    ForestBoundaryClassifier,
    HeuristicBoundaryClassifier,
    bits_look_unbiased,
    extract_bits,
    score_extraction,
)
from repro.core.traces import AccessTrace
from repro.errors import NotTrainedError
from repro.victim.ecdsa_victim import SigningGroundTruth

CFG = ExtractionConfig(iter_cycles=9700)


def synth_trace(
    bits,
    iter_cycles=9700,
    jitter=150,
    start=10_000,
    drop=0.0,
    noise_rate=0.0,
    detect_delay=250,
    seed=0,
):
    """Synthesize a detection trace + ground truth for a bit sequence.

    Mirrors the victim model: boundary access each iteration, midpoint
    access for 0 bits; optional dropped detections and Poisson noise.
    """
    dur_rng = random.Random(seed)
    det_rng = random.Random(seed + 1)
    boundaries = [start]
    for _ in bits:
        boundaries.append(
            boundaries[-1] + iter_cycles + dur_rng.randint(-jitter, jitter)
        )
    detections = []
    for j, bit in enumerate(bits):
        t, t_next = boundaries[j], boundaries[j + 1]
        if det_rng.random() >= drop:
            detections.append(t + det_rng.randint(0, detect_delay))
        if bit == 0 and det_rng.random() >= drop:
            detections.append(
                (t + t_next) // 2 + det_rng.randint(0, detect_delay)
            )
    end = boundaries[-1]
    if noise_rate > 0:
        nrng = random.Random(seed + 999)
        n_noise = int((end - start) * noise_rate)
        for _ in range(n_noise):
            detections.append(nrng.randint(start, end))
    detections.sort()
    truth = SigningGroundTruth(
        nonce=None, bits=list(bits), boundaries=boundaries, start=start, end=end
    )
    trace = AccessTrace(
        timestamps=detections, start=start - iter_cycles, end=end + iter_cycles
    )
    return trace, truth


def random_bits(n, seed=1):
    rng = random.Random(seed)
    return [rng.randint(0, 1) for _ in range(n)]


class TestHeuristicDecoder:
    def test_clean_trace_full_recovery(self):
        bits = random_bits(120)
        trace, truth = synth_trace(bits)
        clf = HeuristicBoundaryClassifier(CFG)
        extracted = extract_bits(trace, clf.predict_boundaries(trace), CFG)
        score = score_extraction(truth, extracted, CFG)
        assert score.recovered_fraction > 0.95
        assert score.bit_error_rate < 0.02

    def test_all_zero_bits(self):
        """Runs of zeros = the dense 4,850-cycle pattern (Section 7.1)."""
        trace, truth = synth_trace([0] * 60)
        clf = HeuristicBoundaryClassifier(CFG)
        extracted = extract_bits(trace, clf.predict_boundaries(trace), CFG)
        score = score_extraction(truth, extracted, CFG)
        assert score.recovered_fraction > 0.9
        assert score.bit_error_rate < 0.05

    def test_all_one_bits(self):
        trace, truth = synth_trace([1] * 60)
        clf = HeuristicBoundaryClassifier(CFG)
        extracted = extract_bits(trace, clf.predict_boundaries(trace), CFG)
        score = score_extraction(truth, extracted, CFG)
        assert score.recovered_fraction > 0.9
        assert score.bit_error_rate < 0.05

    def test_phase_lock_not_mid_chain(self):
        """With mixed bits, boundaries must be boundaries, not midpoints."""
        bits = random_bits(100, seed=3)
        trace, truth = synth_trace(bits, seed=3)
        clf = HeuristicBoundaryClassifier(CFG)
        pred = clf.predict_boundaries(trace)
        matches = sum(
            1 for b in truth.boundaries
            if any(abs(p - b) <= CFG.match_tolerance for p in pred)
        )
        assert matches / len(truth.boundaries) > 0.9

    def test_survives_dropouts(self):
        bits = random_bits(150, seed=4)
        trace, truth = synth_trace(bits, drop=0.12, seed=4)
        clf = HeuristicBoundaryClassifier(CFG)
        extracted = extract_bits(trace, clf.predict_boundaries(trace), CFG)
        score = score_extraction(truth, extracted, CFG)
        assert score.recovered_fraction > 0.5
        assert score.bit_error_rate < 0.1

    def test_survives_noise(self):
        bits = random_bits(120, seed=5)
        trace, truth = synth_trace(bits, noise_rate=1 / 30_000, seed=5)
        clf = HeuristicBoundaryClassifier(CFG)
        extracted = extract_bits(trace, clf.predict_boundaries(trace), CFG)
        score = score_extraction(truth, extracted, CFG)
        assert score.recovered_fraction > 0.7

    def test_short_trace_empty(self):
        trace = AccessTrace(timestamps=[100], start=0, end=1000)
        assert HeuristicBoundaryClassifier(CFG).predict_boundaries(trace) == []

    def test_labels_states(self):
        bits = [0, 1, 0, 1, 0, 1, 0, 0, 1, 1] * 4
        trace, truth = synth_trace(bits, seed=6)
        clf = HeuristicBoundaryClassifier(CFG)
        labels = clf.predict_labels(trace)
        states = {s for _, s in labels}
        assert states <= {"B", "M"}
        assert "M" in states  # zero bits produce mid accesses


class TestForestDecoder:
    def _training_set(self, n_traces=6):
        traces, truths = [], []
        for i in range(n_traces):
            trace, truth = synth_trace(random_bits(80, seed=i), seed=i)
            traces.append(trace)
            truths.append(truth)
        return traces, truths

    def test_untrained_raises(self):
        trace, _ = synth_trace(random_bits(20))
        with pytest.raises(NotTrainedError):
            ForestBoundaryClassifier(CFG).predict_boundaries(trace)

    def test_trained_recovery(self):
        traces, truths = self._training_set()
        clf = ForestBoundaryClassifier(CFG).fit(traces, truths)
        trace, truth = synth_trace(random_bits(100, seed=77), seed=77)
        extracted = extract_bits(trace, clf.predict_boundaries(trace), CFG)
        score = score_extraction(truth, extracted, CFG)
        assert score.recovered_fraction > 0.6
        assert score.bit_error_rate < 0.1


class TestBitReadout:
    def test_extract_requires_plausible_spacing(self):
        trace = AccessTrace(timestamps=[0, 100, 200], start=-10, end=300)
        bits = extract_bits(trace, [0, 100, 200], CFG)
        assert bits == []  # 100-cycle spacing is no iteration

    def test_zero_vs_one(self):
        ic = CFG.iter_cycles
        trace = AccessTrace(
            timestamps=[0, ic // 2, ic, 2 * ic], start=-10, end=3 * ic
        )
        bits = extract_bits(trace, [0, ic, 2 * ic], CFG)
        assert [b.bit for b in bits] == [0, 1]

    def test_scoring_counts_errors(self):
        truth = SigningGroundTruth(
            nonce=None, bits=[1, 0], boundaries=[0, 9700, 19400],
            start=0, end=19400,
        )
        extracted = [
            ExtractedBit(start=0, end=9700, bit=0),     # wrong
            ExtractedBit(start=9700, end=19400, bit=0), # right
        ]
        score = score_extraction(truth, extracted, CFG)
        assert score.n_recovered == 2
        assert score.n_errors == 1
        assert score.bit_error_rate == 0.5

    def test_scoring_ignores_unmatched(self):
        truth = SigningGroundTruth(
            nonce=None, bits=[1], boundaries=[0, 9700], start=0, end=9700
        )
        extracted = [ExtractedBit(start=50_000, end=59_700, bit=1)]
        score = score_extraction(truth, extracted, CFG)
        assert score.n_recovered == 0
        assert score.recovered_fraction == 0.0


class TestBiasFilter:
    def test_balanced_accepted(self):
        bits = [ExtractedBit(0, 1, i % 2) for i in range(40)]
        assert bits_look_unbiased(bits)

    def test_biased_rejected(self):
        bits = [ExtractedBit(0, 1, 0) for _ in range(40)]
        assert not bits_look_unbiased(bits)

    def test_too_few_rejected(self):
        bits = [ExtractedBit(0, 1, i % 2) for i in range(4)]
        assert not bits_look_unbiased(bits)
