"""Tests for partial-nonce key recovery (extraction -> HNP bridge)."""

from __future__ import annotations

import random

import pytest

from repro.core.extraction import ExtractedBit, ExtractionConfig
from repro.core.keyrec import (
    SigningCapture,
    leading_run,
    recover_key_from_captures,
)
from repro.crypto.curves import curve_by_name
from repro.crypto.ecdsa import generate_keypair, sign
from repro.errors import CryptoError

KTEST = curve_by_name("K-TEST")
CFG = ExtractionConfig(iter_cycles=9700)


def windows_for_bits(bits, start=0, iter_cycles=9700, holes=()):
    """Extracted windows for a bit sequence, with optional missing indices."""
    out = []
    t = start
    for i, bit in enumerate(bits):
        if i not in holes:
            out.append(ExtractedBit(start=t, end=t + iter_cycles, bit=bit))
        t += iter_cycles
    return out


def make_capture(keypair, rng, recovered_prefix=None, holes=()):
    curve = keypair.curve
    msg = rng.getrandbits(64).to_bytes(8, "big")
    sig, k = sign(keypair, msg, rng)
    n_iter = k.bit_length() - 1
    bits = [(k >> i) & 1 for i in range(n_iter - 1, -1, -1)]
    if recovered_prefix is not None:
        bits = bits[:recovered_prefix]
    return SigningCapture(
        message=msg,
        signature=sig,
        extracted=windows_for_bits(bits, holes=holes),
        n_iterations=n_iter,
    )


class TestLeadingRun:
    def test_full_contiguous(self):
        ext = windows_for_bits([1, 0, 1, 1])
        assert leading_run(ext, CFG) == [1, 0, 1, 1]

    def test_stops_at_hole(self):
        ext = windows_for_bits([1, 0, 1, 1, 0, 0], holes=(3,))
        assert leading_run(ext, CFG) == [1, 0, 1]

    def test_empty(self):
        assert leading_run([], CFG) == []

    def test_trace_start_gate(self):
        ext = windows_for_bits([1, 0], start=50_000)
        assert leading_run(ext, CFG, trace_start=0) == []
        assert leading_run(ext, CFG, trace_start=49_000) == [1, 0]


class TestRecoverFromCaptures:
    def test_recovers_with_partial_extractions(self):
        """Prefix-only extractions across signings still yield the key."""
        rng = random.Random(17)
        kp = generate_keypair(KTEST, rng)
        captures = [
            make_capture(kp, rng, recovered_prefix=8) for _ in range(10)
        ]
        d = recover_key_from_captures(
            KTEST, captures, kp.public_point, CFG, min_known=5
        )
        assert d == kp.d

    def test_holes_after_prefix_are_fine(self):
        rng = random.Random(18)
        kp = generate_keypair(KTEST, rng)
        captures = [
            make_capture(kp, rng, holes=(9, 11)) for _ in range(8)
        ]
        d = recover_key_from_captures(
            KTEST, captures, kp.public_point, CFG, min_known=5
        )
        assert d == kp.d

    def test_too_little_knowledge_returns_none(self):
        rng = random.Random(19)
        kp = generate_keypair(KTEST, rng)
        captures = [
            make_capture(kp, rng, recovered_prefix=1) for _ in range(4)
        ]
        assert (
            recover_key_from_captures(
                KTEST, captures, kp.public_point, CFG, min_known=8
            )
            is None
        )

    def test_no_captures_raises(self):
        with pytest.raises(CryptoError):
            recover_key_from_captures(KTEST, [], KTEST.generator, CFG)

    def test_mixed_nonce_lengths(self):
        """Shorter nonces (fewer ladder iterations) normalize correctly."""
        rng = random.Random(20)
        kp = generate_keypair(KTEST, rng)
        captures = []
        while len(captures) < 12:
            cap = make_capture(kp, rng)
            captures.append(cap)
        lengths = {c.n_iterations for c in captures}
        d = recover_key_from_captures(
            KTEST, captures, kp.public_point, CFG, min_known=5
        )
        assert d == kp.d
        # The interesting case actually exercised mixed lengths.
        assert len(lengths) >= 1
