"""Tests for Koblitz curve construction and derived group parameters."""

from __future__ import annotations

import pytest

from repro.crypto.curves import (
    curve_by_name,
    frobenius_order,
    is_probable_prime,
)
from repro.crypto.ec2m import point_add, scalar_mult
from repro.errors import CryptoError


class TestPrimality:
    def test_small_primes(self):
        assert is_probable_prime(2)
        assert is_probable_prime(97)
        assert not is_probable_prime(1)
        assert not is_probable_prime(91)  # 7 * 13

    def test_large_composite(self):
        assert not is_probable_prime((1 << 89) - 1 + 2)  # even

    def test_mersenne_prime(self):
        assert is_probable_prime((1 << 127) - 1)


class TestFrobeniusOrder:
    def test_base_field_counts(self):
        """#E(GF(2)) computed by hand: 4 for a=0, 2 for a=1."""
        assert frobenius_order(1, 0) == 4
        assert frobenius_order(1, 1) == 2

    def test_hasse_bound(self):
        """|#E - (2^m + 1)| <= 2 * 2^(m/2) for all curve orders."""
        for m, a in [(17, 0), (17, 1), (163, 1), (233, 0)]:
            order = frobenius_order(m, a)
            assert abs(order - ((1 << m) + 1)) <= 2 * (1 << ((m + 1) // 2))

    def test_cofactor_divides(self):
        assert frobenius_order(233, 0) % 4 == 0
        assert frobenius_order(163, 1) % 2 == 0

    def test_rejects_bad_a(self):
        with pytest.raises(CryptoError):
            frobenius_order(17, 2)


class TestCurveConstruction:
    @pytest.mark.parametrize("name", ["K-TEST", "K-163", "K-233"])
    def test_generator_on_curve(self, name):
        curve = curve_by_name(name)
        assert curve.is_on_curve(curve.generator)

    @pytest.mark.parametrize("name", ["K-TEST", "K-163", "K-233"])
    def test_subgroup_order_prime(self, name):
        curve = curve_by_name(name)
        assert is_probable_prime(curve.n)

    @pytest.mark.parametrize("name", ["K-TEST", "K-163"])
    def test_generator_has_order_n(self, name):
        curve = curve_by_name(name)
        assert scalar_mult(curve, curve.n, curve.generator) is None
        assert scalar_mult(curve, 1, curve.generator) == curve.generator

    def test_order_times_cofactor(self):
        curve = curve_by_name("K-233")
        assert curve.n * curve.h == frobenius_order(233, 0)

    def test_k233_nonce_width(self):
        assert curve_by_name("K-233").nonce_bits in (231, 232, 233)

    def test_unknown_curve(self):
        with pytest.raises(CryptoError):
            curve_by_name("P-256")

    def test_curves_cached(self):
        assert curve_by_name("K-163") is curve_by_name("K-163")

    def test_decompress_roundtrip(self):
        curve = curve_by_name("K-TEST")
        gx, gy = curve.generator
        point = curve.decompress_x(gx)
        # Either the generator or its negation.
        assert point in ((gx, gy), (gx, gx ^ gy))

    def test_infinity_on_curve(self):
        assert curve_by_name("K-TEST").is_on_curve(None)

    def test_random_point_not_on_curve_detected(self):
        curve = curve_by_name("K-TEST")
        gx, gy = curve.generator
        assert not curve.is_on_curve((gx, gy ^ 1 ^ (1 << 3)))


class TestGroupLaws:
    def test_addition_closes(self):
        curve = curve_by_name("K-TEST")
        g = curve.generator
        p = g
        for _ in range(20):
            p = point_add(curve, p, g)
            assert curve.is_on_curve(p)

    def test_commutative(self):
        curve = curve_by_name("K-TEST")
        g = curve.generator
        p2 = scalar_mult(curve, 2, g)
        p5 = scalar_mult(curve, 5, g)
        assert point_add(curve, p2, p5) == point_add(curve, p5, p2)

    def test_associative(self):
        curve = curve_by_name("K-TEST")
        g = curve.generator
        a = scalar_mult(curve, 3, g)
        b = scalar_mult(curve, 7, g)
        c = scalar_mult(curve, 11, g)
        assert point_add(curve, point_add(curve, a, b), c) == point_add(
            curve, a, point_add(curve, b, c)
        )

    def test_scalar_homomorphism(self):
        curve = curve_by_name("K-TEST")
        g = curve.generator
        assert scalar_mult(curve, 9, g) == point_add(
            curve, scalar_mult(curve, 4, g), scalar_mult(curve, 5, g)
        )
