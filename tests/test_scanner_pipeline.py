"""Integration tests: PSD scanner and the end-to-end attack pipeline.

These are the heaviest tests in the suite (full victim/attacker
co-simulation); they use one shared module-scoped setup.
"""

from __future__ import annotations

import pytest

from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.pipeline import (
    AttackConfig,
    collect_signing_traces,
    run_end_to_end,
    segment_trace,
)
from repro.core.scanner import (
    Scanner,
    ScannerConfig,
    TargetSetClassifier,
    collect_labeled_traces,
)
from repro.core.traces import AccessTrace
from repro.errors import NotTrainedError, ScanError
from repro.memsys.machine import Machine
from repro.victim import EcdsaVictim, VictimConfig


@pytest.fixture(scope="module")
def attack_env():
    """Machine + running victim + attacker evsets + trained classifier."""
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=71)
    victim = EcdsaVictim(machine, core=2, cfg=VictimConfig(), seed=6)
    ctx = AttackerContext(machine, main_core=0, helper_core=1, seed=3)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    scfg = ScannerConfig()
    traces, labels = collect_labeled_traces(
        ctx, bulk.evsets, target_set, scfg, per_set=2
    )
    classifier = TargetSetClassifier(machine.clock_hz, scfg).fit(traces, labels)
    return machine, victim, ctx, bulk.evsets, target_set, classifier, scfg


@pytest.mark.slow
class TestClassifier:
    def test_untrained_raises(self, attack_env):
        machine, *_ = attack_env
        clf = TargetSetClassifier(machine.clock_hz)
        with pytest.raises(NotTrainedError):
            clf.predict(AccessTrace(timestamps=[], start=0, end=1000))

    def test_training_separates_classes(self, attack_env):
        machine, victim, ctx, evsets, target_set, classifier, scfg = attack_env
        traces, labels = collect_labeled_traces(
            ctx, evsets, target_set, scfg, per_set=1
        )
        report = classifier.validate(traces, labels)
        assert report.accuracy > 0.9
        assert report.false_positive_rate < 0.15


@pytest.mark.slow
class TestScanner:
    def test_finds_target_set(self, attack_env):
        machine, victim, ctx, evsets, target_set, classifier, scfg = attack_env
        scanner = Scanner(ctx, classifier, scfg)
        result = scanner.scan(evsets, timeout_s=0.25)
        assert result.found
        assert ctx.true_set_of(result.evset.target_va) == target_set
        assert result.sets_scanned >= 1
        assert result.scan_rate_sets_per_s(machine.cfg.clock_ghz) > 0

    def test_timeout_respected(self, attack_env):
        machine, victim, ctx, evsets, target_set, classifier, scfg = attack_env
        non_target = [
            e for e in evsets if ctx.true_set_of(e.target_va) != target_set
        ]
        scanner = Scanner(ctx, classifier, scfg)
        result = scanner.scan(non_target[:4], timeout_s=0.01)
        assert not result.found
        assert result.elapsed_seconds(machine.cfg.clock_ghz) <= 0.02

    def test_empty_evsets_raise(self, attack_env):
        machine, victim, ctx, evsets, target_set, classifier, scfg = attack_env
        with pytest.raises(ScanError):
            Scanner(ctx, classifier, scfg).scan([], timeout_s=0.1)


class TestSegmentation:
    def test_splits_on_long_gaps(self):
        iter_cycles = 9700
        times = [i * iter_cycles for i in range(10)]
        times += [10**7 + i * iter_cycles for i in range(10)]
        trace = AccessTrace(timestamps=times, start=0, end=2 * 10**7)
        segments = segment_trace(trace, iter_cycles)
        assert len(segments) == 2
        assert all(s.access_count() == 10 for s in segments)

    def test_small_segments_dropped(self):
        trace = AccessTrace(timestamps=[0, 100], start=-10, end=10**6)
        assert segment_trace(trace, 9700) == []


@pytest.fixture(scope="module")
def fresh_attack_env():
    """A second, isolated environment for the end-to-end test (the shared
    ``attack_env`` machine accumulates state from the scanner tests).

    Training oversamples the positive class (``positive_reps=16``): with
    one target set among 32 and a ~25% victim duty cycle, ``per_set=2``
    gives the SVM two positive windows that are often both idle, and it
    collapses to "always negative" (the root cause of the historical
    xfail here — the scan could then never identify the target)."""
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=81)
    victim = EcdsaVictim(machine, core=2, cfg=VictimConfig(), seed=8)
    ctx = AttackerContext(machine, main_core=0, helper_core=1, seed=4)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    scfg = ScannerConfig()
    traces, labels = collect_labeled_traces(
        ctx, bulk.evsets, target_set, scfg, per_set=2, positive_reps=16
    )
    classifier = TargetSetClassifier(machine.clock_hz, scfg).fit(traces, labels)
    return machine, victim, ctx, bulk.evsets, target_set, classifier, scfg


@pytest.mark.slow
class TestEndToEnd:
    # De-xfailed in ISSUE 6.  Root cause of the seed failure: positive-
    # class starvation in classifier training (2 positive vs 62 negative
    # windows; both positives idle under the victim's ~25% duty cycle),
    # so the SVM never fired and the scan timed out without identifying
    # the target.  Cured by class-balanced training collection
    # (collect_labeled_traces positive_reps) in the fixture above.
    def test_full_attack_recovers_nonce_bits(self, fresh_attack_env):
        """The Section 7.3 headline: most nonce bits, few errors."""
        machine, victim, ctx, evsets, target_set, classifier, scfg = (
            fresh_attack_env
        )
        cfg = AttackConfig(n_traces=2, scan_timeout_s=0.5)
        report = run_end_to_end(
            ctx, victim, classifier, cfg, evsets=evsets
        )
        assert report.target_identified
        assert report.scores, "no signings scored"
        assert report.median_recovered_fraction > 0.5
        assert report.mean_bit_error_rate < 0.15
        assert report.total_seconds(machine.cfg.clock_ghz) > 0

    def test_collect_signing_traces_shapes(self, attack_env):
        machine, victim, ctx, evsets, target_set, classifier, scfg = attack_env
        target_evset = next(
            e for e in evsets if ctx.true_set_of(e.target_va) == target_set
        )
        traces = collect_signing_traces(
            ctx, victim, target_evset, AttackConfig(n_traces=1)
        )
        assert traces
        assert traces[0].access_count() >= victim.curve.nonce_bits // 3
