"""Unit tests for the invariant checker and its hierarchy hook."""

from __future__ import annotations

import pytest

from repro._util import make_rng
from repro.config import cloud_run_noise, no_noise, tiny_machine
from repro.defenses import WayPartitionedCache, apply_way_partitioning
from repro.defenses.partition import OTHER_DOMAIN
from repro.errors import ReproError
from repro.memsys._reference import ReferenceSetAssociativeCache
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.machine import Machine
from repro.check import (
    InvariantChecker,
    InvariantViolation,
    install_invariant_hook,
    invariant_hook,
    uninstall_invariant_hook,
)
from repro.check.invariants import (
    check_flat_cache,
    check_reference_cache,
    resident_keys,
)


def _exercise(machine: Machine, n: int = 120) -> None:
    space = machine.new_address_space()
    lines = [space.translate_line(space.alloc_page()) for _ in range(n)]
    for i, line in enumerate(lines):
        machine.access(i % machine.cfg.cores, line, write=i % 3 == 0)
    machine.access_batch(0, lines[: n // 2])
    machine.flush_batch(lines[n // 2 :])


class TestCheckFlatCache:
    def _cache(self, policy="lru", ops=60):
        cache = SetAssociativeCache("T", 8, 4, policy, make_rng(3))
        rng = make_rng(9)
        for _ in range(ops):
            cache.insert(rng.randrange(8), rng.randrange(40), owner=rng.randrange(3))
        return cache

    @pytest.mark.parametrize("policy", ["lru", "tree_plru", "srrip", "qlru", "random"])
    def test_clean_cache_passes(self, policy):
        check_flat_cache(self._cache(policy), deep=True)

    def test_detects_corrupt_where_index(self):
        cache = self._cache()
        key = next(iter(cache._where))
        cache._where[key] = (cache._where[key] + 1) % (cache.n_sets * cache.ways)
        with pytest.raises(InvariantViolation):
            check_flat_cache(cache)

    def test_detects_missing_index_entry(self):
        cache = self._cache()
        cache._where.pop(next(iter(cache._where)))
        with pytest.raises(InvariantViolation):
            check_flat_cache(cache)

    def test_detects_occupancy_drift(self):
        cache = self._cache()
        cache._occ[0] += 1
        with pytest.raises(InvariantViolation):
            check_flat_cache(cache)

    def test_detects_stale_owner_on_empty_slot(self):
        cache = self._cache(ops=10)
        slot = next(i for i, t in enumerate(cache._tags) if t is None)
        cache._owners[slot] = 2
        with pytest.raises(InvariantViolation):
            check_flat_cache(cache, deep=True)

    def test_detects_illegal_policy_state(self):
        cache = self._cache("srrip")
        cache._state[0] = 7  # RRPV must stay in [0, 3]
        with pytest.raises(InvariantViolation):
            check_flat_cache(cache)

    def test_detects_lru_stamp_outside_live_range(self):
        cache = self._cache("lru")
        cache._state[0] = cache._pol._stamp + 10
        with pytest.raises(InvariantViolation):
            check_flat_cache(cache)


class TestCheckReferenceCache:
    def test_clean_reference_passes(self):
        cache = ReferenceSetAssociativeCache("R", 8, 4, "lru", make_rng(3))
        for tag in range(10):
            cache.insert(tag % 8, tag, owner=0)
        check_reference_cache(cache)

    def test_detects_duplicate_tag(self):
        cache = ReferenceSetAssociativeCache("R", 8, 4, "lru", make_rng(3))
        cache.insert(0, 1, owner=0)
        cache.insert(0, 2, owner=0)
        cset = cache._sets[0]
        cset.tags[cset.tags.index(2)] = 1
        with pytest.raises(InvariantViolation):
            check_reference_cache(cache)


class TestResidentKeys:
    def test_partition_overlap_is_a_violation(self):
        domains = {0: "a", 1: "b"}
        cache = WayPartitionedCache(
            "SF", 8, "lru", make_rng(0), {"a": 2, "b": 2, OTHER_DOMAIN: 2},
            lambda owner: domains.get(owner, OTHER_DOMAIN),
        )
        cache.insert(1, 5, owner=0)
        cache._parts["b"].insert(1, 5, owner=1)  # bypass the move logic
        with pytest.raises(InvariantViolation):
            resident_keys(cache)


class TestInvariantChecker:
    def test_clean_machine_passes(self, tiny):
        _exercise(tiny)
        checker = InvariantChecker(tiny.hierarchy)
        checker.check(deep=True)
        assert checker.checks == 1

    def test_detects_exclusivity_violation(self, tiny):
        _exercise(tiny)
        hier = tiny.hierarchy
        key = next(iter(resident_keys(hier.sf)))
        tag, s = divmod(key, hier.llc.n_sets)
        hier.llc.insert(s, tag, owner=-2)
        with pytest.raises(InvariantViolation, match="exclusivity"):
            InvariantChecker(hier).check()

    def test_detects_backwards_noise_clock(self, tiny):
        _exercise(tiny)
        hier = tiny.hierarchy
        checker = InvariantChecker(hier)
        checker.check()
        s = next(i for i in range(hier.sf.n_sets) if hier.sf._touched[i])
        hier.sf._noise_t[s] -= 1
        with pytest.raises(InvariantViolation, match="ran backwards"):
            checker.check()

    def test_partitioned_machine_passes(self):
        machine = Machine(tiny_machine(cores=3), noise=cloud_run_noise(), seed=5)
        apply_way_partitioning(
            machine, {0: "att", 1: "att", 2: "vic"},
            {"att": 2, "vic": 2, OTHER_DOMAIN: 2},
        )
        _exercise(machine)
        InvariantChecker(machine.hierarchy).check(deep=True)


class TestHook:
    def test_hook_checks_every_access(self, tiny):
        checker = install_invariant_hook(tiny.hierarchy)
        _exercise(tiny, n=20)
        assert checker.checks > 20
        uninstall_invariant_hook(tiny.hierarchy)

    def test_double_install_rejected(self, tiny):
        install_invariant_hook(tiny.hierarchy)
        with pytest.raises(ReproError):
            install_invariant_hook(tiny.hierarchy)
        uninstall_invariant_hook(tiny.hierarchy)

    def test_uninstall_restores_class_methods(self, tiny):
        hier = tiny.hierarchy
        checker = install_invariant_hook(hier)
        assert "access" in hier.__dict__
        assert uninstall_invariant_hook(hier) is checker
        assert "access" not in hier.__dict__
        assert getattr(hier, "_invariant_checker", None) is None

    def test_context_manager_form(self, tiny):
        with invariant_hook(tiny.hierarchy) as checker:
            _exercise(tiny, n=10)
            assert checker.checks > 0
        assert "access" not in tiny.hierarchy.__dict__

    def test_hook_catches_injected_corruption(self, tiny):
        hier = tiny.hierarchy
        space = tiny.new_address_space()
        line = space.translate_line(space.alloc_page())
        with invariant_hook(hier):
            tiny.access(0, line)
            hier.sf._occ[next(
                i for i in range(hier.sf.n_sets) if hier.sf._touched[i]
            )] += 1
            with pytest.raises(InvariantViolation):
                tiny.access(0, line + 64)

    def test_hooked_run_is_bit_identical(self):
        digests = []
        for hook in (False, True):
            machine = Machine(tiny_machine(), noise=no_noise(), seed=11)
            if hook:
                install_invariant_hook(machine.hierarchy)
            _exercise(machine, n=80)
            if hook:
                uninstall_invariant_hook(machine.hierarchy)
            from tests._parity import _machine_digest

            digests.append(_machine_digest(machine))
        assert digests[0] == digests[1]
