"""Tests for the LLC slice hash functions."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.memsys.slice_hash import (
    ComplexSliceHash,
    LinearSliceHash,
    make_slice_hash,
)


class TestLinearSliceHash:
    def test_range(self):
        h = LinearSliceHash(8, seed=1)
        assert all(0 <= h.slice_of(i * 977) < 8 for i in range(500))

    def test_deterministic(self):
        a, b = LinearSliceHash(8, seed=3), LinearSliceHash(8, seed=3)
        assert [a.slice_of(i) for i in range(64)] == [b.slice_of(i) for i in range(64)]

    def test_seed_changes_hash(self):
        a, b = LinearSliceHash(8, seed=1), LinearSliceHash(8, seed=2)
        assert [a.slice_of(i) for i in range(256)] != [b.slice_of(i) for i in range(256)]

    def test_single_slice(self):
        h = LinearSliceHash(1, seed=0)
        assert h.slice_of(12345) == 0

    def test_rejects_non_pow2(self):
        with pytest.raises(ConfigurationError):
            LinearSliceHash(28)

    def test_linearity(self):
        """h(a ^ b) == h(a) ^ h(b) — the defining GF(2) property."""
        h = LinearSliceHash(16, seed=5)
        for a, b in [(0x123, 0x456), (0xABCDE, 0x54321), (7, 1 << 20)]:
            assert h.slice_of(a ^ b) == h.slice_of(a) ^ h.slice_of(b)

    def test_uniformity(self):
        h = LinearSliceHash(4, seed=2)
        counts = Counter(h.slice_of(i) for i in range(4096))
        for c in counts.values():
            assert abs(c - 1024) < 200


class TestComplexSliceHash:
    @pytest.mark.parametrize("n_slices", [3, 22, 26, 28])
    def test_range_non_pow2(self, n_slices):
        h = ComplexSliceHash(n_slices, seed=0)
        assert all(0 <= h.slice_of(i * 31 + 7) < n_slices for i in range(1000))

    def test_uniformity_28(self):
        h = ComplexSliceHash(28, seed=1)
        counts = Counter(h.slice_of(i) for i in range(28_000))
        expected = 1000
        for c in counts.values():
            assert abs(c - expected) < 250

    def test_nonlinear(self):
        """The complex hash must NOT be GF(2)-linear."""
        h = ComplexSliceHash(28, seed=0)
        violations = sum(
            1
            for a, b in [(i * 1009, i * 2003 + 5) for i in range(1, 80)]
            if h.slice_of(a ^ b) != h.slice_of(a) ^ h.slice_of(b)
        )
        assert violations > 0

    def test_page_offset_control_insufficient(self):
        """Fixing the controllable low bits must not pin the slice —
        the property behind U_LLC = 2^n_uc * n_slices (Section 2.2.1)."""
        h = ComplexSliceHash(28, seed=0)
        # Lines sharing low 6 line-address bits (same page offset), random
        # high bits, must still spread over (nearly) all slices.
        slices = {h.slice_of((i * 2654435761 % (1 << 22)) << 6 | 0x21) for i in range(3000)}
        assert len(slices) >= 26

    def test_deterministic(self):
        a, b = ComplexSliceHash(22, seed=4), ComplexSliceHash(22, seed=4)
        assert [a.slice_of(i * 3) for i in range(100)] == [
            b.slice_of(i * 3) for i in range(100)
        ]

    def test_rejects_zero_slices(self):
        with pytest.raises(ConfigurationError):
            ComplexSliceHash(0)


class TestFactory:
    def test_linear_pow2(self):
        assert isinstance(make_slice_hash("linear", 8), LinearSliceHash)

    def test_linear_falls_back_for_non_pow2(self):
        assert isinstance(make_slice_hash("linear", 28), ComplexSliceHash)

    def test_complex_always_complex(self):
        assert isinstance(make_slice_hash("complex", 8), ComplexSliceHash)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_slice_hash("quantum", 8)
