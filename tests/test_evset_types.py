"""Tests for eviction-set data types and configuration validation."""

from __future__ import annotations

import pytest

from repro.core.evset.types import (
    AlgorithmStats,
    BuildOutcome,
    CandidateSet,
    EvictionSet,
    EvsetConfig,
)
from repro.errors import ConfigurationError


class TestEvsetConfig:
    def test_defaults_match_paper_protocol(self):
        cfg = EvsetConfig()
        assert cfg.candidate_scale == 3.0
        assert cfg.max_attempts == 10
        assert cfg.max_backtracks == 20
        assert cfg.budget_ms == 1000.0

    def test_budget_cycles(self):
        cfg = EvsetConfig(budget_ms=100.0)
        assert cfg.budget_cycles(2.0) == 200_000_000

    def test_rejects_small_scale(self):
        with pytest.raises(ConfigurationError):
            EvsetConfig(candidate_scale=1.0)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigurationError):
            EvsetConfig(max_attempts=0)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            EvsetConfig(budget_ms=0.0)

    def test_frozen(self):
        cfg = EvsetConfig()
        with pytest.raises(AttributeError):
            cfg.budget_ms = 5.0


class TestDataTypes:
    def test_candidate_set_len(self):
        cs = CandidateSet(page_offset=0x40, vas=[1, 2, 3])
        assert len(cs) == 3

    def test_eviction_set_len(self):
        ev = EvictionSet(kind="sf", vas=list(range(12)), target_va=99)
        assert len(ev) == 12
        assert ev.kind == "sf"

    def test_outcome_elapsed_ms(self):
        out = BuildOutcome(success=True, evset=None, elapsed_cycles=2_000_000)
        assert out.elapsed_ms(2.0) == pytest.approx(1.0)

    def test_outcome_default_stats(self):
        out = BuildOutcome(success=False, evset=None, elapsed_cycles=0)
        assert isinstance(out.stats, AlgorithmStats)
        assert out.stats.tests == 0
        assert out.failure_reason == ""
