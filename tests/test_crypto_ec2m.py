"""Tests for point arithmetic and the vulnerable Montgomery ladder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.curves import curve_by_name
from repro.crypto.ec2m import (
    ladder_scalar_mult,
    ladder_steps,
    point_add,
    point_double,
    point_neg,
    scalar_mult,
)
from repro.errors import CryptoError

KTEST = curve_by_name("K-TEST")
K163 = curve_by_name("K-163")


class TestAffineOps:
    def test_add_identity(self):
        g = KTEST.generator
        assert point_add(KTEST, g, None) == g
        assert point_add(KTEST, None, g) == g

    def test_add_inverse_is_infinity(self):
        g = KTEST.generator
        assert point_add(KTEST, g, point_neg(KTEST, g)) is None

    def test_neg_involution(self):
        g = KTEST.generator
        assert point_neg(KTEST, point_neg(KTEST, g)) == g

    def test_double_matches_add(self):
        g = KTEST.generator
        assert point_double(KTEST, g) == point_add(KTEST, g, g)

    def test_double_infinity(self):
        assert point_double(KTEST, None) is None

    def test_double_order2_point(self):
        # (0, sqrt(b)) has order 2 on a binary curve.
        p = KTEST.decompress_x(0)
        assert point_double(KTEST, p) is None

    def test_scalar_zero(self):
        assert scalar_mult(KTEST, 0, KTEST.generator) is None

    def test_scalar_negative(self):
        g = KTEST.generator
        assert scalar_mult(KTEST, -3, g) == point_neg(
            KTEST, scalar_mult(KTEST, 3, g)
        )


class TestLadder:
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 100, 12345])
    def test_matches_double_and_add(self, k):
        g = KTEST.generator
        assert ladder_scalar_mult(KTEST, k, g) == scalar_mult(KTEST, k, g)

    def test_matches_on_k163(self):
        g = K163.generator
        for k in (5, 0xDEADBEEF, K163.n - 1):
            assert ladder_scalar_mult(K163, k, g) == scalar_mult(K163, k, g)

    def test_order_gives_infinity(self):
        assert ladder_scalar_mult(KTEST, KTEST.n, KTEST.generator) is None

    def test_zero_scalar(self):
        assert ladder_scalar_mult(KTEST, 0, KTEST.generator) is None

    def test_negative_scalar_rejected(self):
        with pytest.raises(CryptoError):
            ladder_scalar_mult(KTEST, -1, KTEST.generator)

    @given(st.integers(1, (1 << 17) - 1))
    @settings(max_examples=60, deadline=None)
    def test_property_ladder_equals_reference(self, k):
        g = KTEST.generator
        assert ladder_scalar_mult(KTEST, k, g) == scalar_mult(KTEST, k, g)


class TestLadderLeak:
    """The secret-dependent structure the attack exploits (Figure 8a)."""

    def test_observer_sees_all_bits_in_order(self):
        k = 0b1011001
        _, bits = ladder_steps(KTEST, k, KTEST.generator)
        # The ladder processes bits below the (implicit) top bit, MSB first.
        assert bits == [0, 1, 1, 0, 0, 1]

    def test_iteration_count_is_bitlength_minus_one(self):
        for k in (1, 2, 0b101, 0xFFFF):
            _, bits = ladder_steps(KTEST, k, KTEST.generator)
            assert len(bits) == max(0, k.bit_length() - 1)

    def test_observer_reconstructs_scalar(self):
        """Full bit recovery = full nonce recovery (the attack's endgame)."""
        k = 0x1A2B3
        _, bits = ladder_steps(KTEST, k, KTEST.generator)
        reconstructed = 1
        for bit in bits:
            reconstructed = (reconstructed << 1) | bit
        assert reconstructed == k

    def test_observer_exceptions_not_swallowed(self):
        def boom(i, b):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError):
            ladder_scalar_mult(KTEST, 12345, KTEST.generator, observer=boom)
