"""Tests for the cloud substrate: noise, tenants, and the FaaS model."""

from __future__ import annotations

import pytest

from repro._util import make_rng
from repro.cloud import (
    BackgroundNoise,
    ContainerInstance,
    FaaSPlatform,
    Host,
    STANDARD_TENANT_MIX,
    TenantProfile,
    aggregate_noise,
)
from repro.config import (
    NoiseConfig,
    cloud_run_noise,
    no_noise,
    tiny_machine,
)
from repro.errors import ConfigurationError
from repro.memsys.machine import Machine


class TestBackgroundNoise:
    def test_disabled_when_zero(self):
        noise = BackgroundNoise(no_noise(), 2.0, make_rng(0))
        assert not noise.enabled

    def test_enabled_for_cloud(self):
        noise = BackgroundNoise(cloud_run_noise(), 2.0, make_rng(0))
        assert noise.enabled

    def test_expected_events(self):
        noise = BackgroundNoise(cloud_run_noise(), 2.0, make_rng(0))
        # 11.5/ms LLC + 0.8 * 11.5/ms SF over 2e6 cycles (1 ms).
        assert noise.expected_events(2_000_000) == pytest.approx(
            11.5 * 1.8, rel=1e-6
        )

    def test_reconcile_inserts_foreign_lines(self):
        machine = Machine(
            tiny_machine(), noise=cloud_run_noise().scaled(50), seed=1
        )
        hier = machine.hierarchy
        machine.advance(2_000_000)
        hier.noise_source.reconcile(hier, 5, machine.now)
        assert hier.sf.occupancy(5) > 0 or hier.llc.occupancy(5) > 0
        assert machine.noise.events > 0

    def test_insertions_capped(self):
        """A set untouched for ages gets at most ~3x ways insertions."""
        machine = Machine(
            tiny_machine(), noise=cloud_run_noise().scaled(1000), seed=2
        )
        hier = machine.hierarchy
        machine.advance(200_000_000)
        before = machine.noise.events
        hier.noise_source.reconcile(hier, 3, machine.now)
        applied = machine.noise.events - before
        assert applied <= 3 * (hier.sf.ways + hier.llc.ways)

    def test_rate_accuracy(self):
        """Observed insertion rate matches the configured rate."""
        cfg = NoiseConfig(name="x", llc_accesses_per_ms_per_set=100.0, sf_fraction=0.0)
        machine = Machine(tiny_machine(), noise=cfg, seed=3)
        hier = machine.hierarchy
        total = 0
        # Reconcile the same set every 20k cycles for 20 ms total.
        for _ in range(2000):
            machine.advance(20_000)
            hier.noise_source.reconcile(hier, 9, machine.now)
        # 100/ms * 20 ms = 2000 expected.
        assert machine.noise.events == pytest.approx(2000, rel=0.15)


class TestTenants:
    def test_aggregate_adds_rates(self):
        mix = [
            (TenantProfile("a", 2.0, sf_fraction=1.0), 2),
            (TenantProfile("b", 1.0, sf_fraction=0.0), 1),
        ]
        agg = aggregate_noise(mix)
        assert agg.llc_accesses_per_ms_per_set == pytest.approx(5.0)
        assert agg.sf_fraction == pytest.approx(0.8)

    def test_standard_mix_matches_paper_rate(self):
        agg = aggregate_noise(STANDARD_TENANT_MIX)
        assert agg.llc_accesses_per_ms_per_set == pytest.approx(11.5, rel=0.01)

    def test_empty_mix(self):
        agg = aggregate_noise([])
        assert agg.llc_accesses_per_ms_per_set == 0.0

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            aggregate_noise([(TenantProfile("a", 1.0), -1)])

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            TenantProfile("bad", -1.0)


class TestFaaS:
    def _host(self):
        return Host("h0", tiny_machine(cores=2), no_noise(), seed=0)

    def test_deploy_pins_cores(self):
        host = self._host()
        inst = host.deploy("attacker", cores=2)
        assert len(inst.cores) == 2
        assert host.free_cores() == 0

    def test_deploy_over_capacity(self):
        host = self._host()
        host.deploy("a", cores=2)
        with pytest.raises(ConfigurationError):
            host.deploy("b", cores=1)

    def test_release_frees_cores(self):
        host = self._host()
        inst = host.deploy("a", cores=2)
        host.release(inst)
        assert host.free_cores() == 2

    def test_request_timeout(self):
        host = self._host()
        inst = host.deploy("a", cores=1, max_request_seconds=0.001)
        inst.begin_request()
        assert not inst.request_timed_out()
        host.machine.advance(int(0.002 * host.machine.clock_hz))
        assert inst.request_timed_out()

    def test_billing_by_cpu_time(self):
        host = self._host()
        inst = host.deploy("a", cores=2, max_request_seconds=100)
        inst.begin_request()
        host.machine.advance(2_000_000)  # 1 ms
        billed = inst.end_request()
        assert billed == pytest.approx(0.002)  # 2 cores * 1 ms

    def test_instance_lifetime(self):
        host = self._host()
        inst = host.deploy("a", cores=1, lifetime_seconds=0.001)
        assert not inst.terminated()
        host.machine.advance(int(0.002 * host.machine.clock_hz))
        assert inst.terminated()

    def test_platform_placement_and_colocation(self):
        platform = FaaSPlatform(tiny_machine(cores=4), no_noise(), n_hosts=2, seed=1)
        platform.launch("victim", instances=2, cores=2)
        platform.launch("attacker", instances=2, cores=2)
        pairs = platform.co_located("attacker", "victim")
        for attacker, victim in pairs:
            assert attacker.host is victim.host
            assert set(attacker.cores).isdisjoint(victim.cores)

    def test_launch_respects_capacity(self):
        platform = FaaSPlatform(tiny_machine(cores=2), no_noise(), n_hosts=1, seed=0)
        placed = platform.launch("svc", instances=5, cores=2)
        assert len(placed) == 1

    def test_remaining_request_cycles(self):
        host = self._host()
        inst = host.deploy("a", cores=1, max_request_seconds=1.0)
        inst.begin_request()
        host.machine.advance(1_000_000)
        remaining = inst.remaining_request_cycles()
        assert remaining == pytest.approx(
            host.machine.clock_hz * 1.0 - 1_000_000, rel=1e-6
        )
