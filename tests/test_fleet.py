"""Tests for the fleet campaign service (repro.fleet).

The invariant under test throughout: a sharded, prioritized,
killed-and-resumed fleet run produces results value-identical to a
serial ``run_campaign`` of the same specs.
"""

from __future__ import annotations

import asyncio
import json
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.streaming import (
    CampaignAggregate,
    StreamingMoments,
    aggregate_values,
)
from repro.exec import ExecPolicy, run_campaign
from repro.exec.journal import CampaignJournal
from repro.fleet import (
    Datacenter,
    DatacenterConfig,
    FleetPolicy,
    FleetScheduler,
    FleetStore,
    noise_mc_campaign,
    order_shards,
    placement_campaign,
    plan_shards,
    quiet_hours_priority,
    run_fleet,
    shard_subcampaign,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _campaign(trials=100, seed=7):
    return noise_mc_campaign(env="cloud", trials=trials, base_seed=seed)


def _serial_values(campaign):
    return run_campaign(campaign, ExecPolicy(jobs=1)).raise_on_failure().values()


class TestSharding:
    def test_plan_is_deterministic_and_covers_campaign(self):
        campaign = _campaign(trials=1000)
        a = plan_shards(campaign, shard_size=128)
        b = plan_shards(campaign, shard_size=128)
        assert a == b
        assert a[0].lo == 0 and a[-1].hi == 1000
        for prev, cur in zip(a, a[1:]):
            assert prev.hi == cur.lo
        assert all(s.fingerprint == campaign.fingerprint() for s in a)
        assert [s.n_trials for s in a] == [128] * 7 + [104]

    def test_different_campaign_different_shard_fingerprints(self):
        a = plan_shards(_campaign(seed=1), shard_size=64)
        b = plan_shards(_campaign(seed=2), shard_size=64)
        assert a[0].fingerprint != b[0].fingerprint

    def test_subcampaign_trials_match_parent_slice(self):
        campaign = _campaign(trials=50)
        shard = plan_shards(campaign, shard_size=16)[2]
        sub = shard_subcampaign(campaign, shard)
        assert len(sub) == shard.n_trials
        assert sub.seeds == campaign.seeds[shard.lo : shard.hi]
        sub_values = _serial_values(sub)
        parent_values = _serial_values(campaign)[shard.lo : shard.hi]
        assert sub_values == parent_values

    def test_order_shards_priority_then_id(self):
        shards = plan_shards(_campaign(trials=100), shard_size=20)
        ordered = order_shards(shards, priority=lambda s: -s.lo)
        assert [s.shard_id for s in ordered] == [4, 3, 2, 1, 0]
        assert [s.shard_id for s in order_shards(shards)] == [0, 1, 2, 3, 4]


class TestStoreAndResume:
    def test_fleet_matches_serial_run_campaign(self, tmp_path):
        campaign = _campaign(trials=300)
        report, store = run_fleet(
            campaign, tmp_path, FleetPolicy(shard_size=64, max_inflight=3)
        )
        assert report.complete and report.failed_trials == 0
        fleet_values = [v for _, v in store.iter_values()]
        assert fleet_values == _serial_values(campaign)

    def test_kill_and_resume_equivalence(self, tmp_path):
        campaign = _campaign(trials=400)
        policy = FleetPolicy(shard_size=50, stop_after_shards=2)
        report, store = run_fleet(campaign, tmp_path, policy)
        assert report.drained and not report.complete
        assert 0 < report.completed_trials < 400
        # Resume with a fresh scheduler: only pending shards run.
        report2, store2 = run_fleet(
            campaign, tmp_path, FleetPolicy(shard_size=50)
        )
        assert report2.complete
        assert report2.shards_skipped == 0
        fleet_values = [v for _, v in store2.iter_values()]
        assert fleet_values == _serial_values(campaign)

    def test_sigkill_mid_run_then_resume(self, tmp_path):
        """A real SIGKILL loses at most the unflushed tail; resume completes."""
        code = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.fleet import FleetPolicy, run_fleet\n"
            "from repro.fleet.campaigns import noise_mc_campaign\n"
            "c = noise_mc_campaign(env='cloud', trials=5000, base_seed=3)\n"
            "print('ready', flush=True)\n"
            "run_fleet(c, {root!r}, FleetPolicy(shard_size=100, flush_every=10))\n"
        ).format(src=str(Path(__file__).resolve().parent.parent / "src"),
                 root=str(tmp_path))
        proc = subprocess.Popen(
            [sys.executable, "-c", code], stdout=subprocess.PIPE, text=True
        )
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(0.15)  # let some shards land on disk
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)

        campaign = noise_mc_campaign(env="cloud", trials=5000, base_seed=3)
        store = FleetStore(tmp_path, campaign, shard_size=100)
        partial = store.completed_trials()
        assert partial < 5000  # the kill really interrupted it
        report, store = run_fleet(
            campaign, tmp_path, FleetPolicy(shard_size=100)
        )
        assert report.complete
        fleet_values = [v for _, v in store.iter_values()]
        assert fleet_values == _serial_values(campaign)

    def test_compaction_round_trip(self, tmp_path):
        campaign = _campaign(trials=120)
        _, store = run_fleet(campaign, tmp_path, FleetPolicy(shard_size=32))
        before = dict(store.iter_completed())
        path = store.compact()
        assert path.exists()
        # Folded segments are gone; records are unchanged.
        assert not any(
            store.segment_path(s).exists() for s in store.shards
        )
        after = dict(store.iter_completed())
        assert after == before
        assert store.completed_trials() == 120
        # Compacting again (nothing new) is a no-op for readers.
        store.compact()
        assert dict(store.iter_completed()) == before

    def test_partial_compaction_keeps_live_segments(self, tmp_path):
        campaign = _campaign(trials=200)
        run_fleet(
            campaign, tmp_path,
            FleetPolicy(shard_size=40, stop_after_shards=1),
        )
        store = FleetStore(tmp_path, campaign, shard_size=40)
        done_before = store.completed_trials()
        assert 0 < done_before < 200
        store.compact()
        assert store.completed_trials() == done_before
        report, store = run_fleet(campaign, tmp_path, FleetPolicy(shard_size=40))
        assert report.complete
        assert [v for _, v in store.iter_values()] == _serial_values(campaign)

    def test_compacted_file_is_a_valid_campaign_journal(self, tmp_path):
        campaign = _campaign(trials=90)
        _, store = run_fleet(campaign, tmp_path, FleetPolicy(shard_size=30))
        compacted = store.compact()
        journal = CampaignJournal(tmp_path / "journals", campaign)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(compacted, journal.path)
        loaded = journal.load_completed()
        assert len(loaded) == 90
        # A journaled rerun is a pure cache hit: zero trials executed.
        result = run_campaign(campaign, ExecPolicy(jobs=1), journal=journal)
        assert result.metrics.cached == 90
        assert result.metrics.completed == 0
        assert result.values() == _serial_values(campaign)

    def test_store_rejects_foreign_shard(self, tmp_path):
        campaign = _campaign(trials=60, seed=1)
        other = _campaign(trials=60, seed=2)
        store = FleetStore(tmp_path, campaign, shard_size=30)
        foreign = plan_shards(other, shard_size=30)[0]
        with pytest.raises(ValueError, match="belongs to campaign"):
            store.shard_journal(foreign)


class TestScheduler:
    def test_backpressure_bounds_dispatch_ahead_of_slow_consumer(self, tmp_path):
        campaign = _campaign(trials=600)
        policy = FleetPolicy(
            shard_size=20, max_inflight=2, queue_depth=2, result_buffer=2
        )
        store = FleetStore(tmp_path, campaign, policy.shard_size)
        store.write_meta()

        async def slow_consumer(outcome):
            await asyncio.sleep(0.01)

        scheduler = FleetScheduler(
            campaign, store, policy, on_shard=slow_consumer
        )
        report = asyncio.run(scheduler.run())
        assert report.complete
        # Dispatch never ran away from the consumer: bounded by the
        # in-flight window plus the buffered results, far below the 30
        # shards a backpressure-free scheduler would race through.
        bound = policy.max_inflight + policy.result_buffer + 1
        assert 0 < report.peak_dispatch_ahead <= bound
        assert report.n_shards == 30

    def test_priority_orders_dispatch(self, tmp_path):
        campaign = _campaign(trials=100)
        policy = FleetPolicy(shard_size=20, max_inflight=1, queue_depth=8)
        store = FleetStore(tmp_path, campaign, policy.shard_size)
        store.write_meta()
        executed = []

        def note(outcome):
            executed.append(outcome.shard.shard_id)

        scheduler = FleetScheduler(
            campaign, store, policy,
            priority=lambda s: -s.lo,  # highest range first
            on_shard=note,
        )
        report = asyncio.run(scheduler.run())
        assert report.complete
        assert executed == [4, 3, 2, 1, 0]

    def test_crashing_trials_retry_then_stand_as_failures(self, tmp_path):
        from repro.exec.spec import Campaign

        def flaky(cfg, seed):
            if seed % 3 == 0:
                raise RuntimeError("boom")
            return {"seed": seed}

        campaign = Campaign.build(
            name="flaky", fn=flaky, config=None, trials=30, base_seed=0
        )
        policy = FleetPolicy(shard_size=10, shard_retries=1,
                             retry_backoff_s=0.0)
        report, store = run_fleet(campaign, tmp_path, policy)
        assert not report.complete
        assert report.shards_failed == 3
        assert report.shard_retries == 3  # each shard retried once
        assert report.failed_trials > 0
        # The successful trials are durable despite the failures.
        ok = dict(store.iter_completed())
        assert all(obj["seed"] % 3 != 0 for obj in ok.values())

    def test_drain_before_start_executes_nothing(self, tmp_path):
        campaign = _campaign(trials=100)
        policy = FleetPolicy(shard_size=20)
        store = FleetStore(tmp_path, campaign, policy.shard_size)
        store.write_meta()
        scheduler = FleetScheduler(campaign, store, policy)
        scheduler.request_drain()
        report = asyncio.run(scheduler.run())
        assert report.shards_executed == 0
        assert report.completed_trials == 0
        assert report.drained


class TestStreamingAggregates:
    def test_welford_matches_util_stddev(self):
        from repro._util import mean, stddev

        values = [0.5, 1.25, -3.0, 7.5, 2.25, 0.0]
        moments = StreamingMoments()
        for v in values:
            moments.push(v)
        assert moments.mean == pytest.approx(mean(values), abs=1e-12)
        assert moments.std == pytest.approx(stddev(values), abs=1e-12)
        assert (moments.min, moments.max) == (-3.0, 7.5)

    def test_aggregate_handles_bools_and_numbers(self):
        agg = CampaignAggregate()
        agg.push({"hit": True, "ms": 2.0})
        agg.push({"hit": False, "ms": 4.0})
        summary = agg.summary()
        assert summary["trials"] == 2
        assert summary["hit"] == {"count": 1, "rate": 0.5}
        assert summary["ms"]["mean"] == 3.0

    def test_fleet_aggregates_identical_to_serial(self, tmp_path):
        campaign = _campaign(trials=250)
        # Fleet path: shard, drain mid-run, resume, stream the store.
        run_fleet(campaign, tmp_path,
                  FleetPolicy(shard_size=40, stop_after_shards=2))
        _, store = run_fleet(campaign, tmp_path, FleetPolicy(shard_size=40))
        fleet = aggregate_values(v for _, v in store.iter_values())
        serial = aggregate_values(_serial_values(campaign))
        assert fleet == serial  # bit-identical floats, not approx


class TestDatacenter:
    def test_churn_is_reproducible_and_order_independent(self):
        cfg = DatacenterConfig(n_hosts=16)
        a = Datacenter(cfg, seed=5)
        b = Datacenter(cfg, seed=5)
        # Query b in a scrambled order; trajectories must not care.
        for host in (3, 1, 3, 9):
            b.tenants_at(host, 40)
        assert [a.tenants_at(3, h) for h in range(48)] == [
            b.tenants_at(3, h) for h in range(48)
        ]
        assert Datacenter(cfg, seed=6).tenants_at(3, 0) != a.tenants_at(
            3, 0
        ) or Datacenter(cfg, seed=6).tenants_at(3, 24) != a.tenants_at(3, 24)

    def test_placements_reproducible_under_fixed_seed(self):
        cfg = DatacenterConfig(n_hosts=32)
        a = Datacenter(cfg, seed=11).placements(200)
        b = Datacenter(cfg, seed=11).placements(200)
        assert a == b
        c = Datacenter(cfg, seed=12).placements(200)
        assert a != c
        assert all(0 <= p.host_id < 32 for p in a)

    def test_quiet_hours_are_quieter_but_barely(self):
        """The paper's Table 3 shape: 3-5am dips, but only by a few %."""
        dc = Datacenter(DatacenterConfig(n_hosts=64), seed=0)
        quiet = dc.mean_rate_at(3, sample_hosts=64)
        busy = dc.mean_rate_at(13, sample_hosts=64)
        assert quiet < busy
        assert quiet / busy > 0.85  # barely quieter, not idle

    def test_placement_campaign_deterministic_fingerprint(self):
        dc = lambda: Datacenter(DatacenterConfig(n_hosts=16), seed=2)
        a = placement_campaign(dc(), trials=50, base_seed=9)
        b = placement_campaign(dc(), trials=50, base_seed=9)
        assert a.fingerprint() == b.fingerprint()
        assert _serial_values(a) == _serial_values(b)

    def test_quiet_hours_priority_prefers_quiet_shards(self):
        dc = Datacenter(DatacenterConfig(n_hosts=16), seed=2)
        campaign = placement_campaign(
            dc, trials=48, hours=(3, 13), base_seed=9
        )
        # Shard size 1: each shard is one placement, alternating 3am/1pm.
        shards = plan_shards(campaign, shard_size=1)
        priority = quiet_hours_priority(campaign, dc)
        ordered = order_shards(shards, priority)
        first_half_hours = {
            campaign.configs[s.lo].hour for s in ordered[: len(ordered) // 2]
        }
        assert first_half_hours == {3}

    def test_materialize_host_builds_real_faas_host(self):
        dc = Datacenter(DatacenterConfig(n_hosts=8), seed=1)
        placement = dc.place_pair(key=0, hour=3)
        host = dc.materialize_host(placement)
        assert host.machine.noise.cfg == dc.noise_at(
            placement.host_id, placement.hour
        )


class TestServiceCLI:
    def _repro(self, *argv, cwd):
        src = str(Path(__file__).resolve().parent.parent / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True, text=True, cwd=cwd,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )

    def test_submit_drain_resume_verify(self, tmp_path):
        fleet_dir = str(tmp_path / "fleet")
        r = self._repro(
            "fleet", "submit", "--name", "noise-mc", "--trials", "600",
            "--shard-size", "64", "--stop-after-shards", "2",
            "--fleet-dir", fleet_dir, cwd=tmp_path,
        )
        assert r.returncode == 0, r.stderr
        assert "[drained]" in r.stdout
        r = self._repro("fleet", "resume", "noise-mc",
                        "--fleet-dir", fleet_dir, cwd=tmp_path)
        assert r.returncode == 0, r.stderr
        assert "[complete]" in r.stdout
        r = self._repro("fleet", "aggregate", "noise-mc", "--verify-serial",
                        "--fleet-dir", fleet_dir, cwd=tmp_path)
        assert r.returncode == 0, r.stderr
        assert "verified: fleet aggregates == serial" in r.stdout

    def test_serial_campaign_cli_shares_noise_mc(self, tmp_path):
        r = self._repro(
            "campaign", "--name", "noise-mc", "--trials", "50",
            "--no-journal", cwd=tmp_path,
        )
        assert r.returncode == 0, r.stderr
        assert "noise-mc-cloud" in r.stdout
