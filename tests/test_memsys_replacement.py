"""Tests for the replacement policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.errors import ConfigurationError
from repro.memsys.replacement import (
    LRUPolicy,
    QLRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_policy,
    policy_names,
)

ALL_POLICIES = ["lru", "tree_plru", "srrip", "qlru", "random"]


class TestFactory:
    def test_names(self):
        assert set(policy_names()) == set(ALL_POLICIES)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_policy("clock", 8)

    @pytest.mark.parametrize("name", ALL_POLICIES)
    def test_victim_in_range(self, name):
        ways = 8
        policy = make_policy(name, ways, make_rng(0))
        for w in range(ways):
            policy.fill(w)
        assert 0 <= policy.victim() < ways


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(4)
        for w in [0, 1, 2, 3]:
            p.fill(w)
        p.touch(0)
        assert p.victim() == 1

    def test_fill_promotes(self):
        p = LRUPolicy(3)
        for w in [0, 1, 2]:
            p.fill(w)
        p.fill(0)
        assert p.victim() == 1

    def test_invalidate_prefers_way(self):
        p = LRUPolicy(4)
        for w in range(4):
            p.fill(w)
        p.invalidate(3)
        assert p.victim() == 3

    def test_exact_lru_sequence(self):
        """W fills after a touch must evict in insertion order, sparing the
        touched line until last — the property minimal eviction sets need."""
        p = LRUPolicy(4)
        for w in range(4):
            p.fill(w)
        p.touch(0)  # way 0 is the target, freshly primed
        order = []
        for _ in range(4):
            v = p.victim()
            order.append(v)
            p.fill(v)
        assert order == [1, 2, 3, 0]


class TestTreePLRU:
    def test_requires_pow2(self):
        with pytest.raises(ConfigurationError):
            TreePLRUPolicy(6)

    def test_victim_avoids_recent(self):
        p = TreePLRUPolicy(8)
        for w in range(8):
            p.fill(w)
        p.touch(3)
        assert p.victim() != 3

    def test_invalidate_steers_to_way(self):
        p = TreePLRUPolicy(4)
        for w in range(4):
            p.fill(w)
        p.invalidate(2)
        assert p.victim() == 2

    def test_all_ways_reachable(self):
        p = TreePLRUPolicy(4)
        seen = set()
        for w in range(4):
            p.fill(w)
        for _ in range(16):
            v = p.victim()
            seen.add(v)
            p.fill(v)
        assert seen == {0, 1, 2, 3}


class TestSRRIP:
    def test_fresh_fill_not_immediate_victim(self):
        p = SRRIPPolicy(4)
        for w in range(4):
            p.fill(w)
        p.touch(0)
        assert p.victim() != 0

    def test_scan_resistance(self):
        """A touched (rrpv=0) line survives one round of fresh fills —
        the property that makes SRRIP break minimal eviction sets."""
        p = SRRIPPolicy(4)
        for w in range(4):
            p.fill(w)
        p.touch(0)
        victims = []
        for _ in range(3):
            v = p.victim()
            victims.append(v)
            p.fill(v)
        assert 0 not in victims

    def test_invalidate(self):
        p = SRRIPPolicy(4)
        for w in range(4):
            p.fill(w)
            p.touch(w)
        p.invalidate(2)
        assert p.victim() == 2


class TestQLRU:
    def test_hit_promotes(self):
        p = QLRUPolicy(4)
        for w in range(4):
            p.fill(w)
        p.touch(1)
        assert p.victim() != 1

    def test_invalidate(self):
        p = QLRUPolicy(4)
        for w in range(4):
            p.fill(w)
            p.touch(w)
        p.invalidate(0)
        assert p.victim() == 0


class TestRandom:
    def test_victim_stable_until_fill(self):
        p = RandomPolicy(8, make_rng(1))
        v1 = p.victim()
        v2 = p.victim()
        assert v1 == v2
        p.fill(v1)
        # After the fill a new draw may differ (not asserted — random).

    def test_covers_ways(self):
        p = RandomPolicy(4, make_rng(2))
        seen = set()
        for _ in range(60):
            v = p.victim()
            seen.add(v)
            p.fill(v)
        assert seen == {0, 1, 2, 3}


@pytest.mark.parametrize("name", ALL_POLICIES)
@given(ops=st.lists(st.tuples(st.sampled_from(["touch", "fill", "inval"]),
                              st.integers(0, 7)), max_size=60))
@settings(max_examples=40, deadline=None)
def test_property_policies_never_crash_and_victim_valid(name, ops):
    """Any interleaving of operations keeps the policy consistent."""
    policy = make_policy(name, 8, make_rng(0))
    for op, way in ops:
        if op == "touch":
            policy.touch(way)
        elif op == "fill":
            policy.fill(way)
        else:
            policy.invalidate(way)
    assert 0 <= policy.victim() < 8
