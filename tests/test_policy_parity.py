"""Property parity: table-driven policies vs. the object-based originals.

:mod:`repro.memsys.replacement` is the executable specification; the flat
tables in :mod:`repro.memsys.policy_tables` must make identical decisions.
Every policy is driven with randomized touch/fill/invalidate/victim strings
across several interleaved sets (the tables share one state plane and, for
``random``, one RNG — exactly how a cache uses them) and the victim answers
must agree at every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.errors import ConfigurationError
from repro.memsys.policy_tables import make_policy_table, table_names
from repro.memsys.replacement import make_policy, policy_names

N_SETS = 3

#: op encodings: (kind, set_idx, way) with kind 0=touch 1=fill 2=invalidate
#: 3=victim-query.
_ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, N_SETS - 1), st.integers(0, 7)),
    max_size=200,
)


def _ways_for(policy: str) -> list:
    # Tree-PLRU is power-of-two only; everyone else also gets an odd count.
    return [4, 8] if policy == "tree_plru" else [3, 4, 8]


def _run_pair(policy: str, ways: int, ops) -> None:
    obj_rng = make_rng(("parity", policy, ways))
    tab_rng = make_rng(("parity", policy, ways))
    objs = [make_policy(policy, ways, obj_rng) for _ in range(N_SETS)]
    table = make_policy_table(policy, ways, tab_rng)
    state = table.make_state(N_SETS)
    for kind, set_idx, raw_way in ops:
        way = raw_way % ways
        base = set_idx * table.stride
        if kind == 0:
            objs[set_idx].touch(way)
            table.touch(state, base, way)
        elif kind == 1:
            objs[set_idx].fill(way)
            table.fill(state, base, way)
        elif kind == 2:
            objs[set_idx].invalidate(way)
            table.invalidate(state, base, way)
        else:
            assert table.victim(state, base) == objs[set_idx].victim()
    # Final victim answer must agree for every set (both draws happen in
    # the same order here, keeping the shared-RNG policies aligned).
    for set_idx in range(N_SETS):
        assert (
            table.victim(state, set_idx * table.stride)
            == objs[set_idx].victim()
        )


class TestRegistryMirrors:
    def test_same_policy_names(self):
        assert table_names() == policy_names()

    def test_tree_plru_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            make_policy_table("tree_plru", 6, make_rng(0))


@pytest.mark.parametrize("policy", policy_names())
class TestTableMatchesObjectPolicy:
    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_randomized_op_strings(self, policy, ops):
        for ways in _ways_for(policy):
            _run_pair(policy, ways, ops)

    def test_fill_sequence_evicts_identically(self, policy):
        """A pure fill/victim loop (the cache's miss path) stays in lockstep."""
        ways = 4
        obj = make_policy(policy, ways, make_rng(("seq", policy)))
        table = make_policy_table(policy, ways, make_rng(("seq", policy)))
        state = table.make_state(1)
        for way in range(ways):
            obj.fill(way)
            table.fill(state, 0, way)
        for _ in range(40):
            v_obj = obj.victim()
            v_tab = table.victim(state, 0)
            assert v_tab == v_obj
            obj.fill(v_obj)
            table.fill(state, 0, v_tab)
