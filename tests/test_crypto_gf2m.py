"""Tests for GF(2^m) arithmetic, including hypothesis-driven field laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import make_rng
from repro.crypto.gf2m import GF2m
from repro.errors import CryptoError

#: Small field for exhaustive-ish property checks: x^17 + x^3 + 1.
F17 = GF2m(17, (3,))
#: The K-233 field: x^233 + x^74 + 1.
F233 = GF2m(233, (74,))

elements17 = st.integers(0, (1 << 17) - 1)


class TestConstruction:
    def test_poly_encoding(self):
        assert F17.poly == (1 << 17) | (1 << 3) | 1

    def test_rejects_small_degree(self):
        with pytest.raises(CryptoError):
            GF2m(1, ())

    def test_rejects_bad_terms(self):
        with pytest.raises(CryptoError):
            GF2m(17, (17,))
        with pytest.raises(CryptoError):
            GF2m(17, (0,))

    def test_equality_and_hash(self):
        assert GF2m(17, (3,)) == F17
        assert hash(GF2m(17, (3,))) == hash(F17)
        assert GF2m(233, (74,)) != F17

    def test_reduction_poly_irreducible_f17(self):
        """x^(2^m) == x mod f is necessary for irreducibility (m prime)."""
        x = 2  # the polynomial "x"
        acc = x
        for _ in range(17):
            acc = F17.sqr(acc)
        assert acc == x

    def test_reduction_poly_irreducible_f233(self):
        x = 2
        acc = x
        for _ in range(233):
            acc = F233.sqr(acc)
        assert acc == x


class TestBasicOps:
    def test_add_is_xor(self):
        assert GF2m.add(0b1010, 0b0110) == 0b1100

    def test_mul_identity(self):
        assert F17.mul(1, 12345) == 12345

    def test_mul_zero(self):
        assert F17.mul(0, 999) == 0

    def test_known_small_product(self):
        # (x+1)(x+1) = x^2 + 1 over GF(2).
        assert F17.mul(0b11, 0b11) == 0b101

    def test_sqr_matches_mul(self):
        rng = make_rng(1)
        for _ in range(50):
            a = F17.random_element(rng)
            assert F17.sqr(a) == F17.mul(a, a)

    def test_sqr_matches_mul_big_field(self):
        rng = make_rng(2)
        for _ in range(10):
            a = F233.random_element(rng)
            assert F233.sqr(a) == F233.mul(a, a)

    def test_inv_roundtrip(self):
        rng = make_rng(3)
        for _ in range(30):
            a = F17.random_element(rng) or 1
            assert F17.mul(a, F17.inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(CryptoError):
            F17.inv(0)

    def test_div(self):
        rng = make_rng(4)
        a, b = F17.random_element(rng), F17.random_element(rng) or 1
        assert F17.mul(F17.div(a, b), b) == a

    def test_pow_small(self):
        a = 0b110
        assert F17.pow(a, 0) == 1
        assert F17.pow(a, 1) == a
        assert F17.pow(a, 3) == F17.mul(F17.mul(a, a), a)

    def test_pow_negative_is_inverse_power(self):
        a = 0x1234 & ((1 << 17) - 1)
        assert F17.mul(F17.pow(a, -2), F17.pow(a, 2)) == 1

    def test_fermat(self):
        """a^(2^m - 1) == 1 for a != 0."""
        rng = make_rng(5)
        for _ in range(10):
            a = F17.random_element(rng) or 1
            assert F17.pow(a, (1 << 17) - 1) == 1


class TestQuadratics:
    def test_trace_is_binary(self):
        rng = make_rng(6)
        assert all(F17.trace(F17.random_element(rng)) in (0, 1) for _ in range(50))

    def test_trace_linear(self):
        rng = make_rng(7)
        for _ in range(30):
            a, b = F17.random_element(rng), F17.random_element(rng)
            assert F17.trace(a ^ b) == F17.trace(a) ^ F17.trace(b)

    def test_solve_quadratic_roundtrip(self):
        rng = make_rng(8)
        solved = 0
        for _ in range(60):
            c = F17.random_element(rng)
            if F17.trace(c) != 0:
                continue
            z0, z1 = F17.solve_quadratic(c)
            assert F17.sqr(z0) ^ z0 == c
            assert F17.sqr(z1) ^ z1 == c
            assert z0 ^ z1 == 1
            solved += 1
        assert solved > 10

    def test_solve_quadratic_no_solution(self):
        rng = make_rng(9)
        for _ in range(200):
            c = F17.random_element(rng)
            if F17.trace(c) == 1:
                with pytest.raises(CryptoError):
                    F17.solve_quadratic(c)
                break
        else:
            pytest.fail("never found trace-1 element")

    def test_half_trace_requires_odd_m(self):
        f = GF2m(4, (1,))
        with pytest.raises(CryptoError):
            f.half_trace(3)


class TestFieldLaws:
    @given(elements17, elements17)
    @settings(max_examples=80, deadline=None)
    def test_property_mul_commutative(self, a, b):
        assert F17.mul(a, b) == F17.mul(b, a)

    @given(elements17, elements17, elements17)
    @settings(max_examples=80, deadline=None)
    def test_property_mul_associative(self, a, b, c):
        assert F17.mul(F17.mul(a, b), c) == F17.mul(a, F17.mul(b, c))

    @given(elements17, elements17, elements17)
    @settings(max_examples=80, deadline=None)
    def test_property_distributive(self, a, b, c):
        assert F17.mul(a, b ^ c) == F17.mul(a, b) ^ F17.mul(a, c)

    @given(elements17)
    @settings(max_examples=80, deadline=None)
    def test_property_frobenius_additive(self, a):
        """(a + b)^2 = a^2 + b^2 — squaring is linear in GF(2^m)."""
        b = 0x1F00F
        assert F17.sqr(a ^ b) == F17.sqr(a) ^ F17.sqr(b)

    @given(elements17)
    @settings(max_examples=60, deadline=None)
    def test_property_results_in_field(self, a):
        assert F17.is_element(F17.mul(a, 0x1ABCD))
        assert F17.is_element(F17.sqr(a))
