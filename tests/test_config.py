"""Tests for machine/noise configuration and presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    CacheGeometry,
    LatencyConfig,
    MACHINE_PRESETS,
    MachineConfig,
    NOISE_PRESETS,
    NoiseConfig,
    cloud_run_noise,
    exposure_matched,
    icelake_sp,
    icelake_sp_small,
    no_noise,
    quiescent_local_noise,
    skylake_sp,
    skylake_sp_local,
    skylake_sp_small,
    skylake_sp_small_local,
    tiny_machine,
)
from repro.errors import ConfigurationError


class TestCacheGeometry:
    def test_offset_and_index_bits(self):
        geo = CacheGeometry("L2", ways=16, sets=1024)
        assert geo.offset_bits == 6
        assert geo.index_bits == 10

    def test_capacity(self):
        geo = CacheGeometry("LLC", ways=11, sets=2048, slices=28)
        assert geo.capacity_bytes == 11 * 2048 * 28 * 64

    def test_set_index_masks_low_bits(self):
        geo = CacheGeometry("X", ways=4, sets=256)
        assert geo.set_index(0x12345) == (0x12345 >> 6) & 255

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("X", ways=4, sets=100)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry("X", ways=0, sets=64)

    def test_uncertainty_skylake_l2(self):
        """Real Skylake-SP: U_L2 = 16 (paper Section 2.2.1)."""
        geo = CacheGeometry("L2", ways=16, sets=1024)
        assert geo.uncertainty() == 16

    def test_uncertainty_skylake_llc(self):
        """Real 28-slice Skylake-SP: U_LLC = 2^5 * 28 = 896."""
        geo = CacheGeometry("LLC", ways=11, sets=2048, slices=28)
        assert geo.uncertainty() == 896

    def test_uncertainty_fully_controllable(self):
        geo = CacheGeometry("L1", ways=8, sets=64)
        assert geo.uncertainty() == 1


class TestMachinePresets:
    def test_skylake_paper_numbers(self):
        """Evset counts must match the paper: 896 / 57,344."""
        cfg = skylake_sp()
        assert cfg.u_l2 == 16
        assert cfg.u_llc == 896
        assert cfg.evsets_page_offset == 896
        assert cfg.evsets_whole_sys == 57_344

    def test_skylake_local_paper_numbers(self):
        """22-slice local machine: 704 / 45,056 (Table 4 caption)."""
        cfg = skylake_sp_local()
        assert cfg.evsets_page_offset == 704
        assert cfg.evsets_whole_sys == 45_056

    def test_icelake_higher_associativity(self):
        sky, ice = skylake_sp(), icelake_sp()
        assert ice.sf.ways > sky.sf.ways
        assert ice.l2.ways > sky.l2.ways

    @pytest.mark.parametrize("factory", list(MACHINE_PRESETS.values()))
    def test_all_presets_valid(self, factory):
        cfg = factory()
        assert cfg.u_llc >= 1
        assert cfg.sf.ways > cfg.llc.ways
        assert cfg.describe()

    def test_small_preserves_structure(self):
        cfg = skylake_sp_small()
        # L2 index bits must be a subset of LLC index bits.
        l2_top = cfg.l2.offset_bits + cfg.l2.index_bits
        llc_top = cfg.llc.offset_bits + cfg.llc.index_bits
        assert l2_top <= llc_top
        assert cfg.u_l2 > 1
        assert cfg.u_llc > cfg.u_l2

    def test_small_local_differs_in_slices(self):
        assert (
            skylake_sp_small_local().llc.slices != skylake_sp_small().llc.slices
        )

    def test_icelake_small_higher_associativity(self):
        assert icelake_sp_small().sf.ways > skylake_sp_small().sf.ways

    def test_rejects_sf_not_deeper_than_llc(self):
        cfg = tiny_machine()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                cfg, sf=CacheGeometry("SF", ways=4, sets=128, slices=2)
            )

    def test_rejects_l2_index_superset(self):
        cfg = tiny_machine()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(cfg, l2=CacheGeometry("L2", ways=4, sets=4096))

    def test_cycle_conversions_roundtrip(self):
        cfg = skylake_sp_small()
        assert cfg.cycles_to_seconds(cfg.seconds_to_cycles(0.5)) == pytest.approx(0.5)


class TestLatencyConfig:
    def test_defaults_ordered(self):
        lat = LatencyConfig()
        assert lat.l1_hit < lat.l2_hit < lat.llc_hit < lat.dram

    def test_rejects_unordered(self):
        with pytest.raises(ConfigurationError):
            LatencyConfig(l1_hit=50, l2_hit=14)


class TestNoiseConfig:
    def test_rate_per_cycle(self):
        noise = NoiseConfig(name="x", llc_accesses_per_ms_per_set=11.5)
        # 11.5/ms at 2 GHz = 11.5 per 2e6 cycles.
        assert noise.rate_per_cycle(2.0) == pytest.approx(11.5 / 2e6)

    def test_scaled(self):
        noise = cloud_run_noise().scaled(2.0)
        assert noise.llc_accesses_per_ms_per_set == pytest.approx(23.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            NoiseConfig(name="x", llc_accesses_per_ms_per_set=-1.0)

    def test_presets_ordered(self):
        assert (
            quiescent_local_noise().llc_accesses_per_ms_per_set
            < cloud_run_noise().llc_accesses_per_ms_per_set
        )

    def test_paper_rates(self):
        """The measured Figure 2 rates: 11.5 cloud, 0.29 local."""
        assert cloud_run_noise().llc_accesses_per_ms_per_set == 11.5
        assert quiescent_local_noise().llc_accesses_per_ms_per_set == 0.29

    def test_no_noise_is_zero(self):
        assert no_noise().llc_accesses_per_ms_per_set == 0.0

    def test_preset_registry(self):
        assert set(NOISE_PRESETS) == {"local", "cloud", "cloud-quiet", "none"}


class TestExposureMatching:
    def test_full_scale_unchanged(self):
        base = cloud_run_noise()
        assert exposure_matched(base, skylake_sp()) is base

    def test_small_scaled_up(self):
        base = cloud_run_noise()
        scaled = exposure_matched(base, skylake_sp_small())
        assert scaled.llc_accesses_per_ms_per_set > base.llc_accesses_per_ms_per_set

    def test_sqrt_exponent(self):
        base = cloud_run_noise()
        full = exposure_matched(base, skylake_sp_small(), exponent=1.0)
        half = exposure_matched(base, skylake_sp_small(), exponent=0.5)
        ratio_full = full.llc_accesses_per_ms_per_set / base.llc_accesses_per_ms_per_set
        ratio_half = half.llc_accesses_per_ms_per_set / base.llc_accesses_per_ms_per_set
        assert ratio_half == pytest.approx(ratio_full**0.5)
