"""Tests for repro.exec.executor: parity, timeouts, retries, fallback."""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.errors import ReproError
from repro.exec import (
    Campaign,
    ExecPolicy,
    TrialTimeout,
    default_jobs,
    run_campaign,
)
from repro.exec import executor as executor_mod


# Trial functions must live at module level so forked/pickled workers can
# resolve them by reference.

def rng_trial(cfg, seed):
    rng = random.Random(seed)
    return [rng.randrange(cfg["bound"]) for _ in range(cfg["n"])]


def failing_trial(cfg, seed):
    if seed % 2:
        raise ValueError(f"odd seed {seed}")
    return seed * 10


def sleepy_trial(cfg, seed):
    if seed == cfg["slow_seed"]:
        time.sleep(cfg["sleep_s"])
    return seed


def crashing_trial(cfg, seed):
    if seed == cfg["crash_seed"]:
        os._exit(3)
    return seed + 1


def _campaign(fn, cfg, trials, **kwargs):
    return Campaign.build("exec-test", fn, cfg, trials=trials, **kwargs)


class TestParity:
    def test_parallel_matches_serial_on_fixed_seed(self):
        campaign = _campaign(rng_trial, {"bound": 1000, "n": 32}, trials=9)
        serial = run_campaign(campaign, ExecPolicy(jobs=1))
        parallel = run_campaign(campaign, ExecPolicy(jobs=3))
        assert serial.ok and parallel.ok
        assert serial.values() == parallel.values()
        assert [r.seed for r in serial.records] == [
            r.seed for r in parallel.records
        ]

    def test_records_sorted_by_index(self):
        campaign = _campaign(rng_trial, {"bound": 10, "n": 2}, trials=7)
        result = run_campaign(campaign, ExecPolicy(jobs=4))
        assert [r.index for r in result.records] == list(range(7))

    def test_metrics_reflect_completion(self):
        campaign = _campaign(rng_trial, {"bound": 10, "n": 2}, trials=5)
        result = run_campaign(campaign, ExecPolicy(jobs=2))
        assert result.metrics.total == 5
        assert result.metrics.completed == 5
        assert result.metrics.failed == 0
        assert result.metrics.elapsed_s >= 0.0


class TestFailures:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_exceptions_become_failed_records(self, jobs):
        campaign = _campaign(
            failing_trial, {}, trials=6, seed_mode="arithmetic", base_seed=0
        )
        result = run_campaign(campaign, ExecPolicy(jobs=jobs))
        assert not result.ok
        statuses = {r.seed: r.status for r in result.records}
        assert all(
            s == ("failed" if seed % 2 else "ok")
            for seed, s in statuses.items()
        )
        failed = result.failures()
        assert len(failed) == 3
        assert all("odd seed" in r.error for r in failed)
        # Successful trials are still returned, in order.
        assert result.values() == [0, 20, 40]

    def test_raise_on_failure(self):
        campaign = _campaign(
            failing_trial, {}, trials=2, seed_mode="arithmetic", base_seed=1
        )
        result = run_campaign(campaign, ExecPolicy(jobs=1))
        with pytest.raises(ReproError, match="odd seed"):
            result.raise_on_failure()


class TestTimeout:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_slow_trial_times_out(self, jobs):
        campaign = _campaign(
            sleepy_trial,
            {"slow_seed": 2, "sleep_s": 5.0},
            trials=3,
            seed_mode="arithmetic",
            base_seed=1,
        )
        start = time.monotonic()
        result = run_campaign(campaign, ExecPolicy(jobs=jobs, timeout_s=0.3))
        assert time.monotonic() - start < 4.0
        statuses = {r.seed: r.status for r in result.records}
        assert statuses == {1: "ok", 2: "timeout", 3: "ok"}
        assert result.values() == [1, 3]

    def test_trial_timeout_is_repro_error(self):
        assert issubclass(TrialTimeout, ReproError)


class TestCrashRecovery:
    def test_retry_exhaustion_marks_trial_crashed(self):
        campaign = _campaign(
            crashing_trial,
            {"crash_seed": 12},
            trials=4,
            seed_mode="arithmetic",
            base_seed=10,
        )
        result = run_campaign(campaign, ExecPolicy(jobs=2, max_retries=1))
        by_seed = {r.seed: r for r in result.records}
        crashed = by_seed[12]
        assert crashed.status == "crashed"
        assert crashed.attempts == 2  # initial attempt + one retry
        assert "retries exhausted" in crashed.error
        # The surviving trials still complete correctly.
        assert result.values() == [11, 12, 14]
        assert result.metrics.pool_restarts >= 1
        assert result.metrics.retried >= 1

    def test_zero_retries_gives_up_after_first_crash(self):
        campaign = _campaign(
            crashing_trial,
            {"crash_seed": 20},
            trials=2,
            seed_mode="arithmetic",
            base_seed=20,
        )
        result = run_campaign(campaign, ExecPolicy(jobs=2, max_retries=0))
        crashed = [r for r in result.records if r.status == "crashed"]
        assert len(crashed) == 1
        assert crashed[0].attempts == 1


class TestSerialFallback:
    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process pool available")

        monkeypatch.setattr(
            executor_mod, "ProcessPoolExecutor", broken_pool
        )
        campaign = _campaign(rng_trial, {"bound": 100, "n": 8}, trials=4)
        result = run_campaign(campaign, ExecPolicy(jobs=4))
        assert result.ok
        serial = run_campaign(campaign, ExecPolicy(jobs=1))
        assert result.values() == serial.values()

    def test_single_trial_runs_serially(self):
        campaign = _campaign(rng_trial, {"bound": 100, "n": 8}, trials=1)
        result = run_campaign(campaign, ExecPolicy(jobs=8))
        assert result.ok and len(result.values()) == 1


class TestPolicy:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_jobs_none_resolves_to_default(self):
        assert ExecPolicy(jobs=None).resolved_jobs() == default_jobs()

    def test_non_positive_jobs_rejected(self):
        with pytest.raises(ValueError):
            ExecPolicy(jobs=0).resolved_jobs()
        with pytest.raises(ValueError):
            ExecPolicy(jobs=-1).resolved_jobs()
