"""Golden-fingerprint parity for defended trials (one per defense).

The same fixed fuzz trace is replayed under every defense in
:data:`repro.defenses.DEFENSE_NAMES` on all four execution tiers
(reference/batched/kernels/lanes).  Two assertions per defense:

* **Four-tier equality** — every tier produces identical op records and
  an identical machine digest (the fuzz oracle's verdict), proving the
  accelerated paths disengage correctly on the defense wrappers.
* **Golden fingerprint** — a sha256 digest of the lanes tier's records
  plus final machine digest (verdicts, stats, clock, noise log, RNG
  states), pinned at capture time.  Any behavioral drift in a defense
  implementation — placement, rekey schedule, eviction choice, noise
  reconciliation — moves the fingerprint.

The digests are numpy-blind by construction (the vectorized tiers are
bit-identical to the scalar ones), so this file passes unchanged under
``REPRO_NO_NUMPY=1`` — CI runs both lanes.
"""

from __future__ import annotations

import pytest

from repro.check.fuzz import FuzzConfig, generate_trace, run_tiers, run_trace
from repro.defenses import DEFENSE_NAMES
from tests._parity import _h

#: One fixed trace seed; the per-defense trace differs only in the
#: defense axis (and the ops the axis unlocks, e.g. rekey).  Chosen so
#: all five defended digests are *distinct* — the trace is violent
#: enough that placement policy shows up in the observables.
TRACE_SEED = 424

#: A second seed whose ceaser/skew traces carry explicit rekey ops, so
#: the epoch-turn path is golden-pinned too.
REKEY_SEED = 97

_TRACE_CFG = dict(machine="tiny", noise="cloud-quiet", n_ops=14)

#: Captured from the implementation at defense-matrix introduction time.
GOLDEN_DEFENDED_TRIALS = {
    "none": "8fe588095df7530a",
    "way-partition": "cdb4deac2387e97d",
    "ceaser": "52ecb370a359af26",
    "skew": "2e4c859fe7e7a4e5",
    "soft-copy": "e2a892847cb1fbb6",
}

GOLDEN_REKEY_TRIALS = {
    "ceaser": "0d16dce85a81c355",
    "skew": "0d16dce85a81c355",
}


def _defended_trace(defense: str, seed: int = TRACE_SEED):
    return generate_trace(FuzzConfig(defense=defense, **_TRACE_CFG), seed)


@pytest.mark.parametrize("defense", DEFENSE_NAMES)
class TestDefendedTrialParity:
    def test_four_tier_equality(self, defense):
        result = run_tiers(_defended_trace(defense))
        assert result["ok"], (result["divergent"], result["violations"])

    def test_golden_fingerprint(self, defense):
        run = run_trace(_defended_trace(defense), "lanes")
        assert run["violation"] is None
        assert _h([run["records"], run["digest"]]) == (
            GOLDEN_DEFENDED_TRIALS[defense]
        )


@pytest.mark.parametrize("defense", sorted(GOLDEN_REKEY_TRIALS))
class TestRekeyTrialParity:
    def test_four_tier_equality(self, defense):
        result = run_tiers(_defended_trace(defense, REKEY_SEED))
        assert result["ok"], (result["divergent"], result["violations"])

    def test_golden_fingerprint(self, defense):
        trace = _defended_trace(defense, REKEY_SEED)
        assert any(op[0] == "rekey" for op in trace["ops"])
        run = run_trace(trace, "lanes")
        assert run["violation"] is None
        assert _h([run["records"], run["digest"]]) == (
            GOLDEN_REKEY_TRIALS[defense]
        )


def test_goldens_distinguish_the_defenses():
    """Five defenses, five distinct fingerprints: the pinned trace is
    violent enough that every defense's placement policy is observable."""
    assert len(set(GOLDEN_DEFENDED_TRIALS.values())) == len(DEFENSE_NAMES)


def test_traces_actually_carry_the_defenses():
    """Guard the goldens' meaning: each trace pins its declared defense."""
    for defense in DEFENSE_NAMES:
        trace = _defended_trace(defense)
        if defense == "none":
            assert trace["partition"] is None and trace["defense"] is None
        elif defense == "way-partition":
            assert trace["partition"] is not None
        else:
            assert trace["defense"]["kind"] == defense
