"""Checkpoint/restore round-trips, digest blindness, and prefix parity (§2.8).

The snapshot subsystem (:mod:`repro.memsys.snapshot`) promises *exact*,
digest-verified machine checkpoints on every execution tier and under
both RNG contracts; the trial-prefix store (:mod:`repro.exec.prefix`)
and the construct memo (:mod:`repro.memsys.vec`) build on that promise.
These suites pin it:

* checkpoint -> mutate -> restore round-trips on the reference, kernels,
  lanes, and vec tiers, serial and counter mode, quiet and noisy —
  verified with both the golden-pinned :func:`machine_digest` and the
  finer :func:`plane_digest`, and re-running the mutation after restore
  must reproduce it bit-for-bit;
* the flush-epoch downgrade (``flush_all`` between checkpoint and
  restore forces the full-plane rewrite path);
* a regression for stale ``_where`` index entries surviving a restore;
* digest blindness to accelerator caches
  (:func:`repro.check.digest.assert_digest_memo_blind`);
* construct memo-replay equivalence across restores (replayed batteries
  == recorded batteries == memo-disabled live control);
* trial-prefix store leases: bit-identical ``ConstructionSample`` values
  with the cache on, off, and on cache hits, under both RNG contracts.

CI runs this file with and without ``REPRO_NO_NUMPY=1``: in the no-NumPy
leg the lanes/vec accelerators disengage and the same assertions cover
the scalar fallbacks.
"""

from __future__ import annotations

import contextlib
import dataclasses

import pytest

from tests._parity import _machine_digest, obj_digest

from repro.check.digest import assert_digest_memo_blind, plane_digest
from repro.check.fuzz import _reference_cache_swap
from repro.config import cloud_run_noise, no_noise, skylake_sp_small, tiny_machine
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig
from repro.core.evset.primitives import EvictionTester
from repro.envs import EnvSpec
from repro.exec.campaigns import ConstructionTrialConfig, construction_trial
from repro.exec.prefix import TrialPrefixStore, prefix_key, thread_store
from repro.memsys import (
    checkpoint,
    checkpoint_key,
    construct_memo_disabled,
    lanes_disabled,
    restore,
    vec_disabled,
)
from repro.memsys.machine import Machine
from repro.memsys.snapshot import SnapshotParityError, _machine_caches

RNG_MODES = ("serial", "counter")

#: Tier name -> runtime guard (reference also swaps the cache class at
#: build time; vec is the default resolution in counter mode).
TIERS = ("reference", "kernels", "lanes", "vec")


def _runtime_guard(tier: str):
    if tier == "kernels":
        return lanes_disabled()
    if tier == "lanes":
        return vec_disabled()
    return contextlib.nullcontext()


def _machine_ctx(tier: str, mode: str, noisy: bool = False):
    cfg = dataclasses.replace(skylake_sp_small(), rng_mode=mode)
    noise = cloud_run_noise() if noisy else no_noise()
    build = (
        _reference_cache_swap() if tier == "reference"
        else contextlib.nullcontext()
    )
    with build:
        machine = Machine(cfg, noise=noise, seed=11)
    return machine, AttackerContext(machine, seed=5)


def _digests(machine):
    return (_machine_digest(machine), plane_digest(machine))


def _mutate(machine, core: int, lines) -> None:
    """A machine-only workload segment (no attacker-RNG draws), so
    re-running it after a restore must reproduce it exactly."""
    machine.access_batch(core, lines, write=False)
    machine.advance(5_000)
    machine.access_batch(core, lines[::2], write=True)
    machine.access_batch(core, lines[1::3], write=False)


class TestRoundTrip:
    @pytest.mark.parametrize("mode", RNG_MODES)
    @pytest.mark.parametrize("tier", TIERS)
    def test_checkpoint_restore_round_trip(self, tier, mode):
        machine, ctx = _machine_ctx(tier, mode)
        with _runtime_guard(tier):
            ctx.calibrate()
            vas = [page + 0x240 for page in ctx.alloc_pages(10)]
            lines = ctx.lines(vas)
            tester = EvictionTester(ctx, mode="sf", parallel=True)
            tester.test(vas[0], vas[1:], 6)
            cp = checkpoint(machine, label="rt")
            at_cp = _digests(machine)
            assert cp.digest == at_cp[0]
            _mutate(machine, ctx.main_core, lines)
            moved = _digests(machine)
            assert moved != at_cp
            restore(machine, cp)
            assert _digests(machine) == at_cp
            # The rewind is exact, so replaying the mutation reproduces
            # the post-mutation state bit for bit.
            _mutate(machine, ctx.main_core, lines)
            assert _digests(machine) == moved

    @pytest.mark.parametrize("mode", RNG_MODES)
    def test_round_trip_under_noise(self, mode):
        machine, ctx = _machine_ctx("vec", mode, noisy=True)
        ctx.calibrate()
        vas = [page + 0x140 for page in ctx.alloc_pages(8)]
        lines = ctx.lines(vas)
        machine.access_batch(ctx.main_core, lines)
        cp = checkpoint(machine)
        at_cp = _digests(machine)
        _mutate(machine, ctx.main_core, lines)
        moved = _digests(machine)
        restore(machine, cp)
        assert _digests(machine) == at_cp
        _mutate(machine, ctx.main_core, lines)
        assert _digests(machine) == moved

    @pytest.mark.parametrize("mode", RNG_MODES)
    def test_restore_across_flush_epoch(self, mode):
        """flush_all rebinds planes and floors every noise clock; an
        epoch mismatch must downgrade to the full-plane rewrite."""
        machine, ctx = _machine_ctx("vec", mode)
        ctx.calibrate()
        lines = ctx.lines([page + 0x240 for page in ctx.alloc_pages(8)])
        machine.access_batch(ctx.main_core, lines)
        cp = checkpoint(machine)
        at_cp = _digests(machine)
        machine.flush_all_caches()
        machine.access_batch(ctx.main_core, lines[:3])
        restore(machine, cp)
        assert _digests(machine) == at_cp

    def test_restore_is_repeatable(self):
        machine, ctx = _machine_ctx("vec", "serial")
        ctx.calibrate()
        lines = ctx.lines([page + 0x240 for page in ctx.alloc_pages(6)])
        cp = checkpoint(machine)
        at_cp = _digests(machine)
        for _ in range(3):
            _mutate(machine, ctx.main_core, lines)
            restore(machine, cp)
            assert _digests(machine) == at_cp

    def test_restore_rejects_mismatched_machine(self):
        machine, _ = _machine_ctx("vec", "serial")
        cp = checkpoint(machine)
        other = Machine(tiny_machine(), noise=no_noise(), seed=1)
        with pytest.raises(SnapshotParityError):
            restore(other, cp)


class TestWhereIndexRegression:
    def test_restore_drops_where_entries_inserted_after_checkpoint(self):
        """Regression: lines first inserted *after* the checkpoint must
        not leave stale ``_where`` entries behind after the restore."""
        machine, ctx = _machine_ctx("vec", "serial")
        ctx.calibrate()
        warm = ctx.lines([page + 0x240 for page in ctx.alloc_pages(6)])
        machine.access_batch(ctx.main_core, warm)
        cp = checkpoint(machine)
        before = [dict(c._where) for c in _machine_caches(machine)]
        fresh = ctx.lines([page + 0x380 for page in ctx.alloc_pages(4)])
        machine.access_batch(ctx.main_core, fresh)
        after_insert = [dict(c._where) for c in _machine_caches(machine)]
        assert any(
            set(now) - set(old)
            for old, now in zip(before, after_insert)
        ), "workload never inserted a fresh line; the regression has no teeth"
        restore(machine, cp)
        assert [dict(c._where) for c in _machine_caches(machine)] == before


class TestDigestBlindness:
    @pytest.mark.parametrize("mode", RNG_MODES)
    def test_digests_blind_to_accelerator_caches(self, mode):
        """Warm every memo layer, then prove the digests cannot see them."""
        machine, ctx = _machine_ctx("vec", mode)
        ctx.calibrate()
        vas = [page + 0x240 for page in ctx.alloc_pages(10)]
        tester = EvictionTester(ctx, mode="sf", parallel=True)
        cp = checkpoint(machine, label="warm")
        rng_state = ctx.rng.getstate()
        tester.test(vas[0], vas[1:], 6)
        # Counter mode: a second identical battery after a rewind drives
        # the construct memo's record/replay path before the assertion.
        restore(machine, cp)
        ctx.rng.setstate(rng_state)
        tester.test(vas[0], vas[1:], 6)
        assert_digest_memo_blind(machine, ctx)


class TestConstructMemoReplay:
    def test_memo_replay_matches_live_across_restores(self):
        """record -> replay -> memo-disabled control, all bit-identical."""
        machine, ctx = _machine_ctx("vec", "counter")
        ctx.calibrate()
        vas = [page + 0x240 for page in ctx.alloc_pages(12)]
        tester = EvictionTester(ctx, mode="sf", parallel=True)
        cp = checkpoint(machine, label="battery")
        rng_state = ctx.rng.getstate()

        def battery():
            verdicts = [tester.test(vas[0], vas[1:], n) for n in (4, 6, 8)]
            verdicts.append(tester.test_many(vas[:2], vas[2:], 6))
            return verdicts, obj_digest(_machine_digest(machine))

        recorded = battery()
        restore(machine, cp)
        ctx.rng.setstate(rng_state)
        replayed = battery()
        assert replayed == recorded
        restore(machine, cp)
        ctx.rng.setstate(rng_state)
        with construct_memo_disabled():
            live = battery()
        assert live == recorded


class TestPrefixStore:
    ENV = EnvSpec(machine="skylake-small", noise="none")

    def test_prefix_key_is_content_addressed(self):
        key = prefix_key(self.ENV, 310, 0x240)
        assert key == prefix_key(self.ENV, 310, 0x240)
        assert key != prefix_key(self.ENV, 311, 0x240)
        assert key != prefix_key(self.ENV, 310, 0x380)
        assert key != prefix_key("local", 310, 0x240)
        counter = dataclasses.replace(self.ENV, rng_mode="counter")
        assert key != prefix_key(counter, 310, 0x240)

    @pytest.mark.parametrize("mode", RNG_MODES)
    def test_lease_restores_identical_state(self, mode):
        env = dataclasses.replace(self.ENV, rng_mode=mode)
        store = TrialPrefixStore()
        machine, ctx, target, vas, hit = store.lease(env, 310, 0x240)
        assert not hit
        state = obj_digest(_machine_digest(machine))
        pool = list(ctx._pool)
        # Dirty the leased environment, then lease again: same objects,
        # rewound bit-for-bit.
        machine.access_batch(ctx.main_core, ctx.lines(vas[:4]))
        machine.advance(9_000)
        machine2, ctx2, target2, vas2, hit2 = store.lease(env, 310, 0x240)
        assert hit2 and machine2 is machine and ctx2 is ctx
        assert (target2, vas2) == (target, vas)
        assert obj_digest(_machine_digest(machine2)) == state
        assert list(ctx2._pool) == pool
        assert store.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_construction_trial_parity_with_prefix_cache(self, monkeypatch):
        cfg = ConstructionTrialConfig(
            env="local", algorithm="bins",
            evset_cfg=EvsetConfig(budget_ms=1000.0),
        )
        seeds = (310, 311)
        monkeypatch.delenv("REPRO_PREFIX_CACHE", raising=False)
        base = [construction_trial(cfg, s) for s in seeds]
        monkeypatch.setenv("REPRO_PREFIX_CACHE", "1")
        store = thread_store()
        store.clear()
        hits0 = store.hits
        cold = [construction_trial(cfg, s) for s in seeds]
        warm = [construction_trial(cfg, s) for s in seeds]
        assert cold == base
        assert warm == base
        assert store.hits - hits0 >= len(seeds)
