"""Tests for the Prime+Prune+Probe baseline (related work, Section 8)."""

from __future__ import annotations

import pytest

from repro.config import (
    cloud_run_noise,
    exposure_matched,
    no_noise,
    skylake_sp_small,
)
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, build_candidate_set, construct_sf_evset
from repro.core.evset.ppp import PrimePruneProbe
from repro.core.evset.primitives import EvictionTester
from repro.core.evset.types import AlgorithmStats
from repro.memsys.machine import Machine


def setup(noise=None, seed=60):
    machine = Machine(skylake_sp_small(), noise=noise or no_noise(), seed=seed)
    ctx = AttackerContext(machine, seed=1)
    ctx.calibrate()
    cand = build_candidate_set(ctx, page_offset=0x240)
    target = cand.vas.pop()
    return machine, ctx, target, cand.vas


class TestPruneChunk:
    def test_prune_reaches_capacity(self):
        """Pruning a 2x-capacity chunk converges near U*W residents."""
        machine, ctx, target, pool = setup()
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        cfg = machine.cfg
        chunk = pool[: 2 * cfg.u_llc * cfg.llc.ways]
        resident = PrimePruneProbe()._prune_chunk(
            tester, chunk, AlgorithmStats()
        )
        capacity = cfg.u_llc * cfg.llc.ways
        assert 0.75 * capacity <= len(resident) <= 1.1 * capacity

    def test_resident_set_includes_target_congruents(self):
        machine, ctx, target, pool = setup(seed=61)
        tester = EvictionTester(ctx, mode="llc", parallel=True)
        cfg = machine.cfg
        chunk = pool[: 2 * cfg.u_llc * cfg.llc.ways]
        resident = PrimePruneProbe()._prune_chunk(
            tester, chunk, AlgorithmStats()
        )
        tset = ctx.true_set_of(target)
        congruent = sum(1 for v in resident if ctx.true_set_of(v) == tset)
        assert congruent >= cfg.llc.ways - 2


class TestConstruction:
    def test_quiet_construction_valid_and_minimal(self):
        machine, ctx, target, pool = setup(seed=62)
        outcome = construct_sf_evset(
            ctx, "ppp", target, pool, EvsetConfig(budget_ms=1000)
        )
        assert outcome.success, outcome.failure_reason
        assert len(outcome.evset.vas) == machine.cfg.sf.ways
        sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
        assert sets == {ctx.true_set_of(target)}

    def test_collapses_under_fraction_of_cloud_noise(self):
        """Section 8 / CTPP: PPP dies at ~10% of Cloud Run's activity."""
        cfg = skylake_sp_small()
        noise = exposure_matched(cloud_run_noise(), cfg).scaled(0.1)
        failures = 0
        for seed in (63, 64):
            machine, ctx, target, pool = setup(noise=noise, seed=seed)
            outcome = construct_sf_evset(
                ctx, "ppp", target, pool,
                EvsetConfig(budget_ms=1000, max_attempts=5),
            )
            valid = False
            if outcome.success:
                sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
                valid = sets == {ctx.true_set_of(target)}
            failures += not valid
        assert failures >= 1
