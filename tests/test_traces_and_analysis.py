"""Tests for AccessTrace and the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    Summary,
    Table,
    cdf_points,
    format_seconds,
    paper_vs_measured,
    summarize,
)
from repro.core.traces import AccessTrace
from repro.errors import ReproError


class TestAccessTrace:
    def test_basic_properties(self):
        trace = AccessTrace(timestamps=[10, 20, 35], start=0, end=100)
        assert len(trace) == 3
        assert trace.duration == 100
        assert trace.access_count() == 3

    def test_duration_us(self):
        trace = AccessTrace(timestamps=[], start=0, end=2_000_000)
        assert trace.duration_us(2.0) == pytest.approx(1000.0)

    def test_gaps(self):
        trace = AccessTrace(timestamps=[10, 30, 70], start=0, end=100)
        assert list(trace.inter_access_gaps()) == [20.0, 40.0]

    def test_gaps_empty(self):
        trace = AccessTrace(timestamps=[5], start=0, end=10)
        assert trace.inter_access_gaps().size == 0

    def test_relative_timestamps(self):
        trace = AccessTrace(timestamps=[110, 120], start=100, end=200)
        assert list(trace.relative_timestamps()) == [10.0, 20.0]

    def test_slice(self):
        trace = AccessTrace(timestamps=[10, 50, 90], start=0, end=100)
        sub = trace.slice(40, 95)
        assert sub.timestamps == [50, 90]
        assert sub.start == 40

    def test_rejects_empty_window(self):
        with pytest.raises(ReproError):
            AccessTrace(timestamps=[], start=10, end=10)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.n == 0 and s.mean == 0.0

    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_scaled(self):
        s = summarize([10.0, 20.0]).scaled(0.1)
        assert s.mean == pytest.approx(1.5)
        assert s.n == 2

    def test_p95(self):
        s = summarize(list(range(101)))
        assert s.p95 == pytest.approx(95.0)


class TestCdf:
    def test_monotone(self):
        pts = cdf_points([3.0, 1.0, 2.0])
        values = [v for v, _ in pts]
        fracs = [f for _, f in pts]
        assert values == sorted(values)
        assert fracs == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]


class TestTable:
    def test_render_aligns(self):
        t = Table("demo", ["a", "long-column"])
        t.add_row("1", "2")
        t.add_row("333", "4")
        out = t.render()
        assert "demo" in out
        lines = out.splitlines()
        assert len({len(l) for l in lines[1:2]}) == 1

    def test_rejects_wrong_arity(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")


class TestFormatting:
    def test_format_seconds_scales(self):
        assert "us" in format_seconds(5e-6)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(5.0) == "5.00 s"
        assert "min" in format_seconds(600.0)

    def test_paper_vs_measured(self):
        assert paper_vs_measured("a", "b") == "paper a | measured b"
