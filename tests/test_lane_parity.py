"""Three-way lane parity: reference/unfused -> kernels -> lanes (DESIGN.md §2.4).

:mod:`repro.memsys.lanes` promises that the plan-specialized sweeps are
bit-identical to the PR-3 kernels, which are themselves pinned
bit-identical to the unfused Machine path (``tests/test_kernel_parity.py``,
with ``repro.memsys._reference`` as the oracle underneath).  These suites
run the same deterministic batteries down all three paths and require
exact agreement on every observable: verdicts, hierarchy stats, the
simulated clock, noise event counts, and the full ``getstate()`` of every
RNG stream.

The golden fingerprints are *the same values* as in
``tests/test_kernel_parity.py`` — captured from the unfused path before
the lanes existed.  The lane path reproducing them is the point: the
whole oracle chain collapses to one digest.

The fallback matrix (NumPy absent, :func:`lanes_disabled`, duck-typed
caches) is covered at the resolution layer: call sites must quietly land
on the plain kernels.  CI runs this file twice — once normally and once
with ``REPRO_NO_NUMPY=1`` — so the without-NumPy leg is exercised for
real, not just via monkeypatching.
"""

from __future__ import annotations

import contextlib

import pytest

from tests._parity import _h, _machine_digest

from repro.config import cloud_run_noise, no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig
from repro.core.evset.candidates import build_candidate_set
from repro.core.evset.filtering import build_l2_eviction_set
from repro.core.evset.primitives import EvictionTester
from repro.core.evset.types import EvictionSet
from repro.core.monitor import ParallelProbing, PrimeScopeFlush, monitor_set
from repro.memsys import kernels_disabled, lanes_disabled
from repro.memsys import lanes as lanesmod
from repro.memsys.kernels import AttackKernels
from repro.memsys.lanes import LaneKernels
from repro.memsys.machine import Machine


def _path_guard(path: str):
    """unfused -> no kernels at all; kernels -> PR-3 kernels only;
    lanes -> the default resolution (LaneKernels when NumPy is there)."""
    if path == "kernels":
        return lanes_disabled()
    return contextlib.nullcontext()


PATHS = ["unfused", "kernels", "lanes"]


# --- TestEviction parity ----------------------------------------------------


def _tester_battery(mode: str, noisy: bool, path: str) -> dict:
    """The ``test_kernel_parity`` battery, routed down one of the paths."""
    fused = path != "unfused"
    noise = cloud_run_noise() if noisy else no_noise()
    machine = Machine(skylake_sp_small(), noise=noise, seed=23)
    ctx = AttackerContext(machine, seed=2)
    with _path_guard(path):
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x140, size=40)
        tester = EvictionTester(ctx, mode=mode, parallel=True, use_kernels=fused)
        target, pool = cand.vas[0], cand.vas[1:]
        verdicts = [tester.test(target, pool, n) for n in (39, 20, 10, 5)]
        verdicts += tester.test_many(cand.vas[:4], cand.vas[4:], 24)
        deep = EvictionTester(ctx, mode=mode, parallel=True, repeats=2,
                              use_kernels=fused)
        verdicts.append(deep.test(target, pool, 16))
    return {"verdicts": verdicts, **_machine_digest(machine)}


@pytest.mark.parametrize("noisy", [False, True], ids=["quiet", "noisy"])
@pytest.mark.parametrize("mode", ["llc", "sf", "l2"])
class TestLaneThreeWayParity:
    def test_battery_bitwise_identical(self, mode, noisy):
        runs = {path: _tester_battery(mode, noisy, path) for path in PATHS}
        assert runs["lanes"] == runs["kernels"]
        assert runs["kernels"] == runs["unfused"]


# --- Monitor parity ---------------------------------------------------------


def _congruent_evset(ctx: AttackerContext, kind: str, n: int, offset: int = 0x2C0):
    machine = ctx.machine
    target_va = ctx.alloc_pages(1)[0] + offset
    tset = machine.hierarchy.shared_set_index(ctx.line(target_va))
    vas = []
    while len(vas) < n:
        for page in ctx.alloc_pages(32):
            va = page + offset
            if machine.hierarchy.shared_set_index(ctx.line(va)) == tset:
                vas.append(va)
    return EvictionSet(kind=kind, vas=vas[:n], target_va=target_va), tset


def _monitor_run(strategy_cls, path: str) -> dict:
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=31)
    ctx = AttackerContext(machine, seed=3)
    guard = kernels_disabled() if path == "unfused" else _path_guard(path)
    with guard:
        ctx.calibrate()
        evset, tset = _congruent_evset(ctx, "sf", machine.cfg.sf.ways)
        space = machine.new_address_space()
        while True:
            line = space.translate_line(space.alloc_page() + 0x2C0)
            if machine.hierarchy.shared_set_index(line) == tset:
                break
        interval = 20_000
        for i in range(15):
            machine.schedule(
                machine.now + 3_000 + i * interval,
                lambda t, line=line: machine.hierarchy.access(
                    3, line, t, write=True),
            )
        trace = monitor_set(
            strategy_cls(ctx, evset), duration_cycles=15 * interval + 30_000
        )
    return {
        "trace": [trace.timestamps, trace.start, trace.end,
                  trace.probe_latencies, trace.prime_latencies],
        **_machine_digest(machine),
    }


@pytest.mark.parametrize(
    "strategy_cls", [ParallelProbing, PrimeScopeFlush],
    ids=["parallel", "prime-scope"],
)
def test_monitor_three_way_parity(strategy_cls):
    runs = {path: _monitor_run(strategy_cls, path) for path in PATHS}
    assert runs["lanes"] == runs["kernels"]
    assert runs["kernels"] == runs["unfused"]


# --- Construction parity ----------------------------------------------------


def _l2_construction(path: str) -> dict:
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=47)
    ctx = AttackerContext(machine, seed=5)
    guard = kernels_disabled() if path == "unfused" else _path_guard(path)
    with guard:
        ctx.calibrate()
        target_va = ctx.alloc_pages(1)[0] + 0x180
        evset = build_l2_eviction_set(ctx, target_va, EvsetConfig(budget_ms=50.0))
    return {"vas": sorted(evset.vas), **_machine_digest(machine)}


def test_l2_construction_three_way_parity():
    runs = {path: _l2_construction(path) for path in PATHS}
    assert runs["lanes"] == runs["kernels"]
    assert runs["kernels"] == runs["unfused"]


# --- Golden fingerprints ----------------------------------------------------
# Same values as tests/test_kernel_parity.py (captured from the unfused
# path): the lane path must reproduce them exactly.

GOLDEN_BATTERY_NOISY_SF = "20d53b2141cf92e4"
GOLDEN_MONITOR_PARALLEL = "9b0e8bd69a10f584"
GOLDEN_L2_CONSTRUCTION = "27d41eff975b2212"


class TestGoldenFingerprints:
    def test_battery_lanes(self):
        assert _h(_tester_battery("sf", True, "lanes")) == GOLDEN_BATTERY_NOISY_SF

    def test_battery_kernels(self):
        assert _h(_tester_battery("sf", True, "kernels")) == GOLDEN_BATTERY_NOISY_SF

    def test_monitor_lanes(self):
        assert _h(_monitor_run(ParallelProbing, "lanes")) == GOLDEN_MONITOR_PARALLEL

    def test_construction_lanes(self):
        assert _h(_l2_construction("lanes")) == GOLDEN_L2_CONSTRUCTION


# --- Fallback matrix --------------------------------------------------------


def test_lanes_enabled_by_default():
    assert lanesmod.LANES_ENABLED


def test_lanes_disabled_falls_back_to_plain_kernels():
    machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
    ctx = AttackerContext(machine, seed=1)
    tester = EvictionTester(ctx, mode="l2")
    with lanes_disabled():
        k = tester._kernels()
        assert k is not None and type(k) is AttackKernels
    if lanesmod.HAVE_NUMPY:
        assert type(tester._kernels()) is LaneKernels


def test_numpy_absent_falls_back_to_plain_kernels(monkeypatch):
    monkeypatch.setattr(lanesmod, "HAVE_NUMPY", False)
    machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
    ctx = AttackerContext(machine, seed=1)
    tester = EvictionTester(ctx, mode="l2")
    k = tester._kernels()
    assert k is not None and type(k) is AttackKernels
    assert not ctx.lane_kernels().engaged()


def test_no_numpy_resolution_without_numpy():
    """With NumPy genuinely absent (REPRO_NO_NUMPY leg) the resolution
    must never hand out a LaneKernels."""
    if lanesmod.HAVE_NUMPY:
        pytest.skip("NumPy available; the CI REPRO_NO_NUMPY step covers this")
    machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
    ctx = AttackerContext(machine, seed=1)
    assert type(EvictionTester(ctx, mode="l2")._kernels()) is AttackKernels


def test_reference_cache_disengages_lanes():
    import repro.memsys.hierarchy as hmod
    from repro.memsys._reference import ReferenceSetAssociativeCache

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = ReferenceSetAssociativeCache
    try:
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
    finally:
        hmod.SetAssociativeCache = original
    ctx = AttackerContext(machine, seed=1)
    assert not ctx.lane_kernels().engaged()
    assert EvictionTester(ctx, mode="l2")._kernels() is None


def test_lane_traverse_matches_kernels_when_not_specializable():
    """Duplicate lines in the tuple must fall back (plan is None) and
    still produce bit-identical results."""
    if not lanesmod.HAVE_NUMPY:
        pytest.skip("lanes need NumPy")

    def run(fused_lanes: bool) -> dict:
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=9)
        ctx = AttackerContext(machine, seed=6)
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x100, size=12)
        vas = list(cand.vas) + [cand.vas[0]]  # duplicate line
        rows = ctx.rows(vas)
        kern = ctx.lane_kernels() if fused_lanes else ctx.attack_kernels()
        assert kern.engaged()
        kern.traverse_kernel("llc", rows, len(vas), 1)
        kern.traverse_kernel("sf", rows, len(vas), 1)
        return _machine_digest(machine)

    assert run(True) == run(False)
