"""Acceptance tests: the parallel engine vs the serial benchmark path.

The construction campaigns here run the exact trial function behind
``bench_table3`` / ``bench_table4`` (``benchmarks/_common.run_single_set_trials``),
so these tests pin the engine's contract where it matters: fanning the
same seeds over worker processes must yield byte-identical
``ConstructionSample`` values, and on a multi-core machine it must
actually be faster.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import _common  # noqa: E402  (benchmarks/_common.py)
from repro.core.evset import EvsetConfig  # noqa: E402
from repro.exec import ConstructionSample  # noqa: E402

CFG = EvsetConfig(budget_ms=1000.0)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class TestSeedForSeedParity:
    def test_parallel_matches_serial_construction_samples(self):
        """--jobs N produces seed-for-seed identical ConstructionSamples."""
        serial = _common.run_single_set_trials(
            "local", "gtop", trials=3, evset_cfg=CFG, base_seed=3100, jobs=1
        )
        parallel = _common.run_single_set_trials(
            "local", "gtop", trials=3, evset_cfg=CFG, base_seed=3100, jobs=2
        )
        assert all(isinstance(s, ConstructionSample) for s in serial)
        assert parallel == serial

    def test_filtered_table4_path_parity(self):
        serial = _common.run_single_set_trials(
            "local", "gt", trials=2, evset_cfg=CFG, base_seed=4100,
            jobs=1, filtered=True,
        )
        parallel = _common.run_single_set_trials(
            "local", "gt", trials=2, evset_cfg=CFG, base_seed=4100,
            jobs=2, filtered=True,
        )
        assert parallel == serial


class TestSpeedup:
    @pytest.mark.slow
    @pytest.mark.skipif(
        _cpus() < 4, reason="speedup acceptance needs an N>=4-core runner"
    )
    def test_four_jobs_at_least_twice_as_fast(self):
        """Acceptance: --jobs 4 on a >=4-core runner is >=2x faster than
        serial on the bench_table3 workload, with identical samples."""
        trials = 8
        t0 = time.perf_counter()
        serial = _common.run_single_set_trials(
            "local", "bins", trials=trials, evset_cfg=CFG,
            base_seed=3200, jobs=1,
        )
        serial_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        parallel = _common.run_single_set_trials(
            "local", "bins", trials=trials, evset_cfg=CFG,
            base_seed=3200, jobs=4,
        )
        parallel_s = time.perf_counter() - t0

        assert parallel == serial
        assert serial_s / parallel_s >= 2.0, (
            f"expected >=2x speedup, got {serial_s / parallel_s:.2f}x "
            f"(serial {serial_s:.1f}s, parallel {parallel_s:.1f}s)"
        )
