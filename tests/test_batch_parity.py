"""Batch-vs-serial parity: the trial-batch tier (DESIGN.md §2.6).

:mod:`repro.memsys.batchplane` promises that a trial run on a
:class:`BatchSession` lane thread — rendezvousing its planned lane ops
with its batch-mates — is bit-identical to the same trial run alone.
These suites run the lane-parity batteries both ways and require exact
agreement on every observable: verdicts, hierarchy stats, the simulated
clock, noise event counts, and the full ``getstate()`` of every RNG
stream.  The golden fingerprints are *the same values* as in
``tests/test_kernel_parity.py`` / ``tests/test_lane_parity.py`` —
a batched lane must reproduce the digests captured from the unfused
path before any optimization tier existed.

CI runs this file twice — once normally and once with
``REPRO_NO_NUMPY=1`` — so the serial-fallback leg is exercised for real.
"""

from __future__ import annotations

import pytest

from tests._parity import _h, _machine_digest

from repro.check import batch_vs_serial
from repro.check.fuzz import FuzzConfig
from repro.config import cloud_run_noise, no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset.candidates import build_candidate_set
from repro.core.evset.primitives import EvictionTester
from repro.exec import Campaign, ExecPolicy, run_campaign
from repro.fleet.campaigns import NoiseWindowConfig, noise_mc_campaign
from repro.memsys import (
    BatchLaneKernels,
    BatchSession,
    batch_disabled,
    batch_supported,
    run_batched,
    stack_shared_planes,
)
from repro.memsys import batchplane as bpmod
from repro.memsys.kernels import AttackKernels
from repro.memsys.lanes import HAVE_NUMPY, LaneKernels
from repro.memsys.machine import Machine

from tests.test_lane_parity import (
    GOLDEN_BATTERY_NOISY_SF,
    GOLDEN_L2_CONSTRUCTION,
    _l2_construction,
    _tester_battery,
)


# --- Battery parity ---------------------------------------------------------


def _battery_thunk(mode: str, noisy: bool):
    return lambda: _tester_battery(mode, noisy, "lanes")


MATRIX = [(mode, noisy) for mode in ("llc", "sf", "l2") for noisy in (False, True)]


def test_battery_matrix_batched_bitwise_identical():
    """llc/sf/l2 × quiet/noisy as ONE six-lane batch == six serial runs."""
    serial = [_tester_battery(mode, noisy, "lanes") for mode, noisy in MATRIX]
    outcomes = run_batched([_battery_thunk(mode, noisy) for mode, noisy in MATRIX])
    assert [o.value for o in outcomes] == serial
    assert all(o.ok for o in outcomes)


def test_golden_fingerprints_inside_batch():
    """A batched lane reproduces the pre-optimization golden digests."""
    outcomes = run_batched([
        _battery_thunk("sf", True),
        lambda: _l2_construction("lanes"),
        _battery_thunk("llc", False),  # batch-mate: divergent control flow
    ])
    assert _h(outcomes[0].value) == GOLDEN_BATTERY_NOISY_SF
    assert _h(outcomes[1].value) == GOLDEN_L2_CONSTRUCTION


def test_divergent_pool_sizes_in_one_batch():
    """Structurally divergent trials (different candidate-set sizes and
    batteries) must still be lane-exact: no trial sees its batch-mates."""

    def run(size: int, prefix: int):
        noise = cloud_run_noise() if size % 2 else no_noise()
        machine = Machine(skylake_sp_small(), noise=noise, seed=size)
        ctx = AttackerContext(machine, seed=7)
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x140, size=size)
        tester = EvictionTester(ctx, mode="sf", parallel=True)
        verdicts = [tester.test(cand.vas[0], cand.vas[1:], n)
                    for n in range(2, prefix)]
        return {"verdicts": verdicts, **_machine_digest(machine)}

    cases = [(12, 8), (40, 24), (26, 5), (33, 30)]
    serial = [run(size, prefix) for size, prefix in cases]
    outcomes = run_batched([
        (lambda s=size, p=prefix: run(s, p)) for size, prefix in cases
    ])
    assert [o.value for o in outcomes] == serial


# --- Stacked planes ---------------------------------------------------------


@pytest.mark.skipif(not HAVE_NUMPY, reason="stacked planes need NumPy")
def test_stacked_planes_match_serial_machines():
    """The (N, sets, ways) stacked view of batched machines equals the
    stack built from serial runs of the same trials — a stronger parity
    surface than the digest (elementwise tags/owners/policy state)."""

    def run(seed: int) -> Machine:
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=seed)
        ctx = AttackerContext(machine, seed=seed + 1)
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x240, size=20)
        tester = EvictionTester(ctx, mode="sf", parallel=True)
        tester.test(cand.vas[0], cand.vas[1:], 16)
        return machine

    seeds = [3, 4, 5]
    serial_stack = stack_shared_planes([run(s) for s in seeds])
    session = BatchSession([(lambda s=s: run(s)) for s in seeds])
    batch_stack = stack_shared_planes([o.value for o in session.run()])
    assert set(serial_stack) == set(batch_stack) and serial_stack
    for level, planes in serial_stack.items():
        for name, arr in planes.items():
            assert (arr == batch_stack[level][name]).all(), (level, name)


# --- Resolution / fallback matrix -------------------------------------------


def test_batch_lane_kernels_resolved_on_lane_threads():
    if not batch_supported():
        pytest.skip("batching unsupported (no NumPy)")

    def probe():
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
        ctx = AttackerContext(machine, seed=1)
        tester = EvictionTester(ctx, mode="l2")
        return type(tester._kernels())

    outcomes = BatchSession([probe, probe]).run()
    assert [o.value for o in outcomes] == [BatchLaneKernels, BatchLaneKernels]
    # Off a lane thread the resolution stays the plain LaneKernels.
    assert probe() is LaneKernels


def test_run_batched_serial_fallback_paths():
    """batch<2, batch_disabled(), and no-NumPy all degrade to a serial
    loop with identical outcomes."""
    calls = []

    def make(i):
        def thunk():
            calls.append(i)
            return i * 10
        return thunk

    assert [o.value for o in run_batched([make(0)])] == [0]
    with batch_disabled():
        assert not batch_supported()
        outcomes = run_batched([make(1), make(2)])
    assert [o.value for o in outcomes] == [10, 20]
    assert calls == [0, 1, 2]


def test_no_numpy_resolution_without_numpy():
    """With NumPy genuinely absent (REPRO_NO_NUMPY leg) batching must
    report unsupported and lane resolution must stay on AttackKernels."""
    if HAVE_NUMPY:
        pytest.skip("NumPy available; the CI REPRO_NO_NUMPY step covers this")
    assert not batch_supported()

    def probe():
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=4)
        ctx = AttackerContext(machine, seed=1)
        return type(EvictionTester(ctx, mode="l2")._kernels())

    assert [o.value for o in run_batched([probe, probe])] == [
        AttackKernels, AttackKernels,
    ]


def test_batch_exception_isolation():
    """A lane raising must not disturb its batch-mates' results."""

    def good():
        return _tester_battery("l2", False, "lanes")

    def bad():
        raise ValueError("lane exploded")

    serial = good()
    outcomes = run_batched([good, bad, good])
    assert outcomes[0].value == serial and outcomes[2].value == serial
    assert not outcomes[1].ok and isinstance(outcomes[1].error, ValueError)


# --- Fuzz differ ------------------------------------------------------------


def test_batchdiff_clean_including_partitions():
    cfg = FuzzConfig(machine="tiny", noise="mix", partition="always", n_ops=6)
    summary = batch_vs_serial(cfg, range(8), batch=3)
    assert summary["ok"], summary
    assert summary["seeds"] == 8 and summary["checks"] > 0


def test_batchdiff_rejects_degenerate_batch():
    with pytest.raises(ValueError):
        batch_vs_serial(FuzzConfig(), range(4), batch=1)


# --- Exec / campaign integration --------------------------------------------


def _noise_campaign(trials=48):
    return noise_mc_campaign(
        NoiseWindowConfig(rate_per_ms=6.0), trials=trials, base_seed=11
    )


def test_run_campaign_batch_matches_serial():
    serial = run_campaign(_noise_campaign(), ExecPolicy(jobs=1))
    batched = run_campaign(_noise_campaign(), ExecPolicy(jobs=1, batch=16))
    assert [r.value for r in batched.records] == [r.value for r in serial.records]
    assert all(r.ok for r in batched.records)


@pytest.mark.slow
def test_run_campaign_pool_batch_matches_serial():
    serial = run_campaign(_noise_campaign(), ExecPolicy(jobs=1))
    pooled = run_campaign(_noise_campaign(), ExecPolicy(jobs=2, batch=8))
    assert [r.value for r in pooled.records] == [r.value for r in serial.records]


def test_run_campaign_batch_failure_parity():
    def trial(cfg, seed):
        if seed % 3 == 1:
            raise RuntimeError(f"boom {seed}")
        return seed

    campaign = Campaign.build("flaky", trial, None, trials=9, base_seed=0)
    serial = run_campaign(campaign, ExecPolicy(jobs=1))
    batched = run_campaign(campaign, ExecPolicy(jobs=1, batch=4))
    assert [(r.status, r.value, r.error) for r in batched.records] == [
        (r.status, r.value, r.error) for r in serial.records
    ]


def test_batch_forced_serial_under_timeout():
    campaign = _noise_campaign(trials=8)
    result = run_campaign(campaign, ExecPolicy(jobs=1, batch=4, timeout_s=30.0))
    serial = run_campaign(campaign, ExecPolicy(jobs=1))
    assert [r.value for r in result.records] == [r.value for r in serial.records]


def test_resolved_batch_env(monkeypatch):
    assert ExecPolicy().resolved_batch() == 1
    assert ExecPolicy(batch=16).resolved_batch() == 16
    monkeypatch.setenv("REPRO_BATCH", "8")
    assert ExecPolicy().resolved_batch() == 8
    assert ExecPolicy(batch=2).resolved_batch() == 2
    with pytest.raises(ValueError):
        ExecPolicy(batch=0).resolved_batch()


def test_batch_journal_resume(tmp_path):
    from repro.exec import CampaignJournal

    campaign = _noise_campaign(trials=24)
    journal = CampaignJournal(tmp_path, campaign)
    first = run_campaign(campaign, ExecPolicy(jobs=1, batch=8), journal=journal)
    journal = CampaignJournal(tmp_path, campaign)
    second = run_campaign(campaign, ExecPolicy(jobs=1, batch=8), journal=journal)
    assert all(r.cached for r in second.records)
    assert [r.value for r in second.records] == [r.value for r in first.records]


def test_rendezvous_stats_observable():
    """A construction batch actually parks planned ops (the tier is not
    silently bypassing the rendezvous)."""
    if not batch_supported():
        pytest.skip("batching unsupported (no NumPy)")

    def run(seed):
        machine = Machine(skylake_sp_small(), noise=no_noise(), seed=seed)
        ctx = AttackerContext(machine, seed=seed)
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x140, size=24)
        tester = EvictionTester(ctx, mode="sf", parallel=True)
        return tester.test(cand.vas[0], cand.vas[1:], 20)

    session = BatchSession([(lambda s=s: run(s)) for s in (1, 2)])
    session.run()
    assert session.parked_ops > 0 and session.rounds > 0
    assert session.peak_group <= 2


def test_batch_enabled_by_default():
    assert bpmod.BATCH_ENABLED
