"""Section 5.3.2 — algorithm scaling with cache associativity.

Paper (Section 5.3.2, quiescent local machines): moving from Skylake-SP
(12-way SF, 16-way L2) to Ice Lake-SP (16-way SF, 20-way L2) widens the
gap between group testing and binary search:

    SF:  GT/BinS 1.91 -> 2.27,  GTOp/BinS 1.51 -> 1.83
    L2:  GT/BinS 1.87 -> 6.35,  GTOp/BinS 1.43 -> 3.58

because group testing costs O(W^2 N) accesses vs O(W N log N) for BinS.

Here: single-set SF and L2 constructions on the scaled Skylake and
Ice Lake machines (quiet), comparing mean construction times; candidate
filtering enabled for SF per the paper (its time excluded by measuring
pruning from pre-filtered candidates).

Expected shape: every GT*/BinS time ratio grows from Skylake to Ice Lake.
"""

from __future__ import annotations

from _common import (
    PAGE_OFFSET,
    icelake_machine_cfg,
    make_custom_env,
    print_header,
)
from repro._util import mean
from repro.analysis import Table
from repro.config import no_noise, skylake_sp_small
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    construct_l2_evset,
    construct_sf_evset,
)
from repro.core.evset.filtering import build_l2_eviction_set, filter_candidates

ALGOS = ["gt", "gtop", "bins"]
TRIALS = 4
CFG = EvsetConfig(budget_ms=200.0)

PAPER_RATIOS = {
    ("skylake", "sf"): {"gt": 1.91, "gtop": 1.51},
    ("icelake", "sf"): {"gt": 2.27, "gtop": 1.83},
    ("skylake", "l2"): {"gt": 1.87, "gtop": 1.43},
    ("icelake", "l2"): {"gt": 6.35, "gtop": 3.58},
}


def _machine(kind: str, seed: int):
    cfg = skylake_sp_small() if kind == "skylake" else icelake_machine_cfg()
    return make_custom_env(cfg, noise=no_noise(), seed=seed)


def _sf_time(kind: str, algo: str, seed: int) -> float:
    """SF construction time from pre-filtered candidates (ms)."""
    machine, ctx = _machine(kind, seed)
    cand = build_candidate_set(ctx, PAGE_OFFSET)
    target = cand.vas.pop()
    l2e = build_l2_eviction_set(ctx, target, CFG)
    filtered = filter_candidates(ctx, l2e, cand.vas)
    start = machine.now
    outcome = construct_sf_evset(ctx, algo, target, filtered, CFG)
    if not outcome.success:
        return float("nan")
    return (machine.now - start) / (machine.cfg.clock_ghz * 1e6)


def _l2_time(kind: str, algo: str, seed: int) -> float:
    machine, ctx = _machine(kind, seed)
    size = 3 * machine.cfg.u_l2 * machine.cfg.l2.ways
    cand = build_candidate_set(ctx, PAGE_OFFSET, size=size)
    target = cand.vas.pop()
    outcome = construct_l2_evset(ctx, algo, target, cand.vas, CFG)
    if not outcome.success:
        return float("nan")
    return outcome.elapsed_ms(machine.cfg.clock_ghz)


def run_sec532() -> dict:
    print_header(
        "Section 5.3.2: associativity scaling (Skylake vs Ice Lake)",
        "Paper: GT*/BinS time ratios grow with associativity, sharply for L2.",
    )
    times = {}
    for structure, fn in (("sf", _sf_time), ("l2", _l2_time)):
        for kind in ("skylake", "icelake"):
            for algo in ALGOS:
                samples = [
                    fn(kind, algo, seed=900 + 13 * i) for i in range(TRIALS)
                ]
                ok = [s for s in samples if s == s]  # drop NaN failures
                times[(structure, kind, algo)] = mean(ok) if ok else float("nan")

    table = Table(
        "Section 5.3.2 (single-set construction time, quiet)",
        ["Structure", "Machine", "GT (ms)", "GTOp (ms)", "BinS (ms)",
         "GT/BinS (paper)", "GT/BinS", "GTOp/BinS (paper)", "GTOp/BinS"],
    )
    ratios = {}
    for structure in ("sf", "l2"):
        for kind in ("skylake", "icelake"):
            t = {a: times[(structure, kind, a)] for a in ALGOS}
            r_gt = t["gt"] / t["bins"]
            r_gtop = t["gtop"] / t["bins"]
            ratios[(structure, kind)] = (r_gt, r_gtop)
            paper = PAPER_RATIOS[(kind, structure)]
            table.add_row(
                structure.upper(), kind,
                f"{t['gt']:.2f}", f"{t['gtop']:.2f}", f"{t['bins']:.2f}",
                f"{paper['gt']:.2f}", f"{r_gt:.2f}",
                f"{paper['gtop']:.2f}", f"{r_gtop:.2f}",
            )
    table.print()

    # Shape: the GT-family/BinS ratio grows with associativity.
    assert ratios[("l2", "icelake")][0] > ratios[("l2", "skylake")][0], (
        "L2 GT/BinS ratio must grow from Skylake (16-way) to Ice Lake (20-way)"
    )
    assert ratios[("sf", "icelake")][0] > 0.8 * ratios[("sf", "skylake")][0], (
        "SF ratio should not shrink materially"
    )
    assert ratios[("l2", "icelake")][0] > 1.0, "GT slower than BinS at 20 ways"
    return {
        "l2_gt_ratio_skylake": ratios[("l2", "skylake")][0],
        "l2_gt_ratio_icelake": ratios[("l2", "icelake")][0],
        "sf_gt_ratio_icelake": ratios[("sf", "icelake")][0],
    }


def bench_sec532(run_once):
    run_once(run_sec532)
