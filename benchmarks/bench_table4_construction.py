"""Table 4 — candidate filtering + pruning across scenarios and environments.

Paper (Table 4): with L2-driven candidate filtering every algorithm
recovers high success rates even on Cloud Run (88-93% average in
WholeSys, medians ~99%), and the binary-search pruner (BinS) posts the
lowest times everywhere — e.g. WholeSys on Cloud Run: GT 301.1 s,
GTOp 212.6 s, PsBst 244.4 s, BinS 142.4 s; filtering turns the 14.6-hour
WholeSys estimate of Table 3 into 2.4 minutes.

Here: SingleSet trials plus full PageOffset and (offset-subset) WholeSys
bulk runs on the scaled machines.

Expected shape: success rates back above ~90% in the cloud; BinS fastest
on average; cloud slower than local everywhere; WholeSys ~ (#offsets) x
PageOffset with filtering amortized once.
"""

from __future__ import annotations

from _common import (
    print_header,
    run_benchmark_campaign,
    run_single_set_trials,
    summarize_samples,
)
from repro.analysis import Table, format_seconds
from repro.core.evset import EvsetConfig
from repro.exec import BulkTrialConfig, bulk_trial

#: With filtering the paper drops the per-set budget to 100 ms.
CFG = EvsetConfig(budget_ms=100.0)

#: Paper Table 4 values: (scenario, env, algo) -> (succ %, avg time).
PAPER_ROWS = [
    ("SingleSet", "local", {"gt": (99.3, "15.2 ms"), "gtop": (99.5, "14.7 ms"),
                            "psop": (99.2, "14.7 ms"), "bins": (99.9, "14.1 ms")}),
    ("SingleSet", "cloud", {"gt": (96.7, "28.8 ms"), "gtop": (97.7, "27.2 ms"),
                            "psop": (97.2, "33.2 ms"), "bins": (98.1, "26.6 ms")}),
    ("PageOffset", "local", {"gt": (98.6, "1.95 s"), "gtop": (99.2, "1.48 s"),
                             "psop": (99.4, "3.02 s"), "bins": (99.5, "1.04 s")}),
    ("PageOffset", "cloud", {"gt": (95.6, "5.51 s"), "gtop": (97.4, "3.95 s"),
                             "psop": (98.4, "4.51 s"), "bins": (98.0, "2.87 s")}),
    ("WholeSys", "local", {"gt": (99.0, "103.6 s"), "gtop": (99.1, "79.6 s"),
                           "psop": (99.5, "175.0 s"), "bins": (99.5, "50.1 s")}),
    ("WholeSys", "cloud", {"gt": (88.1, "301.1 s"), "gtop": (90.5, "212.6 s"),
                           "psop": (91.7, "244.4 s"), "bins": (92.6, "142.4 s")}),
]
PAPER = {(s, e, a): v for s, e, row in PAPER_ROWS for a, v in row.items()}

SINGLESET_ALGOS = ["gt", "gtop", "psop", "bins"]
BULK_ALGOS = ["gtop", "bins"]
WHOLESYS_OFFSETS = [0x0, 0x40, 0x80, 0xC0]


def _singleset_with_filtering(env: str, algo: str, trials: int) -> dict:
    """SingleSet trials where construction includes one filtering pass."""
    samples = run_single_set_trials(
        env, algo, trials, CFG, base_seed=4000, filtered=True
    )
    return summarize_samples(samples)


def _bulk_grid(scenario: str, seeds: dict, **cfg_kwargs) -> dict:
    """Fan one bulk scenario's (env, algo) grid out as a campaign."""
    grid = [(env, algo) for env in ("local", "cloud") for algo in BULK_ALGOS]
    runs = [
        (
            BulkTrialConfig(
                env=env, algorithm=algo, scenario=scenario,
                evset_cfg=CFG, **cfg_kwargs,
            ),
            seeds[(env, algo)],
        )
        for env, algo in grid
    ]
    outcomes = run_benchmark_campaign(f"table4-{scenario}", bulk_trial, runs)
    return {key: out for key, out in zip(grid, outcomes)}


def run_table4() -> dict:
    print_header(
        "Table 4: eviction-set construction with candidate filtering",
        "Paper: filtering rescues cloud success to ~90%+; BinS is fastest.",
    )
    table = Table(
        "Table 4 (filtering + pruning)",
        ["Scenario", "Env", "Algo", "Succ (paper)", "Succ (measured)",
         "Time (paper)", "Time (measured)"],
    )
    measured = {}

    for env in ("local", "cloud"):
        for algo in SINGLESET_ALGOS:
            summary = _singleset_with_filtering(env, algo, trials=4)
            measured[("SingleSet", env, algo)] = (
                summary["succ"], summary["avg_ms"] / 1e3
            )
            p_succ, p_time = PAPER[("SingleSet", env, algo)]
            table.add_row(
                "SingleSet", env, algo.upper(), f"{p_succ:.1f}%",
                f"{summary['succ'] * 100:.0f}%", p_time,
                format_seconds(summary["avg_ms"] / 1e3),
            )

    page_offset_runs = _bulk_grid(
        "page-offset",
        {
            (env, algo): 4500 + hash((env, algo)) % 89
            for env in ("local", "cloud") for algo in BULK_ALGOS
        },
        page_offset=0x240,
    )
    for (env, algo), out in page_offset_runs.items():
        rate, secs = out["rate"], out["seconds"]
        measured[("PageOffset", env, algo)] = (rate, secs)
        p_succ, p_time = PAPER[("PageOffset", env, algo)]
        table.add_row(
            "PageOffset", env, algo.upper(), f"{p_succ:.1f}%",
            f"{rate * 100:.0f}%", p_time, format_seconds(secs),
        )

    whole_sys_runs = _bulk_grid(
        "whole-sys",
        {
            (env, algo): 4700 + hash((env, algo)) % 83
            for env in ("local", "cloud") for algo in BULK_ALGOS
        },
        offsets=tuple(WHOLESYS_OFFSETS),
    )
    for (env, algo), out in whole_sys_runs.items():
        rate, secs = out["rate"], out["seconds"]
        measured[("WholeSys", env, algo)] = (rate, secs)
        p_succ, p_time = PAPER[("WholeSys", env, algo)]
        table.add_row(
            f"WholeSys[{len(WHOLESYS_OFFSETS)}/64 offsets]", env,
            algo.upper(), f"{p_succ:.1f}%", f"{rate * 100:.0f}%",
            p_time, format_seconds(secs),
        )
    table.print()
    print("NOTE: WholeSys covers a subset of line offsets; full-system time "
          "scales linearly in offsets with filtering amortized once.\n")

    # Shape assertions.
    for env in ("local", "cloud"):
        for algo in BULK_ALGOS:
            assert measured[("PageOffset", env, algo)][0] > 0.8, (
                f"filtered PageOffset success too low: {env}/{algo}"
            )
    assert (
        measured[("SingleSet", "cloud", "bins")][0] >= 0.75
    ), "filtered cloud BinS should succeed"
    # BinS at least as fast as GTOp in the cloud bulk scenarios.
    assert (
        measured[("PageOffset", "cloud", "bins")][1]
        <= 1.4 * measured[("PageOffset", "cloud", "gtop")][1]
    )
    return {
        "pageoffset_cloud_bins_s": measured[("PageOffset", "cloud", "bins")][1],
        "wholesys_cloud_bins_s": measured[("WholeSys", "cloud", "bins")][1],
        "pageoffset_cloud_bins_succ": measured[("PageOffset", "cloud", "bins")][0],
    }


def bench_table4(run_once):
    run_once(run_table4)
