"""Figure 6 — covert-channel detection rate vs. sender access interval.

Paper (Figure 6 / Section 6.1): with a 2k-cycle access interval Parallel
Probing detects 84.1% of the sender's accesses while PS-Flush manages
15.4% and PS-Alt 6.0% (their primes are too slow to re-arm).  Even at
100k cycles Parallel stays highest (91.1% vs 82.1% / 36.9%).

Here: the same sender/receiver experiment on the cloud machine.  The
sender *stores* to a line of the monitored SF set at a fixed interval;
the receiver runs each strategy's monitor loop; an access counts as
detected if a detection lands within the error bound after it.

Expected shape: at short intervals Parallel >> PS-Flush > PS-Alt (prime
latency dominates); Parallel highest at every interval.
"""

from __future__ import annotations

from _common import make_env, print_header, run_benchmark_campaign
from repro.analysis import Table
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import make_monitor, monitor_set

INTERVALS = [2_000, 5_000, 10_000, 20_000, 50_000, 100_000]
STRATEGIES = ["parallel", "ps-flush", "ps-alt"]
#: Detection error bound (cycles).  The paper uses 500 (250 ns); our probe
#: loop carries ~220 cycles of modelled bookkeeping per iteration, so the
#: equivalent bound is one loop + one DRAM-probe wider.
EPSILON = 1_200

#: Paper detection rates (%) at the endpoints for reference.
PAPER = {
    ("parallel", 2_000): 84.1, ("ps-flush", 2_000): 15.4, ("ps-alt", 2_000): 6.0,
    ("parallel", 100_000): 91.1, ("ps-flush", 100_000): 82.1,
    ("ps-alt", 100_000): 36.9,
}


def _sender_line(machine, ctx, evset):
    target_set = ctx.true_set_of(evset.target_va)
    offset = evset.target_va % 4096
    space = machine.new_address_space()
    while True:
        page = space.alloc_page()
        line = space.translate_line(page + offset)
        if machine.hierarchy.shared_set_index(line) == target_set:
            return line


def _detection_rate(env_seed, strategy, interval, accesses=120) -> float:
    machine, ctx = make_env("cloud-raw", seed=env_seed)
    bulk = bulk_construct_page_offset(
        ctx, "bins", 0x380, EvsetConfig(budget_ms=100)
    )
    evset = bulk.evsets[0]
    # PS-Alt needs an L2-disjoint second set (see bench_table5).
    alternate = next(
        (e for e in bulk.evsets[1:]
         if ctx.true_l2_set_of(e.target_va) != ctx.true_l2_set_of(evset.target_va)),
        bulk.evsets[1],
    )
    line = _sender_line(machine, ctx, evset)
    hier = machine.hierarchy
    sender_core = machine.cfg.cores - 1
    t0 = machine.now + 5_000
    times = []
    for i in range(accesses):
        when = t0 + i * interval
        times.append(when)
        machine.schedule(
            when, lambda t, l=line: hier.access(sender_core, l, t, write=True)
        )
    monitor = make_monitor(strategy, ctx, evset, alternate=alternate)
    trace = monitor_set(monitor, duration_cycles=(accesses + 4) * interval)
    detected = sum(
        1 for t in times if any(t < d <= t + EPSILON for d in trace.timestamps)
    )
    return detected / len(times)


def detection_trial(cfg: dict, seed: int) -> float:
    """Campaign-engine wrapper: one (strategy, interval) detection run."""
    return _detection_rate(
        seed, cfg["strategy"], cfg["interval"], accesses=cfg["accesses"]
    )


def run_fig6() -> dict:
    print_header(
        "Figure 6: detection rate vs. sender access interval",
        "Paper: Parallel 84% at 2k cycles vs PS-Flush 15% / PS-Alt 6%.",
    )
    table = Table(
        "Figure 6 (detection rate %, cloud machine)",
        ["Interval (cycles)"] + [s.upper() for s in STRATEGIES],
    )
    # Fewer sender accesses at the longest intervals to bound runtime.
    grid = [
        (interval, strategy)
        for interval in INTERVALS for strategy in STRATEGIES
    ]
    runs = [
        (
            {
                "strategy": strategy,
                "interval": interval,
                "accesses": 80 if interval <= 20_000 else 50,
            },
            66,
        )
        for interval, strategy in grid
    ]
    measured = run_benchmark_campaign("fig6-detection", detection_trial, runs)
    rates = {
        (strategy, interval): rate
        for (interval, strategy), rate in zip(grid, measured)
    }
    for interval in INTERVALS:
        table.add_row(
            str(interval),
            *(f"{rates[(s, interval)] * 100:.0f}%" for s in STRATEGIES),
        )
    table.print()
    print("Paper endpoints: 2k cycles -> 84.1/15.4/6.0; "
          "100k cycles -> 91.1/82.1/36.9 (parallel/ps-flush/ps-alt)\n")

    # Shapes: at the shortest interval Parallel must dominate both
    # Prime+Scope strategies by a wide margin (prime latency!).
    assert rates[("parallel", 2_000)] > 0.6
    assert rates[("parallel", 2_000)] > 2 * rates[("ps-flush", 2_000)]
    assert rates[("parallel", 2_000)] > 2 * rates[("ps-alt", 2_000)]
    # Parallel stays on top at the longest interval too.
    assert rates[("parallel", 100_000)] >= rates[("ps-flush", 100_000)] - 0.05
    assert rates[("parallel", 100_000)] > rates[("ps-alt", 100_000)]
    return {
        "parallel_2k": rates[("parallel", 2_000)],
        "psflush_2k": rates[("ps-flush", 2_000)],
        "psalt_2k": rates[("ps-alt", 2_000)],
        "parallel_100k": rates[("parallel", 100_000)],
    }


def bench_fig6(run_once):
    run_once(run_fig6)
