"""Table 6 — identifying the victim's target set with the PSD method.

Paper (Table 6): scanning with the PSD+SVM classifier finds the target SF
set in 94.1% of PageOffset attempts (avg 6.1 s within a 60 s timeout,
scanning ~831 sets/s) and 73.9% of WholeSys attempts (179.7 s within
900 s, ~762 sets/s); WholeSys is lower because de-synchronization leaves
fewer scans per set within the timeout, and its false positives (MAdd /
MDouble sets) are rejected by trial extraction.

Here: the same scan loop on the scaled machine.  PageOffset scans the
U_LLC sets at the victim's offset; "WholeSys" scans sets from several
page offsets (geometry subset) with the extraction-based validator on.
Timeouts scale with the set-count ratio.

Expected shape: high PageOffset success within seconds; WholeSys success
lower with proportionally longer times; scan rate in the hundreds of
sets/s.
"""

from __future__ import annotations

from _common import make_victim_env, print_header, run_benchmark_campaign
from repro._util import mean, stddev
from repro.analysis import Table
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.extraction import HeuristicBoundaryClassifier
from repro.core.pipeline import AttackConfig, make_extraction_validator
from repro.core.scanner import (
    Scanner,
    ScannerConfig,
    TargetSetClassifier,
    collect_labeled_traces,
)

PAPER = {
    "PageOffset": {"succ": 94.1, "time": "6.1 s", "rate": 831},
    "WholeSys": {"succ": 73.9, "time": "179.7 s", "rate": 762},
}

PAGEOFFSET_TRIALS = 3
WHOLESYS_TRIALS = 2
PAGEOFFSET_TIMEOUT_S = 2.5
WHOLESYS_TIMEOUT_S = 6.0
WHOLESYS_EXTRA_OFFSETS = 2

#: The classifier is trained once, offline, like the paper's SVM (trained
#: on traces from separate controlled hosts) and reused for every trial.
_CLASSIFIER_CACHE = {}


def _offline_classifier(scfg: ScannerConfig):
    if "clf" in _CLASSIFIER_CACHE:
        return _CLASSIFIER_CACHE["clf"]
    machine, ctx, victim = make_victim_env("cloud-raw", seed=599)
    offset = victim.layout.target_page_offset
    evsets = bulk_construct_page_offset(
        ctx, "bins", offset, EvsetConfig(budget_ms=100)
    ).evsets
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    traces, labels = collect_labeled_traces(ctx, evsets, target_set, scfg, 2)
    clf = TargetSetClassifier(machine.clock_hz, scfg).fit(traces, labels)
    _CLASSIFIER_CACHE["clf"] = clf
    return clf


def _attack_setup(seed: int, extra_offsets: int = 0):
    machine, ctx, victim = make_victim_env("cloud-raw", seed=seed)
    offset = victim.layout.target_page_offset
    evsets = list(
        bulk_construct_page_offset(ctx, "bins", offset, EvsetConfig(budget_ms=100)).evsets
    )
    for i in range(extra_offsets):
        other = (offset + (i + 1) * 0x40) % 4096
        evsets.extend(
            bulk_construct_page_offset(
                ctx, "bins", other, EvsetConfig(budget_ms=100)
            ).evsets
        )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    return machine, ctx, victim, evsets, target_set


def _scan_trial(cfg: dict, seed: int) -> dict:
    """One PSD scan trial (campaign-engine unit; classifier via fork)."""
    scfg = ScannerConfig()
    classifier = _offline_classifier(scfg)
    machine, ctx, victim, evsets, target_set = _attack_setup(
        seed, extra_offsets=cfg["extra_offsets"]
    )
    validator = None
    if cfg["validated"]:
        acfg = AttackConfig()
        validator = make_extraction_validator(
            HeuristicBoundaryClassifier(acfg.extraction), acfg
        )
    scanner = Scanner(ctx, classifier, scfg, validator=validator)
    result = scanner.scan(evsets, timeout_s=cfg["timeout_s"])
    ok = result.found and ctx.true_set_of(result.evset.target_va) == target_set
    return {
        "ok": ok,
        "secs": result.elapsed_seconds(machine.cfg.clock_ghz) if ok else None,
        "rate": result.scan_rate_sets_per_s(machine.cfg.clock_ghz),
    }


def _scan_trials(scenario: str, trials: int, timeout_s: float, seed0: int):
    # Train once in the parent, like the paper's offline SVM; forked
    # campaign workers inherit the cache instead of retraining.
    _offline_classifier(ScannerConfig())
    cfg = {
        "extra_offsets": WHOLESYS_EXTRA_OFFSETS if scenario == "WholeSys" else 0,
        "validated": scenario == "WholeSys",
        "timeout_s": timeout_s,
    }
    runs = [(cfg, seed0 + i) for i in range(trials)]
    outcomes = run_benchmark_campaign(
        f"table6-{scenario.lower()}", _scan_trial, runs
    )
    successes = sum(1 for o in outcomes if o["ok"])
    times = [o["secs"] for o in outcomes if o["ok"]]
    rates = [o["rate"] for o in outcomes]
    return successes / trials, times, mean(rates)


def run_table6() -> dict:
    print_header(
        "Table 6: PSD-based target-set identification",
        "Paper: 94.1% success in 6.1 s (PageOffset); 73.9% in 179.7 s "
        "(WholeSys).",
    )
    table = Table(
        "Table 6 (scaled set counts & timeouts)",
        ["Scenario", "Succ (paper)", "Succ (measured)",
         "Avg success time (paper)", "Avg success time (measured)",
         "Scan rate paper (sets/s)", "Scan rate measured"],
    )
    measured = {}
    for scenario, trials, timeout in (
        ("PageOffset", PAGEOFFSET_TRIALS, PAGEOFFSET_TIMEOUT_S),
        ("WholeSys", WHOLESYS_TRIALS, WHOLESYS_TIMEOUT_S),
    ):
        succ, times, rate = _scan_trials(scenario, trials, timeout, seed0=600)
        measured[scenario] = (succ, mean(times) if times else float("nan"), rate)
        paper = PAPER[scenario]
        table.add_row(
            scenario, f"{paper['succ']:.1f}%", f"{succ * 100:.0f}%",
            paper["time"],
            f"{mean(times):.2f} s" if times else "-",
            paper["rate"], f"{rate:.0f}",
        )
    table.print()
    print("NOTE: set counts, timeouts, and scan windows are geometry-scaled; "
          "compare success levels and the PageOffset>WholeSys ordering.\n")

    assert measured["PageOffset"][0] >= 0.75, "PageOffset identification works"
    assert measured["PageOffset"][0] >= measured["WholeSys"][0] - 1e-9, (
        "WholeSys should not beat PageOffset"
    )
    assert measured["PageOffset"][2] > 100, "scan rate in the hundreds of sets/s"
    return {
        "pageoffset_succ": measured["PageOffset"][0],
        "wholesys_succ": measured["WholeSys"][0],
        "scan_rate": measured["PageOffset"][2],
    }


def bench_table6(run_once):
    run_once(run_table6)
