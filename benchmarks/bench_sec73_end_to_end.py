"""Section 7.3 — the end-to-end, cross-tenant nonce extraction.

Paper (Section 7.3): across 52 co-located container pairs on Cloud Run,
the attack identifies a target set on 47; from the 470 collected traces it
extracts an average of 68% (median 81%) of the nonce bits with a 3% bit
error rate among recovered bits; the full attack — eviction sets, PSD
identification, 10 signing traces — takes ~19 seconds on average.

Here: several co-located attacker/victim pairs on scaled cloud machines,
each running the full Steps 1-3 pipeline (the classifier is trained once
offline, as the paper trains its SVM on separate controlled hosts).

Expected shape: most pairs identify the target; median recovered fraction
well above half with a low BER; end-to-end time dominated by scanning and
collection, in seconds of simulated time.
"""

from __future__ import annotations

from _common import make_victim_env, print_header, run_benchmark_campaign
from repro._util import mean, median
from repro.analysis import Table, format_seconds
from repro.core.evset import EvsetConfig
from repro.core.pipeline import AttackConfig, run_end_to_end
from repro.core.scanner import (
    ScannerConfig,
    TargetSetClassifier,
    collect_labeled_traces,
)
from repro.core.evset import bulk_construct_page_offset

PAIRS = 3
N_TRACES = 4

#: Trained once, offline, and inherited by forked campaign workers.
_CLASSIFIER_CACHE = {}


def _train_offline_classifier(seed: int) -> TargetSetClassifier:
    """Train the SVM on a controlled host (the paper's offline phase)."""
    if seed in _CLASSIFIER_CACHE:
        return _CLASSIFIER_CACHE[seed]
    machine, ctx, victim = make_victim_env("cloud-raw", seed=seed)
    scfg = ScannerConfig()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    # Class-balanced training (same cure as test_scanner_pipeline): with
    # one target set among many and a ~25% victim duty cycle, per_set=2
    # positives are often all idle and the SVM collapses to "always
    # negative" — then no pair ever identifies its target.
    clf_traces, labels = collect_labeled_traces(
        ctx, bulk.evsets, target_set, scfg, per_set=2, positive_reps=16
    )
    clf = TargetSetClassifier(machine.clock_hz, scfg).fit(clf_traces, labels)
    _CLASSIFIER_CACHE[seed] = clf
    return clf


def _pair_trial(cfg: dict, seed: int) -> dict:
    """One co-located attacker/victim pair's full Steps 1-3 attack."""
    classifier = _train_offline_classifier(cfg["classifier_seed"])
    acfg = AttackConfig(
        n_traces=cfg["n_traces"], scan_timeout_s=cfg["scan_timeout_s"]
    )
    machine, ctx, victim = make_victim_env("cloud-raw", seed=seed)
    victim.run_continuously(machine.now + 1000)
    report = run_end_to_end(ctx, victim, classifier, acfg)
    ghz = machine.cfg.clock_ghz
    return {
        "identified": report.target_identified,
        "fracs": [s.recovered_fraction for s in report.scores],
        "bers": [s.bit_error_rate for s in report.scores if s.n_recovered],
        "evset_s": report.evset_build_cycles / (ghz * 1e9),
        "scan_s": report.scan_cycles / (ghz * 1e9),
        "collect_s": report.collect_cycles / (ghz * 1e9),
        "total_s": report.total_seconds(ghz),
    }


def run_sec73() -> dict:
    print_header(
        "Section 7.3: end-to-end cross-tenant nonce extraction",
        "Paper: median 81% of nonce bits, 3% BER, ~19 s per attack.",
    )
    # Train in the parent so forked campaign workers inherit the model.
    _train_offline_classifier(seed=700)
    cfg = {"classifier_seed": 700, "n_traces": N_TRACES, "scan_timeout_s": 1.0}

    table = Table(
        "Section 7.3 (per co-located pair)",
        ["Pair", "Target found", "Evset build", "Scan", "Collect",
         "Total (sim)", "Median bits recovered", "Mean BER"],
    )
    # The heaviest benchmark runs through the fleet service: each pair is
    # durable once finished, so a killed run resumes instead of redoing
    # multi-second end-to-end attacks, and a rerun is a pure cache hit.
    runs = [(cfg, 710 + pair) for pair in range(PAIRS)]
    outcomes = run_benchmark_campaign(
        "sec73-pairs", _pair_trial, runs, fleet=True
    )
    identified = 0
    all_fracs = []
    all_bers = []
    totals = []
    for pair, out in enumerate(outcomes):
        if out["identified"]:
            identified += 1
        all_fracs.extend(out["fracs"])
        all_bers.extend(out["bers"])
        totals.append(out["total_s"])
        table.add_row(
            pair,
            "yes" if out["identified"] else "no",
            format_seconds(out["evset_s"]),
            format_seconds(out["scan_s"]),
            format_seconds(out["collect_s"]),
            format_seconds(out["total_s"]),
            f"{median(out['fracs']) * 100:.0f}%" if out["fracs"] else "-",
            f"{mean(out['bers']) * 100:.1f}%" if out["bers"] else "-",
        )
    table.print()
    med_frac = median(all_fracs)
    avg_frac = mean(all_fracs)
    avg_ber = mean(all_bers)
    print(
        f"Overall: {identified}/{PAIRS} pairs identified the target; "
        f"recovered bits mean {avg_frac:.0%} / median {med_frac:.0%} "
        f"(paper: 68% / 81%); BER {avg_ber:.1%} (paper 3%); "
        f"avg attack time {mean(totals):.2f} s sim (paper ~19 s full-scale).\n"
    )

    assert identified >= PAIRS - 1, "target identification should mostly work"
    assert med_frac > 0.55, "median recovered fraction well above half"
    assert avg_ber < 0.12, "bit error rate in the few-percent range"
    return {
        "pairs_identified": identified,
        "median_recovered": med_frac,
        "mean_recovered": avg_frac,
        "mean_ber": avg_ber,
        "avg_attack_seconds": mean(totals),
    }


def bench_sec73(run_once):
    run_once(run_sec73)
