"""Figure 2 — CDF of time between background accesses to a random LLC set.

Paper (Figure 2 / Section 4.3): monitoring a random LLC set with
Prime+Probe shows background activity at 11.5 accesses/ms/set on Cloud
Run vs. 0.29 on the quiescent local machine — a ~40x gap that is the
root cause of the Table 3 failures.

Here: the same measurement loop (Prime+Probe an otherwise unused set,
record inter-access gaps) on both environments with the *raw* measured
rates, printing the CDF and the recovered per-set access rate.

Expected shape: cloud rate ~40x local; cloud inter-access times
exponential-ish around ~90 us; recovered rates close to the configured
(paper-measured) inputs.
"""

from __future__ import annotations

from _common import make_env, print_header
from repro._util import percentile
from repro.analysis import Table
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set

#: Paper rates (accesses / ms / set).
PAPER_RATES = {"cloud-raw": 11.5, "local-raw": 0.29}

WINDOW_MS = {"cloud-raw": 6.0, "local-raw": 60.0}


def _measure(env: str, seed: int):
    machine, ctx = make_env(env, seed=seed)
    bulk = bulk_construct_page_offset(
        ctx, "bins", 0x140, EvsetConfig(budget_ms=100)
    )
    evset = bulk.evsets[0]
    cycles = int(WINDOW_MS[env] * machine.cfg.clock_ghz * 1e6)
    monitor = ParallelProbing(ctx, evset, llc_scrub_period=0)
    trace = monitor_set(monitor, cycles)
    gaps_us = [g / (machine.cfg.clock_ghz * 1e3) for g in trace.inter_access_gaps()]
    rate = trace.access_count() / WINDOW_MS[env]
    return rate, gaps_us


def run_fig2() -> dict:
    print_header(
        "Figure 2: background access inter-arrival CDF",
        "Paper: 11.5 accesses/ms/set on Cloud Run vs 0.29 locally.",
    )
    results = {}
    table = Table(
        "Figure 2 (per-set background access rate)",
        ["Env", "Rate paper (/ms)", "Rate measured (/ms)",
         "Gap p25 (us)", "Gap p50 (us)", "Gap p75 (us)", "Gap p95 (us)"],
    )
    cdfs = {}
    for env in ("cloud-raw", "local-raw"):
        rate, gaps = _measure(env, seed=22)
        results[env] = rate
        cdfs[env] = gaps
        table.add_row(
            env.replace("-raw", ""),
            f"{PAPER_RATES[env]:.2f}",
            f"{rate:.2f}",
            f"{percentile(gaps, 25):.1f}",
            f"{percentile(gaps, 50):.1f}",
            f"{percentile(gaps, 75):.1f}",
            f"{percentile(gaps, 95):.1f}",
        )
    table.print()

    print("CDF points (gap us -> cumulative fraction):")
    for env, gaps in cdfs.items():
        pts = [
            f"{percentile(gaps, q):.0f}us@{q}%"
            for q in (10, 25, 50, 75, 90, 99)
        ]
        print(f"  {env:10s}: " + ", ".join(pts))
    print()

    # The monitor detects a large share of events; the observed rate must
    # land in the right decade and preserve the ~40x environment gap.
    assert results["cloud-raw"] > 8 * results["local-raw"]
    assert 0.3 * 11.5 < results["cloud-raw"] < 2.5 * 11.5
    return {
        "cloud_rate_per_ms": results["cloud-raw"],
        "local_rate_per_ms": results["local-raw"],
    }


def bench_fig2(run_once):
    run_once(run_fig2)
