"""Defense matrix — Section 8's mitigation landscape, measured.

The paper surveys mitigations qualitatively: partition-based designs
(Intel CAT / DAWG way partitioning, page coloring) offer strong
guarantees at a provisioning cost, randomization-based designs (CEASER,
skewed associativity) are cheaper but historically leakier, and
software-only schemes (Zhou et al.'s copy-on-access isolation) need no
hardware support.  This benchmark runs the *full attack pipeline*
against each implemented defense and prints the matrix: eviction-set
construction success, PSD-scanner accuracy, and end-to-end nonce-bit
recovery, per defense, on identically-seeded machines.

Expected shape (the assertions below):

* **none** — the whole pipeline works: construction near 100%, monitor
  accuracy well above coin-flip, nonce bits recovered.
* **way-partition** — construction still succeeds (the attacker builds
  eviction sets inside its own ways; partitioning hides nothing about
  set mappings) but cross-domain eviction is gone, so monitoring and
  recovery collapse.
* **ceaser / skew** — the keyed index breaks the page-offset → set
  contract Step 1 relies on; no eviction set ever covers the target,
  and the later stages never get off the ground.
* **soft-copy** — placement is unchanged, so construction succeeds;
  per-domain copies absorb the victim's insertions, blinding the
  monitor like hardware partitioning does.
"""

from __future__ import annotations

from _common import print_header, run_benchmark_campaign
from repro.analysis import Table
from repro.defenses import DEFENSE_NAMES
from repro.defenses.matrix import (
    DefenseTrialConfig,
    DefenseTrialSample,
    defense_trial,
    summarize_defense_samples,
)
from repro.exec.spec import dataclass_codec

TRIALS = 2
BASE_SEED = 1000


def run_defense_matrix() -> dict:
    print_header(
        "Defense matrix: the attack pipeline vs. Section 8's mitigations",
        "Paper: partitioning blinds the probe, randomization breaks "
        "construction; here both are measured stage by stage.",
    )
    runs = []
    for defense in DEFENSE_NAMES:
        cfg = DefenseTrialConfig(env="cloud", defense=defense)
        runs += [(cfg, BASE_SEED + i) for i in range(TRIALS)]
    samples = run_benchmark_campaign(
        "defense-matrix",
        defense_trial,
        runs,
        codec=dataclass_codec(DefenseTrialSample),
    )
    rows = summarize_defense_samples(samples)
    table = Table(
        "Defense matrix (cloud env)",
        ["Defense", "Constr", "Covered", "Monitor", "Identified",
         "Recovered", "BER"],
    )
    by_defense = {}
    for row in rows:
        by_defense[row["defense"]] = row
        table.add_row(
            row["defense"],
            f"{row['construct_rate'] * 100:.0f}%",
            f"{row['target_covered'] * 100:.0f}%",
            f"{row['monitor_accuracy'] * 100:.0f}%",
            f"{row['identified'] * 100:.0f}%",
            f"{row['recovered'] * 100:.0f}%",
            f"{row['ber'] * 100:.0f}%",
        )
    table.print()

    # Shape assertions.
    none = by_defense["none"]
    assert none["construct_rate"] > 0.9, "undefended construction works"
    # The per-trial held-out batch is small, so accuracy is a noisy
    # estimate; above coin flip here, with target identification and
    # recovery below carrying the real end-to-end claim.
    assert none["monitor_accuracy"] > 0.5, "undefended monitor separates"
    assert none["identified"] > 0, "undefended attack finds the target"
    assert none["recovered"] > 0.1, "undefended attack recovers nonce bits"
    for randomized in ("ceaser", "skew"):
        assert by_defense[randomized]["target_covered"] == 0.0, (
            f"{randomized} should defeat bulk construction"
        )
        assert by_defense[randomized]["recovered"] == 0.0
    for isolating in ("way-partition", "soft-copy"):
        assert by_defense[isolating]["construct_rate"] > 0.9, (
            f"{isolating} does not hide set mappings"
        )
        assert by_defense[isolating]["recovered"] < none["recovered"]
        assert by_defense[isolating]["identified"] == 0.0, (
            f"{isolating} should blind target identification"
        )
    return {
        "none_recovered": none["recovered"],
        "none_monitor_accuracy": none["monitor_accuracy"],
        "way_partition_identified": by_defense["way-partition"]["identified"],
        "ceaser_covered": by_defense["ceaser"]["target_covered"],
    }


def bench_defense_matrix(run_once):
    run_once(run_defense_matrix)


if __name__ == "__main__":
    run_defense_matrix()
