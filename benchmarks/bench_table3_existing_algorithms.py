"""Table 3 — existing pruning algorithms in quiet vs. cloud environments.

Paper (Table 3): in the quiescent local environment GT/GTOp/PS/PsOp all
succeed 97-99% of the time; on Cloud Run GT falls to 39.4%, GTOp to 56.0%,
and Prime+Scope collapses to 3.2% (PsOp 6.9%), with no significant
quiet-hours effect.  The drivers (Section 4.3): noise-exposed TestEviction
windows, with the sequential TestEviction of Prime+Scope exposed an order
of magnitude longer.

Here: the same four algorithms, unfiltered candidate sets (N = 3UW),
paper protocol (<=10 attempts, <=20 backtracks, 1,000 ms budget), on the
scaled machines with exposure-matched noise.

Expected shape: local success ~1.0 for all; cloud success ordered
PS < PsOp << GT <= GTOp, with all cloud times well above local; quiet
hours indistinguishable from regular cloud hours.
"""

from __future__ import annotations

from _common import (
    ConstructionSample,
    print_header,
    run_single_set_trials,
    summarize_samples,
)
from repro.analysis import Table
from repro.core.evset import EvsetConfig

ALGORITHMS = ["gt", "gtop", "ps", "psop"]
ENVS = ["local", "cloud", "cloud-quiet"]
TRIALS = {"local": 5, "cloud": 4, "cloud-quiet": 3}

#: Paper values: (success rate %, avg time ms) per (env, algorithm).
PAPER = {
    ("local", "gt"): (97.0, 32.9),
    ("local", "gtop"): (98.8, 21.1),
    ("local", "ps"): (98.5, 55.9),
    ("local", "psop"): (98.2, 54.9),
    ("cloud", "gt"): (39.4, 714.0),
    ("cloud", "gtop"): (56.0, 512.0),
    ("cloud", "ps"): (3.2, 580.0),
    ("cloud", "psop"): (6.9, 572.0),
    ("cloud-quiet", "gt"): (41.4, 693.0),
    ("cloud-quiet", "gtop"): (57.2, 499.0),
    ("cloud-quiet", "ps"): (3.7, 581.0),
    ("cloud-quiet", "psop"): (7.6, 576.0),
}


def run_table3() -> dict:
    print_header(
        "Table 3: state-of-the-art address pruning, quiet vs. cloud",
        "Paper: cloud noise breaks PS/PsOp (<7%) and halves GT/GTOp.",
    )
    cfg = EvsetConfig(budget_ms=1000.0)
    results = {}
    table = Table(
        "Table 3 (unfiltered SingleSet SF construction)",
        ["Env", "Algo", "Succ (paper)", "Succ (measured)",
         "Avg ms (paper)", "Avg ms (measured)", "Med ms"],
    )
    for env in ENVS:
        for algo in ALGORITHMS:
            samples = run_single_set_trials(
                env, algo, TRIALS[env], cfg, base_seed=3000 + hash(env) % 97
            )
            summary = summarize_samples(samples)
            results[(env, algo)] = summary
            p_succ, p_ms = PAPER[(env, algo)]
            table.add_row(
                env,
                algo.upper(),
                f"{p_succ:.1f}%",
                f"{summary['succ'] * 100:.0f}%",
                f"{p_ms:.0f}",
                f"{summary['avg_ms']:.2f}",
                f"{summary['med_ms']:.2f}",
            )
    table.print()
    print("NOTE: measured times are on the ~28x reduced geometry; compare "
          "shapes (orderings, ratios), not absolute values.\n")

    # Shape assertions (the paper's qualitative findings).
    local_ok = all(results[("local", a)]["succ"] >= 0.8 for a in ALGORITHMS)
    ps_worst = results[("cloud", "ps")]["succ"] <= results[("cloud", "gtop")]["succ"]
    degraded = any(
        results[("cloud", a)]["succ"] < results[("local", a)]["succ"]
        or results[("cloud", a)]["avg_ms"] > 2 * results[("local", a)]["avg_ms"]
        for a in ALGORITHMS
    )
    assert local_ok, "quiet-local success should be near-perfect"
    assert degraded, "cloud noise should degrade success or time"
    assert ps_worst, "Prime+Scope should not beat GTOp in the cloud"
    return {
        "local_gtop_succ": results[("local", "gtop")]["succ"],
        "cloud_gtop_succ": results[("cloud", "gtop")]["succ"],
        "cloud_ps_succ": results[("cloud", "ps")]["succ"],
    }


def bench_table3(run_once):
    run_once(run_table3)
