"""Shared infrastructure for the benchmark harness.

Every benchmark reproduces one table or figure of the paper on the
reduced-geometry simulated machines (see DESIGN.md for the scale
substitution) and prints the paper's numbers next to the measured ones.
Absolute values differ — the substrate is a scaled simulator, not the
authors' Cloud Run fleet — but the *shape* comparisons the paper draws
must hold, and each benchmark asserts the key ones.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro._util import mean, median, stddev
from repro.analysis import Table, format_seconds
from repro.config import (
    MachineConfig,
    NoiseConfig,
    cloud_run_noise,
    cloud_run_quiet_hours_noise,
    exposure_matched,
    icelake_sp_small,
    quiescent_local_noise,
    skylake_sp_small,
    skylake_sp_small_local,
)
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, build_candidate_set, construct_sf_evset
from repro.memsys.machine import Machine
from repro.victim import EcdsaVictim, VictimConfig

#: Default page offset used when a benchmark needs an arbitrary one.
PAGE_OFFSET = 0x240


def cloud_machine_cfg() -> MachineConfig:
    """The scaled stand-in for the Cloud Run Xeon Platinum 8173M."""
    return skylake_sp_small()


def local_machine_cfg() -> MachineConfig:
    """The scaled stand-in for the local Xeon Gold 6152 (fewer slices)."""
    return skylake_sp_small_local()


def icelake_machine_cfg() -> MachineConfig:
    """The scaled stand-in for the Ice Lake Xeon Gold 5320."""
    return icelake_sp_small()


#: Environment name -> (machine config factory, noise factory, matched?).
#: "Matched" environments scale the noise rate so per-TestEviction exposure
#: corresponds to the paper's full-scale machines (see
#: repro.config.exposure_matched).
ENVIRONMENTS = {
    "local": (local_machine_cfg, quiescent_local_noise, True),
    "cloud": (cloud_machine_cfg, cloud_run_noise, True),
    "cloud-quiet": (cloud_machine_cfg, cloud_run_quiet_hours_noise, True),
    # Raw (unscaled) rates: correct for monitoring-side experiments whose
    # exposure windows don't shrink with the geometry.
    "cloud-raw": (cloud_machine_cfg, cloud_run_noise, False),
    "local-raw": (local_machine_cfg, quiescent_local_noise, False),
}


def make_env(env: str, seed: int) -> Tuple[Machine, AttackerContext]:
    """A machine + calibrated attacker context for a named environment."""
    cfg_factory, noise_factory, matched = ENVIRONMENTS[env]
    cfg = cfg_factory()
    noise = noise_factory()
    if matched:
        noise = exposure_matched(noise, cfg)
    machine = Machine(cfg, noise=noise, seed=seed)
    ctx = AttackerContext(machine, seed=seed * 7 + 1)
    ctx.calibrate()
    return machine, ctx


def make_victim_env(
    env: str, seed: int, victim_cfg: Optional[VictimConfig] = None
) -> Tuple[Machine, AttackerContext, EcdsaVictim]:
    """Environment plus a victim container pinned to core 2."""
    machine, ctx = make_env(env, seed)
    victim = EcdsaVictim(
        machine, core=2, cfg=victim_cfg or VictimConfig(), seed=seed + 100
    )
    return machine, ctx, victim


@dataclasses.dataclass
class ConstructionSample:
    """One eviction-set construction trial's outcome."""

    success: bool
    valid: bool
    elapsed_ms: float
    tests: int
    backtracks: int
    traversed: int


def run_single_set_trials(
    env: str,
    algorithm: str,
    trials: int,
    evset_cfg: EvsetConfig,
    base_seed: int = 1000,
) -> List[ConstructionSample]:
    """Repeated SingleSet SF constructions, fresh machine per trial."""
    samples = []
    for i in range(trials):
        machine, ctx = make_env(env, seed=base_seed + i)
        cand = build_candidate_set(ctx, PAGE_OFFSET)
        target = cand.vas.pop()
        outcome = construct_sf_evset(ctx, algorithm, target, cand.vas, evset_cfg)
        valid = False
        if outcome.success:
            sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
            valid = len(sets) == 1 and ctx.true_set_of(target) in sets
        samples.append(
            ConstructionSample(
                success=outcome.success,
                valid=valid,
                elapsed_ms=outcome.elapsed_ms(machine.cfg.clock_ghz),
                tests=outcome.stats.tests,
                backtracks=outcome.stats.backtracks,
                traversed=outcome.stats.traversed_addresses,
            )
        )
    return samples


def summarize_samples(samples: List[ConstructionSample]) -> Dict[str, float]:
    """success rate + avg/std/median time of construction samples."""
    times = [s.elapsed_ms for s in samples]
    return {
        "succ": sum(1 for s in samples if s.valid) / max(1, len(samples)),
        "avg_ms": mean(times),
        "std_ms": stddev(times),
        "med_ms": median(times),
    }


def print_header(title: str, paper_context: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print(f"# {paper_context}")
    print("#" * 72)
