"""Shared infrastructure for the benchmark harness.

Every benchmark reproduces one table or figure of the paper on the
reduced-geometry simulated machines (see DESIGN.md for the scale
substitution) and prints the paper's numbers next to the measured ones.
Absolute values differ — the substrate is a scaled simulator, not the
authors' Cloud Run fleet — but the *shape* comparisons the paper draws
must hold, and each benchmark asserts the key ones.

Trial fan-out runs on the :mod:`repro.exec` campaign engine: set
``REPRO_JOBS=N`` to spread trials over N worker processes (results are
bit-identical to serial runs) and ``REPRO_JOURNAL_DIR=path`` to journal
finished trials so a re-invocation resumes instead of recomputing.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

# Re-exported so benchmark modules keep their historical imports.
from repro.analysis import Table, format_seconds  # noqa: F401
from repro.config import MachineConfig, NoiseConfig  # noqa: F401
from repro.core.evset import EvsetConfig
from repro.envs import (  # noqa: F401
    ENVIRONMENTS,
    cloud_machine_cfg,
    icelake_machine_cfg,
    local_machine_cfg,
    make_custom_env,
    make_env,
    make_victim_env,
)
from repro.exec import (
    CampaignJournal,
    ConstructionSample,
    ExecPolicy,
    construction_campaign,
    grid_campaign,
    run_campaign,
    summarize_construction_samples,
)
from repro.exec.campaigns import PAGE_OFFSET  # noqa: F401


def exec_jobs(default: int = 1) -> int:
    """Worker count for benchmark campaigns (``REPRO_JOBS``, default 1)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return default
    jobs = int(raw)
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


def _journal_for(campaign) -> Optional[CampaignJournal]:
    """A journal when ``REPRO_JOURNAL_DIR`` is set, else None."""
    directory = os.environ.get("REPRO_JOURNAL_DIR", "").strip()
    if not directory:
        return None
    return CampaignJournal(directory, campaign)


def run_benchmark_campaign(
    name: str,
    fn,
    runs: Sequence[Tuple[object, int]],
    jobs: Optional[int] = None,
    codec=None,
) -> List[object]:
    """Fan ``fn`` out over explicit (config, seed) runs; results in order.

    The engine keeps results independent of worker count; any trial
    failure is re-raised, matching the historical serial loops.
    """
    campaign = grid_campaign(fn, runs, name=name, codec=codec)
    policy = ExecPolicy(jobs=jobs if jobs is not None else exec_jobs())
    result = run_campaign(campaign, policy, journal=_journal_for(campaign))
    return result.raise_on_failure().values()


def run_single_set_trials(
    env: str,
    algorithm: str,
    trials: int,
    evset_cfg: EvsetConfig,
    base_seed: int = 1000,
    jobs: Optional[int] = None,
    filtered: bool = False,
) -> List[ConstructionSample]:
    """Repeated SingleSet SF constructions, fresh machine per trial."""
    campaign = construction_campaign(
        env=env,
        algorithm=algorithm,
        trials=trials,
        evset_cfg=evset_cfg,
        base_seed=base_seed,
        filtered=filtered,
    )
    policy = ExecPolicy(jobs=jobs if jobs is not None else exec_jobs())
    result = run_campaign(campaign, policy, journal=_journal_for(campaign))
    return result.raise_on_failure().values()


def summarize_samples(samples: List[ConstructionSample]) -> Dict[str, float]:
    """success rate + avg/std/median time of construction samples."""
    return summarize_construction_samples(samples)


def print_header(title: str, paper_context: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print(f"# {paper_context}")
    print("#" * 72)
