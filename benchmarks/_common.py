"""Shared infrastructure for the benchmark harness.

Every benchmark reproduces one table or figure of the paper on the
reduced-geometry simulated machines (see DESIGN.md for the scale
substitution) and prints the paper's numbers next to the measured ones.
Absolute values differ — the substrate is a scaled simulator, not the
authors' Cloud Run fleet — but the *shape* comparisons the paper draws
must hold, and each benchmark asserts the key ones.

Trial fan-out runs on the :mod:`repro.exec` campaign engine: set
``REPRO_JOBS=N`` to spread trials over N worker processes (results are
bit-identical to serial runs) and ``REPRO_JOURNAL_DIR=path`` to journal
finished trials so a re-invocation resumes instead of recomputing.

Set ``REPRO_FLEET_DIR=path`` to route campaigns through the
:mod:`repro.fleet` service instead: trials run sharded with per-shard
durable segments, so a killed benchmark resumes from its last flushed
shard and a finished one is a pure cache hit.  Benchmarks that opt in
with ``fleet=True`` (the Section 7.3 end-to-end run) default to the
fleet path with root ``.repro/fleet``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

# Re-exported so benchmark modules keep their historical imports.
from repro.analysis import Table, format_seconds  # noqa: F401
from repro.config import MachineConfig, NoiseConfig  # noqa: F401
from repro.core.evset import EvsetConfig
from repro.envs import (  # noqa: F401
    ENVIRONMENTS,
    cloud_machine_cfg,
    icelake_machine_cfg,
    local_machine_cfg,
    make_custom_env,
    make_env,
    make_victim_env,
)
from repro.exec import (
    CampaignJournal,
    ConstructionSample,
    ExecPolicy,
    construction_campaign,
    grid_campaign,
    run_campaign,
    summarize_construction_samples,
)
from repro.exec.campaigns import PAGE_OFFSET  # noqa: F401
from repro.fleet import DEFAULT_FLEET_DIR, FleetPolicy, run_fleet


def exec_jobs(default: int = 1) -> int:
    """Worker count for benchmark campaigns (``REPRO_JOBS``, default 1)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return default
    jobs = int(raw)
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1, got {jobs}")
    return jobs


def _journal_for(campaign) -> Optional[CampaignJournal]:
    """A journal when ``REPRO_JOURNAL_DIR`` is set, else None."""
    directory = os.environ.get("REPRO_JOURNAL_DIR", "").strip()
    if not directory:
        return None
    return CampaignJournal(directory, campaign)


def _fleet_dir(opt_in: bool) -> Optional[str]:
    """Fleet store root: ``REPRO_FLEET_DIR`` always wins; ``fleet=True``
    benchmarks default to the standard root."""
    directory = os.environ.get("REPRO_FLEET_DIR", "").strip()
    if directory:
        return directory
    return str(DEFAULT_FLEET_DIR) if opt_in else None


def run_benchmark_campaign(
    name: str,
    fn,
    runs: Sequence[Tuple[object, int]],
    jobs: Optional[int] = None,
    codec=None,
    fleet: bool = False,
) -> List[object]:
    """Fan ``fn`` out over explicit (config, seed) runs; results in order.

    The engine keeps results independent of worker count; any trial
    failure is re-raised, matching the historical serial loops.  With
    ``fleet=True`` (or ``REPRO_FLEET_DIR`` set) the campaign runs through
    the :mod:`repro.fleet` scheduler: sharded, durable per shard, and
    resumable after a kill — with values identical to the direct path.
    """
    campaign = grid_campaign(fn, runs, name=name, codec=codec)
    jobs = jobs if jobs is not None else exec_jobs()
    root = _fleet_dir(opt_in=fleet)
    if root is not None:
        # One shard per ~quarter of the campaign keeps resume granularity
        # useful for small benchmark runs; CPU fan-out stays inside the
        # shard (jobs_per_shard), so worker-count semantics are unchanged.
        policy = FleetPolicy(
            shard_size=max(1, (len(campaign) + 3) // 4),
            max_inflight=1,
            jobs_per_shard=jobs,
        )
        report, store = run_fleet(campaign, root, policy)
        if report.failed_trials or not report.complete:
            raise RuntimeError(
                f"fleet campaign {campaign.name!r} incomplete: "
                f"{report.completed_trials}/{report.total_trials} trials, "
                f"{report.failed_trials} failed (store: {store.run_dir})"
            )
        return [v for _, v in store.iter_values()]
    policy = ExecPolicy(jobs=jobs)
    result = run_campaign(campaign, policy, journal=_journal_for(campaign))
    return result.raise_on_failure().values()


def run_single_set_trials(
    env: str,
    algorithm: str,
    trials: int,
    evset_cfg: EvsetConfig,
    base_seed: int = 1000,
    jobs: Optional[int] = None,
    filtered: bool = False,
) -> List[ConstructionSample]:
    """Repeated SingleSet SF constructions, fresh machine per trial."""
    campaign = construction_campaign(
        env=env,
        algorithm=algorithm,
        trials=trials,
        evset_cfg=evset_cfg,
        base_seed=base_seed,
        filtered=filtered,
    )
    policy = ExecPolicy(jobs=jobs if jobs is not None else exec_jobs())
    result = run_campaign(campaign, policy, journal=_journal_for(campaign))
    return result.raise_on_failure().values()


def summarize_samples(samples: List[ConstructionSample]) -> Dict[str, float]:
    """success rate + avg/std/median time of construction samples."""
    return summarize_construction_samples(samples)


def print_header(title: str, paper_context: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print(f"# {paper_context}")
    print("#" * 72)
