"""Simulator throughput — flat data plane vs. the seed reference cache.

Not a paper artifact: this benchmark tracks the performance of the
simulator itself.  The hot path runs on the flat array-backed
:class:`repro.memsys.cache.SetAssociativeCache` (DESIGN.md §2.2); the seed
dict-of-sets implementation is preserved in :mod:`repro.memsys._reference`
and is swapped into the hierarchy here to measure genuine before/after
numbers on the same host:

* accesses/sec through the Prime+Probe monitor hot loop (prime + probe
  traversals of a ways-sized eviction set; reference runs it with the
  seed's per-line semantics, the flat plane with the batched
  ``same_shared_set`` APIs — interleaved best-of-N against host noise),
* SF eviction-set constructions/sec (BinS with candidate filtering),
* one end-to-end trial (bulk construction + Parallel Probing monitor).

Results, speedups, and the data-plane counters
(:func:`repro.analysis.dataplane_summary`) are written to
``BENCH_perf.json``.  There is deliberately **no hard threshold gate** —
shared CI runners are too noisy for one — only sanity checks that both
implementations ran; the speedup is tracked by inspection.

Run directly (``--quick`` shrinks every workload for CI smoke runs)::

    PYTHONPATH=src python benchmarks/bench_perf_memsys.py [--quick]

or through the harness: ``pytest benchmarks/bench_perf_memsys.py``.
"""

from __future__ import annotations

import json
import math
import sys
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

if __name__ == "__main__":  # allow `python benchmarks/bench_perf_memsys.py`
    sys.path.insert(0, str(Path(__file__).parent))

from _common import Table, make_env, print_header
from repro.analysis import dataplane_summary
from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    bulk_construct_page_offset,
    construct_sf_evset,
)
from repro.core.monitor import ParallelProbing, monitor_set
from repro.memsys._reference import ReferenceSetAssociativeCache
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.machine import Machine

PAGE_OFFSET = 0x2C0


@contextmanager
def _cache_impl(cache_cls):
    """Build machines with ``cache_cls`` as the hierarchy's cache class."""
    import repro.memsys.hierarchy as hmod

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = cache_cls
    try:
        yield
    finally:
        hmod.SetAssociativeCache = original


def _accesses_setup(cache_cls):
    """Machine plus a ways-sized SF-congruent eviction set (monitor shape).

    The measured workload is the Prime+Probe monitor hot loop: one prime
    (write traversal) followed by several probe traversals of a ways-sized
    eviction set, all lines congruent in the shared SF/LLC set.  This is
    where an attack trial spends nearly all of its simulated accesses.
    """
    from collections import defaultdict

    with _cache_impl(cache_cls):
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=21)
    space = machine.new_address_space()
    lines = [space.translate_line(p) for p in space.alloc_pages(400)]
    groups = defaultdict(list)
    for line in lines:
        groups[machine.hierarchy.shared_set_index(line)].append(line)
    want = machine.cfg.sf.ways
    evset = next(g for g in groups.values() if len(g) >= want)[:want]
    return machine, evset


def _accesses_round(machine, evset, batched: bool, reps: int) -> float:
    """One timed round of the monitor loop; returns accesses/sec.

    ``batched=False`` runs the traversal with the seed's semantics — every
    access reconciles background noise individually — while ``batched=True``
    uses the ``same_shared_set`` batched APIs (one reconciliation per
    traversal), i.e. the full before/after contrast of this change: flat
    data plane + batched access paths vs. reference cache + per-line calls.
    """
    count = 0
    t0 = perf_counter()
    for _ in range(reps):
        machine.access_batch(0, evset, write=True, same_shared_set=batched)
        for _ in range(4):
            machine.probe_batch(0, evset, same_shared_set=batched)
        count += 5 * len(evset)
    return count / (perf_counter() - t0)


def _bench_accesses(quick: bool):
    """Monitor-loop throughput, reference vs. flat, interleaved best-of-N.

    Shared/burst-throttled hosts swing throughput by 2x over minutes;
    interleaving the two implementations round-robin and taking each side's
    best round keeps the ratio honest under that noise.
    """
    rounds = 2 if quick else 4
    reps = 40 if quick else 300
    ref_machine, ref_evset = _accesses_setup(ReferenceSetAssociativeCache)
    flat_machine, flat_evset = _accesses_setup(SetAssociativeCache)
    assert flat_evset == ref_evset, "parity violation: address maps differ"
    best_ref = best_flat = 0.0
    for _ in range(rounds):
        best_ref = max(best_ref, _accesses_round(ref_machine, ref_evset, False, reps))
        best_flat = max(
            best_flat, _accesses_round(flat_machine, flat_evset, True, reps)
        )
    return best_ref, best_flat, flat_machine


def _bench_evsets(cache_cls, trials: int):
    """SF eviction-set constructions/sec (BinS, filtered candidates)."""
    with _cache_impl(cache_cls):
        machine, ctx = make_env("cloud", seed=13)
    cand = build_candidate_set(ctx, PAGE_OFFSET)
    targets = [cand.vas.pop() for _ in range(trials)]
    successes = 0
    t0 = perf_counter()
    for target in targets:
        outcome = construct_sf_evset(ctx, "bins", target, list(cand.vas))
        successes += bool(outcome.success)
    elapsed = perf_counter() - t0
    return trials / elapsed, successes, machine


def _bench_trial(cache_cls, budget_ms: int):
    """One end-to-end trial: bulk construction + a monitoring window."""
    with _cache_impl(cache_cls):
        machine, ctx = make_env("cloud", seed=7)
    t0 = perf_counter()
    bulk = bulk_construct_page_offset(
        ctx, "bins", PAGE_OFFSET, EvsetConfig(budget_ms=budget_ms)
    )
    if bulk.evsets:
        monitor_set(ParallelProbing(ctx, bulk.evsets[0]), duration_cycles=400_000)
    elapsed = perf_counter() - t0
    return elapsed, len(bulk.evsets), machine


def _measure(cache_cls, quick: bool):
    trials = 2 if quick else 6
    budget_ms = 20 if quick else 100
    ev_rate, successes, _ = _bench_evsets(cache_cls, trials)
    trial_s, n_evsets, trial_machine = _bench_trial(cache_cls, budget_ms)
    return {
        "evsets_per_sec": ev_rate,
        "evset_successes": successes,
        "trial_seconds": trial_s,
        "trial_evsets": n_evsets,
    }, trial_machine


def run_perf(quick: bool = False, out_path: str = "BENCH_perf.json") -> dict:
    print_header(
        "Simulator throughput: flat data plane vs. seed reference cache",
        "Infrastructure benchmark (DESIGN.md 2.2), not a paper artifact.",
    )
    ref_acc, flat_acc, acc_machine = _bench_accesses(quick)
    before, _ = _measure(ReferenceSetAssociativeCache, quick)
    after, trial_machine = _measure(SetAssociativeCache, quick)
    before["accesses_per_sec"] = ref_acc
    after["accesses_per_sec"] = flat_acc

    speedup = {
        "accesses_per_sec": after["accesses_per_sec"] / before["accesses_per_sec"],
        "evsets_per_sec": after["evsets_per_sec"] / before["evsets_per_sec"],
        "trial_seconds": before["trial_seconds"] / after["trial_seconds"],
    }

    table = Table(
        "Simulator throughput (same host, same workloads)",
        ["Metric", "Reference (seed)", "Flat plane", "Speedup"],
    )
    table.add_row(
        "accesses/sec",
        f"{before['accesses_per_sec']:,.0f}",
        f"{after['accesses_per_sec']:,.0f}",
        f"{speedup['accesses_per_sec']:.2f}x",
    )
    table.add_row(
        "evset constructions/sec",
        f"{before['evsets_per_sec']:.2f}",
        f"{after['evsets_per_sec']:.2f}",
        f"{speedup['evsets_per_sec']:.2f}x",
    )
    table.add_row(
        "end-to-end trial (s)",
        f"{before['trial_seconds']:.2f}",
        f"{after['trial_seconds']:.2f}",
        f"{speedup['trial_seconds']:.2f}x",
    )
    table.print()

    dataplane = {
        "access_workload": dataplane_summary(acc_machine),
        "trial_workload": dataplane_summary(trial_machine),
    }
    payload = {
        "quick": quick,
        "before": before,
        "after": after,
        "speedup": speedup,
        "dataplane": dataplane,
    }
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nWrote {out_path}")

    # Sanity only — no perf threshold gate (CI runners are too noisy).
    for metrics in (before, after):
        assert metrics["accesses_per_sec"] > 0
        assert math.isfinite(metrics["trial_seconds"])
    assert after["evset_successes"] == before["evset_successes"], (
        "parity violation: the two implementations must construct the "
        "same eviction sets"
    )
    assert after["trial_evsets"] == before["trial_evsets"]
    return {
        "accesses_speedup": speedup["accesses_per_sec"],
        "evsets_speedup": speedup["evsets_per_sec"],
        "trial_speedup": speedup["trial_seconds"],
        "flat_accesses_per_sec": after["accesses_per_sec"],
    }


def bench_perf_memsys(run_once):
    run_once(run_perf, quick=True)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    run_perf(quick=quick)
