"""Simulator throughput — reference cache vs. flat plane vs. fused kernels.

Not a paper artifact: this benchmark tracks the performance of the
simulator itself across its three generations of hot path:

* **reference** — the seed dict-of-sets cache preserved in
  :mod:`repro.memsys._reference`, swapped into the hierarchy, driven with
  per-line access semantics;
* **batched** — the flat array-backed
  :class:`repro.memsys.cache.SetAssociativeCache` (DESIGN.md §2.2) with
  the ``same_shared_set`` batched Machine APIs, fused kernels disabled
  (:func:`repro.memsys.kernels_disabled`);
* **kernels** — the same flat plane driven through the fused attack
  kernels and the translation plane (DESIGN.md §2.3), the default path.

All three run the same workloads and — because the kernels are
bit-identical by construction — must produce the same eviction sets; the
sanity asserts at the bottom enforce that, and the kernel-vs-batched
check is the CI perf smoke for the kernel layer (the fused path must not
regress below the batched one on the monitor loop).

Workloads:

* accesses/sec through the Prime+Probe monitor hot loop (prime + probe
  traversals of a ways-sized SF-congruent eviction set, interleaved
  best-of-N against host noise),
* SF eviction-set constructions/sec (BinS with candidate filtering),
* one end-to-end trial (bulk construction + Parallel Probing monitor),
* a cProfile breakdown (top-10 by cumulative time) of fused eviction-set
  construction, so the next optimization round starts from data.

Results, speedups, the profile, and the data-plane counters
(:func:`repro.analysis.dataplane_summary`) are written to
``BENCH_perf.json``.  Apart from the kernel-vs-batched smoke check there
is **no hard threshold gate** — shared CI runners are too noisy for one;
cross-implementation speedups are tracked by inspection.

Run directly (``--quick`` shrinks every workload for CI smoke runs)::

    PYTHONPATH=src python benchmarks/bench_perf_memsys.py [--quick]

or through the harness: ``pytest benchmarks/bench_perf_memsys.py``.
"""

from __future__ import annotations

import cProfile
import json
import math
import pstats
import sys
from contextlib import contextmanager, nullcontext
from pathlib import Path
from time import perf_counter

if __name__ == "__main__":  # allow `python benchmarks/bench_perf_memsys.py`
    sys.path.insert(0, str(Path(__file__).parent))

from _common import Table, make_env, print_header
from repro.analysis import dataplane_summary
from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    bulk_construct_page_offset,
    construct_sf_evset,
)
from repro.core.monitor import ParallelProbing, monitor_set
from repro.memsys import AttackKernels, TranslationPlane, kernels_disabled
from repro.memsys._reference import ReferenceSetAssociativeCache
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.machine import Machine

PAGE_OFFSET = 0x2C0


@contextmanager
def _cache_impl(cache_cls):
    """Build machines with ``cache_cls`` as the hierarchy's cache class."""
    import repro.memsys.hierarchy as hmod

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = cache_cls
    try:
        yield
    finally:
        hmod.SetAssociativeCache = original


def _fused_guard(fused: bool):
    """nullcontext for the default kernel path, kernels_disabled otherwise."""
    return nullcontext() if fused else kernels_disabled()


# --- Monitor hot loop -------------------------------------------------------


def _accesses_setup(cache_cls):
    """Machine plus a ways-sized SF-congruent eviction set (monitor shape).

    The measured workload is the Prime+Probe monitor hot loop: one prime
    (write traversal) followed by several probe traversals of a ways-sized
    eviction set, all lines congruent in the shared SF/LLC set.  This is
    where an attack trial spends nearly all of its simulated accesses.
    """
    from collections import defaultdict

    with _cache_impl(cache_cls):
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=21)
    space = machine.new_address_space()
    lines = [space.translate_line(p) for p in space.alloc_pages(400)]
    groups = defaultdict(list)
    for line in lines:
        groups[machine.hierarchy.shared_set_index(line)].append(line)
    want = machine.cfg.sf.ways
    evset = next(g for g in groups.values() if len(g) >= want)[:want]
    return machine, evset


def _accesses_round(machine, evset, batched: bool, reps: int) -> float:
    """One timed round of the monitor loop; returns accesses/sec.

    ``batched=False`` runs the traversal with the seed's semantics — every
    access reconciles background noise individually — while ``batched=True``
    uses the ``same_shared_set`` batched APIs (one reconciliation per
    traversal): the flat-plane-vs-reference contrast.
    """
    count = 0
    t0 = perf_counter()
    for _ in range(reps):
        machine.access_batch(0, evset, write=True, same_shared_set=batched)
        for _ in range(4):
            machine.probe_batch(0, evset, same_shared_set=batched)
        count += 5 * len(evset)
    return count / (perf_counter() - t0)


def _accesses_round_kernels(machine, kernels, rows, reps: int) -> float:
    """The same monitor round through the fused kernels (DESIGN.md §2.3)."""
    count = 0
    n = len(rows.lines)
    t0 = perf_counter()
    for _ in range(reps):
        kernels.prime_probe_kernel(rows, n, prime_rounds=1)
        for _ in range(4):
            kernels.prime_probe_kernel(rows, n, probe=True)
        count += 5 * n
    return count / (perf_counter() - t0)


def _bench_accesses(quick: bool):
    """Monitor-loop throughput, all three hot paths, interleaved best-of-N.

    Shared/burst-throttled hosts swing throughput by 2x over minutes;
    interleaving the implementations round-robin and taking each side's
    best round keeps the ratios honest under that noise.
    """
    rounds = 2 if quick else 4
    reps = 40 if quick else 300
    ref_machine, ref_evset = _accesses_setup(ReferenceSetAssociativeCache)
    flat_machine, flat_evset = _accesses_setup(SetAssociativeCache)
    kern_machine, kern_evset = _accesses_setup(SetAssociativeCache)
    assert flat_evset == ref_evset == kern_evset, (
        "parity violation: address maps differ"
    )
    # The monitor loop works on raw lines, so the plane's translate is the
    # identity — the kernels see the same geometry the Machine would.
    plane = TranslationPlane(kern_machine.hierarchy, lambda line: line)
    kernels = AttackKernels(kern_machine, plane)
    assert kernels.engaged()
    rows = plane.rows(kern_evset)
    best_ref = best_flat = best_kern = 0.0
    for _ in range(rounds):
        best_ref = max(best_ref, _accesses_round(ref_machine, ref_evset, False, reps))
        best_flat = max(
            best_flat, _accesses_round(flat_machine, flat_evset, True, reps)
        )
        best_kern = max(
            best_kern, _accesses_round_kernels(kern_machine, kernels, rows, reps)
        )
    return best_ref, best_flat, best_kern, flat_machine


# --- Construction workloads -------------------------------------------------


def _bench_evsets(cache_cls, trials: int, fused: bool):
    """SF eviction-set constructions/sec (BinS, filtered candidates)."""
    with _cache_impl(cache_cls):
        machine, ctx = make_env("cloud", seed=13)
    with _fused_guard(fused):
        cand = build_candidate_set(ctx, PAGE_OFFSET)
        targets = [cand.vas.pop() for _ in range(trials)]
        successes = 0
        t0 = perf_counter()
        for target in targets:
            outcome = construct_sf_evset(ctx, "bins", target, list(cand.vas))
            successes += bool(outcome.success)
        elapsed = perf_counter() - t0
    return trials / elapsed, successes, machine


def _bench_trial(cache_cls, budget_ms: int, fused: bool):
    """One end-to-end trial: bulk construction + a monitoring window."""
    with _cache_impl(cache_cls):
        machine, ctx = make_env("cloud", seed=7)
    with _fused_guard(fused):
        t0 = perf_counter()
        bulk = bulk_construct_page_offset(
            ctx, "bins", PAGE_OFFSET, EvsetConfig(budget_ms=budget_ms)
        )
        if bulk.evsets:
            monitor_set(
                ParallelProbing(ctx, bulk.evsets[0]), duration_cycles=400_000
            )
        elapsed = perf_counter() - t0
    return elapsed, len(bulk.evsets), machine


def _measure(cache_cls, quick: bool, fused: bool):
    trials = 2 if quick else 6
    budget_ms = 20 if quick else 100
    ev_rate, successes, _ = _bench_evsets(cache_cls, trials, fused)
    trial_s, n_evsets, trial_machine = _bench_trial(cache_cls, budget_ms, fused)
    return {
        "evsets_per_sec": ev_rate,
        "evset_successes": successes,
        "trial_seconds": trial_s,
        "trial_evsets": n_evsets,
    }, trial_machine


# --- Profile stage ----------------------------------------------------------


def _profile_construction(quick: bool):
    """cProfile top-10 (cumulative) of fused eviction-set construction.

    The Amdahl accounting that motivated the kernel layer: after each
    optimization round, the next bottleneck is whatever tops this list.
    """
    with _cache_impl(SetAssociativeCache):
        machine, ctx = make_env("cloud", seed=13)
    cand = build_candidate_set(ctx, PAGE_OFFSET)
    targets = [cand.vas.pop() for _ in range(1 if quick else 3)]
    profiler = cProfile.Profile()
    profiler.enable()
    for target in targets:
        construct_sf_evset(ctx, "bins", target, list(cand.vas))
    profiler.disable()
    stats = pstats.Stats(profiler)
    total = getattr(stats, "total_tt", 0.0)
    rows = []
    entries = sorted(stats.stats.items(), key=lambda kv: -kv[1][3])
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in entries:
        name = f"{Path(filename).name}:{lineno}({func})"
        if func.startswith("<") and "lambda" not in func:
            continue  # interpreter plumbing (<module>, <built-in ...>)
        rows.append(
            {
                "function": name,
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
        if len(rows) == 10:
            break
    return {"total_time_s": round(total, 4), "top10_cumulative": rows}


# --- Driver -----------------------------------------------------------------


def run_perf(quick: bool = False, out_path: str = "BENCH_perf.json") -> dict:
    print_header(
        "Simulator throughput: reference cache vs. flat plane vs. fused kernels",
        "Infrastructure benchmark (DESIGN.md 2.2, 2.3), not a paper artifact.",
    )
    ref_acc, flat_acc, kern_acc, acc_machine = _bench_accesses(quick)
    before, _ = _measure(ReferenceSetAssociativeCache, quick, fused=False)
    after, _ = _measure(SetAssociativeCache, quick, fused=False)
    kernels, trial_machine = _measure(SetAssociativeCache, quick, fused=True)
    before["accesses_per_sec"] = ref_acc
    after["accesses_per_sec"] = flat_acc
    kernels["accesses_per_sec"] = kern_acc

    speedup = {
        "accesses_per_sec": after["accesses_per_sec"] / before["accesses_per_sec"],
        "evsets_per_sec": after["evsets_per_sec"] / before["evsets_per_sec"],
        "trial_seconds": before["trial_seconds"] / after["trial_seconds"],
    }
    kernel_speedup = {
        "accesses_per_sec": kernels["accesses_per_sec"] / after["accesses_per_sec"],
        "evsets_per_sec": kernels["evsets_per_sec"] / after["evsets_per_sec"],
        "trial_seconds": after["trial_seconds"] / kernels["trial_seconds"],
    }

    table = Table(
        "Simulator throughput (same host, same workloads)",
        ["Metric", "Reference (seed)", "Flat plane", "Kernels", "Kern/Flat"],
    )
    table.add_row(
        "accesses/sec",
        f"{before['accesses_per_sec']:,.0f}",
        f"{after['accesses_per_sec']:,.0f}",
        f"{kernels['accesses_per_sec']:,.0f}",
        f"{kernel_speedup['accesses_per_sec']:.2f}x",
    )
    table.add_row(
        "evset constructions/sec",
        f"{before['evsets_per_sec']:.2f}",
        f"{after['evsets_per_sec']:.2f}",
        f"{kernels['evsets_per_sec']:.2f}",
        f"{kernel_speedup['evsets_per_sec']:.2f}x",
    )
    table.add_row(
        "end-to-end trial (s)",
        f"{before['trial_seconds']:.2f}",
        f"{after['trial_seconds']:.2f}",
        f"{kernels['trial_seconds']:.2f}",
        f"{kernel_speedup['trial_seconds']:.2f}x",
    )
    table.print()

    profile = _profile_construction(quick)
    dataplane = {
        "access_workload": dataplane_summary(acc_machine),
        "trial_workload": dataplane_summary(trial_machine),
    }
    payload = {
        "quick": quick,
        "before": before,
        "after": after,
        "kernels": kernels,
        "speedup": speedup,
        "kernel_speedup": kernel_speedup,
        "profile": profile,
        "dataplane": dataplane,
    }
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nWrote {out_path}")

    # Sanity checks.  Cross-implementation speedups carry no threshold
    # (CI runners are too noisy), but all three paths must agree on every
    # *outcome* — the kernels are bit-identical by contract.
    for metrics in (before, after, kernels):
        assert metrics["accesses_per_sec"] > 0
        assert math.isfinite(metrics["trial_seconds"])
    assert after["evset_successes"] == before["evset_successes"] == kernels[
        "evset_successes"
    ], "parity violation: the three paths must construct the same eviction sets"
    assert after["trial_evsets"] == before["trial_evsets"] == kernels["trial_evsets"]
    # Kernel perf smoke: with interleaved best-of-N the fused monitor loop
    # must not fall behind the batched one (0.9 absorbs residual jitter).
    assert kern_acc >= 0.9 * flat_acc, (
        f"fused kernels slower than batched path on the monitor loop: "
        f"{kern_acc:,.0f} vs {flat_acc:,.0f} accesses/sec"
    )
    return {
        "accesses_speedup": speedup["accesses_per_sec"],
        "evsets_speedup": speedup["evsets_per_sec"],
        "trial_speedup": speedup["trial_seconds"],
        "kernel_accesses_speedup": kernel_speedup["accesses_per_sec"],
        "kernel_evsets_speedup": kernel_speedup["evsets_per_sec"],
        "kernel_accesses_per_sec": kernels["accesses_per_sec"],
    }


def bench_perf_memsys(run_once):
    run_once(run_perf, quick=True)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    run_perf(quick=quick)
