"""Simulator throughput — reference vs. flat plane vs. kernels vs. lanes.

Not a paper artifact: this benchmark tracks the performance of the
simulator itself across its four generations of hot path:

* **reference** — the seed dict-of-sets cache preserved in
  :mod:`repro.memsys._reference`, swapped into the hierarchy, driven with
  per-line access semantics;
* **batched** — the flat array-backed
  :class:`repro.memsys.cache.SetAssociativeCache` (DESIGN.md §2.2) with
  the ``same_shared_set`` batched Machine APIs, fused kernels disabled
  (:func:`repro.memsys.kernels_disabled`);
* **kernels** — the same flat plane driven through the fused attack
  kernels and the translation plane (DESIGN.md §2.3), lanes disabled
  (:func:`repro.memsys.lanes_disabled`);
* **lanes** — the plan-specialized lane kernels (DESIGN.md §2.4), the
  default path when NumPy is available;
* **vec** — the memo-replay vectorized lane path (DESIGN.md §2.7),
  legal only under the event-keyed RNG contract (``rng_mode="counter"``):
  monitor rounds whose pre-state was seen before replay as slice
  assignments instead of re-simulating, bit-identical to the lanes path
  on the same counter-mode machine (asserted in-bench by digest);
* **batch** — the trial-batch executor (DESIGN.md §2.6), measured at the
  campaign level: grouped pool dispatch on microsecond trials and
  in-process lockstep sessions on construction trials, in both RNG
  modes (the counter-mode group executor stages the group's noise draws
  as one cross-trial numpy pass).

All serial-mode paths run the same workloads and — because the kernels
and lanes are bit-identical by construction — must produce the same
eviction sets; the sanity asserts at the bottom enforce that.  The vec
stage runs under the counter contract, so its outcomes are compared
against a counter-mode lanes control machine instead.  Perf smokes gate
CI: the fused path must not regress below the batched one on the
monitor loop, the lane path must not regress below the plain kernels on
constructions/sec, and the vec path must deliver >= 1.5x lanes
accesses/sec.

``--stages`` selects a comma-separated subset (``ref``/``reference``,
``batched``, ``kernels``, ``lanes``, ``vec``, ``batch``) so CI quick
runs can gate only the stages they care about; cross-stage asserts and
history updates apply only to what was measured.  Every history entry
records ``quick``, ``host`` and ``python`` so appended entries stay
interpretable across machines.

Workloads:

* accesses/sec through the Prime+Probe monitor hot loop (prime + probe
  traversals of a ways-sized SF-congruent eviction set, interleaved
  best-of-N against host noise),
* SF eviction-set constructions/sec (BinS with candidate filtering) —
  the workload the lane plane targets (flush + post-flush sweeps),
* one end-to-end trial (bulk construction + Parallel Probing monitor),
* a cProfile breakdown (top-10 by cumulative time) of lane-path
  eviction-set construction, so the next optimization round starts from
  data.

Results, speedups, the profile, and the data-plane counters
(:func:`repro.analysis.dataplane_summary`) are written to
``BENCH_perf.json``, along with an append-only ``history`` array (one
entry per PR, stage name -> evsets/s, accesses/s, trial seconds) so the
perf trajectory survives reruns instead of being overwritten.

Run directly (``--quick`` shrinks every workload for CI smoke runs)::

    PYTHONPATH=src python benchmarks/bench_perf_memsys.py [--quick]

or through the harness: ``pytest benchmarks/bench_perf_memsys.py``.
"""

from __future__ import annotations

import cProfile
import dataclasses
import json
import math
import os
import platform
import pstats
import sys
from contextlib import contextmanager, nullcontext
from pathlib import Path
from time import perf_counter

if __name__ == "__main__":  # allow `python benchmarks/bench_perf_memsys.py`
    sys.path.insert(0, str(Path(__file__).parent))

from _common import Table, make_env, print_header
from repro.analysis import dataplane_summary
from repro.check.digest import machine_digest
from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    bulk_construct_page_offset,
    construct_sf_evset,
)
from repro.core.monitor import ParallelProbing, monitor_set
from repro.memsys import (
    HAVE_NUMPY,
    AttackKernels,
    LaneKernels,
    TranslationPlane,
    VecKernels,
    kernels_disabled,
    lanes_disabled,
)
from repro.memsys._reference import ReferenceSetAssociativeCache
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.machine import Machine

PAGE_OFFSET = 0x2C0

#: The four serial-mode hot-path generations, oldest first.
STAGES = ("reference", "batched", "kernels", "lanes")

#: Everything ``--stages`` can select (the serial paths plus the
#: counter-mode vec path, the campaign-level batch tier, and the
#: checkpoint + construct-memo repeat-trial stage).
ALL_COMPONENTS = STAGES + ("vec", "batch", "construct")

_STAGE_ALIASES = {"ref": "reference"}


def resolve_stages(names) -> set:
    """Canonical component set from a ``--stages`` selection (None = all)."""
    if names is None:
        return set(ALL_COMPONENTS)
    sel = set()
    for name in names:
        canon = _STAGE_ALIASES.get(name.strip(), name.strip())
        if canon not in ALL_COMPONENTS:
            raise SystemExit(
                f"unknown stage {name!r}; choose from "
                f"{', '.join(ALL_COMPONENTS)} (ref = reference)"
            )
        sel.add(canon)
    return sel


@contextmanager
def _cache_impl(cache_cls):
    """Build machines with ``cache_cls`` as the hierarchy's cache class."""
    import repro.memsys.hierarchy as hmod

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = cache_cls
    try:
        yield
    finally:
        hmod.SetAssociativeCache = original


def _path_guard(path: str):
    """Pin one hot-path generation for the duration of a workload."""
    if path in ("reference", "batched"):
        return kernels_disabled()
    if path == "kernels":
        return lanes_disabled()
    return nullcontext()  # lanes: the default resolution


# --- Monitor hot loop -------------------------------------------------------


def _accesses_setup(cache_cls, rng_mode: str = "serial"):
    """Machine plus a ways-sized SF-congruent eviction set (monitor shape).

    The measured workload is the Prime+Probe monitor hot loop: one prime
    (write traversal) followed by several probe traversals of a ways-sized
    eviction set, all lines congruent in the shared SF/LLC set.  This is
    where an attack trial spends nearly all of its simulated accesses.
    """
    from collections import defaultdict

    cfg = skylake_sp_small()
    if rng_mode != "serial":
        cfg = dataclasses.replace(cfg, rng_mode=rng_mode)
    with _cache_impl(cache_cls):
        machine = Machine(cfg, noise=cloud_run_noise(), seed=21)
    space = machine.new_address_space()
    lines = [space.translate_line(p) for p in space.alloc_pages(400)]
    groups = defaultdict(list)
    for line in lines:
        groups[machine.hierarchy.shared_set_index(line)].append(line)
    want = machine.cfg.sf.ways
    evset = next(g for g in groups.values() if len(g) >= want)[:want]
    return machine, evset


def _accesses_round(machine, evset, batched: bool, reps: int) -> float:
    """One timed round of the monitor loop; returns accesses/sec.

    ``batched=False`` runs the traversal with the seed's semantics — every
    access reconciles background noise individually — while ``batched=True``
    uses the ``same_shared_set`` batched APIs (one reconciliation per
    traversal): the flat-plane-vs-reference contrast.
    """
    count = 0
    t0 = perf_counter()
    for _ in range(reps):
        machine.access_batch(0, evset, write=True, same_shared_set=batched)
        for _ in range(4):
            machine.probe_batch(0, evset, same_shared_set=batched)
        count += 5 * len(evset)
    return count / (perf_counter() - t0)


def _accesses_round_kernels(machine, kernels, rows, reps: int) -> float:
    """The same monitor round through the fused kernels (DESIGN.md §2.3)."""
    count = 0
    n = len(rows.lines)
    t0 = perf_counter()
    for _ in range(reps):
        kernels.prime_probe_kernel(rows, n, prime_rounds=1)
        for _ in range(4):
            kernels.prime_probe_kernel(rows, n, probe=True)
        count += 5 * n
    return count / (perf_counter() - t0)


def _kernels_runner(kernel_cls, rng_mode: str = "serial"):
    """(machine, evset, round-closure) for one kernel-bundle stage."""
    machine, evset = _accesses_setup(SetAssociativeCache, rng_mode)
    # The monitor loop works on raw lines, so the plane's translate is the
    # identity — the kernels see the same geometry the Machine would.
    plane = TranslationPlane(machine.hierarchy, lambda line: line)
    kernels = kernel_cls(machine, plane)
    assert kernels.engaged()
    rows = plane.rows(evset)

    def runner(reps):
        return _accesses_round_kernels(machine, kernels, rows, reps)

    return machine, evset, runner


def _bench_accesses(quick: bool, hot, want_vec: bool):
    """Monitor-loop throughput, selected hot paths, interleaved best-of-N.

    Shared/burst-throttled hosts swing throughput by 2x over minutes;
    interleaving the implementations round-robin and taking each side's
    best round keeps the ratios honest under that noise.  The lane bundle
    inherits the monitor kernels unchanged (resident-line walks have
    nothing provably dead), so its column doubles as an overhead check.

    ``want_vec`` adds two counter-mode machines: the vec path under
    measurement and a lanes control running the identical workload; their
    machine digests must match at the end (replay parity, asserted here
    so the perf number can never outrun correctness).
    """
    rounds = 2 if quick else 4
    reps = 40 if quick else 300
    runners = {}
    machines = {}
    evsets = {}
    for stage in hot:
        if stage in ("reference", "batched"):
            machine, evset = _accesses_setup(_stage_cache_cls(stage))
            machines[stage], evsets[stage] = machine, evset
            batched = stage == "batched"
            runners[stage] = (
                lambda reps, m=machine, e=evset, b=batched:
                _accesses_round(m, e, b, reps)
            )
        else:
            kcls = AttackKernels if stage == "kernels" else LaneKernels
            machines[stage], evsets[stage], runners[stage] = (
                _kernels_runner(kcls)
            )
    if want_vec:
        for name, kcls in (("lanes_counter", LaneKernels),
                           ("vec", VecKernels)):
            machines[name], evsets[name], runners[name] = (
                _kernels_runner(kcls, rng_mode="counter")
            )
    assert len({tuple(e) for e in evsets.values()}) <= 1, (
        "parity violation: address maps differ"
    )
    best = dict.fromkeys(runners, 0.0)
    for _ in range(rounds):
        for name, runner in runners.items():
            best[name] = max(best[name], runner(reps))
    if want_vec:
        assert (machine_digest(machines["vec"])
                == machine_digest(machines["lanes_counter"])), (
            "parity violation: vec replay diverged from counter-mode lanes"
        )
    return best, machines


# --- Construction workloads -------------------------------------------------


def _stage_cache_cls(stage: str):
    return (
        ReferenceSetAssociativeCache if stage == "reference"
        else SetAssociativeCache
    )


def _bench_evsets(quick: bool, hot):
    """SF eviction-set constructions/sec (BinS, filtered candidates).

    All selected stages get their own deterministic environment (same seed,
    so the same candidate pool and targets), and the trials run
    *interleaved* round-robin across stages: on burst-throttled hosts a
    sequential per-stage run can attribute a 30% host-wide slowdown to
    whichever stage ran last, which is exactly the noise the lane-vs-
    kernel perf gate must not be subject to.
    """
    trials = 2 if quick else 6
    envs = {}
    for stage in hot:
        with _cache_impl(_stage_cache_cls(stage)):
            machine, ctx = make_env("cloud", seed=13)
        with _path_guard(stage):
            cand = build_candidate_set(ctx, PAGE_OFFSET)
            targets = [cand.vas.pop() for _ in range(trials)]
        envs[stage] = [ctx, cand, targets, 0.0, 0]  # elapsed_s, successes
    for i in range(trials):
        for stage in hot:
            env = envs[stage]
            ctx, cand, targets = env[0], env[1], env[2]
            with _path_guard(stage):
                t0 = perf_counter()
                outcome = construct_sf_evset(
                    ctx, "bins", targets[i], list(cand.vas)
                )
                env[3] += perf_counter() - t0
            env[4] += bool(outcome.success)
    return {
        stage: (trials / env[3], env[4]) for stage, env in envs.items()
    }


def _bench_trial(cache_cls, budget_ms: int, path: str):
    """One end-to-end trial: bulk construction + a monitoring window."""
    with _cache_impl(cache_cls):
        machine, ctx = make_env("cloud", seed=7)
    with _path_guard(path):
        t0 = perf_counter()
        bulk = bulk_construct_page_offset(
            ctx, "bins", PAGE_OFFSET, EvsetConfig(budget_ms=budget_ms)
        )
        if bulk.evsets:
            monitor_set(
                ParallelProbing(ctx, bulk.evsets[0]), duration_cycles=400_000
            )
        elapsed = perf_counter() - t0
    return elapsed, len(bulk.evsets), machine


def _measure(quick: bool, path: str, ev_results):
    budget_ms = 20 if quick else 100
    ev_rate, successes = ev_results[path]
    trial_s, n_evsets, trial_machine = _bench_trial(
        _stage_cache_cls(path), budget_ms, path
    )
    return {
        "evsets_per_sec": ev_rate,
        "evset_successes": successes,
        "trial_seconds": trial_s,
        "trial_evsets": n_evsets,
    }, trial_machine


# --- Trial-batch tier -------------------------------------------------------


def _bench_batch(quick: bool):
    """Trial-batch executor (DESIGN.md §2.6): campaign-level throughput.

    Two measurements, because the tier has two distinct effects:

    * **dispatch** — microsecond trials (the ``noise-mc`` shape) through
      ``run_campaign(jobs=4)``: with ``batch=16`` a whole group is one
      pool task, amortizing submit/pickle/result IPC across its trials.
      This is where batching buys real end-to-end throughput.
    * **lockstep** — heavyweight construction trials run in-process as
      one :class:`BatchSession`: N lane threads share one interpreter,
      one NumPy import, and one plan cache (the memory story), but the
      GIL serializes the python compute, so the in-mode ratio is an
      *overhead bound* (~0.9-1.0x).  Cross-trial SIMD of the sweep hot
      loop is infeasible under the per-access RNG-order contract
      (DESIGN.md §2.6); under the event-keyed contract (§2.7) the
      coordinator stages the group's noise draws as one cross-trial
      numpy pass and the keyed scalar draws are themselves cheaper, so
      the measurement is repeated under ``rng=counter`` and the
      delivered speedup is ``counter_lockstep_speedup``: counter-mode
      lockstep throughput over the default serial-contract serial path
      — the end-to-end gain of switching contract + tier on the same
      campaign.

    Values are byte-compared between dispatch modes within each RNG
    contract: the batch tier must not buy a single bit of divergence.
    """
    from repro.exec import ExecPolicy, run_campaign
    from repro.exec.campaigns import construction_campaign
    from repro.fleet.campaigns import NoiseWindowConfig, noise_mc_campaign
    from repro.memsys.batchplane import batch_supported

    batch = 16
    # Enough trials that per-task dispatch cost dominates the constant
    # pool fork/teardown both modes share — too few dilutes the contrast.
    n_micro = 8_000 if quick else 40_000
    micro = noise_mc_campaign(
        NoiseWindowConfig(rate_per_ms=6.0), trials=n_micro, base_seed=3
    )

    def _micro_rate(policy):
        t0 = perf_counter()
        result = run_campaign(micro, policy)
        rate = n_micro / (perf_counter() - t0)
        assert result.ok
        return rate, [record.value for record in result.records]

    best = {1: 0.0, batch: 0.0}
    values = {}
    for _ in range(2):  # interleaved best-of-2 against host noise
        for b in (1, batch):
            rate, vals = _micro_rate(ExecPolicy(jobs=4, batch=b))
            best[b] = max(best[b], rate)
            values.setdefault(b, vals)
    assert values[1] == values[batch], (
        "parity violation: batched dispatch changed campaign values"
    )

    n_heavy = 4 if quick else 16
    heavy = construction_campaign(trials=n_heavy, base_seed=29)

    def _lockstep_pair():
        t0 = perf_counter()
        serial_result = run_campaign(heavy, ExecPolicy(jobs=1))
        serial_rate = n_heavy / (perf_counter() - t0)
        t0 = perf_counter()
        batch_result = run_campaign(
            heavy, ExecPolicy(jobs=1, batch=min(batch, n_heavy))
        )
        lockstep_rate = n_heavy / (perf_counter() - t0)
        assert serial_result.ok and batch_result.ok
        assert [r.value for r in batch_result.records] == [
            r.value for r in serial_result.records
        ], "parity violation: lockstep batch changed construction samples"
        return serial_rate, lockstep_rate

    serial_rate, lockstep_rate = _lockstep_pair()
    saved_rng = os.environ.get("REPRO_RNG")
    os.environ["REPRO_RNG"] = "counter"
    try:
        c_serial_rate, c_lockstep_rate = _lockstep_pair()
    finally:
        if saved_rng is None:
            del os.environ["REPRO_RNG"]
        else:
            os.environ["REPRO_RNG"] = saved_rng

    return {
        "batch": batch,
        "supported": batch_supported(),
        "dispatch_trials_per_sec_serial": best[1],
        "dispatch_trials_per_sec_batch": best[batch],
        "dispatch_speedup": best[batch] / best[1],
        "lockstep_trials_per_sec_serial": serial_rate,
        "lockstep_trials_per_sec_batch": lockstep_rate,
        "lockstep_ratio": lockstep_rate / serial_rate,
        "counter_lockstep_trials_per_sec_serial": c_serial_rate,
        "counter_lockstep_trials_per_sec_batch": c_lockstep_rate,
        "counter_lockstep_ratio": c_lockstep_rate / c_serial_rate,
        # The delivered speedup: the same campaign through the new
        # contract + batch tier vs the default serial-contract serial
        # path (what every pre-PR-8 campaign paid).
        "counter_lockstep_speedup": c_lockstep_rate / serial_rate,
    }


# --- Construct stage: checkpoint restore + construct memo-replay ------------


def _bench_construct(quick: bool):
    """Repeat-trial construction throughput (DESIGN.md §2.8), rng=counter.

    The workload is the *repeat trial*: the same ``(env, seed, offset)``
    construction spec run again and again, as fleet retries, resumed
    shards, and measurement loops do.  Two implementations of that trial
    are contrasted:

    * **live** — the PR-8 baseline: build a fresh machine, calibrate,
      allocate the candidate pool, and simulate every eviction test
      (construct memo disabled,
      :func:`repro.memsys.construct_memo_disabled`).
    * **memo** — the PR-9 path: lease the content-addressed trial
      prefix (:mod:`repro.exec.prefix` — an O(touched rows) checkpoint
      restore instead of re-simulation) and run the construction
      through the counter-mode construct memo (DESIGN.md §2.8): after
      one lease that marks shapes and one that records plane deltas,
      every later lease replays ~all of the construction's eviction
      tests as slice assignments.

    Parity is asserted in-bench and per-iteration: every trial, either
    mode, must reproduce the identical construction outcome digest
    *and* the identical end-of-trial machine digest as the live
    control — the speedup can never outrun correctness.  Live/memo
    iterations are interleaved best-of so burst-throttled hosts cannot
    skew the ratio.
    """
    from repro.check.digest import obj_digest
    from repro.exec.prefix import TrialPrefixStore
    from repro.memsys import construct_memo_disabled

    iters = 2 if quick else 3
    seed = 13
    saved_rng = os.environ.get("REPRO_RNG")
    os.environ["REPRO_RNG"] = "counter"
    try:
        store = TrialPrefixStore()

        def live_trial():
            """PR-8 shape: fresh environment + live construction."""
            with construct_memo_disabled():
                t0 = perf_counter()
                machine, ctx = make_env("cloud", seed=seed)
                cand = build_candidate_set(ctx, PAGE_OFFSET)
                target = cand.vas.pop()
                outcome = construct_sf_evset(ctx, "bins", target, cand.vas)
                elapsed = perf_counter() - t0
            assert outcome.success
            return (
                elapsed,
                obj_digest(sorted(outcome.evset.vas)),
                machine_digest(machine),
            )

        def memo_trial():
            """PR-9 shape: prefix restore + memo-replay construction."""
            t0 = perf_counter()
            machine, ctx, target, vas, _hit = store.lease(
                "cloud", seed, PAGE_OFFSET
            )
            outcome = construct_sf_evset(ctx, "bins", target, vas)
            elapsed = perf_counter() - t0
            assert outcome.success
            return (
                elapsed,
                obj_digest(sorted(outcome.evset.vas)),
                machine_digest(machine),
            )

        # Control + warm-up.  The live control pins the expected outcome
        # and machine digests; the two untimed memo trials build the
        # prefix entry, mark the memo shapes, and record the plane
        # deltas (replays start on the third lease of the same prefix).
        _, control_out, control_mach = live_trial()
        for _ in range(2):
            _, out_d, mach_d = memo_trial()
            assert (out_d, mach_d) == (control_out, control_mach), (
                "parity violation: memo warm-up diverged from live control"
            )

        best = {"live": 0.0, "memo": 0.0}
        trials = {"live": live_trial, "memo": memo_trial}
        for _ in range(iters):
            for mode, trial in trials.items():
                elapsed, out_d, mach_d = trial()
                assert (out_d, mach_d) == (control_out, control_mach), (
                    f"parity violation: {mode} iteration diverged"
                )
                best[mode] = max(best[mode], 1.0 / elapsed)
    finally:
        if saved_rng is None:
            del os.environ["REPRO_RNG"]
        else:
            os.environ["REPRO_RNG"] = saved_rng

    return {
        "rng_mode": "counter",
        "evsets_per_sec_live": best["live"],
        "evsets_per_sec_memo": best["memo"],
        "memo_speedup": best["memo"] / best["live"],
        "prefix": store.stats(),
        "outcome_digest": control_out,
        "machine_digest_matched": True,
    }


# --- Profile stage ----------------------------------------------------------


def _profile_construction(quick: bool):
    """cProfile top-10 (cumulative) of lane-path eviction-set construction.

    The Amdahl accounting that motivated the kernel and lane layers:
    after each optimization round, the next bottleneck is whatever tops
    this list.  Profiles the default resolution — the lane plane when
    NumPy is available, the plain kernels otherwise.
    """
    with _cache_impl(SetAssociativeCache):
        machine, ctx = make_env("cloud", seed=13)
    cand = build_candidate_set(ctx, PAGE_OFFSET)
    targets = [cand.vas.pop() for _ in range(1 if quick else 3)]
    profiler = cProfile.Profile()
    profiler.enable()
    for target in targets:
        construct_sf_evset(ctx, "bins", target, list(cand.vas))
    profiler.disable()
    stats = pstats.Stats(profiler)
    total = getattr(stats, "total_tt", 0.0)
    rows = []
    entries = sorted(stats.stats.items(), key=lambda kv: -kv[1][3])
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in entries:
        name = f"{Path(filename).name}:{lineno}({func})"
        if func.startswith("<") and "lambda" not in func:
            continue  # interpreter plumbing (<module>, <built-in ...>)
        rows.append(
            {
                "function": name,
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
        if len(rows) == 10:
            break
    return {
        "path": "lanes" if HAVE_NUMPY else "kernels",
        "total_time_s": round(total, 4),
        "top10_cumulative": rows,
    }


# --- History ----------------------------------------------------------------


def _load_history(out_path: str) -> list:
    """The append-only per-PR perf trajectory from a previous run.

    Older payloads predate the ``history`` array; their stored stage
    metrics are backfilled as the PR that introduced each stage, so the
    trajectory starts complete.
    """
    try:
        old = json.loads(Path(out_path).read_text())
    except (OSError, ValueError):
        return []
    history = old.get("history")
    if history:
        return list(history)
    keys = ("evsets_per_sec", "accesses_per_sec", "trial_seconds")

    def stage(metrics):
        return {k: metrics[k] for k in keys if k in metrics}

    backfill = []
    if "before" in old and "after" in old:
        backfill.append(
            {
                "pr": "PR 2",
                "stages": {
                    "reference": stage(old["before"]),
                    "batched": stage(old["after"]),
                },
            }
        )
    if "kernels" in old:
        backfill.append(
            {"pr": "PR 3", "stages": {"kernels": stage(old["kernels"])}}
        )
    return backfill


# --- Driver -----------------------------------------------------------------


def _update_history(history: list, pr: str, stages_payload: dict,
                    quick: bool) -> list:
    """Replace ``pr``'s history entry with this run's numbers.

    A --quick smoke run must never displace a full-run entry: CI runs
    quick mode on every push, while full numbers come from deliberate
    local runs.  Quick entries only fill the slot when nothing better
    exists; full runs always replace whatever is there for this PR.
    Every entry records the run mode and host so appended history stays
    interpretable across machines (satellite of PR 8).
    """
    prior = [e for e in history if e.get("pr") == pr]
    if quick and any(not e.get("quick") for e in prior):
        return history
    history = [e for e in history if e.get("pr") != pr]
    history.append(
        {
            "pr": pr,
            "quick": quick,
            "host": platform.node(),
            "python": platform.python_version(),
            "stages": stages_payload,
        }
    )
    return history


def run_perf(
    quick: bool = False,
    out_path: str = "BENCH_perf.json",
    stages=None,
) -> dict:
    sel = resolve_stages(stages)
    hot = [s for s in STAGES if s in sel]
    want_vec = "vec" in sel and HAVE_NUMPY
    want_batch = "batch" in sel
    want_construct = "construct" in sel and HAVE_NUMPY
    print_header(
        "Simulator throughput: reference vs. flat plane vs. kernels vs. "
        "lanes vs. vec",
        "Infrastructure benchmark (DESIGN.md 2.2-2.7), not a paper artifact.",
    )
    best_acc, acc_machines = (
        _bench_accesses(quick, hot, want_vec) if (hot or want_vec)
        else ({}, {})
    )
    ev_results = _bench_evsets(quick, hot) if hot else {}
    results = {}
    trial_machine = None
    for stage in hot:
        results[stage], machine = _measure(quick, stage, ev_results)
        results[stage]["accesses_per_sec"] = best_acc[stage]
        if stage == "lanes":
            trial_machine = machine

    vec_results = None
    if want_vec:
        vec_results = {
            "rng_mode": "counter",
            "accesses_per_sec": best_acc["vec"],
            "counter_lanes_accesses_per_sec": best_acc["lanes_counter"],
            "speedup_vs_counter_lanes": (
                best_acc["vec"] / best_acc["lanes_counter"]
            ),
        }
        if "lanes" in results:
            vec_results["speedup_vs_lanes"] = (
                best_acc["vec"] / results["lanes"]["accesses_per_sec"]
            )

    def ratio(new, old):
        return {
            "accesses_per_sec": new["accesses_per_sec"] / old["accesses_per_sec"],
            "evsets_per_sec": new["evsets_per_sec"] / old["evsets_per_sec"],
            "trial_seconds": old["trial_seconds"] / new["trial_seconds"],
        }

    full_serial = all(s in results for s in STAGES)
    speedup = kernel_speedup = lane_speedup = None
    if full_serial:
        speedup = ratio(results["batched"], results["reference"])
        kernel_speedup = ratio(results["kernels"], results["batched"])
        lane_speedup = ratio(results["lanes"], results["kernels"])

    names = hot + (["vec"] if want_vec else [])
    if names:
        table = Table(
            "Simulator throughput (same host, same workloads)",
            ["Metric"] + [n.capitalize() for n in names],
        )

        def _row(label, key, fmt):
            cells = []
            for n in names:
                src = vec_results if n == "vec" else results.get(n)
                value = (src or {}).get(key)
                cells.append(fmt.format(value) if value is not None else "-")
            table.add_row(label, *cells)

        _row("accesses/sec", "accesses_per_sec", "{:,.0f}")
        _row("evset constructions/sec", "evsets_per_sec", "{:.2f}")
        _row("end-to-end trial (s)", "trial_seconds", "{:.2f}")
        table.print()
        if want_vec:
            base = vec_results.get(
                "speedup_vs_lanes", vec_results["speedup_vs_counter_lanes"]
            )
            print(
                f"vec (rng=counter): {best_acc['vec']:,.0f} accesses/sec "
                f"= {base:.2f}x lanes"
            )

    batch_results = None
    if want_batch:
        batch_results = _bench_batch(quick)
        btable = Table(
            "Trial-batch tier (campaign-level, batch=16)",
            ["Workload", "batch=1", "batch=16", "Ratio"],
        )
        btable.add_row(
            "micro-trial dispatch (trials/s, jobs=4)",
            f"{batch_results['dispatch_trials_per_sec_serial']:,.0f}",
            f"{batch_results['dispatch_trials_per_sec_batch']:,.0f}",
            f"{batch_results['dispatch_speedup']:.2f}x",
        )
        btable.add_row(
            "construction lockstep (trials/s, jobs=1)",
            f"{batch_results['lockstep_trials_per_sec_serial']:.3f}",
            f"{batch_results['lockstep_trials_per_sec_batch']:.3f}",
            f"{batch_results['lockstep_ratio']:.2f}x",
        )
        btable.add_row(
            "construction lockstep, rng=counter (trials/s)",
            f"{batch_results['counter_lockstep_trials_per_sec_serial']:.3f}",
            f"{batch_results['counter_lockstep_trials_per_sec_batch']:.3f}",
            f"{batch_results['counter_lockstep_ratio']:.2f}x",
        )
        btable.print()
        print(
            "counter lockstep vs serial-contract serial: "
            f"{batch_results['counter_lockstep_speedup']:.2f}x"
        )

    construct_results = None
    if want_construct:
        construct_results = _bench_construct(quick)
        ctable = Table(
            "Checkpoint + construct memo-replay (repeat trials, rng=counter)",
            ["Workload", "live", "memo", "Speedup"],
        )
        ctable.add_row(
            "repeated construction (evsets/s)",
            f"{construct_results['evsets_per_sec_live']:.3f}",
            f"{construct_results['evsets_per_sec_memo']:.3f}",
            f"{construct_results['memo_speedup']:.2f}x",
        )
        ctable.print()
        print(
            "prefix store: "
            f"{construct_results['prefix']['hits']} restored, "
            f"{construct_results['prefix']['misses']} built"
        )

    profile = _profile_construction(quick) if full_serial else None
    acc_machine = acc_machines.get("batched")
    dataplane = None
    if acc_machine is not None and trial_machine is not None:
        dataplane = {
            "access_workload": dataplane_summary(acc_machine),
            "trial_workload": dataplane_summary(trial_machine),
        }
    keys = ("evsets_per_sec", "accesses_per_sec", "trial_seconds")
    history = _load_history(out_path)
    if full_serial:
        history = _update_history(
            history,
            "PR 4",
            {s: {k: results[s][k] for k in keys} for s in STAGES},
            quick,
        )
    if batch_results is not None:
        serial_batch = {
            k: v for k, v in batch_results.items()
            if not k.startswith("counter_")
        }
        history = _update_history(
            history, "PR 7", {"batch": serial_batch}, quick
        )
    if want_vec or batch_results is not None:
        pr8 = {}
        if want_vec:
            pr8["vec"] = vec_results
        if batch_results is not None:
            pr8["batch_counter"] = {
                k: v for k, v in batch_results.items()
                if k.startswith("counter_")
            }
        history = _update_history(history, "PR 8", pr8, quick)
    if construct_results is not None:
        history = _update_history(
            history, "PR 9", {"construct": construct_results}, quick
        )

    try:
        old_payload = json.loads(Path(out_path).read_text())
    except (OSError, ValueError):
        old_payload = {}
    payload = {
        "quick": quick,
        "stages_run": sorted(sel),
        "profile": profile if profile is not None
        else old_payload.get("profile"),
        "dataplane": dataplane if dataplane is not None
        else old_payload.get("dataplane"),
        "history": history,
    }
    if full_serial:
        payload.update(
            {
                "before": results["reference"],
                "after": results["batched"],
                "kernels": results["kernels"],
                "lanes": results["lanes"],
                "speedup": speedup,
                "kernel_speedup": kernel_speedup,
                "lane_speedup": lane_speedup,
            }
        )
    else:
        for key in ("before", "after", "kernels", "lanes", "speedup",
                    "kernel_speedup", "lane_speedup"):
            if key in old_payload:
                payload[key] = old_payload[key]
    if vec_results is not None:
        payload["vec"] = vec_results
    elif "vec" in old_payload:
        payload["vec"] = old_payload["vec"]
    if batch_results is not None:
        payload["batch"] = batch_results
    elif "batch" in old_payload:
        payload["batch"] = old_payload["batch"]
    if construct_results is not None:
        payload["construct"] = construct_results
    elif "construct" in old_payload:
        payload["construct"] = old_payload["construct"]
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nWrote {out_path}")

    # Sanity checks.  Cross-implementation speedups carry no threshold
    # (CI runners are too noisy), but all measured serial-mode paths
    # must agree on every *outcome* — the kernels and lanes are
    # bit-identical by contract.  (The vec stage runs under the counter
    # contract; its parity is asserted against the counter-mode lanes
    # control inside _bench_accesses.)
    for metrics in results.values():
        assert metrics["accesses_per_sec"] > 0
        assert math.isfinite(metrics["trial_seconds"])
    if results:
        succ = {m["evset_successes"] for m in results.values()}
        assert len(succ) == 1, (
            "parity violation: all serial paths must construct the same "
            "eviction sets"
        )
        assert len({m["trial_evsets"] for m in results.values()}) == 1
    # Kernel perf smoke: with interleaved best-of-N the fused monitor loop
    # must not fall behind the batched one (0.9 absorbs residual jitter).
    if "kernels" in results and "batched" in results:
        assert (results["kernels"]["accesses_per_sec"]
                >= 0.9 * results["batched"]["accesses_per_sec"]), (
            f"fused kernels slower than batched path on the monitor loop: "
            f"{results['kernels']['accesses_per_sec']:,.0f} vs "
            f"{results['batched']['accesses_per_sec']:,.0f} accesses/sec"
        )
    # Lane perf smoke: the specialized sweeps must not fall behind the
    # plain kernels on the construction workload they target.
    if HAVE_NUMPY and "lanes" in results and "kernels" in results:
        assert (results["lanes"]["evsets_per_sec"]
                >= 1.0 * results["kernels"]["evsets_per_sec"]), (
            f"lane plane slower than plain kernels on constructions: "
            f"{results['lanes']['evsets_per_sec']:.2f} vs "
            f"{results['kernels']['evsets_per_sec']:.2f} evsets/sec"
        )
    # Vec perf gate (PR 8): memo-replay must deliver >= 1.5x lanes on the
    # monitor loop even in quick mode (full runs measure ~2.5x; 1.5
    # absorbs cold-memo and CI noise).
    if vec_results is not None:
        vec_base = vec_results.get(
            "speedup_vs_lanes", vec_results["speedup_vs_counter_lanes"]
        )
        assert vec_base >= 1.5, (
            f"vec stage below 1.5x lanes accesses/sec: {vec_base:.2f}x"
        )
    # Batch perf smoke: grouped dispatch must beat per-trial dispatch on
    # micro-trial campaign throughput (measured ~6x at batch=16; 1.5
    # absorbs CI noise); in-mode lockstep threading must stay a bounded
    # overhead on heavy trials (the GIL serializes the python compute —
    # DESIGN.md §2.6/2.7 record why); and the counter-contract batch
    # path must beat the serial-contract serial path it replaces.
    if batch_results is not None and batch_results["supported"]:
        assert batch_results["dispatch_speedup"] >= 1.5, (
            f"batched dispatch below 1.5x per-trial dispatch: "
            f"{batch_results['dispatch_speedup']:.2f}x"
        )
        assert batch_results["lockstep_ratio"] >= 0.6, (
            f"lockstep batch overhead above bound: "
            f"{batch_results['lockstep_ratio']:.2f}x of serial"
        )
        assert batch_results["counter_lockstep_speedup"] >= 1.1, (
            f"counter-mode lockstep below serial-contract serial: "
            f"{batch_results['counter_lockstep_speedup']:.2f}x"
        )
    # Construct perf gate (PR 9): the checkpoint + construct-memo repeat
    # path must beat the PR-8 counter-mode lanes baseline on repeated
    # constructions.  Full runs measure ~2.4x; quick mode still pays a
    # partially cold memo, so CI gates at 1.3x and full runs at 1.8x.
    if construct_results is not None:
        floor = 1.3 if quick else 1.8
        assert construct_results["memo_speedup"] >= floor, (
            f"construct stage below {floor}x lanes baseline: "
            f"{construct_results['memo_speedup']:.2f}x"
        )
    out = {}
    if full_serial:
        out.update(
            {
                "accesses_speedup": speedup["accesses_per_sec"],
                "evsets_speedup": speedup["evsets_per_sec"],
                "trial_speedup": speedup["trial_seconds"],
                "kernel_evsets_speedup": kernel_speedup["evsets_per_sec"],
                "lane_evsets_speedup": lane_speedup["evsets_per_sec"],
                "lane_trial_speedup": lane_speedup["trial_seconds"],
                "lane_evsets_per_sec": results["lanes"]["evsets_per_sec"],
            }
        )
    if vec_results is not None:
        out["vec_accesses_per_sec"] = vec_results["accesses_per_sec"]
        out["vec_speedup"] = vec_results.get(
            "speedup_vs_lanes", vec_results["speedup_vs_counter_lanes"]
        )
    if construct_results is not None:
        out["construct_memo_speedup"] = construct_results["memo_speedup"]
        out["construct_evsets_per_sec"] = (
            construct_results["evsets_per_sec_memo"]
        )
    if batch_results is not None:
        out["batch_dispatch_speedup"] = batch_results["dispatch_speedup"]
        out["batch_lockstep_ratio"] = batch_results["lockstep_ratio"]
        out["counter_lockstep_speedup"] = (
            batch_results["counter_lockstep_speedup"]
        )
    return out


def bench_perf_memsys(run_once):
    run_once(run_perf, quick=True)


if __name__ == "__main__":
    args = sys.argv[1:]
    quick = "--quick" in args
    stage_arg = None
    if "--stages" in args:
        idx = args.index("--stages")
        if idx + 1 >= len(args):
            raise SystemExit("--stages needs a comma-separated list")
        stage_arg = args[idx + 1].split(",")
    run_perf(quick=quick, stages=stage_arg)
