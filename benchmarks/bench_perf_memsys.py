"""Simulator throughput — reference vs. flat plane vs. kernels vs. lanes.

Not a paper artifact: this benchmark tracks the performance of the
simulator itself across its four generations of hot path:

* **reference** — the seed dict-of-sets cache preserved in
  :mod:`repro.memsys._reference`, swapped into the hierarchy, driven with
  per-line access semantics;
* **batched** — the flat array-backed
  :class:`repro.memsys.cache.SetAssociativeCache` (DESIGN.md §2.2) with
  the ``same_shared_set`` batched Machine APIs, fused kernels disabled
  (:func:`repro.memsys.kernels_disabled`);
* **kernels** — the same flat plane driven through the fused attack
  kernels and the translation plane (DESIGN.md §2.3), lanes disabled
  (:func:`repro.memsys.lanes_disabled`);
* **lanes** — the plan-specialized lane kernels (DESIGN.md §2.4), the
  default path when NumPy is available;
* **batch** — the trial-batch executor (DESIGN.md §2.6), measured at the
  campaign level: grouped pool dispatch on microsecond trials and
  in-process lockstep sessions on construction trials.

All four run the same workloads and — because the kernels and lanes are
bit-identical by construction — must produce the same eviction sets; the
sanity asserts at the bottom enforce that.  Two perf smokes gate CI: the
fused path must not regress below the batched one on the monitor loop,
and the lane path must not regress below the plain kernels on
constructions/sec.

Workloads:

* accesses/sec through the Prime+Probe monitor hot loop (prime + probe
  traversals of a ways-sized SF-congruent eviction set, interleaved
  best-of-N against host noise),
* SF eviction-set constructions/sec (BinS with candidate filtering) —
  the workload the lane plane targets (flush + post-flush sweeps),
* one end-to-end trial (bulk construction + Parallel Probing monitor),
* a cProfile breakdown (top-10 by cumulative time) of lane-path
  eviction-set construction, so the next optimization round starts from
  data.

Results, speedups, the profile, and the data-plane counters
(:func:`repro.analysis.dataplane_summary`) are written to
``BENCH_perf.json``, along with an append-only ``history`` array (one
entry per PR, stage name -> evsets/s, accesses/s, trial seconds) so the
perf trajectory survives reruns instead of being overwritten.

Run directly (``--quick`` shrinks every workload for CI smoke runs)::

    PYTHONPATH=src python benchmarks/bench_perf_memsys.py [--quick]

or through the harness: ``pytest benchmarks/bench_perf_memsys.py``.
"""

from __future__ import annotations

import cProfile
import json
import math
import pstats
import sys
from contextlib import contextmanager, nullcontext
from pathlib import Path
from time import perf_counter

if __name__ == "__main__":  # allow `python benchmarks/bench_perf_memsys.py`
    sys.path.insert(0, str(Path(__file__).parent))

from _common import Table, make_env, print_header
from repro.analysis import dataplane_summary
from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    bulk_construct_page_offset,
    construct_sf_evset,
)
from repro.core.monitor import ParallelProbing, monitor_set
from repro.memsys import (
    HAVE_NUMPY,
    AttackKernels,
    LaneKernels,
    TranslationPlane,
    kernels_disabled,
    lanes_disabled,
)
from repro.memsys._reference import ReferenceSetAssociativeCache
from repro.memsys.cache import SetAssociativeCache
from repro.memsys.machine import Machine

PAGE_OFFSET = 0x2C0

#: The four hot-path generations, oldest first.
STAGES = ("reference", "batched", "kernels", "lanes")


@contextmanager
def _cache_impl(cache_cls):
    """Build machines with ``cache_cls`` as the hierarchy's cache class."""
    import repro.memsys.hierarchy as hmod

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = cache_cls
    try:
        yield
    finally:
        hmod.SetAssociativeCache = original


def _path_guard(path: str):
    """Pin one hot-path generation for the duration of a workload."""
    if path in ("reference", "batched"):
        return kernels_disabled()
    if path == "kernels":
        return lanes_disabled()
    return nullcontext()  # lanes: the default resolution


# --- Monitor hot loop -------------------------------------------------------


def _accesses_setup(cache_cls):
    """Machine plus a ways-sized SF-congruent eviction set (monitor shape).

    The measured workload is the Prime+Probe monitor hot loop: one prime
    (write traversal) followed by several probe traversals of a ways-sized
    eviction set, all lines congruent in the shared SF/LLC set.  This is
    where an attack trial spends nearly all of its simulated accesses.
    """
    from collections import defaultdict

    with _cache_impl(cache_cls):
        machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=21)
    space = machine.new_address_space()
    lines = [space.translate_line(p) for p in space.alloc_pages(400)]
    groups = defaultdict(list)
    for line in lines:
        groups[machine.hierarchy.shared_set_index(line)].append(line)
    want = machine.cfg.sf.ways
    evset = next(g for g in groups.values() if len(g) >= want)[:want]
    return machine, evset


def _accesses_round(machine, evset, batched: bool, reps: int) -> float:
    """One timed round of the monitor loop; returns accesses/sec.

    ``batched=False`` runs the traversal with the seed's semantics — every
    access reconciles background noise individually — while ``batched=True``
    uses the ``same_shared_set`` batched APIs (one reconciliation per
    traversal): the flat-plane-vs-reference contrast.
    """
    count = 0
    t0 = perf_counter()
    for _ in range(reps):
        machine.access_batch(0, evset, write=True, same_shared_set=batched)
        for _ in range(4):
            machine.probe_batch(0, evset, same_shared_set=batched)
        count += 5 * len(evset)
    return count / (perf_counter() - t0)


def _accesses_round_kernels(machine, kernels, rows, reps: int) -> float:
    """The same monitor round through the fused kernels (DESIGN.md §2.3)."""
    count = 0
    n = len(rows.lines)
    t0 = perf_counter()
    for _ in range(reps):
        kernels.prime_probe_kernel(rows, n, prime_rounds=1)
        for _ in range(4):
            kernels.prime_probe_kernel(rows, n, probe=True)
        count += 5 * n
    return count / (perf_counter() - t0)


def _bench_accesses(quick: bool):
    """Monitor-loop throughput, all four hot paths, interleaved best-of-N.

    Shared/burst-throttled hosts swing throughput by 2x over minutes;
    interleaving the implementations round-robin and taking each side's
    best round keeps the ratios honest under that noise.  The lane bundle
    inherits the monitor kernels unchanged (resident-line walks have
    nothing provably dead), so its column doubles as an overhead check.
    """
    rounds = 2 if quick else 4
    reps = 40 if quick else 300
    ref_machine, ref_evset = _accesses_setup(ReferenceSetAssociativeCache)
    flat_machine, flat_evset = _accesses_setup(SetAssociativeCache)
    kern_machine, kern_evset = _accesses_setup(SetAssociativeCache)
    lane_machine, lane_evset = _accesses_setup(SetAssociativeCache)
    assert flat_evset == ref_evset == kern_evset == lane_evset, (
        "parity violation: address maps differ"
    )
    # The monitor loop works on raw lines, so the plane's translate is the
    # identity — the kernels see the same geometry the Machine would.
    plane = TranslationPlane(kern_machine.hierarchy, lambda line: line)
    kernels = AttackKernels(kern_machine, plane)
    assert kernels.engaged()
    rows = plane.rows(kern_evset)
    lane_plane = TranslationPlane(lane_machine.hierarchy, lambda line: line)
    lanes = LaneKernels(lane_machine, lane_plane)
    lane_rows = lane_plane.rows(lane_evset)
    best = dict.fromkeys(STAGES, 0.0)
    for _ in range(rounds):
        best["reference"] = max(
            best["reference"], _accesses_round(ref_machine, ref_evset, False, reps)
        )
        best["batched"] = max(
            best["batched"], _accesses_round(flat_machine, flat_evset, True, reps)
        )
        best["kernels"] = max(
            best["kernels"],
            _accesses_round_kernels(kern_machine, kernels, rows, reps),
        )
        best["lanes"] = max(
            best["lanes"],
            _accesses_round_kernels(lane_machine, lanes, lane_rows, reps),
        )
    return best, flat_machine


# --- Construction workloads -------------------------------------------------


def _stage_cache_cls(stage: str):
    return (
        ReferenceSetAssociativeCache if stage == "reference"
        else SetAssociativeCache
    )


def _bench_evsets(quick: bool):
    """SF eviction-set constructions/sec (BinS, filtered candidates).

    All four stages get their own deterministic environment (same seed,
    so the same candidate pool and targets), and the trials run
    *interleaved* round-robin across stages: on burst-throttled hosts a
    sequential per-stage run can attribute a 30% host-wide slowdown to
    whichever stage ran last, which is exactly the noise the lane-vs-
    kernel perf gate must not be subject to.
    """
    trials = 2 if quick else 6
    envs = {}
    for stage in STAGES:
        with _cache_impl(_stage_cache_cls(stage)):
            machine, ctx = make_env("cloud", seed=13)
        with _path_guard(stage):
            cand = build_candidate_set(ctx, PAGE_OFFSET)
            targets = [cand.vas.pop() for _ in range(trials)]
        envs[stage] = [ctx, cand, targets, 0.0, 0]  # elapsed_s, successes
    for i in range(trials):
        for stage in STAGES:
            env = envs[stage]
            ctx, cand, targets = env[0], env[1], env[2]
            with _path_guard(stage):
                t0 = perf_counter()
                outcome = construct_sf_evset(
                    ctx, "bins", targets[i], list(cand.vas)
                )
                env[3] += perf_counter() - t0
            env[4] += bool(outcome.success)
    return {
        stage: (trials / env[3], env[4]) for stage, env in envs.items()
    }


def _bench_trial(cache_cls, budget_ms: int, path: str):
    """One end-to-end trial: bulk construction + a monitoring window."""
    with _cache_impl(cache_cls):
        machine, ctx = make_env("cloud", seed=7)
    with _path_guard(path):
        t0 = perf_counter()
        bulk = bulk_construct_page_offset(
            ctx, "bins", PAGE_OFFSET, EvsetConfig(budget_ms=budget_ms)
        )
        if bulk.evsets:
            monitor_set(
                ParallelProbing(ctx, bulk.evsets[0]), duration_cycles=400_000
            )
        elapsed = perf_counter() - t0
    return elapsed, len(bulk.evsets), machine


def _measure(quick: bool, path: str, ev_results):
    budget_ms = 20 if quick else 100
    ev_rate, successes = ev_results[path]
    trial_s, n_evsets, trial_machine = _bench_trial(
        _stage_cache_cls(path), budget_ms, path
    )
    return {
        "evsets_per_sec": ev_rate,
        "evset_successes": successes,
        "trial_seconds": trial_s,
        "trial_evsets": n_evsets,
    }, trial_machine


# --- Trial-batch tier -------------------------------------------------------


def _bench_batch(quick: bool):
    """Trial-batch executor (DESIGN.md §2.6): campaign-level throughput.

    Two measurements, because the tier has two distinct effects:

    * **dispatch** — microsecond trials (the ``noise-mc`` shape) through
      ``run_campaign(jobs=4)``: with ``batch=16`` a whole group is one
      pool task, amortizing submit/pickle/result IPC across its trials.
      This is where batching buys real end-to-end throughput.
    * **lockstep** — heavyweight construction trials run in-process as
      one :class:`BatchSession`: N lane threads share one interpreter,
      one NumPy import, and one plan cache (the memory story), but the
      GIL serializes the compute, so the ratio is an *overhead bound*
      (~0.9-1.0x), not a speedup.  Cross-trial SIMD of the sweep hot
      loop is infeasible under the per-access RNG-order contract — the
      measured finding recorded in DESIGN.md §2.6.

    Values are byte-compared between modes: the batch tier must not buy
    a single bit of divergence.
    """
    from repro.exec import ExecPolicy, run_campaign
    from repro.exec.campaigns import construction_campaign
    from repro.fleet.campaigns import NoiseWindowConfig, noise_mc_campaign
    from repro.memsys.batchplane import batch_supported

    batch = 16
    # Enough trials that per-task dispatch cost dominates the constant
    # pool fork/teardown both modes share — too few dilutes the contrast.
    n_micro = 8_000 if quick else 40_000
    micro = noise_mc_campaign(
        NoiseWindowConfig(rate_per_ms=6.0), trials=n_micro, base_seed=3
    )

    def _micro_rate(policy):
        t0 = perf_counter()
        result = run_campaign(micro, policy)
        rate = n_micro / (perf_counter() - t0)
        assert result.ok
        return rate, [record.value for record in result.records]

    best = {1: 0.0, batch: 0.0}
    values = {}
    for _ in range(2):  # interleaved best-of-2 against host noise
        for b in (1, batch):
            rate, vals = _micro_rate(ExecPolicy(jobs=4, batch=b))
            best[b] = max(best[b], rate)
            values.setdefault(b, vals)
    assert values[1] == values[batch], (
        "parity violation: batched dispatch changed campaign values"
    )

    n_heavy = 4 if quick else 16
    heavy = construction_campaign(trials=n_heavy, base_seed=29)
    t0 = perf_counter()
    serial_result = run_campaign(heavy, ExecPolicy(jobs=1))
    serial_rate = n_heavy / (perf_counter() - t0)
    t0 = perf_counter()
    batch_result = run_campaign(
        heavy, ExecPolicy(jobs=1, batch=min(batch, n_heavy))
    )
    lockstep_rate = n_heavy / (perf_counter() - t0)
    assert [r.value for r in batch_result.records] == [
        r.value for r in serial_result.records
    ], "parity violation: lockstep batch changed construction samples"

    return {
        "batch": batch,
        "supported": batch_supported(),
        "dispatch_trials_per_sec_serial": best[1],
        "dispatch_trials_per_sec_batch": best[batch],
        "dispatch_speedup": best[batch] / best[1],
        "lockstep_trials_per_sec_serial": serial_rate,
        "lockstep_trials_per_sec_batch": lockstep_rate,
        "lockstep_ratio": lockstep_rate / serial_rate,
    }


# --- Profile stage ----------------------------------------------------------


def _profile_construction(quick: bool):
    """cProfile top-10 (cumulative) of lane-path eviction-set construction.

    The Amdahl accounting that motivated the kernel and lane layers:
    after each optimization round, the next bottleneck is whatever tops
    this list.  Profiles the default resolution — the lane plane when
    NumPy is available, the plain kernels otherwise.
    """
    with _cache_impl(SetAssociativeCache):
        machine, ctx = make_env("cloud", seed=13)
    cand = build_candidate_set(ctx, PAGE_OFFSET)
    targets = [cand.vas.pop() for _ in range(1 if quick else 3)]
    profiler = cProfile.Profile()
    profiler.enable()
    for target in targets:
        construct_sf_evset(ctx, "bins", target, list(cand.vas))
    profiler.disable()
    stats = pstats.Stats(profiler)
    total = getattr(stats, "total_tt", 0.0)
    rows = []
    entries = sorted(stats.stats.items(), key=lambda kv: -kv[1][3])
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in entries:
        name = f"{Path(filename).name}:{lineno}({func})"
        if func.startswith("<") and "lambda" not in func:
            continue  # interpreter plumbing (<module>, <built-in ...>)
        rows.append(
            {
                "function": name,
                "ncalls": nc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
        if len(rows) == 10:
            break
    return {
        "path": "lanes" if HAVE_NUMPY else "kernels",
        "total_time_s": round(total, 4),
        "top10_cumulative": rows,
    }


# --- History ----------------------------------------------------------------


def _load_history(out_path: str) -> list:
    """The append-only per-PR perf trajectory from a previous run.

    Older payloads predate the ``history`` array; their stored stage
    metrics are backfilled as the PR that introduced each stage, so the
    trajectory starts complete.
    """
    try:
        old = json.loads(Path(out_path).read_text())
    except (OSError, ValueError):
        return []
    history = old.get("history")
    if history:
        return list(history)
    keys = ("evsets_per_sec", "accesses_per_sec", "trial_seconds")

    def stage(metrics):
        return {k: metrics[k] for k in keys if k in metrics}

    backfill = []
    if "before" in old and "after" in old:
        backfill.append(
            {
                "pr": "PR 2",
                "stages": {
                    "reference": stage(old["before"]),
                    "batched": stage(old["after"]),
                },
            }
        )
    if "kernels" in old:
        backfill.append(
            {"pr": "PR 3", "stages": {"kernels": stage(old["kernels"])}}
        )
    return backfill


# --- Driver -----------------------------------------------------------------


def run_perf(quick: bool = False, out_path: str = "BENCH_perf.json") -> dict:
    print_header(
        "Simulator throughput: reference vs. flat plane vs. kernels vs. lanes",
        "Infrastructure benchmark (DESIGN.md 2.2-2.4), not a paper artifact.",
    )
    best_acc, acc_machine = _bench_accesses(quick)
    ev_results = _bench_evsets(quick)
    results = {}
    trial_machine = None
    for stage in STAGES:
        results[stage], machine = _measure(quick, stage, ev_results)
        results[stage]["accesses_per_sec"] = best_acc[stage]
        if stage == "lanes":
            trial_machine = machine
    before = results["reference"]
    after = results["batched"]
    kernels = results["kernels"]
    lanes = results["lanes"]

    def ratio(new, old):
        return {
            "accesses_per_sec": new["accesses_per_sec"] / old["accesses_per_sec"],
            "evsets_per_sec": new["evsets_per_sec"] / old["evsets_per_sec"],
            "trial_seconds": old["trial_seconds"] / new["trial_seconds"],
        }

    speedup = ratio(after, before)
    kernel_speedup = ratio(kernels, after)
    lane_speedup = ratio(lanes, kernels)

    table = Table(
        "Simulator throughput (same host, same workloads)",
        ["Metric", "Reference", "Flat plane", "Kernels", "Lanes", "Lane/Kern"],
    )
    table.add_row(
        "accesses/sec",
        f"{before['accesses_per_sec']:,.0f}",
        f"{after['accesses_per_sec']:,.0f}",
        f"{kernels['accesses_per_sec']:,.0f}",
        f"{lanes['accesses_per_sec']:,.0f}",
        f"{lane_speedup['accesses_per_sec']:.2f}x",
    )
    table.add_row(
        "evset constructions/sec",
        f"{before['evsets_per_sec']:.2f}",
        f"{after['evsets_per_sec']:.2f}",
        f"{kernels['evsets_per_sec']:.2f}",
        f"{lanes['evsets_per_sec']:.2f}",
        f"{lane_speedup['evsets_per_sec']:.2f}x",
    )
    table.add_row(
        "end-to-end trial (s)",
        f"{before['trial_seconds']:.2f}",
        f"{after['trial_seconds']:.2f}",
        f"{kernels['trial_seconds']:.2f}",
        f"{lanes['trial_seconds']:.2f}",
        f"{lane_speedup['trial_seconds']:.2f}x",
    )
    table.print()

    batch_results = _bench_batch(quick)
    btable = Table(
        "Trial-batch tier (campaign-level, batch=16)",
        ["Workload", "batch=1", "batch=16", "Ratio"],
    )
    btable.add_row(
        "micro-trial dispatch (trials/s, jobs=4)",
        f"{batch_results['dispatch_trials_per_sec_serial']:,.0f}",
        f"{batch_results['dispatch_trials_per_sec_batch']:,.0f}",
        f"{batch_results['dispatch_speedup']:.2f}x",
    )
    btable.add_row(
        "construction lockstep (trials/s, jobs=1)",
        f"{batch_results['lockstep_trials_per_sec_serial']:.3f}",
        f"{batch_results['lockstep_trials_per_sec_batch']:.3f}",
        f"{batch_results['lockstep_ratio']:.2f}x",
    )
    btable.print()

    profile = _profile_construction(quick)
    dataplane = {
        "access_workload": dataplane_summary(acc_machine),
        "trial_workload": dataplane_summary(trial_machine),
    }
    keys = ("evsets_per_sec", "accesses_per_sec", "trial_seconds")
    history = _load_history(out_path)
    # A --quick smoke run must never displace a full-run entry: CI runs
    # quick mode on every push, while full numbers come from deliberate
    # local runs.  Quick entries only fill the slot when nothing better
    # exists; full runs always replace whatever is there for this PR.
    prior = [e for e in history if e.get("pr") == "PR 4"]
    keep_prior = quick and any(not e.get("quick") for e in prior)
    if not keep_prior:
        history = [e for e in history if e.get("pr") != "PR 4"]
        history.append(
            {
                "pr": "PR 4",
                "quick": quick,
                "stages": {
                    s: {k: results[s][k] for k in keys} for s in STAGES
                },
            }
        )
    prior = [e for e in history if e.get("pr") == "PR 7"]
    keep_prior = quick and any(not e.get("quick") for e in prior)
    if not keep_prior:
        history = [e for e in history if e.get("pr") != "PR 7"]
        history.append(
            {"pr": "PR 7", "quick": quick, "stages": {"batch": batch_results}}
        )
    payload = {
        "quick": quick,
        "before": before,
        "after": after,
        "kernels": kernels,
        "lanes": lanes,
        "speedup": speedup,
        "kernel_speedup": kernel_speedup,
        "lane_speedup": lane_speedup,
        "batch": batch_results,
        "profile": profile,
        "dataplane": dataplane,
        "history": history,
    }
    Path(out_path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nWrote {out_path}")

    # Sanity checks.  Cross-implementation speedups carry no threshold
    # (CI runners are too noisy), but all four paths must agree on every
    # *outcome* — the kernels and lanes are bit-identical by contract.
    for metrics in results.values():
        assert metrics["accesses_per_sec"] > 0
        assert math.isfinite(metrics["trial_seconds"])
    succ = {m["evset_successes"] for m in results.values()}
    assert len(succ) == 1, (
        "parity violation: the four paths must construct the same eviction sets"
    )
    assert len({m["trial_evsets"] for m in results.values()}) == 1
    # Kernel perf smoke: with interleaved best-of-N the fused monitor loop
    # must not fall behind the batched one (0.9 absorbs residual jitter).
    assert kernels["accesses_per_sec"] >= 0.9 * after["accesses_per_sec"], (
        f"fused kernels slower than batched path on the monitor loop: "
        f"{kernels['accesses_per_sec']:,.0f} vs "
        f"{after['accesses_per_sec']:,.0f} accesses/sec"
    )
    # Lane perf smoke: the specialized sweeps must not fall behind the
    # plain kernels on the construction workload they target.
    if HAVE_NUMPY:
        assert lanes["evsets_per_sec"] >= 1.0 * kernels["evsets_per_sec"], (
            f"lane plane slower than plain kernels on constructions: "
            f"{lanes['evsets_per_sec']:.2f} vs "
            f"{kernels['evsets_per_sec']:.2f} evsets/sec"
        )
    # Batch perf smoke: grouped dispatch must beat per-trial dispatch on
    # micro-trial campaign throughput (measured ~6x at batch=16; 1.5
    # absorbs CI noise), and lockstep threading must stay a bounded
    # overhead on heavy trials (the GIL serializes compute — DESIGN.md
    # §2.6 records why cross-trial SIMD can't lift this above ~1x).
    if batch_results["supported"]:
        assert batch_results["dispatch_speedup"] >= 1.5, (
            f"batched dispatch below 1.5x per-trial dispatch: "
            f"{batch_results['dispatch_speedup']:.2f}x"
        )
        assert batch_results["lockstep_ratio"] >= 0.6, (
            f"lockstep batch overhead above bound: "
            f"{batch_results['lockstep_ratio']:.2f}x of serial"
        )
    return {
        "accesses_speedup": speedup["accesses_per_sec"],
        "evsets_speedup": speedup["evsets_per_sec"],
        "trial_speedup": speedup["trial_seconds"],
        "kernel_evsets_speedup": kernel_speedup["evsets_per_sec"],
        "lane_evsets_speedup": lane_speedup["evsets_per_sec"],
        "lane_trial_speedup": lane_speedup["trial_seconds"],
        "lane_evsets_per_sec": lanes["evsets_per_sec"],
        "batch_dispatch_speedup": batch_results["dispatch_speedup"],
        "batch_lockstep_ratio": batch_results["lockstep_ratio"],
    }


def bench_perf_memsys(run_once):
    run_once(run_perf, quick=True)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    run_perf(quick=quick)
