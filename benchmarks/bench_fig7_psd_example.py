"""Figure 7 — access traces and PSDs of the target vs. a non-target set.

Paper (Figure 7 / Section 6.2): 100 us traces from the target and a
non-target SF set contain similar access *counts* (50 vs 48) and are hard
to tell apart in the time domain; in the frequency domain the target
set's PSD shows clear peaks at the victim's base frequency (~0.41 MHz)
and its harmonics, while the non-target set shows none.

Here: the same two traces collected while the ECDSA victim signs, their
PSDs, and the peak-to-floor ratio at the expected frequency.

Expected shape: comparable counts in the time domain; PSD peak ratio at
0.41 MHz large for the target set and near 1 for the non-target set.
"""

from __future__ import annotations

import numpy as np

from _common import make_victim_env, print_header
from repro.analysis import Table
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set
from repro.dsp import bin_trace, peak_strength_at, welch_psd

TRACE_US = 400.0


def _sparkline(psd: np.ndarray, buckets: int = 48) -> str:
    """ASCII rendering of a PSD (log scale) for the report."""
    chars = " .:-=+*#%@"
    chunks = np.array_split(np.log10(psd + 1e-30), buckets)
    vals = np.array([c.mean() for c in chunks])
    lo, hi = vals.min(), vals.max()
    scale = (vals - lo) / (hi - lo + 1e-12)
    return "".join(chars[int(s * (len(chars) - 1))] for s in scale)


def run_fig7() -> dict:
    print_header(
        "Figure 7: target vs. non-target traces and their PSDs",
        "Paper: similar counts in time domain; PSD peak at ~0.41 MHz only "
        "for the target set.",
    )
    machine, ctx, victim = make_victim_env("cloud-raw", seed=77)
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    target_evset = next(
        e for e in bulk.evsets if ctx.true_set_of(e.target_va) == target_set
    )
    other_evset = next(
        e for e in bulk.evsets if ctx.true_set_of(e.target_va) != target_set
    )
    # The paper's Figure 7 is an example collected *while the victim is
    # executing* the vulnerable code; schedule signings explicitly and
    # monitor inside them (ground-truth alignment, as for any example plot).
    duration = int(TRACE_US * machine.cfg.clock_ghz * 1e3)
    truth = victim.schedule_signing(machine.now + 20_000)
    machine.run_until(truth.start + 5_000)
    trace_t = monitor_set(ParallelProbing(ctx, target_evset), duration)
    truth2 = victim.schedule_signing(machine.now + 20_000)
    machine.run_until(truth2.start + 5_000)
    trace_n = monitor_set(ParallelProbing(ctx, other_evset), duration)

    expected_hz = victim.expected_peak_hz()
    bin_cycles = 500
    fs = machine.clock_hz / bin_cycles
    results = {}
    table = Table(
        "Figure 7 (400 us traces during signing)",
        ["Set", "Accesses", f"PSD peak ratio @ {expected_hz/1e6:.2f} MHz",
         "Peak found at (MHz)"],
    )
    psds = {}
    for name, trace in (("target", trace_t), ("non-target", trace_n)):
        signal = bin_trace(trace.timestamps, trace.start, trace.end, bin_cycles)
        freqs, psd = welch_psd(signal, fs=fs, nperseg=min(256, len(signal)))
        ratio, f_found = peak_strength_at(freqs, psd, expected_hz)
        results[name] = (trace.access_count(), ratio, f_found)
        psds[name] = psd
        table.add_row(
            name, trace.access_count(), f"{ratio:.1f}x",
            f"{f_found / 1e6:.2f}" if ratio > 3 else "-",
        )
    table.print()
    print("PSD sketch (DC..Nyquist, log scale):")
    for name, psd in psds.items():
        print(f"  {name:10s} |{_sparkline(psd[1:])}|")
    print()

    t_count, t_ratio, t_freq = results["target"]
    n_count, n_ratio, _ = results["non-target"]
    assert t_count > 10, "target set must show victim activity"
    assert t_ratio > 5.0, "target PSD must show the periodic peak"
    assert t_ratio > 2.5 * n_ratio, "peak must separate target from non-target"
    assert abs(t_freq - expected_hz) / expected_hz < 0.15, (
        "peak must sit at the victim's access frequency"
    )
    return {
        "target_peak_ratio": t_ratio,
        "nontarget_peak_ratio": n_ratio,
        "target_count": t_count,
        "nontarget_count": n_count,
    }


def bench_fig7(run_once):
    run_once(run_fig7)
