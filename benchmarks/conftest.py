"""Benchmark harness configuration.

Benchmarks run each experiment once (``pedantic`` mode) — they are
reproduction experiments with printed paper-vs-measured tables, not
micro-benchmarks — and attach their headline metrics to the
pytest-benchmark report via ``extra_info``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark fixture.

    Returns the experiment's result and records any numeric keys of a dict
    result into the benchmark's extra_info.
    """

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        if isinstance(result, dict):
            for key, value in result.items():
                if isinstance(value, (int, float)):
                    benchmark.extra_info[key] = value
        return result

    return runner
