"""Appendix A & design-choice ablations.

Three ablations the paper motivates:

1. **Early termination (GT vs GTOp)** — Appendix A: *not* re-partitioning
   after each removable group prunes larger chunks per round and performs
   better on Skylake-SP.  (The Song random-withholding variant is run for
   completeness; the paper found it comparable to GTOp.)
2. **PsOp recharging** — Appendix A: moving tail candidates toward the
   scan head after each found member reduces how deep Prime+Scope must
   search as the head depletes.
3. **Replacement-policy sensitivity** — Section 6.1 claims Parallel
   Probing "works irrespective of the replacement policy"; the EVC-based
   Prime+Scope strategies depend on deterministic replacement state.  We
   re-run the covert channel with the SF switched from LRU to SRRIP.

Expected shapes: GTOp no slower than GT; PsOp tests no deeper than Ps;
under SRRIP Parallel keeps a high detection rate while PS-Flush drops
hard.
"""

from __future__ import annotations

import dataclasses

from _common import PAGE_OFFSET, make_custom_env, make_env, print_header
from repro._util import mean
from repro.analysis import Table
from repro.config import cloud_run_noise, no_noise, skylake_sp_small
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    bulk_construct_page_offset,
    construct_sf_evset,
)
from repro.core.monitor import make_monitor, monitor_set

TRIALS = 3


def _avg_time_and_tests(env: str, algo: str) -> tuple:
    times, tests = [], []
    for i in range(TRIALS):
        machine, ctx = make_env(env, seed=800 + i)
        cand = build_candidate_set(ctx, PAGE_OFFSET)
        target = cand.vas.pop()
        outcome = construct_sf_evset(
            ctx, algo, target, cand.vas, EvsetConfig(budget_ms=1000)
        )
        if outcome.success:
            times.append(outcome.elapsed_ms(machine.cfg.clock_ghz))
            tests.append(outcome.stats.tests)
    return (mean(times) if times else float("nan"),
            mean(tests) if tests else float("nan"), len(times))


def _policy_detection_rate(policy: str, strategy: str, seed: int) -> float:
    cfg = dataclasses.replace(skylake_sp_small(), sf_policy=policy,
                              llc_policy=policy)
    machine, ctx = make_custom_env(cfg, noise=no_noise(), seed=seed)
    bulk = bulk_construct_page_offset(
        ctx, "bins", 0x100, EvsetConfig(budget_ms=400, max_attempts=20)
    )
    if len(bulk.evsets) < 2:
        return float("nan")
    evset = bulk.evsets[0]
    alternate = next(
        (e for e in bulk.evsets[1:]
         if ctx.true_l2_set_of(e.target_va) != ctx.true_l2_set_of(evset.target_va)),
        bulk.evsets[1],
    )
    # Covert-channel sender into the monitored set.
    target_set = ctx.true_set_of(evset.target_va)
    offset = evset.target_va % 4096
    space = machine.new_address_space()
    while True:
        page = space.alloc_page()
        line = space.translate_line(page + offset)
        if machine.hierarchy.shared_set_index(line) == target_set:
            break
    hier = machine.hierarchy
    interval = 20_000
    times = []
    t0 = machine.now + 5_000
    for i in range(60):
        when = t0 + i * interval
        times.append(when)
        machine.schedule(
            when, lambda t, l=line: hier.access(machine.cfg.cores - 1, l, t,
                                                write=True)
        )
    monitor = make_monitor(strategy, ctx, evset, alternate=alternate)
    trace = monitor_set(monitor, duration_cycles=64 * interval)
    detected = sum(
        1 for t in times if any(t < d <= t + 1500 for d in trace.timestamps)
    )
    return detected / len(times)


def run_ablations() -> dict:
    print_header(
        "Appendix A + design ablations",
        "Early termination, PsOp recharging, and replacement-policy "
        "sensitivity of the monitors.",
    )

    # 1 & 2: algorithm variants under cloud noise.
    table = Table(
        "Ablation: pruning variants (cloud, unfiltered SingleSet)",
        ["Variant", "Avg time (ms)", "Avg TestEvictions", "Successes"],
    )
    variants = {}
    for algo in ("gt", "gtop", "gt-song", "ps", "psop"):
        t, n, ok = _avg_time_and_tests("cloud", algo)
        variants[algo] = (t, n, ok)
        table.add_row(algo.upper(), f"{t:.2f}", f"{n:.0f}", f"{ok}/{TRIALS}")
    table.print()

    # 2b: PPP noise sensitivity (Section 8: "the success rates of both PPP
    # and CTPP fall to almost zero when a single memory-intensive SPEC
    # benchmark runs in the background ... about 10% of what we observed
    # on Cloud Run").
    from repro.config import exposure_matched

    base_cfg = skylake_sp_small()
    ppp_rates = {}
    table_ppp = Table(
        "Ablation: PPP (Prime+Prune+Probe) vs. background noise",
        ["Noise level", "Success"],
    )
    for label, noise in (
        ("quiet", no_noise()),
        ("10% of cloud", exposure_matched(cloud_run_noise(), base_cfg).scaled(0.1)),
        ("cloud", exposure_matched(cloud_run_noise(), base_cfg)),
    ):
        ok = 0
        for i in range(TRIALS):
            machine, ctx = make_custom_env(
                base_cfg, noise=noise, seed=840 + i, ctx_seed=2
            )
            cand = build_candidate_set(ctx, PAGE_OFFSET)
            target = cand.vas.pop()
            outcome = construct_sf_evset(
                ctx, "ppp", target, cand.vas, EvsetConfig(budget_ms=1000)
            )
            if outcome.success:
                sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
                ok += len(sets) == 1 and ctx.true_set_of(target) in sets
        ppp_rates[label] = ok / TRIALS
        table_ppp.add_row(label, f"{ppp_rates[label]:.0%}")
    table_ppp.print()

    # 3: policy sensitivity of the monitors.
    table2 = Table(
        "Ablation: monitor detection rate vs. SF replacement policy",
        ["Policy", "PARALLEL", "PS-FLUSH"],
    )
    rates = {}
    for policy in ("lru", "srrip"):
        for strategy in ("parallel", "ps-flush"):
            rates[(policy, strategy)] = _policy_detection_rate(
                policy, strategy, seed=860
            )
        table2.add_row(
            policy.upper(),
            f"{rates[(policy, 'parallel')] * 100:.0f}%",
            f"{rates[(policy, 'ps-flush')] * 100:.0f}%",
        )
    table2.print()

    # Shape assertions.
    if variants["gt"][2] and variants["gtop"][2]:
        assert variants["gtop"][0] < 1.5 * variants["gt"][0], (
            "GTOp should not be materially slower than GT (Appendix A)"
        )
    assert rates[("srrip", "parallel")] > 0.5, (
        "Parallel Probing must survive a policy change (Section 6.1)"
    )
    assert rates[("srrip", "parallel")] > rates[("srrip", "ps-flush")], (
        "EVC-based probing must suffer more than Parallel under SRRIP"
    )
    assert ppp_rates["quiet"] >= 0.75, "PPP must work in a quiet environment"
    assert ppp_rates["10% of cloud"] <= 0.25, (
        "PPP must collapse at ~10% of cloud noise (Section 8 / CTPP)"
    )
    return {
        "gt_ms": variants["gt"][0],
        "gtop_ms": variants["gtop"][0],
        "parallel_srrip_rate": rates[("srrip", "parallel")],
        "psflush_srrip_rate": rates[("srrip", "ps-flush")],
    }


def bench_ablations(run_once):
    run_once(run_ablations)
