"""Table 5 — prime and probe latencies of the monitoring strategies.

Paper (Table 5, 2 GHz Cloud Run hosts):

    PS-Flush  prime 6,024 +/- 990   probe 94 +/- 0.7
    PS-Alt    prime 2,777 +/- 735   probe 94 +/- 0.7
    Parallel  prime 1,121 +/- 448   probe 118 +/- 0.7

Parallel Probing's probe costs only slightly more than the single-line
EVC probe, while its prime is several times cheaper — the property that
lets it re-arm within half a ladder iteration (Section 7.1).

Expected shape: prime(PS-Flush) > prime(PS-Alt) > prime(Parallel);
probe(Parallel) modestly above probe(Prime+Scope).
"""

from __future__ import annotations

from _common import make_env, print_header
from repro.analysis import Table
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, PrimeScopeAlt, PrimeScopeFlush

PAPER = {
    "ps-flush": (6024, 990, 94, 0.7),
    "ps-alt": (2777, 735, 94, 0.7),
    "parallel": (1121, 448, 118, 0.7),
}

CYCLES_PER_ROUND = 400_000


def run_table5() -> dict:
    print_header(
        "Table 5: prime & probe latencies on the cloud machine",
        "Paper: Parallel primes 5x faster than PS-Flush at +24 cycles probe.",
    )
    machine, ctx = make_env("cloud-raw", seed=55)
    bulk = bulk_construct_page_offset(
        ctx, "bins", 0x300, EvsetConfig(budget_ms=100)
    )
    assert len(bulk.evsets) >= 2
    evset = bulk.evsets[0]
    # PS-Alt's second set must live in a different L2 set, or the combined
    # chase thrashes the L2 and destroys the EVC state; the attacker knows
    # L2 congruence from candidate filtering, so this choice is free.
    alternate = next(
        e
        for e in bulk.evsets[1:]
        if ctx.true_l2_set_of(e.target_va) != ctx.true_l2_set_of(evset.target_va)
    )

    monitors = {
        "ps-flush": PrimeScopeFlush(ctx, evset),
        "ps-alt": PrimeScopeAlt(ctx, evset, alternate=alternate),
        "parallel": ParallelProbing(ctx, evset),
    }
    summaries = {}
    for name, monitor in monitors.items():
        # Exercise a realistic loop: prime, several probes, repeat.
        for _ in range(120):
            monitor.prime()
            for _ in range(5):
                monitor.probe()
        summaries[name] = monitor.latency_summary()

    table = Table(
        "Table 5 (cycles @ 2 GHz)",
        ["Strategy", "Prime (paper)", "Prime (measured)",
         "Probe (paper)", "Probe (measured)"],
    )
    for name in ("ps-flush", "ps-alt", "parallel"):
        p_pm, p_ps, p_qm, p_qs = PAPER[name]
        s = summaries[name]
        table.add_row(
            name.upper(),
            f"{p_pm} +/- {p_ps}",
            f"{s.prime_mean:.0f} +/- {s.prime_std:.0f}",
            f"{p_qm} +/- {p_qs}",
            f"{s.probe_mean:.0f} +/- {s.probe_std:.0f}",
        )
    table.print()

    flush, alt, par = (
        summaries["ps-flush"], summaries["ps-alt"], summaries["parallel"]
    )
    assert flush.prime_mean > alt.prime_mean > par.prime_mean, (
        "prime latency must be ordered PS-Flush > PS-Alt > Parallel"
    )
    assert par.probe_mean > flush.probe_mean, (
        "parallel probe pays a small premium over the EVC probe"
    )
    assert par.probe_mean < 4 * flush.probe_mean, (
        "...but only a modest one (paper: +24 cycles)"
    )
    return {
        "parallel_prime": par.prime_mean,
        "psflush_prime": flush.prime_mean,
        "parallel_probe": par.probe_mean,
        "psflush_probe": flush.probe_mean,
    }


def bench_table5(run_once):
    run_once(run_table5)
