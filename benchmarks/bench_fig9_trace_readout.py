"""Figure 9 — reading nonce bits directly off a detected-access trace.

Paper (Figure 9 / Section 7.1): a clean snippet of the monitored SF set's
access trace shows one detection at every iteration boundary and an extra
mid-iteration detection whenever the processed bit is 0 (instrumented
layout) — the nonce can be read off the plot by eye.

Here: monitor the victim's target set across one signing, render a trace
snippet against the ground-truth boundaries, and read the bits with the
midpoint rule on ground-truth-aligned windows (no decoder — the point of
this figure is the raw signal's legibility).

Expected shape: in clean windows, 0-bit iterations show 2 detections and
1-bit iterations show 1; the raw readout is mostly correct.
"""

from __future__ import annotations

from _common import make_victim_env, print_header
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set

SNIPPET_ITERS = 24


def run_fig9() -> dict:
    print_header(
        "Figure 9: nonce bits visible in the raw access trace",
        "Paper: 2 detections per 0-bit iteration, 1 per 1-bit iteration.",
    )
    machine, ctx, victim = make_victim_env("cloud-raw", seed=99)
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    evset = next(
        e for e in bulk.evsets if ctx.true_set_of(e.target_va) == target_set
    )
    truth = victim.schedule_signing(machine.now + 50_000)
    trace = monitor_set(
        ParallelProbing(ctx, evset), duration_cycles=truth.end - machine.now + 50_000
    )

    # Per-iteration readout using ground-truth windows (validation style).
    correct = 0
    readable = 0
    lines = []
    for j, bit in enumerate(truth.bits):
        a, b = truth.boundaries[j], truth.boundaries[j + 1]
        span = b - a
        dets = [t for t in trace.timestamps if a <= t - 400 < b]
        mid = any(a + 0.3 * span <= t - 400 <= a + 0.7 * span for t in dets)
        guess = 0 if mid else 1
        if dets:
            readable += 1
            if guess == bit:
                correct += 1
        if j < SNIPPET_ITERS:
            cells = ["."] * 20
            for t in dets:
                pos = min(19, max(0, int((t - a) / span * 20)))
                cells[pos] = "x"
            lines.append(f"  k={bit} |{''.join(cells)}| read={guess}")

    print(f"Trace snippet (first {SNIPPET_ITERS} iterations; 'x' = detection, "
          "left edge = iteration boundary):")
    print("\n".join(lines))
    accuracy = correct / max(1, readable)
    print(f"\nraw midpoint-rule readout: {readable}/{truth.n_bits} iterations "
          f"readable, accuracy among readable = {accuracy:.1%}\n")

    assert readable > 0.5 * truth.n_bits, "most iterations must be visible"
    assert accuracy > 0.85, "raw readout must be mostly correct"
    return {"readable_fraction": readable / truth.n_bits, "accuracy": accuracy}


def bench_fig9(run_once):
    run_once(run_fig9)
