"""Figure 3 — sequential vs. parallel TestEviction execution time.

Paper (Figure 3 / Section 4.3): on Cloud Run, parallel TestEviction is an
order of magnitude faster than the sequential (pointer-chase) form — e.g.
testing 11*U_LLC candidates takes ~134.8 us parallel vs ~4.6 ms
sequential — which directly sets each test's noise exposure window.

Here: both TestEviction forms over a sweep of candidate counts on the
cloud machine, printing per-count times and the speedup.

Expected shape: time linear in the candidate count for both forms;
sequential/parallel ratio roughly an order of magnitude, growing with N.
"""

from __future__ import annotations

from _common import PAGE_OFFSET, make_env, print_header
from repro._util import mean
from repro.analysis import Table
from repro.core.evset import build_candidate_set
from repro.core.evset.primitives import EvictionTester

#: Candidate-count sweep (the paper sweeps up to ~3UW; ours: N=1152).
COUNTS = [72, 144, 288, 576, 1152]
REPS = 12


def run_fig3() -> dict:
    print_header(
        "Figure 3: TestEviction execution time vs. candidate count",
        "Paper: parallel ~10x faster than sequential at every size.",
    )
    machine, ctx = make_env("cloud-raw", seed=33)
    cand = build_candidate_set(ctx, PAGE_OFFSET)
    target = cand.vas.pop()
    clock_mhz = machine.cfg.clock_ghz * 1e3  # cycles per us

    table = Table(
        "Figure 3 (us per TestEviction, cloud machine)",
        ["Candidates", "Sequential (us)", "Parallel (us)", "Seq/Par"],
    )
    ratios = []
    series = {}
    for count in COUNTS:
        seq_tester = EvictionTester(ctx, mode="llc", parallel=False)
        par_tester = EvictionTester(ctx, mode="llc", parallel=True)
        seq_times, par_times = [], []
        for _ in range(REPS):
            t0 = machine.now
            par_tester.test(target, cand.vas, n=count)
            par_times.append((machine.now - t0) / clock_mhz)
            t0 = machine.now
            seq_tester.test(target, cand.vas, n=count)
            seq_times.append((machine.now - t0) / clock_mhz)
        seq_us, par_us = mean(seq_times), mean(par_times)
        ratio = seq_us / par_us
        ratios.append(ratio)
        series[count] = (seq_us, par_us)
        table.add_row(count, f"{seq_us:.1f}", f"{par_us:.1f}", f"{ratio:.1f}x")
    table.print()
    print("Paper reference point: 11*U_LLC candidates = 134.8 us parallel, "
          "~4.6 ms sequential (full-scale N).\n")

    # Shape: order-of-magnitude gap, linear-ish growth.
    assert min(ratios) > 4.0, "parallel must be several times faster"
    assert max(ratios) > 7.5, "gap should approach an order of magnitude"
    big, small = series[COUNTS[-1]], series[COUNTS[0]]
    scale = COUNTS[-1] / COUNTS[0]
    assert big[1] > 0.4 * scale * small[1], "parallel time ~linear in N"
    assert big[0] > 0.4 * scale * small[0], "sequential time ~linear in N"
    return {
        "ratio_at_max_n": ratios[-1],
        "parallel_us_at_max_n": series[COUNTS[-1]][1],
    }


def bench_fig3(run_once):
    run_once(run_fig3)
