#!/usr/bin/env python3
"""Evaluating a partition-based defense against the attack.

The paper's mitigation survey (Section 8) splits defenses into
partition-based (strong but costly) and randomization-based (cheap but
leaky).  This example enables per-tenant **way partitioning** of the SF
and LLC (Intel CAT / DAWG style) and re-runs the attack stages:

* Step 1 still succeeds — the attacker happily builds eviction sets
  inside its own ways (partitioning does not hide set mappings);
* Steps 2-3 go blind — the victim's insertions can no longer evict the
  attacker's lines, so Parallel Probing detects nothing and the PSD
  scanner finds no target.

Run:  python examples/defense_evaluation.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set
from repro.defenses import apply_way_partitioning
from repro.defenses.partition import OTHER_DOMAIN
from repro.memsys.machine import Machine
from repro.victim import EcdsaVictim, VictimConfig


def run_attack_stage(defended: bool, seed: int = 33):
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=seed)
    if defended:
        apply_way_partitioning(
            machine,
            core_domains={0: "attacker", 1: "attacker", 2: "victim", 3: "victim"},
            sf_partitions={"attacker": 6, "victim": 3, OTHER_DOMAIN: 3},
            llc_partitions={"attacker": 5, "victim": 3, OTHER_DOMAIN: 3},
        )
    victim = EcdsaVictim(machine, core=2, cfg=VictimConfig(), seed=5)
    ctx = AttackerContext(machine, main_core=0, helper_core=1, seed=1)
    ctx.calibrate()

    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    valid, covered = bulk.coverage(ctx)
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    target_evsets = [
        e for e in bulk.evsets if ctx.true_set_of(e.target_va) == target_set
    ]

    detections = 0
    if target_evsets:
        victim.run_continuously(machine.now + 1000)
        signing = victim.cfg.iter_cycles * victim.curve.nonce_bits
        trace = monitor_set(
            ParallelProbing(ctx, target_evsets[0]),
            duration_cycles=int(signing / victim.cfg.duty_cycle),
        )
        detections = trace.access_count()
    return {
        "evsets": len(bulk.evsets),
        "valid": valid,
        "has_target_evset": bool(target_evsets),
        "detections": detections,
    }


def main() -> None:
    table = Table(
        "Attack vs. way-partitioned SF/LLC",
        ["Configuration", "Evsets built", "Valid", "Target evset",
         "Victim detections in ~1 session"],
    )
    for defended in (False, True):
        r = run_attack_stage(defended)
        table.add_row(
            "partitioned (CAT-like)" if defended else "baseline (shared ways)",
            r["evsets"], r["valid"],
            "yes" if r["has_target_evset"] else "no",
            r["detections"],
        )
    table.print()
    print("Partitioning leaves eviction-set construction intact (the "
          "attacker contends with itself inside its partition) but removes "
          "cross-tenant contention — the Prime+Probe signal is gone.  The "
          "cost on real hardware is capacity isolation, which is why the "
          "paper notes such designs bring 'high execution overhead'.")


if __name__ == "__main__":
    main()
