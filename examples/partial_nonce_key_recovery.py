#!/usr/bin/env python3
"""Key recovery from *partial* nonce extractions — the lattice endgame.

The end-to-end attack recovers most (not all) bits of each nonce.  The
paper's references (Howgrave-Graham & Smart; Nguyen & Shparlinski;
LadderLeak) turn exactly this into full key recovery: each signing whose
*leading* nonce bits were decoded contiguously contributes one Hidden
Number Problem sample, and LLL on the resulting lattice reveals the key.

This example runs the pipeline end to end:

1. the victim signs repeatedly (real ECDSA signatures, public messages);
2. the attacker monitors the target SF set and decodes each trace;
3. captures with a clean leading run become HNP samples
   (`repro.core.keyrec`), and the private key falls out of LLL —
   verified by forging a signature.

The victim curve is K-163 so the lattice stays small enough for the
pure-Python LLL; the machine is quiet with the reuse predictor off, the
regime where leading runs are long (see examples/end_to_end_attack.py
for the noisy-production extraction rates).

Run:  python examples/partial_nonce_key_recovery.py
"""

from __future__ import annotations

import dataclasses
import random

from repro.config import no_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.extraction import (
    ExtractionConfig,
    HeuristicBoundaryClassifier,
    extract_bits,
)
from repro.core.keyrec import SigningCapture, leading_run, recover_key_from_captures
from repro.core.monitor import ParallelProbing, monitor_set
from repro.crypto.ecdsa import sign, verify, EcdsaKeyPair
from repro.memsys.machine import Machine
from repro.victim import EcdsaVictim, VictimConfig

N_CAPTURES = 12
MIN_KNOWN = 14


def main() -> None:
    cfg = dataclasses.replace(skylake_sp_small(), reuse_predictor_p=0.0)
    machine = Machine(cfg, noise=no_noise(), seed=321)
    victim = EcdsaVictim(
        machine, core=2, cfg=VictimConfig(curve_name="K-163"), seed=77
    )
    ctx = AttackerContext(machine, seed=9)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    evset = next(
        e for e in bulk.evsets if ctx.true_set_of(e.target_va) == target_set
    )
    ecfg = ExtractionConfig(iter_cycles=victim.cfg.iter_cycles)
    decoder = HeuristicBoundaryClassifier(ecfg)

    captures = []
    print(f"collecting {N_CAPTURES} signings "
          f"({victim.curve.name}, {victim.curve.nonce_bits}-bit nonces):")
    while len(captures) < N_CAPTURES:
        truth = victim.schedule_signing(machine.now + 30_000, real=True)
        trace = monitor_set(
            ParallelProbing(ctx, evset, llc_scrub_period=0),
            duration_cycles=truth.end - machine.now + 60_000,
        )
        bits = extract_bits(trace, decoder.predict_boundaries(trace), ecfg)
        capture = SigningCapture(
            message=truth.message,
            signature=truth.signature,
            extracted=bits,
            n_iterations=truth.n_bits,
        )
        run = leading_run(capture.extracted, ecfg)
        print(f"  signing {len(captures)}: {len(bits)}/{truth.n_bits} bits "
              f"decoded, leading run {len(run)}")
        captures.append(capture)

    print("\nbuilding HNP samples from leading runs and reducing the "
          "lattice (pure-Python LLL)...")
    d = recover_key_from_captures(
        victim.curve, captures, victim.keypair.public_point, ecfg,
        min_known=MIN_KNOWN, max_known=MIN_KNOWN + 4, max_samples=N_CAPTURES,
    )
    if d is None:
        print("lattice did not reveal the key (collect more signings)")
        return
    print(f"private key recovered and verified: {d == victim.keypair.d}")
    stolen = EcdsaKeyPair(
        victim.curve, d, victim.keypair.qx, victim.keypair.qy
    )
    forged, _ = sign(stolen, b"transfer everything", random.Random(3))
    ok = verify(victim.curve, victim.keypair.public_point,
                b"transfer everything", forged)
    print(f"forged signature verifies under the victim's public key: {ok}")


if __name__ == "__main__":
    main()
