#!/usr/bin/env python3
"""FaaS constraints: timeouts, instance lifetimes, and attack cost.

Section 4.2's "Implications" argues that slow eviction-set construction is
fatal on FaaS platforms: requests time out (15 min typical, 1 h on Cloud
Run), instances are short-lived, and the attacker pays for CPU time.  This
example deploys attacker containers on a simulated platform and runs
WholeSys construction under different request timeouts, reporting coverage
achieved and dollars billed — with and without the paper's optimizations.

Run:  python examples/faas_attack_economics.py
"""

from __future__ import annotations

from repro.analysis import Table, format_seconds
from repro.cloud.faas import CLOUD_RUN_MAX_TIMEOUT_S, FaaSPlatform
from repro.config import cloud_run_noise, exposure_matched, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_whole_sys

#: Rough FaaS pricing: dollars per vCPU-second (Cloud Run-like).
DOLLARS_PER_CPU_SECOND = 0.000024

#: Offsets in the scaled WholeSys sweep.
OFFSETS = [o * 0x40 for o in range(8)]


def attempt_whole_sys(timeout_s: float, algorithm: str, budget_ms: float,
                      seed: int):
    cfg = skylake_sp_small()
    platform = FaaSPlatform(
        cfg, exposure_matched(cloud_run_noise(), cfg), n_hosts=1, seed=seed
    )
    (instance,) = platform.launch(
        "attacker", instances=1, cores=2, max_request_seconds=timeout_s
    )
    machine = instance.host.machine
    ctx = AttackerContext(
        machine, main_core=instance.cores[0], helper_core=instance.cores[1],
        seed=seed,
    )
    ctx.calibrate()
    instance.begin_request()
    deadline = machine.now + int(timeout_s * machine.clock_hz)
    result = bulk_construct_whole_sys(
        ctx, algorithm, EvsetConfig(budget_ms=budget_ms),
        offsets=OFFSETS, deadline=deadline,
    )
    billed = instance.end_request()
    expected = machine.cfg.u_llc * len(OFFSETS)
    _, covered = result.coverage(ctx)
    return {
        "covered": covered,
        "expected": expected,
        "timed_out": result.timed_out,
        "elapsed_s": result.elapsed_seconds(machine.cfg.clock_ghz),
        "dollars": billed * DOLLARS_PER_CPU_SECOND,
    }


def main() -> None:
    print("WholeSys eviction-set construction inside FaaS request timeouts")
    print(f"(scaled machine: {len(OFFSETS)} page offsets, "
          "timeouts scaled accordingly)\n")
    table = Table(
        "Attack cost under FaaS constraints",
        ["Setup", "Timeout", "Coverage", "Timed out", "Sim time", "Billed"],
    )
    scenarios = [
        # The paper's point: unoptimized construction cannot finish.
        ("GTOp, tight timeout", "gtop", 0.05, 3.0),
        ("BinS+filtering, tight timeout", "bins", 100.0, 3.0),
        ("BinS+filtering, Cloud Run max", "bins", 100.0, 60.0),
    ]
    for label, algo, budget, timeout in scenarios:
        r = attempt_whole_sys(timeout, algo, budget, seed=17)
        table.add_row(
            label,
            format_seconds(timeout),
            f"{r['covered']}/{r['expected']} sets",
            "yes" if r["timed_out"] else "no",
            format_seconds(r["elapsed_s"]),
            f"${r['dollars'] * 1e3:.3f}e-3",
        )
    table.print()
    print("Cloud Run's real ceiling is "
          f"{format_seconds(CLOUD_RUN_MAX_TIMEOUT_S)} per request; the paper "
          "estimates 14.6 h for unoptimized WholeSys construction — hopeless "
          "— vs 2.4 min with filtering + binary search.")


if __name__ == "__main__":
    main()
