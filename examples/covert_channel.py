#!/usr/bin/env python3
"""Cross-tenant covert channel through one Snoop-Filter set.

Two containers on the same host agree (out of band) on a cache set.  The
sender encodes bits by either storing to a line of that set (1) or staying
quiet (0) in fixed time slots; the receiver runs the paper's Parallel
Probing monitor and decodes slot occupancy.  This is the Section 6.1
covert-channel experiment, extended into an actual byte channel with a
measured error rate — under real Cloud Run noise levels.

Run:  python examples/covert_channel.py
"""

from __future__ import annotations

from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.monitor import ParallelProbing, monitor_set
from repro.memsys.machine import Machine

MESSAGE = b"LLC attacks are feasible in the cloud!"
SLOT_CYCLES = 8_000  # one bit per 4 us at 2 GHz


def find_sender_line(machine, ctx, evset) -> int:
    """The sender independently finds a line mapping to the agreed set."""
    target_set = ctx.true_set_of(evset.target_va)
    offset = evset.target_va % 4096
    space = machine.new_address_space()
    while True:
        page = space.alloc_page()
        line = space.translate_line(page + offset)
        if machine.hierarchy.shared_set_index(line) == target_set:
            return line


def main() -> None:
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=7)
    receiver = AttackerContext(machine, main_core=0, helper_core=1, seed=1)
    receiver.calibrate()

    # Step 1: the receiver builds an eviction set for the agreed set.
    bulk = bulk_construct_page_offset(
        receiver, "bins", 0x400, EvsetConfig(budget_ms=100)
    )
    evset = bulk.evsets[0]
    print(f"receiver built {len(bulk.evsets)} eviction sets; monitoring one "
          f"SF set with Parallel Probing")

    # The sender (another tenant, core 3) schedules its transmission.
    line = find_sender_line(machine, receiver, evset)
    bits = [int(b) for byte in MESSAGE for b in f"{byte:08b}"]
    hier = machine.hierarchy
    sender_core = machine.cfg.cores - 1
    t0 = machine.now + 50_000
    for i, bit in enumerate(bits):
        if bit:
            when = t0 + i * SLOT_CYCLES + SLOT_CYCLES // 3
            machine.schedule(
                when, lambda t, l=line: hier.access(sender_core, l, t, write=True)
            )

    # Step 2: the receiver monitors and decodes slot occupancy.
    trace = monitor_set(
        ParallelProbing(receiver, evset),
        duration_cycles=(len(bits) + 12) * SLOT_CYCLES,
    )
    decoded_bits = []
    for i in range(len(bits)):
        lo = t0 + i * SLOT_CYCLES
        hi = lo + SLOT_CYCLES
        decoded_bits.append(1 if any(lo <= t < hi for t in trace.timestamps) else 0)

    errors = sum(1 for a, b in zip(bits, decoded_bits) if a != b)
    decoded = bytes(
        int("".join(map(str, decoded_bits[i : i + 8])), 2)
        for i in range(0, len(decoded_bits) - 7, 8)
    )
    seconds = len(bits) * SLOT_CYCLES / machine.clock_hz
    print(f"\nsent    : {MESSAGE!r}")
    print(f"received: {decoded!r}")
    print(f"bits: {len(bits)}, bit errors: {errors} "
          f"({errors / len(bits):.2%}), raw rate: "
          f"{len(bits) / seconds / 1e3:.0f} kbit/s under Cloud Run noise")
    print(f"monitor observed {trace.access_count()} events "
          f"({trace.access_count() - sum(bits)} from background tenants)")


if __name__ == "__main__":
    main()
