#!/usr/bin/env python3
"""Quickstart: build SF eviction sets on a noisy cloud host.

Walks the library's core loop end to end:

1. create a simulated multi-tenant Skylake-SP-like host with Cloud Run
   noise levels,
2. calibrate the attacker's timing thresholds,
3. build one Snoop-Filter eviction set with the paper's binary-search
   pruner (with and without L2-driven candidate filtering),
4. validate it against the simulator's ground truth,
5. compare against group testing and Prime+Scope.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.config import cloud_run_noise, exposure_matched, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    build_l2_eviction_set,
    construct_sf_evset,
    filter_candidates,
)
from repro.memsys.machine import Machine


def main() -> None:
    cfg = skylake_sp_small()
    noise = exposure_matched(cloud_run_noise(), cfg)
    machine = Machine(cfg, noise=noise, seed=2024)
    print(machine.cfg.describe())
    print(f"noise: {noise.name} at {noise.llc_accesses_per_ms_per_set:.1f} "
          "accesses/ms/set\n")

    attacker = AttackerContext(machine, main_core=0, helper_core=1, seed=1)
    attacker.calibrate()
    print(f"calibrated thresholds: private-hit < {attacker.threshold_private} "
          f"cycles, LLC-hit < {attacker.threshold_llc} cycles\n")

    # A candidate set: one page per candidate at the target page offset.
    candidates = build_candidate_set(attacker, page_offset=0x240)
    target = candidates.vas.pop()
    print(f"candidate set: {len(candidates.vas)} addresses "
          f"(3 x U_LLC x W_SF = 3 x {cfg.u_llc} x {cfg.sf.ways})\n")

    table = Table(
        "SF eviction-set construction for one target",
        ["Method", "Success", "Valid (ground truth)", "Time (sim ms)",
         "TestEvictions"],
    )

    def attempt(label, algo, pool, cfg_ev):
        outcome = construct_sf_evset(attacker, algo, target, pool, cfg_ev)
        valid = "-"
        if outcome.success:
            sets = {attacker.true_set_of(v) for v in outcome.evset.vas}
            valid = "yes" if len(sets) == 1 else "NO"
        table.add_row(
            label, "yes" if outcome.success else "no", valid,
            f"{outcome.elapsed_ms(cfg.clock_ghz):.2f}", outcome.stats.tests,
        )

    # Unfiltered runs (Table 3 style).
    for algo in ("bins", "gtop", "ps"):
        attempt(f"{algo} (unfiltered)", algo, candidates.vas,
                EvsetConfig(budget_ms=1000))

    # With L2-driven candidate filtering (the Section 5.1 optimization).
    l2_evset = build_l2_eviction_set(attacker, target)
    filtered = filter_candidates(attacker, l2_evset, candidates.vas)
    print(f"L2 filtering kept {len(filtered)}/{len(candidates.vas)} candidates "
          f"(~1/U_L2 = 1/{cfg.u_l2})\n")
    for algo in ("bins", "gtop"):
        attempt(f"{algo} (filtered)", algo, filtered, EvsetConfig(budget_ms=100))

    table.print()
    print("An SF eviction set is also an LLC eviction set (the SF has one "
          "more way); monitoring it with Parallel Probing is the next step — "
          "see examples/covert_channel.py and examples/end_to_end_attack.py.")


if __name__ == "__main__":
    main()
