#!/usr/bin/env python3
"""Study: how multi-tenant noise shapes eviction-set construction.

Composes host noise from tenant workload profiles (web services, batch
analytics, cache-heavy databases), measures the per-set access rate the
way the paper does (Prime+Probe on an idle set, Figure 2), and sweeps the
tenant count to show where each construction algorithm starts failing —
the practical content of Sections 4 and 5.

Run:  python examples/tenant_noise_study.py
"""

from __future__ import annotations

from repro._util import percentile
from repro.analysis import Table
from repro.cloud import STANDARD_TENANT_MIX, TenantProfile, aggregate_noise
from repro.config import skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import (
    EvsetConfig,
    build_candidate_set,
    build_l2_eviction_set,
    construct_sf_evset,
    filter_candidates,
)
from repro.core.monitor import ParallelProbing, monitor_set
from repro.core.evset import bulk_construct_page_offset
from repro.memsys.machine import Machine


def measure_noise_rate(noise_cfg, seed=5) -> float:
    """Figure 2's methodology: Prime+Probe an idle set, count events."""
    machine = Machine(skylake_sp_small(), noise=noise_cfg, seed=seed)
    ctx = AttackerContext(machine, seed=1)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(ctx, "bins", 0x80, EvsetConfig(budget_ms=100))
    window_ms = 4.0
    trace = monitor_set(
        ParallelProbing(ctx, bulk.evsets[0], llc_scrub_period=0),
        int(window_ms * machine.cfg.clock_ghz * 1e6),
    )
    return trace.access_count() / window_ms


def construction_success(noise_cfg, algo: str, trials: int = 4) -> float:
    ok = 0
    for i in range(trials):
        machine = Machine(skylake_sp_small(), noise=noise_cfg, seed=100 + i)
        ctx = AttackerContext(machine, seed=2)
        ctx.calibrate()
        cand = build_candidate_set(ctx, 0x240)
        target = cand.vas.pop()
        l2e = build_l2_eviction_set(ctx, target)
        filtered = filter_candidates(ctx, l2e, cand.vas)
        outcome = construct_sf_evset(
            ctx, algo, target, filtered, EvsetConfig(budget_ms=100)
        )
        if outcome.success:
            sets = {ctx.true_set_of(v) for v in outcome.evset.vas}
            ok += len(sets) == 1
    return ok / trials


def main() -> None:
    base = aggregate_noise(STANDARD_TENANT_MIX, name="standard-mix")
    print(f"standard tenant mix -> {base.llc_accesses_per_ms_per_set:.1f} "
          "accesses/ms/set (the paper measured 11.5 on Cloud Run)\n")

    table = Table(
        "Tenant-count sweep (filtered BinS construction)",
        ["Tenant scale", "Configured rate (/ms)", "Measured rate (/ms)",
         "BinS success", "GTOp success"],
    )
    for scale in (0.2, 1.0, 5.0, 20.0):
        mix = [
            (TenantProfile(p.name, p.accesses_per_ms_per_set * scale,
                           p.sf_fraction), n)
            for p, n in STANDARD_TENANT_MIX
        ]
        noise = aggregate_noise(mix, name=f"mix-x{scale:g}")
        measured = measure_noise_rate(noise)
        table.add_row(
            f"x{scale:g}",
            f"{noise.llc_accesses_per_ms_per_set:.1f}",
            f"{measured:.1f}",
            f"{construction_success(noise, 'bins'):.0%}",
            f"{construction_success(noise, 'gtop'):.0%}",
        )
    table.print()

    # Inter-access CDF at the standard rate, like Figure 2.
    machine = Machine(skylake_sp_small(), noise=base, seed=9)
    ctx = AttackerContext(machine, seed=3)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(ctx, "bins", 0x80, EvsetConfig(budget_ms=100))
    trace = monitor_set(
        ParallelProbing(ctx, bulk.evsets[0], llc_scrub_period=0),
        int(6 * machine.cfg.clock_ghz * 1e6),
    )
    gaps_us = [g / (machine.cfg.clock_ghz * 1e3) for g in trace.inter_access_gaps()]
    if gaps_us:
        print("inter-access gap percentiles (us): "
              + ", ".join(f"p{q}={percentile(gaps_us, q):.0f}"
                          for q in (25, 50, 75, 95)))


if __name__ == "__main__":
    main()
