#!/usr/bin/env python3
"""The full Section 7 attack: steal ECDSA nonce bits from a co-tenant.

Steps (Table 1 of the paper):

  0. co-location  — attacker and victim containers share a simulated host
                    (prior work; assumed done);
  1. eviction sets — L2-driven filtering + binary-search pruning for every
                    SF set at the victim library's known page offset;
  2. identification — PSD scanning with a polynomial-kernel SVM finds the
                    set the ladder's secret-dependent fetches touch;
  3. extraction   — monitor the set across signings and decode nonce bits.

The endgame is then demonstrated: with a cleanly recovered nonce, the
victim's ECDSA private key falls out of a single signature, and we forge
a message with it.

Run:  python examples/end_to_end_attack.py
"""

from __future__ import annotations

import dataclasses

from repro.analysis import format_seconds
from repro.config import cloud_run_noise, skylake_sp_small
from repro.core.context import AttackerContext
from repro.core.evset import EvsetConfig, bulk_construct_page_offset
from repro.core.extraction import (
    HeuristicBoundaryClassifier,
    extract_bits,
)
from repro.core.monitor import ParallelProbing, monitor_set
from repro.core.pipeline import AttackConfig, run_end_to_end
from repro.core.scanner import (
    ScannerConfig,
    TargetSetClassifier,
    collect_labeled_traces,
)
from repro.crypto.ecdsa import recover_private_key, sign, verify
from repro.memsys.machine import Machine
from repro.victim import EcdsaVictim, VictimConfig


def train_classifier(seed: int) -> TargetSetClassifier:
    """Offline phase: train the PSD/SVM classifier on a controlled host."""
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=seed)
    victim = EcdsaVictim(machine, core=2, seed=seed)
    ctx = AttackerContext(machine, seed=seed + 1)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    victim.run_continuously(machine.now + 1000)
    scfg = ScannerConfig()
    traces, labels = collect_labeled_traces(ctx, bulk.evsets, target_set, scfg, 2)
    clf = TargetSetClassifier(machine.clock_hz, scfg).fit(traces, labels)
    print(f"offline: trained the SVM on {len(traces)} labelled PSD traces")
    return clf


def attack_production_host(classifier: TargetSetClassifier) -> None:
    """The in-production attack under Cloud Run noise."""
    machine = Machine(skylake_sp_small(), noise=cloud_run_noise(), seed=99)
    victim = EcdsaVictim(machine, core=2, cfg=VictimConfig(), seed=42)
    ctx = AttackerContext(machine, main_core=0, helper_core=1, seed=5)
    ctx.calibrate()
    victim.run_continuously(machine.now + 1000)

    report = run_end_to_end(
        ctx, victim, classifier, AttackConfig(n_traces=4, scan_timeout_s=1.0)
    )
    ghz = machine.cfg.clock_ghz
    print("\n=== production attack (Cloud Run noise) ===")
    print(f"step 1 (eviction sets): {report.n_evsets} sets in "
          f"{format_seconds(report.evset_build_cycles / (ghz * 1e9))}")
    print(f"step 2 (PSD scan):      target "
          f"{'FOUND' if report.target_identified else 'not found'} after "
          f"{report.sets_scanned} set-scans in "
          f"{format_seconds(report.scan_cycles / (ghz * 1e9))}")
    print(f"step 3 (extraction):    {len(report.scores)} signings in "
          f"{format_seconds(report.collect_cycles / (ghz * 1e9))}")
    for i, score in enumerate(report.scores):
        print(f"   signing {i}: {score.n_recovered}/{score.n_true_bits} bits "
              f"({score.recovered_fraction:.0%}), "
              f"{score.n_errors} wrong (BER {score.bit_error_rate:.1%})")
    print(f"median recovered: {report.median_recovered_fraction:.0%} "
          f"(paper: 81%); total attack: "
          f"{format_seconds(report.total_seconds(ghz))} simulated")


def demonstrate_key_recovery() -> None:
    """The endgame: one clean nonce -> private key -> forged signature.

    Uses a quiet host whose reuse predictor never parks back-invalidated
    lines in the LLC (reuse_predictor_p=0), so a single trace can be
    decoded completely.
    """
    from repro.config import no_noise

    cfg = dataclasses.replace(skylake_sp_small(), reuse_predictor_p=0.0)
    machine = Machine(cfg, noise=no_noise(), seed=123)
    victim = EcdsaVictim(machine, core=2, seed=9)
    ctx = AttackerContext(machine, seed=3)
    ctx.calibrate()
    bulk = bulk_construct_page_offset(
        ctx, "bins", victim.layout.target_page_offset, EvsetConfig(budget_ms=100)
    )
    target_set = machine.hierarchy.shared_set_index(victim.layout.monitored_line)
    evset = next(e for e in bulk.evsets if ctx.true_set_of(e.target_va) == target_set)

    print("\n=== endgame: key recovery from one clean trace ===")
    ecfg = AttackConfig().extraction
    decoder = HeuristicBoundaryClassifier(ecfg)
    truth = bits = None
    for attempt in range(6):
        truth = victim.schedule_signing(machine.now + 30_000, real=True)
        # No LLC scrub needed when back-invalidated lines never enter the
        # LLC, and skipping it removes the scrub's tiny blind windows.
        trace = monitor_set(
            ParallelProbing(ctx, evset, llc_scrub_period=0),
            duration_cycles=truth.end - machine.now + 60_000,
        )
        bits = extract_bits(trace, decoder.predict_boundaries(trace), ecfg)
        print(f"signing {attempt}: decoded {len(bits)}/{truth.n_bits} "
              "ladder iterations")
        if len(bits) == truth.n_bits:
            break
    bits.sort(key=lambda b: b.start)
    recovered_bits = [b.bit for b in bits]
    if len(recovered_bits) == truth.n_bits and recovered_bits == truth.bits:
        nonce = 1
        for bit in recovered_bits:
            nonce = (nonce << 1) | bit
        assert nonce == truth.nonce
        d = recover_private_key(victim.curve, truth.message, truth.signature, nonce)
        print(f"nonce reconstructed exactly; recovered private key matches: "
              f"{d == victim.keypair.d}")
        from repro.crypto.ecdsa import EcdsaKeyPair

        stolen = EcdsaKeyPair(victim.curve, d, victim.keypair.qx, victim.keypair.qy)
        import random

        forged, _ = sign(stolen, b"pay attacker 1000 coins", random.Random(1))
        ok = verify(victim.curve, victim.keypair.public_point,
                    b"pay attacker 1000 coins", forged)
        print(f"forged signature verifies under the victim's public key: {ok}")
    else:
        from repro.core.extraction import score_extraction

        score = score_extraction(truth, bits, ecfg)
        print(f"trace not perfectly clean this run: "
              f"{score.n_recovered}/{score.n_true_bits} aligned bits, "
              f"{score.n_errors} wrong; with partial bits the lattice "
              "attacks cited by the paper apply instead")


def main() -> None:
    classifier = train_classifier(seed=11)
    attack_production_host(classifier)
    demonstrate_key_recovery()


if __name__ == "__main__":
    main()
