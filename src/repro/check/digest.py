"""Canonical machine-state digests and the recursive diff used as oracle.

The parity suites (``tests/test_dataplane_parity.py``,
``tests/test_kernel_parity.py``, ``tests/test_lane_parity.py``) and the
differential fuzzer all collapse a machine's observable state to the same
dict — simulated clock, hierarchy stats, noise event count, and a hash of
every RNG stream's full ``getstate()`` — so a single digest comparison
covers everything a trial can depend on.

The dict shape here is load-bearing: the golden fingerprints pinned in the
parity suites are SHA-256 digests of exactly this structure.  Do not add,
rename, or reorder fields without recapturing the goldens.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List


def obj_digest(obj: Any) -> str:
    """16-hex-char SHA-256 of the canonical JSON form of ``obj``."""
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()
    ).hexdigest()[:16]


def rng_state_digests(machine) -> Dict[str, str]:
    """Digest of the full ``getstate()`` of every Machine RNG stream."""
    streams = {
        "hierarchy": machine.hierarchy._rng,
        "noise": machine.noise._rng,
        "preempt": machine._preempt_rng,
        "jitter": machine._jitter_rng,
    }
    return {name: obj_digest(rng.getstate()) for name, rng in streams.items()}


def machine_digest(machine) -> Dict[str, Any]:
    """The canonical observable-state dict (see module docstring).

    In counter mode one extra key digests the event counters (reuse
    predictor, L2-victim, keyed random victims) — a tier that consumed a
    different number of keyed draws diverges here even if the cache
    state happens to agree.  The key is *absent* in serial mode so the
    pinned serial goldens keep their exact historical shape.
    """
    out = {
        "now": machine.now,
        "stats": machine.hierarchy.stats.as_dict(),
        "noise_events": machine.noise.events,
        "rng": rng_state_digests(machine),
    }
    if getattr(machine.cfg, "rng_mode", "serial") != "serial":
        hier = machine.hierarchy
        victims = [_victim_counters(c)
                   for c in (*hier.l1, *hier.l2, hier.llc, hier.sf)]
        out["crng"] = obj_digest({
            "sf_reuse": hier._sf_reuse_ctr,
            "l2v": hier._l2v_ctr,
            "victims": victims,
        })
    return out


def plane_digest(machine) -> str:
    """Deep digest of raw cache-plane content, strictly finer than
    :func:`machine_digest`.

    Folds in, for every structure (way partitions expanded): the tag and
    owner planes, the flat policy-state plane, per-set occupancy, per-set
    noise clocks, and — crucially — the ``_where`` tag index, so an index
    left stale by a checkpoint restore diverges here even when the planes
    themselves agree.  The reference oracle contributes its per-set tags,
    owners, and noise clocks.

    Unlike :func:`machine_digest`, this shape is *not* golden-pinned; it
    serves the snapshot round-trip suites and
    :func:`assert_digest_memo_blind`.  Like every digest it is blind to
    accelerator caches (translation memos, lane plans, monitor-round
    geometry, construct-test recordings, checkpoint stores): those are
    derived state, never observable.
    """
    from ..memsys._reference import ReferenceSetAssociativeCache
    from ..memsys.cache import SetAssociativeCache
    from .invariants import _iter_caches

    planes: List[Any] = []
    for label, cache in _iter_caches(machine.hierarchy):
        if type(cache) is SetAssociativeCache:
            planes.append([
                label,
                [-1 if t is None else t for t in cache._tags],
                list(cache._owners),
                list(cache._state),
                list(cache._occ),
                list(cache._noise_t),
                sorted(cache._where.items()),
            ])
        elif isinstance(cache, ReferenceSetAssociativeCache):
            planes.append([
                label,
                [
                    [
                        s,
                        [-1 if t is None else t for t in cset.tags],
                        list(cset.owners),
                        cset.noise_t,
                    ]
                    for s, cset in sorted(cache._sets.items())
                ],
            ])
    # Composite wrappers (randomized indexes, partitions) may carry
    # state beyond their inner planes — residency maps, rekey epochs,
    # auto-rekey counters — published via ``snapshot_extra()``; fold it
    # in so a restore that left a wrapper map stale diverges here.
    hier = machine.hierarchy
    for label, cache in (("llc", hier.llc), ("sf", hier.sf)):
        extra = getattr(cache, "snapshot_extra", None)
        if callable(extra):
            planes.append([f"{label}#extra", sorted_extra(extra())])
    return obj_digest(planes)


def sorted_extra(extra: Dict[str, Any]) -> List[Any]:
    """Canonical (order-stable) form of a wrapper's ``snapshot_extra``."""
    out: List[Any] = []
    for key in sorted(extra):
        value = extra[key]
        out.append([key, sorted(value.items()) if isinstance(value, dict)
                    else value])
    return out


def assert_digest_memo_blind(machine, ctx=None) -> None:
    """Assert no memo/snapshot cache leaks into the state digests.

    Takes a throwaway :func:`repro.memsys.snapshot.checkpoint` and drops
    every accelerator cache reachable from ``ctx`` (translation memos,
    lane plans, vectorized monitor-round geometry, construct-test
    recordings — via ``invalidate_translations``), then asserts that
    neither :func:`machine_digest` nor :func:`plane_digest` moved.  The
    golden fingerprints depend on this blindness: a digest that folded in
    warm-up state would differ between a cold and a memo-warm run of the
    same trial.  Raises :class:`AssertionError` naming the leaked paths.
    """
    from ..memsys.snapshot import checkpoint

    before = [machine_digest(machine), plane_digest(machine)]
    checkpoint(machine, label="digest-blindness-probe")
    if ctx is not None:
        ctx.invalidate_translations()
    after = [machine_digest(machine), plane_digest(machine)]
    delta = diff_keys(before, after)
    if delta:
        raise AssertionError(
            f"digest is not memo-blind: {delta[:4]} moved after a "
            "checkpoint + accelerator-cache clear"
        )


def _victim_counters(cache) -> Dict[int, int]:
    """Keyed random-victim draw counts per set (empty for deterministic
    policies), identical between the flat plane and the reference tier."""
    pol = getattr(cache, "_pol", None)
    if pol is not None:
        ctr = getattr(pol, "_ctr", None)
        return {k: v for k, v in ctr.items() if v} if ctr else {}
    sets = getattr(cache, "_sets", None)
    if sets is None:
        return {}
    counts = dict(getattr(cache, "_saved_vctr", {}))
    for set_idx, cset in sets.items():
        ctr = getattr(cset.policy, "_ctr", 0)
        if ctr:
            counts[set_idx] = ctr
    return counts


def diff_keys(expected: Any, actual: Any, prefix: str = "") -> List[str]:
    """Paths at which two (JSON-shaped) values disagree.

    Recurses through dicts and lists; leaves are compared with ``==``.
    Returns ``[]`` when the values are identical — the fuzz oracle's
    verdict — and otherwise dotted paths like ``"stats.l1_hits"`` or
    ``"records.3"`` naming every point of divergence.
    """
    where = prefix or "$"
    if type(expected) is not type(actual):
        return [where]
    if isinstance(expected, dict):
        out: List[str] = []
        for key in sorted(set(expected) | set(actual)):
            sub = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected or key not in actual:
                out.append(sub)
            else:
                out.extend(diff_keys(expected[key], actual[key], sub))
        return out
    if isinstance(expected, (list, tuple)):
        if len(expected) != len(actual):
            return [f"{where}#len"]
        out = []
        for i, (e, a) in enumerate(zip(expected, actual)):
            sub = f"{prefix}.{i}" if prefix else str(i)
            out.extend(diff_keys(e, a, sub))
        return out
    return [] if expected == actual else [where]
