"""repro.check — correctness tooling for the four execution tiers.

The optimization PRs (data plane, kernels, lanes) all promise
bit-identical trials; this package *enforces* the promise instead of
sampling it:

* :mod:`repro.check.digest` — the canonical machine-state digest shared
  with the parity suites, plus the recursive diff used as fuzz oracle.
* :mod:`repro.check.invariants` — structural invariants of the hierarchy
  (``_where`` index consistency, SF/LLC exclusivity, policy-state bounds,
  noise-clock monotonicity), installable as a per-access debug hook.
* :mod:`repro.check.fuzz` — seeded attack-shaped traces replayed on all
  four tiers and diffed (``python -m repro fuzz``).
* :mod:`repro.check.batchdiff` — the same traces replayed serial vs
  batched on the trial-batch tier (``python -m repro fuzz --batch N``).
* :mod:`repro.check.shrink` — ddmin reduction of diverging traces.
* :mod:`repro.check.selftest` — a deliberate replacement-policy mutation
  proving the harness catches seeded faults.
"""

from .batchdiff import BATCH_BASE_TIER, batch_vs_serial
from .digest import (
    assert_digest_memo_blind,
    diff_keys,
    machine_digest,
    obj_digest,
    plane_digest,
    rng_state_digests,
)
from .fuzz import (
    DEFAULT_ARTIFACT_DIR,
    TIERS,
    FuzzConfig,
    fuzz_campaign,
    fuzz_trial,
    generate_trace,
    load_artifact,
    replay_artifact,
    run_tiers,
    run_trace,
    write_artifact,
)
from .invariants import (
    InvariantChecker,
    InvariantViolation,
    install_invariant_hook,
    invariant_hook,
    uninstall_invariant_hook,
)
from .selftest import replacement_policy_mutation, run_selftest
from .shrink import shrink_trace

__all__ = [
    "BATCH_BASE_TIER",
    "DEFAULT_ARTIFACT_DIR",
    "FuzzConfig",
    "batch_vs_serial",
    "InvariantChecker",
    "InvariantViolation",
    "TIERS",
    "assert_digest_memo_blind",
    "diff_keys",
    "fuzz_campaign",
    "fuzz_trial",
    "generate_trace",
    "install_invariant_hook",
    "invariant_hook",
    "load_artifact",
    "machine_digest",
    "obj_digest",
    "plane_digest",
    "replacement_policy_mutation",
    "replay_artifact",
    "rng_state_digests",
    "run_selftest",
    "run_tiers",
    "run_trace",
    "shrink_trace",
    "uninstall_invariant_hook",
    "write_artifact",
]
