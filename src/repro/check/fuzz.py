"""Differential trace fuzzing across the four execution tiers.

The repository stacks four execution tiers that all promise bit-identical
trials: the seed *reference* simulator (``repro.memsys._reference``), the
flat *batched* data plane (§2.2), the fused *kernels* (§2.3), and the
numpy-planned *lanes* (§2.4).  The parity suites pin a handful of
hand-picked scenarios; this module *searches* for divergence instead:

1. :func:`generate_trace` derives, from one seed, an attack-shaped
   operation schedule (calibrate, candidate building, ``TestEviction``
   batteries, prime+probe monitoring, cross-core victim stores, flushes,
   address-space churn, defense setup (way partition / randomized index /
   soft copy, with epoch-rekey ops), machine checkpoint/restore
   via :mod:`repro.memsys.snapshot`) over a small machine.
2. :func:`run_trace` replays the trace on one tier — the tier guards are
   the product ones (``kernels_disabled()`` / ``lanes_disabled()`` / the
   reference-cache class swap), honoring ``REPRO_NO_NUMPY`` — recording
   every op's observable result plus the final machine digest, with the
   invariant checker (:mod:`repro.check.invariants`) validating state
   after every hierarchy call and every op.
3. :func:`run_tiers` diffs the three optimized tiers against the
   reference records with :func:`repro.check.digest.diff_keys`.

:func:`fuzz_trial` is the picklable ``(config, seed)`` unit that
:func:`fuzz_campaign` fans out through :mod:`repro.exec` (``--jobs``).
Diverging traces are shrunk (:mod:`repro.check.shrink`) and written as
replayable JSON artifacts (:func:`write_artifact` / :func:`replay_artifact`).
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import MACHINE_PRESETS, NOISE_PRESETS
from ..core.context import AttackerContext
from ..core.evset.candidates import build_candidate_set
from ..core.evset.primitives import EvictionTester
from ..core.evset.types import EvictionSet
from ..core.monitor import ParallelProbing, monitor_set
from ..defenses import DEFENSE_NAMES, apply_defense, apply_way_partitioning
from ..defenses.partition import OTHER_DOMAIN
from ..errors import ReproError
from ..exec import Campaign, arithmetic_seeds
from ..memsys import kernels_disabled, lanes_disabled
from ..memsys.machine import Machine
from ..memsys.snapshot import checkpoint, checkpoint_key, restore
from ..rng import resolve_rng_mode
from .digest import diff_keys, machine_digest, obj_digest
from .invariants import InvariantChecker, InvariantViolation, invariant_hook

#: The four execution tiers, in oracle order (index 0 is the reference).
TIERS = ("reference", "batched", "kernels", "lanes")

#: Where the CLI drops shrunk diverging-trace artifacts.
DEFAULT_ARTIFACT_DIR = Path(".repro") / "fuzz"

_PAGE_OFFSETS = (0x000, 0x140, 0x240, 0x2C0, 0x380)


@dataclasses.dataclass(frozen=True)
class FuzzConfig:
    """Picklable knobs for one fuzz trial (trace shape, not content).

    ``noise``/``partition``/``defense`` accept ``"mix"`` to let each
    trace draw its own setting from the trace seed — the default, so one
    campaign covers quiet, noisy, defended, and undefended machines.

    ``defense`` is the general axis (any :data:`repro.defenses.registry.
    DEFENSE_NAMES` entry, or ``"mix"``); ``partition`` is the legacy
    way-partition-only knob it grew out of.  An explicit ``defense``
    wins; otherwise ``partition="always"`` forces way partitioning and
    ``partition="never"`` forces an undefended machine, exactly as
    before the axis existed.
    """

    machine: str = "tiny"
    noise: str = "mix"  # "none" | "cloud-quiet" | "cloud" | "local" | "mix"
    partition: str = "mix"  # "never" | "always" | "mix"
    n_ops: int = 10
    rng_mode: str = "serial"  # "serial" | "counter" (DESIGN.md §2.6/§2.7)
    check_invariants: bool = True
    defense: str = "mix"  # DEFENSE_NAMES entry | "mix"


# --- Trace generation -------------------------------------------------------


def generate_trace(cfg: FuzzConfig, seed: int) -> Dict[str, Any]:
    """A seeded, attack-shaped operation schedule (a JSON-able dict).

    Deterministic in ``(cfg, seed)`` and independent of the machine RNGs,
    so a trace can be regenerated from its seed or carried verbatim in a
    shrunk artifact.
    """
    rng = random.Random(f"repro.check.fuzz:{cfg.machine}:{seed}")
    noise = cfg.noise
    if noise == "mix":
        noise = rng.choice(("none", "none", "cloud-quiet", "cloud"))
    # Defense axis: an explicit cfg.defense wins; otherwise the legacy
    # partition knob keeps its exact pre-axis meaning, and full mix mode
    # draws any defense (half the traces stay undefended).
    defense_kind = cfg.defense
    if defense_kind == "mix":
        if cfg.partition == "always":
            defense_kind = "way-partition"
        elif cfg.partition == "never":
            defense_kind = "none"
        else:
            defense_kind = rng.choice(
                ("none",) * (len(DEFENSE_NAMES) - 1) + DEFENSE_NAMES[1:]
            )
    partition = None
    defense = None
    if defense_kind == "way-partition":
        # Emitted under the legacy "partition" trace key (not "defense")
        # so pre-axis artifacts and replays keep working unchanged.
        machine_cfg = MACHINE_PRESETS[cfg.machine]()
        att_sf = rng.randint(2, max(2, machine_cfg.sf.ways - 2))
        att_llc = rng.randint(1, max(1, machine_cfg.llc.ways - 1))
        partition = {
            "core_domains": [[c, "att"] for c in range(machine_cfg.cores)],
            "sf": {"att": att_sf, OTHER_DOMAIN: machine_cfg.sf.ways - att_sf},
            "llc": {
                "att": att_llc,
                OTHER_DOMAIN: machine_cfg.llc.ways - att_llc,
            },
        }
    elif defense_kind == "soft-copy":
        machine_cfg = MACHINE_PRESETS[cfg.machine]()
        att_sf = rng.randint(1, machine_cfg.sf.ways - 1)
        oth_sf = rng.randint(1, machine_cfg.sf.ways - att_sf)
        att_llc = rng.randint(1, machine_cfg.llc.ways - 1)
        oth_llc = rng.randint(1, machine_cfg.llc.ways - att_llc)
        defense = {
            "kind": "soft-copy",
            "core_domains": [[c, "att"] for c in range(machine_cfg.cores)],
            "sf": {"att": att_sf, OTHER_DOMAIN: oth_sf},
            "llc": {"att": att_llc, OTHER_DOMAIN: oth_llc},
        }
    elif defense_kind in ("ceaser", "skew"):
        defense = {
            "kind": defense_kind,
            "seed": rng.randrange(1 << 31),
            # Mostly manual-rekey machines (the explicit rekey op covers
            # epoch turns); sometimes aggressive auto-rekey mid-access.
            "epoch_accesses": rng.choice((0, 0, 64, 256)),
        }
        if defense_kind == "skew":
            defense["n_skews"] = 2
    ops: List[List[Any]] = [["calibrate"]]
    pools: List[int] = []  # symbolic pool sizes, mirrored by the replayer
    snaps = 0  # checkpoints taken so far, mirrored by the replayer's stack

    def _pool_pick() -> int:
        return rng.randrange(len(pools))

    ops.append(["pool", rng.choice(_PAGE_OFFSETS), rng.randint(8, 20)])
    pools.append(ops[-1][2])
    choices = (
        "pool candidates test test test_many probe probe chase flush "
        "flush_all churn advance victim monitor snapshot restore"
    ).split()
    if defense_kind in ("ceaser", "skew"):
        choices += ["rekey", "rekey"]
    for _ in range(max(1, cfg.n_ops)):
        kind = rng.choice(choices)
        if kind == "pool":
            n = rng.randint(6, 20)
            ops.append(["pool", rng.choice(_PAGE_OFFSETS), n])
            pools.append(n)
        elif kind == "candidates":
            size = rng.randint(10, 28)
            ops.append(["candidates", rng.choice(_PAGE_OFFSETS), size])
            pools.append(size)
        elif kind == "test":
            i = _pool_pick()
            if pools[i] < 3:
                continue
            ops.append([
                "test",
                rng.choice(("llc", "sf", "l2")),
                int(rng.random() < 0.8),  # parallel
                rng.choice((1, 1, 2)),  # repeats
                i,
                rng.randrange(pools[i]),  # target index
                rng.randint(2, pools[i] - 1),  # candidate prefix
            ])
        elif kind == "test_many":
            i = _pool_pick()
            if pools[i] < 4:
                continue
            k = rng.randint(1, 3)
            ops.append([
                "test_many",
                rng.choice(("llc", "sf", "l2")),
                i,
                k,
                rng.randint(2, pools[i] - k),
            ])
        elif kind == "probe":
            i = _pool_pick()
            ops.append([
                "probe", i, rng.randint(1, pools[i]), int(rng.random() < 0.3)
            ])
        elif kind == "chase":
            i = _pool_pick()
            ops.append([
                "chase",
                i,
                rng.randint(1, min(12, pools[i])),
                int(rng.random() < 0.5),  # shadow (shared) chase
            ])
        elif kind == "flush":
            i = _pool_pick()
            ops.append(["flush", i, rng.randint(1, pools[i])])
        elif kind == "flush_all":
            ops.append(["flush_all"])
        elif kind == "churn":
            ops.append(["churn"])
        elif kind == "advance":
            ops.append(["advance", rng.randint(1_000, 60_000)])
        elif kind == "victim":
            i = _pool_pick()
            ops.append([
                "victim",
                i,
                rng.randrange(pools[i]),
                rng.randint(2, 6),  # stores
                rng.randint(4_000, 15_000),  # interval
            ])
        elif kind == "monitor":
            i = _pool_pick()
            if pools[i] < 4:
                continue
            ops.append([
                "monitor",
                i,
                rng.randint(3, pools[i] - 1),
                rng.randint(20_000, 60_000),
            ])
        elif kind == "snapshot":
            ops.append(["snapshot"])
            snaps += 1
        elif kind == "restore":
            if not snaps:
                continue
            ops.append(["restore", rng.randrange(snaps)])
        elif kind == "rekey":
            ops.append(["rekey"])
    return {
        "machine": cfg.machine,
        "noise": noise,
        "rng": resolve_rng_mode(cfg.rng_mode),
        "seed": rng.randrange(1 << 31),
        "ctx_seed": rng.randrange(1 << 31),
        "partition": partition,
        "defense": defense,
        "ops": ops,
    }


# --- Tier guards ------------------------------------------------------------


@contextlib.contextmanager
def _reference_cache_swap():
    """Build machines on the seed dict-of-sets cache (oracle tier)."""
    import repro.memsys.hierarchy as hmod
    from repro.memsys._reference import ReferenceSetAssociativeCache

    original = hmod.SetAssociativeCache
    hmod.SetAssociativeCache = ReferenceSetAssociativeCache
    try:
        yield
    finally:
        hmod.SetAssociativeCache = original


def _tier_guard(tier: str):
    """The product guard routing execution down one tier.

    ``reference`` needs no runtime guard — the kernels disengage on the
    duck-typed oracle caches by themselves, which is part of what the
    fuzzer validates.  ``lanes`` is the default resolution (and falls
    back to the plain kernels under ``REPRO_NO_NUMPY``, still compared).
    """
    if tier not in TIERS:
        raise ReproError(f"unknown execution tier {tier!r}; choose from {TIERS}")
    if tier == "batched":
        return kernels_disabled()
    if tier == "kernels":
        return lanes_disabled()
    return contextlib.nullcontext()


def _build_machine(trace: Dict[str, Any], tier: str) -> Machine:
    cfg = MACHINE_PRESETS[trace["machine"]]()
    # Traces embed the RNG contract they were generated for (pre-contract
    # artifacts imply serial); both modes replay on every tier.
    mode = trace.get("rng", "serial")
    if cfg.rng_mode != mode:
        cfg = dataclasses.replace(cfg, rng_mode=mode)
    noise = NOISE_PRESETS[trace["noise"]]
    builder = (
        _reference_cache_swap()
        if tier == "reference"
        else contextlib.nullcontext()
    )
    with builder:
        machine = Machine(cfg, noise=noise, seed=trace["seed"])
    # Defense setup happens after the reference-swap block on purpose:
    # composite defense caches always wrap flat inner planes, on every
    # tier (matching the pre-axis way-partition behavior) — the tiers
    # still differ in the private-cache type and the code paths taken.
    defense = trace.get("defense")
    partition = trace.get("partition")
    if defense:
        apply_defense(machine, defense)
    elif partition:
        apply_way_partitioning(
            machine,
            {core: domain for core, domain in partition["core_domains"]},
            dict(partition["sf"]),
            dict(partition["llc"]),
        )
    return machine


# --- Trace replay -----------------------------------------------------------


def _levels_digest(levels: Sequence[Any]) -> str:
    return obj_digest([int(level) for level in levels])


def _run_op(
    machine: Machine,
    ctx: AttackerContext,
    pools: List[List[int]],
    cps: List[Any],
    op: List,
) -> Any:
    kind = op[0]
    hier = machine.hierarchy
    if kind == "calibrate":
        ctx.calibrate()
        return [ctx.threshold_private, ctx.threshold_llc]
    if kind == "pool":
        _, offset, n_pages = op
        pools.append([page + offset for page in ctx.alloc_pages(n_pages)])
        return len(pools[-1])
    if kind == "candidates":
        _, offset, size = op
        cand = build_candidate_set(ctx, offset, size=size)
        pools.append(list(cand.vas))
        return len(cand.vas)
    if kind == "test":
        _, mode, parallel, repeats, i, target_j, n = op
        # Pools filled by build_candidate_set can come back a different
        # size than the generator assumed; clamp indices so the trace
        # stays replayable (identically on every tier).
        pool = pools[i]
        tester = EvictionTester(
            ctx, mode=mode, parallel=bool(parallel), repeats=repeats
        )
        target = pool[target_j % len(pool)]
        vas = [va for va in pool if va != target]
        return tester.test(target, vas, min(n, len(vas)))
    if kind == "test_many":
        _, mode, i, k, n = op
        pool = pools[i]
        k = min(k, len(pool) - 1)
        tester = EvictionTester(ctx, mode=mode, parallel=True)
        return tester.test_many(pool[:k], pool[k:], min(n, len(pool) - k))
    if kind == "probe":
        _, i, n, write = op
        lines = ctx.lines(pools[i][:n])
        levels = machine.access_batch(
            ctx.main_core, lines, write=bool(write)
        )
        return _levels_digest(levels)
    if kind == "chase":
        _, i, n, shared = op
        lines = ctx.lines(pools[i][:n])
        shadow = ctx.helper_core if shared else None
        machine.access_chase(ctx.main_core, lines, shadow_core=shadow)
        return machine.now
    if kind == "flush":
        _, i, n = op
        ctx.flush_batch(pools[i], n)
        return machine.now
    if kind == "flush_all":
        machine.flush_all_caches()
        return machine.now
    if kind == "churn":
        ctx.invalidate_translations()
        return len(pools)
    if kind == "advance":
        machine.advance(op[1])
        return machine.now
    if kind == "victim":
        _, i, j, count, interval = op
        line = ctx.line(pools[i][j])
        core = machine.cfg.cores - 1
        start = machine.now + 1_000
        for idx in range(count):
            machine.schedule(
                start + idx * interval,
                lambda t, ln=line: hier.access(core, ln, t, write=True),
            )
        machine.run_until(start + count * interval + 1_000)
        return machine.now
    if kind == "snapshot":
        # Exact machine checkpoint (DESIGN.md §2.8).  The recorded key
        # folds in the full machine digest, so a tier whose state drifted
        # by checkpoint time diverges right here, not ops later.
        cp = checkpoint(machine, label=f"fuzz-{len(cps)}")
        cps.append(cp)
        return checkpoint_key(cp)
    if kind == "restore":
        # Digest-verified rewind to an earlier checkpoint.  Machine-only
        # by design: attacker-context state (thresholds, pools, page
        # tables) deliberately survives, so post-restore ops exercise
        # stale-translation and frame-aliasing paths identically on every
        # tier.  Shrinking can strip the snapshot an op targeted; an empty
        # stack replays as a deterministic no-op marker.
        if not cps:
            return "restore:none"
        cp = cps[op[1] % len(cps)]
        restore(machine, cp)
        return checkpoint_key(cp)
    if kind == "rekey":
        # Epoch turn on every randomized shared cache (duck-probed, so a
        # shrunk trace that lost its defense replays as a no-op marker).
        # Invalidation counts are part of the record: a tier whose
        # residency drifted by rekey time diverges right here.
        counts = []
        for cache in (hier.sf, hier.llc):
            rekey = getattr(cache, "rekey", None)
            counts.append(len(rekey()) if callable(rekey) else -1)
        return f"rekey:{counts[0]}/{counts[1]}"
    if kind == "monitor":
        _, i, n, duration = op
        pool = pools[i]
        n = min(n, len(pool) - 1)
        evset = EvictionSet(kind="sf", vas=pool[:n], target_va=pool[n])
        trace = monitor_set(ParallelProbing(ctx, evset), duration)
        return obj_digest([
            trace.timestamps,
            trace.start,
            trace.end,
            trace.probe_latencies,
            trace.prime_latencies,
        ])
    raise ReproError(f"unknown fuzz op {kind!r}")


def run_trace(
    trace: Dict[str, Any], tier: str, check_invariants: bool = True
) -> Dict[str, Any]:
    """Replay ``trace`` on one tier; returns records + final digest.

    Op-level exceptions are recorded as ``["err", type, message]`` rows
    (they must be identical across tiers — a one-tier-only failure shows
    up as a divergence); an :class:`InvariantViolation` aborts the replay
    since the state can no longer be trusted.
    """
    with _tier_guard(tier):
        machine = _build_machine(trace, tier)
        ctx = AttackerContext(machine, seed=trace["ctx_seed"])
        pools: List[List[int]] = []
        cps: List[Any] = []  # checkpoint stack, indexed by restore ops
        records: List[Any] = []
        violation: Optional[str] = None
        checker = InvariantChecker(machine.hierarchy)
        hook = (
            invariant_hook(machine.hierarchy, checker)
            if check_invariants
            else contextlib.nullcontext()
        )
        with hook:
            for op in trace["ops"]:
                try:
                    records.append(_run_op(machine, ctx, pools, cps, op))
                except InvariantViolation as exc:
                    violation = str(exc)
                    break
                except Exception as exc:  # noqa: BLE001 — recorded and diffed
                    # Op failures (budget errors, calibration failures on
                    # awkward partitions, ...) must be *identical* across
                    # tiers; recording them makes a one-tier-only failure
                    # show up as an ordinary divergence.
                    records.append(["err", type(exc).__name__, str(exc)])
                if op[0] == "restore":
                    # A rewind legally runs noise clocks backwards; drop
                    # the monotonicity baseline so the next check starts
                    # from the restored state.
                    checker.reset_clocks()
                if check_invariants:
                    try:
                        checker.check()
                    except InvariantViolation as exc:
                        violation = str(exc)
                        break
        if violation is None and check_invariants:
            try:
                checker.check(deep=True)
            except InvariantViolation as exc:
                violation = str(exc)
    return {
        "tier": tier,
        "records": records,
        "digest": machine_digest(machine),
        "violation": violation,
        "checks": checker.checks,
        # Keys of every checkpoint taken (artifacts persist these, so a
        # cross-tier or batch-vs-serial diff pins state at snapshot time).
        "checkpoints": [
            rec
            for taken, rec in zip(trace["ops"], records)
            if taken[0] == "snapshot" and isinstance(rec, str)
        ],
    }


def run_tiers(
    trace: Dict[str, Any], check_invariants: bool = True
) -> Dict[str, Any]:
    """Replay on all four tiers and diff everything against the reference."""
    runs = {
        tier: run_trace(trace, tier, check_invariants=check_invariants)
        for tier in TIERS
    }
    reference = runs[TIERS[0]]
    oracle = {"records": reference["records"], "digest": reference["digest"]}
    diffs: Dict[str, List[str]] = {}
    for tier in TIERS[1:]:
        delta = diff_keys(
            oracle, {"records": runs[tier]["records"], "digest": runs[tier]["digest"]}
        )
        if delta:
            diffs[tier] = delta[:8]
    violations = {
        tier: run["violation"]
        for tier, run in runs.items()
        if run["violation"] is not None
    }
    return {
        "ops": len(trace["ops"]),
        "checks": reference["checks"],
        "checkpoints": reference["checkpoints"],
        "divergent": sorted(diffs),
        "diffs": diffs,
        "violations": violations,
        "ok": not diffs and not violations,
    }


def fuzz_trial(cfg: FuzzConfig, seed: int) -> Dict[str, Any]:
    """One picklable fuzz unit: generate, replay on all tiers, diff."""
    result = run_tiers(
        generate_trace(cfg, seed), check_invariants=cfg.check_invariants
    )
    result["seed"] = seed
    return result


def fuzz_campaign(
    cfg: FuzzConfig, seeds: int, base_seed: int = 0
) -> Campaign:
    """``seeds`` fuzz trials over the fixed range ``base_seed..+seeds-1``.

    Arithmetic seeding keeps the CI smoke range pinned: the same
    invocation always fuzzes the same traces (and resumes from its
    journal when interrupted).
    """
    return Campaign(
        name=f"fuzz-{cfg.machine}",
        fn=fuzz_trial,
        configs=tuple(cfg for _ in range(seeds)),
        seeds=arithmetic_seeds(base_seed, seeds),
    )


# --- Artifacts --------------------------------------------------------------


def write_artifact(
    path: Path, trace: Dict[str, Any], result: Dict[str, Any]
) -> Path:
    """Write a replayable diverging-trace artifact (JSON)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"version": 1, "trace": trace, "result": result}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: Path) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Load an artifact; returns ``(trace, recorded_result)``."""
    payload = json.loads(Path(path).read_text())
    if payload.get("version") != 1 or "trace" not in payload:
        raise ReproError(f"{path}: not a fuzz trace artifact")
    return payload["trace"], payload.get("result", {})


def replay_artifact(
    path: Path,
    check_invariants: bool = True,
    rng_mode: Optional[str] = None,
) -> Dict[str, Any]:
    """Re-run an artifact's trace across all tiers (fresh verdict).

    The trace replays under the RNG contract it was *captured* under
    (recorded in the artifact); asking for the other mode via ``rng_mode``
    or ``REPRO_RNG`` is refused rather than silently producing a trial
    the recorded divergence never happened in.
    """
    trace, _ = load_artifact(path)
    recorded = trace.get("rng", "serial")
    requested = rng_mode if rng_mode else os.environ.get("REPRO_RNG")
    if requested and resolve_rng_mode(requested) != recorded:
        raise ReproError(
            f"{path}: artifact was captured under rng={recorded!r} but "
            f"replay requested rng={resolve_rng_mode(requested)!r}; re-run "
            "without --rng/REPRO_RNG or capture a new artifact in that mode"
        )
    return run_tiers(trace, check_invariants=check_invariants)
