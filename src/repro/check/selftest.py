"""Mutation self-test: prove the differential harness catches seeded faults.

A fuzzer that reports "zero divergences" is only evidence if it would
have reported one.  This module injects a deliberate replacement-policy
bug — :class:`~repro.memsys.policy_tables.LRUTable` evicting the *most*
recently used way instead of the least — into the flat data plane only,
then demonstrates that:

1. differential fuzzing flags a divergence against the reference tier
   (whose object-based policies are untouched) within a few seeds;
2. the shrinker reduces the diverging trace to a minimal replayable
   artifact;
3. the shrunk trace runs clean once the mutation is lifted (the fault,
   not the harness, was the problem).

The patch must be active *before* machine construction: the flat cache
binds ``self._pt_victim = pol.victim`` at ``__init__`` time, so mutating
the class afterwards would not take.  :func:`run_selftest` keeps the
mutation inside the predicate passed to the shrinker for exactly that
reason — every probe rebuilds its machines under the patch.
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import Any, Dict, Optional

from ..memsys.policy_tables import LRUTable
from .fuzz import (
    DEFAULT_ARTIFACT_DIR,
    FuzzConfig,
    generate_trace,
    run_tiers,
    write_artifact,
)
from .shrink import shrink_trace


@contextlib.contextmanager
def replacement_policy_mutation():
    """Swap LRUTable's victim choice to MRU (flat data plane only).

    The reference oracle builds its policies through
    ``repro.memsys.replacement.make_policy`` and is unaffected, so every
    machine built under this context diverges from the reference tier as
    soon as a full set takes a fill.
    """
    original = LRUTable.victim

    def mru_victim(self, state, base):
        hi = base + self.ways
        seg = state[base:hi]
        return seg.index(max(seg))

    LRUTable.victim = mru_victim
    try:
        yield
    finally:
        LRUTable.victim = original


def _mutated_failing(trace: Dict[str, Any]) -> bool:
    with replacement_policy_mutation():
        return not run_tiers(trace)["ok"]


def run_selftest(
    cfg: Optional[FuzzConfig] = None,
    max_seeds: int = 25,
    base_seed: int = 0,
    artifact_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Inject the MRU mutation, catch it, shrink it, and verify the cure.

    Returns a summary dict; ``caught`` is the headline bit.  An artifact
    of the shrunk diverging trace is written to ``artifact_dir`` so the
    failure mode the harness is certified against stays inspectable.
    """
    cfg = cfg or FuzzConfig(noise="none", partition="never")
    artifact_dir = Path(artifact_dir or DEFAULT_ARTIFACT_DIR)
    for seed in range(base_seed, base_seed + max_seeds):
        trace = generate_trace(cfg, seed)
        with replacement_policy_mutation():
            mutated = run_tiers(trace)
        if mutated["ok"]:
            continue
        shrunk = shrink_trace(trace, _mutated_failing)
        with replacement_policy_mutation():
            shrunk_result = run_tiers(shrunk)
        clean_result = run_tiers(shrunk)
        artifact = write_artifact(
            artifact_dir / f"selftest-seed{seed}.json",
            shrunk,
            {
                "kind": "mutation-selftest",
                "seed": seed,
                "mutated": shrunk_result,
                "clean": clean_result,
            },
        )
        return {
            "caught": True,
            "seed": seed,
            "seeds_tried": seed - base_seed + 1,
            "ops_before": len(trace["ops"]),
            "ops_after": len(shrunk["ops"]),
            "divergent": mutated["divergent"],
            "shrunk_still_fails": not shrunk_result["ok"],
            "clean_after_unpatch": clean_result["ok"],
            "artifact": str(artifact),
        }
    return {"caught": False, "seeds_tried": max_seeds}
