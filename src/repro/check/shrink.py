"""Greedy delta-debugging shrinker for diverging fuzz traces.

A diverging trace straight out of the fuzzer carries a dozen operations,
most of them irrelevant to the divergence.  :func:`shrink_trace` runs a
ddmin-style reduction over the operation list: remove chunks (halving
from ``len/2`` down to single ops) and keep any removal under which the
trace still fails, looping until a full single-op pass removes nothing.

The predicate is caller-supplied (for the fuzzer: "some tier still
diverges / an invariant still trips when replayed"), so the shrinker
stays generic — the mutation self-test reuses it with the fault
injection active inside the predicate.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict


def shrink_trace(
    trace: Dict[str, Any],
    is_failing: Callable[[Dict[str, Any]], bool],
    max_probes: int = 400,
) -> Dict[str, Any]:
    """Minimize ``trace["ops"]`` while ``is_failing`` stays true.

    ``is_failing`` receives a candidate trace (same machine/seed fields,
    reduced op list) and must return True when the failure reproduces.
    The input trace is not mutated; the (possibly empty-op) minimized
    trace is returned.  ``max_probes`` bounds total replays so a flaky
    predicate cannot loop forever.
    """
    ops = list(trace["ops"])
    probes = 0

    def candidate(kept) -> Dict[str, Any]:
        out = copy.deepcopy(trace)
        out["ops"] = list(kept)
        return out

    progress = True
    while progress and probes < max_probes:
        progress = False
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and probes < max_probes:
            start = 0
            while start < len(ops) and probes < max_probes:
                kept = ops[:start] + ops[start + chunk :]
                probes += 1
                if is_failing(candidate(kept)):
                    ops = kept
                    progress = True
                    # Retry the same position: the next chunk slid into it.
                else:
                    start += chunk
            if chunk == 1:
                break
            chunk //= 2
    return candidate(ops)
