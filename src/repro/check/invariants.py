"""Structural invariants of the cache hierarchy, checkable after every access.

The data plane (DESIGN.md §2.2) maintains several redundant structures —
the ``_where`` tag index, the per-set occupancy counts, the flat policy
state — whose mutual consistency every optimized tier silently relies on.
This module makes that reliance explicit: :class:`InvariantChecker`
validates, from *pure reads only*, that

* the ``_where`` index and the flat tag/owner planes describe the same
  residency (bijection: every index entry points at its tag's slot, every
  valid tag has exactly one entry, per-set counts match);
* SF/LLC non-inclusive exclusivity holds (no line is simultaneously
  tracked private in the SF and resident shared in the LLC);
* replacement-policy state stays inside its table's legal range (LRU
  stamps within the table's live counters, Tree-PLRU node bits in {0,1},
  RRIP ages in [0, 3], pending random victims in [-1, ways));
* per-set noise-reconciliation clocks never run backwards (they survive
  ``flush_all`` by design — see ``SetAssociativeCache.flush_all``).

Purity matters more than it looks: ``peek_victim`` on a random-policy
cache lazily draws from the shared cache RNG, and the reference cache's
``noise_clock`` materializes the set it asks about.  The checker therefore
reads the underlying planes (``_tags``/``_where``/``_state``/``_noise_t``,
``_sets``) directly and never calls any method with side effects, so a
hooked run is bit-identical to an unhooked one.

:func:`install_invariant_hook` wraps a hierarchy's ``access`` /
``access_many`` / ``flush_line`` entry points as *instance* attributes
(``CacheHierarchy`` has no ``__slots__``), checking after every call.
The fused kernels (§2.3/§2.4) bypass these methods by design; fuzz
replays additionally run an explicit check after every trace operation so
kernel-tier state is validated at operation granularity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import ReproError
from ..memsys._reference import ReferenceSetAssociativeCache
from ..memsys.cache import SetAssociativeCache
from ..memsys.policy_tables import (
    LRUTable,
    RandomTable,
    SRRIPTable,
    TreePLRUTable,
)


class InvariantViolation(ReproError):
    """A structural invariant of the hierarchy does not hold."""


def _touched_indices(cache: SetAssociativeCache, deep: bool) -> Iterable[int]:
    """Set indices worth scanning: every set ever inserted into (or all).

    Sound for the shallow scan because ``insert`` marks its set touched
    and every other mutation (``remove``, policy updates) requires a
    prior insert of the same set; an untouched set is structurally in its
    initial state.
    """
    if deep:
        return range(cache.n_sets)
    touched = cache._touched
    return [i for i in range(cache.n_sets) if touched[i]]


def _check_policy_state(
    cache: SetAssociativeCache, name: str, sets: Iterable[int]
) -> None:
    """Per-table legal-range checks on the flat policy-state plane."""
    pol = cache._pol
    state = cache._state
    stride = cache._pstride
    if isinstance(pol, LRUTable):
        lo, hi = pol._inv_stamp, pol._stamp
        for s in sets:
            base = s * stride
            for v in state[base : base + stride]:
                if not (lo <= v <= hi):
                    raise InvariantViolation(
                        f"{name}: LRU stamp {v} in set {s} outside live "
                        f"counter range [{lo}, {hi}]"
                    )
    elif isinstance(pol, TreePLRUTable):
        for s in sets:
            base = s * stride
            for v in state[base : base + stride]:
                if v not in (0, 1):
                    raise InvariantViolation(
                        f"{name}: Tree-PLRU node bit {v} in set {s}"
                    )
    elif isinstance(pol, SRRIPTable):  # covers QLRUTable
        for s in sets:
            base = s * stride
            for v in state[base : base + stride]:
                if not (0 <= v <= 3):
                    raise InvariantViolation(
                        f"{name}: RRPV {v} in set {s} outside [0, 3]"
                    )
    elif isinstance(pol, RandomTable):
        for s in sets:
            v = state[s]
            if not (-1 <= v < cache.ways):
                raise InvariantViolation(
                    f"{name}: pending random victim {v} in set {s} "
                    f"outside [-1, {cache.ways})"
                )


def check_flat_cache(
    cache: SetAssociativeCache, name: str = "", deep: bool = False
) -> None:
    """Validate one flat cache's planes against each other."""
    name = name or cache.name
    n_sets = cache.n_sets
    ways = cache.ways
    tags = cache._tags
    owners = cache._owners
    where = cache._where
    occ = cache._occ
    sets = list(_touched_indices(cache, deep))
    # Index -> plane direction: every _where entry points at its own tag.
    for key, slot in where.items():
        tag, s = divmod(key, n_sets)
        if tags[slot] != tag or slot // ways != s:
            raise InvariantViolation(
                f"{name}: _where[{key}] = {slot} but plane holds "
                f"tag {tags[slot]} in set {slot // ways}"
            )
    # Plane -> index direction, plus occupancy, over touched sets.
    resident = 0
    for s in sets:
        base = s * ways
        live = 0
        for slot in range(base, base + ways):
            tag = tags[slot]
            if tag is None:
                if owners[slot] != 0:
                    raise InvariantViolation(
                        f"{name}: empty slot {slot} (set {s}) has "
                        f"owner {owners[slot]}"
                    )
                continue
            live += 1
            if where.get(tag * n_sets + s) != slot:
                raise InvariantViolation(
                    f"{name}: tag {tag} in slot {slot} (set {s}) "
                    f"missing from _where"
                )
        if occ[s] != live:
            raise InvariantViolation(
                f"{name}: set {s} occupancy {occ[s]} != {live} valid tags"
            )
        resident += live
    # Untouched sets hold nothing, so the touched total is the cache total.
    if len(where) != resident and not deep:
        # Re-derive over all sets before declaring a violation: a deep
        # mismatch means a real inconsistency, a shallow one could only
        # come from an insert that failed to mark its set touched.
        check_flat_cache(cache, name, deep=True)
        raise InvariantViolation(
            f"{name}: {len(where)} _where entries but {resident} valid "
            f"tags in touched sets (insert missed _mark_touched?)"
        )
    if deep and len(where) != resident:
        raise InvariantViolation(
            f"{name}: {len(where)} _where entries but {resident} valid tags"
        )
    _check_policy_state(cache, name, sets)


def check_reference_cache(
    cache: ReferenceSetAssociativeCache, name: str = "", deep: bool = False
) -> None:
    """Validate the seed dict-of-sets oracle's per-set structures."""
    name = name or cache.name
    for s, cset in cache._sets.items():
        if len(cset.tags) != cache.ways or len(cset.owners) != cache.ways:
            raise InvariantViolation(
                f"{name}: set {s} has {len(cset.tags)} ways, "
                f"expected {cache.ways}"
            )
        live = [t for t in cset.tags if t is not None]
        if len(live) != len(set(live)):
            raise InvariantViolation(f"{name}: duplicate tag in set {s}")


def _flat_resident_keys(cache: SetAssociativeCache) -> Set[int]:
    return set(cache._where)


def _reference_resident_keys(cache: ReferenceSetAssociativeCache) -> Set[int]:
    n_sets = cache.n_sets
    return {
        tag * n_sets + s
        for s, cset in cache._sets.items()
        for tag in cset.tags
        if tag is not None
    }


def resident_keys(cache) -> Set[int]:
    """All ``tag * n_sets + set`` keys currently resident in ``cache``.

    Handles the flat plane, the reference oracle, and any duck-typed
    composite exposing the ``parts()`` protocol (way partitioning,
    randomized indexes, soft copies) — for those the union of the inner
    planes' keys is returned, so for index-randomizing wrappers the set
    half of a key is the *internal* set.  A tag resident in more than
    one part is a violation unless the composite declares
    ``allows_cross_part_copies`` (copy-on-access designs legally hold
    one copy per domain).
    """
    if type(cache) is SetAssociativeCache:
        return _flat_resident_keys(cache)
    if isinstance(cache, ReferenceSetAssociativeCache):
        return _reference_resident_keys(cache)
    parts = getattr(cache, "parts", None)
    if callable(parts):
        copies_ok = getattr(cache, "allows_cross_part_copies", False)
        keys: Set[int] = set()
        tags: Set[int] = set()
        for part in parts().values():
            part_keys = resident_keys(part)
            part_tags = {key // part.n_sets for key in part_keys}
            overlap = tags & part_tags
            if overlap and not copies_ok:
                raise InvariantViolation(
                    f"{cache.name}: line resident in two partitions "
                    f"(tags {sorted(overlap)[:4]}...)"
                )
            keys |= part_keys
            tags |= part_tags
        return keys
    return set()


def resident_tags(cache) -> Set[int]:
    """All tags currently resident in ``cache``, however it is indexed.

    The tag of a shared cache is the full line address, so tags — unlike
    ``resident_keys``, whose set half is internal for index-randomizing
    composites — compare meaningfully *between* structures; the SF/LLC
    exclusivity check runs at this level.
    """
    n_sets = cache.n_sets
    return {key // n_sets for key in resident_keys(cache)}


def _cache_clocks(cache) -> Dict[int, int]:
    """Current per-set noise clocks, from pure reads (no materialization)."""
    if type(cache) is SetAssociativeCache:
        noise_t = cache._noise_t
        touched = cache._touched
        return {i: noise_t[i] for i in range(cache.n_sets) if touched[i]}
    if isinstance(cache, ReferenceSetAssociativeCache):
        clocks = {s: cset.noise_t for s, cset in cache._sets.items()}
        for s, t in cache._saved_clocks.items():
            clocks.setdefault(s, t)
        return clocks
    return {}


def _iter_caches(hier) -> List[Tuple[str, object]]:
    """(label, cache) pairs for every structure, composites expanded.

    Any shared cache exposing the ``parts()`` protocol (partitioned,
    randomized, copy-on-access) contributes its inner flat caches under
    ``label[part]`` names, so composite implementations never need
    checker edits.
    """
    out: List[Tuple[str, object]] = []
    for i, cache in enumerate(hier.l1):
        out.append((f"l1[{i}]", cache))
    for i, cache in enumerate(hier.l2):
        out.append((f"l2[{i}]", cache))
    for label, cache in (("llc", hier.llc), ("sf", hier.sf)):
        parts = getattr(cache, "parts", None)
        if callable(parts):
            out.extend(
                (f"{label}[{domain}]", part)
                for domain, part in parts().items()
            )
        else:
            out.append((label, cache))
    return out


class InvariantChecker:
    """Validates a hierarchy's structural invariants; raises on violation.

    Stateful only for the noise-clock monotonicity check (it remembers the
    previous per-set clocks of every structure).  All reads are pure — a
    hooked run stays bit-identical to an unhooked one.
    """

    def __init__(self, hier) -> None:
        self.hier = hier
        self.checks = 0
        self._clocks: Dict[str, Dict[int, int]] = {}

    def check(self, deep: bool = False) -> None:
        self.checks += 1
        hier = self.hier
        for label, cache in _iter_caches(hier):
            if type(cache) is SetAssociativeCache:
                check_flat_cache(cache, label, deep=deep)
            elif isinstance(cache, ReferenceSetAssociativeCache):
                check_reference_cache(cache, label, deep=deep)
            self._check_clocks(label, cache)
        # Composite self-checks (pure reads): any shared cache exposing
        # ``validate()`` — e.g. the randomized wrappers' residency-map /
        # keyed-index consistency — is folded into the violation model.
        for label, cache in (("llc", hier.llc), ("sf", hier.sf)):
            validate = getattr(cache, "validate", None)
            if callable(validate):
                try:
                    validate()
                except ReproError as exc:
                    raise InvariantViolation(f"{label}: {exc}") from exc
        # SF/LLC non-inclusive exclusivity, compared at tag level: the
        # shared-cache tag is the full line address, so tags are the one
        # coordinate that means the same thing whatever index function
        # either structure runs.  Copy-on-access designs legally leave a
        # stale domain copy behind when another domain's copy is evicted
        # to the LLC, so the check stands down for them.
        if not (
            getattr(hier.sf, "allows_cross_part_copies", False)
            or getattr(hier.llc, "allows_cross_part_copies", False)
        ):
            shared = resident_tags(hier.sf) & resident_tags(hier.llc)
            if shared:
                raise InvariantViolation(
                    f"non-inclusive exclusivity violated: tag "
                    f"{sorted(shared)[0]} is both SF-private and "
                    f"LLC-shared ({len(shared)} line(s) total)"
                )

    def reset_clocks(self) -> None:
        """Forget remembered noise clocks (call after a checkpoint restore).

        A :func:`repro.memsys.snapshot.restore` legally rewinds per-set
        noise clocks to their checkpointed values; without this reset the
        monotonicity check would misreport the rewind as a violation.
        """
        self._clocks.clear()

    def _check_clocks(self, label: str, cache) -> None:
        current = _cache_clocks(cache)
        previous = self._clocks.get(label)
        if previous is not None:
            for s, old in previous.items():
                new = current.get(s)
                if new is not None and new < old:
                    raise InvariantViolation(
                        f"{label}: noise clock of set {s} ran backwards "
                        f"({old} -> {new})"
                    )
        self._clocks[label] = current


_HOOKED_METHODS = ("access", "access_many", "flush_line")


def install_invariant_hook(
    hier, checker: Optional[InvariantChecker] = None
) -> InvariantChecker:
    """Check invariants after every ``access``/``access_many``/``flush_line``.

    Wraps the entry points as instance attributes, shadowing the class
    methods; :func:`uninstall_invariant_hook` removes them.  Installing
    twice is rejected rather than silently stacking wrappers.
    """
    if getattr(hier, "_invariant_checker", None) is not None:
        raise ReproError("invariant hook already installed on this hierarchy")
    checker = checker if checker is not None else InvariantChecker(hier)

    def _wrap(method):
        def hooked(*args, **kwargs):
            result = method(*args, **kwargs)
            checker.check()
            return result

        return hooked

    for name in _HOOKED_METHODS:
        setattr(hier, name, _wrap(getattr(hier, name)))
    hier._invariant_checker = checker
    return checker


def uninstall_invariant_hook(hier) -> Optional[InvariantChecker]:
    """Remove the hook's instance attributes; returns its checker."""
    checker = hier.__dict__.pop("_invariant_checker", None)
    for name in _HOOKED_METHODS:
        hier.__dict__.pop(name, None)
    return checker


class invariant_hook:
    """Context manager form: install on entry, uninstall on exit."""

    def __init__(self, hier, checker: Optional[InvariantChecker] = None):
        self._hier = hier
        self._checker = checker

    def __enter__(self) -> InvariantChecker:
        return install_invariant_hook(self._hier, self._checker)

    def __exit__(self, *exc) -> None:
        uninstall_invariant_hook(self._hier)
