"""Batch-vs-serial differential replay: guard the fifth execution tier.

The trial-batch tier (:mod:`repro.memsys.batchplane`) promises that a
trial run on a :class:`~repro.memsys.batchplane.BatchSession` lane thread
is bit-identical to the same trial run alone: same per-op records, same
final machine digest (which folds in the clock, noise log, policy state,
and every RNG's ``getstate()``).  The golden parity suites pin a few
scenarios; this module *searches*, reusing the fuzz trace grammar:

1. generate seeded attack-shaped traces (:func:`repro.check.fuzz.generate_trace`),
2. replay each trace on the lanes tier twice — once serially, once as a
   lane of a batched group — and
3. diff the two full run records per seed with
   :func:`repro.check.digest.diff_keys`.

Only the lanes tier is batched: the other tiers' guards
(``kernels_disabled()`` / ``lanes_disabled()`` / the reference cache
swap) toggle module globals and are not thread-safe, and the batch tier
only ever dispatches down the lanes path in production.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .digest import diff_keys
from .fuzz import FuzzConfig, generate_trace, run_trace

#: The tier a batched lane resolves to (and is diffed against).
BATCH_BASE_TIER = "lanes"


def _run_record(trace: Dict[str, Any], check_invariants: bool) -> Dict[str, Any]:
    return run_trace(trace, BATCH_BASE_TIER, check_invariants=check_invariants)


def batch_vs_serial(
    cfg: FuzzConfig,
    seeds: Sequence[int],
    batch: int,
    check_invariants: bool = True,
) -> Dict[str, Any]:
    """Replay every seeded trace serially and batched; diff per seed.

    Returns a summary dict: ``ok`` is True iff every seed's batched run
    is bit-identical to its serial run (records, digest, invariant
    verdict, and check count) and no run raised.
    """
    from ..memsys.batchplane import BatchSession, batch_supported

    if batch < 2:
        raise ValueError(f"batch must be >= 2 to differ, got {batch}")
    seeds = list(seeds)
    traces = {seed: generate_trace(cfg, seed) for seed in seeds}

    serial = {
        seed: _run_record(traces[seed], check_invariants) for seed in seeds
    }

    batched: Dict[int, Any] = {}
    errors: Dict[int, str] = {}
    if batch_supported():
        for start in range(0, len(seeds), batch):
            group = seeds[start : start + batch]
            session = BatchSession(
                [
                    (lambda s=s: _run_record(traces[s], check_invariants))
                    for s in group
                ]
            )
            for seed, outcome in zip(group, session.run()):
                if outcome.error is not None:
                    errors[seed] = (
                        f"{type(outcome.error).__name__}: {outcome.error}"
                    )
                else:
                    batched[seed] = outcome.value
    else:
        # No numpy / batching disabled: the tier falls back to serial by
        # construction, so the differ degenerates to a self-comparison.
        batched = {
            seed: _run_record(traces[seed], check_invariants) for seed in seeds
        }

    diffs: Dict[int, List[str]] = {}
    for seed in seeds:
        if seed in errors:
            continue
        delta = diff_keys(serial[seed], batched[seed])
        if delta:
            diffs[seed] = delta[:8]
    checks = sum(run["checks"] for run in serial.values())
    return {
        "seeds": len(seeds),
        "batch": batch,
        "tier": BATCH_BASE_TIER,
        "batch_supported": batch_supported(),
        "checks": checks,
        "divergent": sorted(diffs),
        "diffs": {seed: diffs[seed] for seed in sorted(diffs)},
        "errors": {seed: errors[seed] for seed in sorted(errors)},
        "ok": not diffs and not errors,
    }
