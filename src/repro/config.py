"""Machine, latency, and noise configuration.

This module defines the static description of a simulated Intel server
machine (cache geometries, slice hashing, latencies) and of the environment
noise (background tenant activity), together with presets for the platforms
used in the paper:

* ``skylake_sp()`` — the Intel Xeon Platinum 8173M used on Cloud Run
  (28 LLC/SF slices).
* ``skylake_sp_local()`` — the Intel Xeon Gold 6152 used for the local
  quiescent experiments (22 LLC/SF slices).
* ``icelake_sp()`` — the Intel Xeon Gold 5320 (26 slices, higher
  associativity) used in Section 5.3.2.
* ``*_small()`` — reduced geometries that preserve every structural
  relationship the paper's results depend on (see DESIGN.md) while keeping
  pure-Python simulation fast enough for tests and benchmarks.

All classes are frozen dataclasses: a configuration is a value, never
mutated after creation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from .errors import ConfigurationError

#: Default standard page size (bytes).  Cloud Run containers cannot allocate
#: huge pages (Section 3 of the paper), so 4 kB is the only page size.
PAGE_BYTES = 4096

#: Cache line size used by all modelled Intel parts.
LINE_BYTES = 64

#: Lines per 4 kB page; the number of distinct page offsets at line
#: granularity (the 64x factor between PageOffset and WholeSys scenarios).
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache structure (or of one slice of a sliced cache).

    Attributes:
        name: Human-readable identifier, e.g. ``"L2"`` or ``"SF"``.
        ways: Associativity.
        sets: Number of sets per slice.
        slices: Number of slices (1 for private caches).
        line_bytes: Cache line size in bytes.
    """

    name: str
    ways: int
    sets: int
    slices: int = 1
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigurationError(f"{self.name}: ways must be >= 1")
        if not _is_pow2(self.sets):
            raise ConfigurationError(f"{self.name}: sets must be a power of two")
        if not _is_pow2(self.line_bytes):
            raise ConfigurationError(f"{self.name}: line_bytes must be a power of two")
        if self.slices < 1:
            raise ConfigurationError(f"{self.name}: slices must be >= 1")

    @property
    def offset_bits(self) -> int:
        """Number of line-offset bits (low bits ignored by set indexing)."""
        return self.line_bytes.bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Number of set-index bits per slice."""
        return self.sets.bit_length() - 1

    @property
    def total_sets(self) -> int:
        """Total sets across all slices."""
        return self.sets * self.slices

    @property
    def lines(self) -> int:
        """Total line capacity across all slices."""
        return self.total_sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        return self.lines * self.line_bytes

    def set_index(self, pa: int) -> int:
        """Per-slice set index of physical address ``pa``."""
        return (pa >> self.offset_bits) & (self.sets - 1)

    def uncertainty(self, page_bytes: int = PAGE_BYTES) -> int:
        """Cache uncertainty U for an attacker controlling only page offsets.

        For an unsliced cache this is ``2**n_uc`` where ``n_uc`` is the number
        of set-index bits above the page offset; for a sliced cache it is
        additionally multiplied by the slice count (Section 2.2.1).
        """
        page_bits = page_bytes.bit_length() - 1
        controllable = page_bits - self.offset_bits
        n_uc = max(0, self.index_bits - controllable)
        return (1 << n_uc) * self.slices


@dataclass(frozen=True)
class LatencyConfig:
    """Access-latency model (cycles at the configured clock).

    The absolute values are calibrated so that the simulated platform
    reproduces the paper's measured orders of magnitude (Table 5, Figure 3):
    an L1 hit is a few cycles, an LLC/SF hit tens of cycles, DRAM hundreds,
    and overlapped (MLP) traversal costs ``issue_gap`` cycles per extra line
    instead of a full round trip.
    """

    l1_hit: int = 4
    l2_hit: int = 14
    llc_hit: int = 48
    #: Latency observed when an access misses everywhere (or its SF entry was
    #: back-invalidated) and must fetch from DRAM.
    dram: int = 260
    #: Extra serialization penalty of a dependent (pointer-chase) access over
    #: an independent one; models address-generation and TLB effects that make
    #: the paper's sequential TestEviction ~10x slower than the parallel one.
    chase_overhead: int = 160
    #: Per-line issue gap for overlapped accesses (bounded by LLC/DRAM
    #: bandwidth rather than latency).
    issue_gap: int = 26
    #: Per-line issue gap for overlapped accesses that hit in private caches
    #: (L1/L2 sustain much higher throughput than the uncore).
    hit_issue_gap: int = 6
    #: Cost of executing one clflush.
    flush: int = 90
    #: Per-line gap when clflushes are issued back-to-back (they pipeline).
    flush_gap: int = 8
    #: Uniform measurement jitter (+/- cycles) added to timed loads.
    timer_jitter: int = 3
    #: Fixed timing-instrumentation overhead per timed load (rdtsc fences).
    timer_overhead: int = 30

    def __post_init__(self) -> None:
        if not (self.l1_hit < self.l2_hit < self.llc_hit < self.dram):
            raise ConfigurationError("latencies must satisfy L1 < L2 < LLC < DRAM")
        if self.issue_gap < 1:
            raise ConfigurationError("issue_gap must be >= 1")


@dataclass(frozen=True)
class MachineConfig:
    """Full description of a simulated machine.

    The LLC and SF must agree on set count, slice count, and (implicitly)
    slice hash — on real Skylake-SP the SF mirrors the LLC's set mapping, and
    the attack relies on this (Section 3).
    """

    name: str
    cores: int
    clock_ghz: float
    l1: CacheGeometry
    l2: CacheGeometry
    llc: CacheGeometry
    sf: CacheGeometry
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    page_bytes: int = PAGE_BYTES
    #: Physical address bits of the simulated machine.
    phys_bits: int = 34
    #: Replacement policy names per level (see repro.memsys.replacement).
    #: L2/LLC/SF default to LRU: minimal eviction sets empirically behave
    #: LRU-like on Skylake-SP's SF (Yan et al. 2019), and scan-resistant
    #: policies (srrip/qlru, available for ablations) would defeat
    #: single-pass traversal of minimal sets entirely.
    l1_policy: str = "tree_plru"
    l2_policy: str = "lru"
    llc_policy: str = "lru"
    sf_policy: str = "lru"
    #: Probability that a line evicted from the SF is inserted into the LLC
    #: (the undocumented reuse predictor, Section 2.3).  Back-invalidated
    #: lines look dead to a reuse predictor, so the default is low — which
    #: also matches the observed behaviour that SF Prime+Probe reliably
    #: sees the victim's *next* fetch go to DRAM (Yan et al. 2019).
    reuse_predictor_p: float = 0.01
    #: Probability that a clean private line evicted from an L2 is installed
    #: in the LLC (Skylake-SP's LLC acts as a victim cache for the L2s,
    #: gated by a dead-block predictor).
    l2_victim_to_llc_p: float = 0.95
    #: Slice hash family: "linear" (power-of-two slices) or "complex".
    slice_hash: str = "complex"
    #: RNG contract for stochastic draws: "serial" (one shared stream,
    #: consumed in strict access order — the historical contract, pinned
    #: by the existing goldens) or "counter" (event-keyed draws, pure in
    #: ``(seed, stream, event key)`` — order-independent, which legalizes
    #: vectorized and cross-trial lockstep execution; see DESIGN.md §2.7).
    #: The two modes produce different — both valid — trial outcomes.
    rng_mode: str = "serial"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError("need at least one core")
        if self.rng_mode not in ("serial", "counter"):
            raise ConfigurationError(
                f"rng_mode must be 'serial' or 'counter', got {self.rng_mode!r}"
            )
        if self.llc.sets != self.sf.sets or self.llc.slices != self.sf.slices:
            raise ConfigurationError(
                "SF must mirror LLC set/slice geometry (Skylake-SP property)"
            )
        if self.sf.ways <= self.llc.ways:
            raise ConfigurationError(
                "SF must have more ways than the LLC (so an SF eviction set "
                "is also an LLC eviction set, Section 3)"
            )
        l2_top = self.l2.offset_bits + self.l2.index_bits
        llc_top = self.llc.offset_bits + self.llc.index_bits
        if l2_top > llc_top:
            raise ConfigurationError(
                "L2 set-index bits must be a subset of the LLC set-index bits "
                "(required by L2-driven candidate filtering, Section 5.1)"
            )
        if not 0.0 <= self.reuse_predictor_p <= 1.0:
            raise ConfigurationError("reuse_predictor_p must be in [0, 1]")
        if not 0.0 <= self.l2_victim_to_llc_p <= 1.0:
            raise ConfigurationError("l2_victim_to_llc_p must be in [0, 1]")
        if self.phys_bits < (self.page_bytes.bit_length() - 1) + 8:
            raise ConfigurationError("phys_bits too small for the page size")

    # -- Derived quantities used throughout the paper --------------------

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> int:
        return int(round(seconds * self.clock_hz))

    @property
    def u_l2(self) -> int:
        """L2 cache uncertainty (16 on real Skylake-SP)."""
        return self.l2.uncertainty(self.page_bytes)

    @property
    def u_llc(self) -> int:
        """LLC/SF cache uncertainty (896 on a 28-slice Skylake-SP)."""
        return self.llc.uncertainty(self.page_bytes)

    @property
    def evsets_page_offset(self) -> int:
        """Eviction sets needed in the PageOffset scenario (= U_LLC)."""
        return self.u_llc

    @property
    def evsets_whole_sys(self) -> int:
        """Eviction sets needed in the WholeSys scenario (= 64 x U_LLC)."""
        return self.u_llc * (self.page_bytes // self.llc.line_bytes)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.name}: {self.cores} cores @ {self.clock_ghz:.1f} GHz, "
            f"L2 {self.l2.sets}x{self.l2.ways}, "
            f"LLC {self.llc.slices} slices x {self.llc.sets} sets x "
            f"{self.llc.ways} ways, SF {self.sf.ways} ways; "
            f"U_L2={self.u_l2}, U_LLC={self.u_llc}, "
            f"PageOffset evsets={self.evsets_page_offset}, "
            f"WholeSys evsets={self.evsets_whole_sys}"
        )


@dataclass(frozen=True)
class NoiseConfig:
    """Background (other-tenant) activity model.

    ``llc_accesses_per_ms_per_set`` is the paper's Figure 2 metric: the rate
    at which background activity touches one LLC set.  Events are Poisson;
    each event inserts a foreign line into the SF or LLC set (split by
    ``sf_fraction``), perturbing replacement state and potentially evicting
    attacker lines.
    """

    name: str
    llc_accesses_per_ms_per_set: float
    #: SF allocation rate relative to the LLC-visible rate: the SF set with
    #: the same index receives this fraction of the rate as private-line
    #: allocations (on top of, not instead of, the LLC insertions).
    sf_fraction: float = 0.8
    #: Rate (events per second) of interrupts/context switches hitting the
    #: attacker core; each one adds a large latency outlier.
    preemption_rate_hz: float = 0.0
    #: Cycles lost to one preemption event.
    preemption_cycles: int = 40_000

    def __post_init__(self) -> None:
        if self.llc_accesses_per_ms_per_set < 0:
            raise ConfigurationError("noise rate must be non-negative")
        if not 0.0 <= self.sf_fraction <= 1.0:
            raise ConfigurationError("sf_fraction must be in [0, 1]")

    def rate_per_cycle(self, clock_ghz: float) -> float:
        """Noise events per cycle per set at the given clock."""
        cycles_per_ms = clock_ghz * 1e6
        return self.llc_accesses_per_ms_per_set / cycles_per_ms

    def scaled(self, factor: float) -> "NoiseConfig":
        """A copy with the access rate multiplied by ``factor``."""
        return replace(
            self,
            name=f"{self.name}*{factor:g}",
            llc_accesses_per_ms_per_set=self.llc_accesses_per_ms_per_set * factor,
        )


# ---------------------------------------------------------------------------
# Machine presets
# ---------------------------------------------------------------------------


def skylake_sp(cores: int = 4) -> MachineConfig:
    """Intel Xeon Platinum 8173M — the dominant Cloud Run CPU (28 slices)."""
    return MachineConfig(
        name="skylake-sp-8173m",
        cores=cores,
        clock_ghz=2.0,
        l1=CacheGeometry("L1D", ways=8, sets=64),
        l2=CacheGeometry("L2", ways=16, sets=1024),
        llc=CacheGeometry("LLC", ways=11, sets=2048, slices=28),
        sf=CacheGeometry("SF", ways=12, sets=2048, slices=28),
    )


def skylake_sp_local(cores: int = 4) -> MachineConfig:
    """Intel Xeon Gold 6152 — the paper's quiescent local machine (22 slices)."""
    cfg = skylake_sp(cores)
    return replace(
        cfg,
        name="skylake-sp-6152",
        llc=CacheGeometry("LLC", ways=11, sets=2048, slices=22),
        sf=CacheGeometry("SF", ways=12, sets=2048, slices=22),
    )


def icelake_sp(cores: int = 4) -> MachineConfig:
    """Intel Xeon Gold 5320 — Ice Lake-SP (26 slices, higher associativity)."""
    return MachineConfig(
        name="icelake-sp-5320",
        cores=cores,
        clock_ghz=2.2,
        l1_policy="lru",  # tree-PLRU needs power-of-two ways; L1D is 12-way
        l1=CacheGeometry("L1D", ways=12, sets=64),
        l2=CacheGeometry("L2", ways=20, sets=1024),
        llc=CacheGeometry("LLC", ways=12, sets=2048, slices=26),
        sf=CacheGeometry("SF", ways=16, sets=2048, slices=26),
    )


def skylake_sp_small(cores: int = 4) -> MachineConfig:
    """Reduced Skylake-SP-like geometry for fast simulation (cloud flavor).

    Preserves: L2 index bits are a strict subset of LLC index bits, U_L2 > 1,
    U_LLC = 8 x slices, SF ways (12) > LLC ways (11), and the Skylake
    associativities, so every algorithmic relationship in the paper holds.
    """
    return MachineConfig(
        name="skylake-sp-small",
        cores=cores,
        clock_ghz=2.0,
        l1=CacheGeometry("L1D", ways=8, sets=64),
        l2=CacheGeometry("L2", ways=16, sets=256),
        llc=CacheGeometry("LLC", ways=11, sets=512, slices=4),
        sf=CacheGeometry("SF", ways=12, sets=512, slices=4),
    )


def skylake_sp_small_local(cores: int = 4) -> MachineConfig:
    """Reduced local machine: like :func:`skylake_sp_small` but 3 slices.

    The paper's local and cloud machines differ in slice count (22 vs. 28);
    mirroring that here also exercises the non-power-of-two slice hash.
    """
    cfg = skylake_sp_small(cores)
    return replace(
        cfg,
        name="skylake-sp-small-local",
        llc=CacheGeometry("LLC", ways=11, sets=512, slices=3),
        sf=CacheGeometry("SF", ways=12, sets=512, slices=3),
    )


def icelake_sp_small(cores: int = 4) -> MachineConfig:
    """Reduced Ice Lake-SP-like geometry (higher associativity than Skylake)."""
    return MachineConfig(
        name="icelake-sp-small",
        cores=cores,
        clock_ghz=2.2,
        l1_policy="lru",  # 12-way L1D (see icelake_sp)
        l1=CacheGeometry("L1D", ways=12, sets=64),
        l2=CacheGeometry("L2", ways=20, sets=256),
        llc=CacheGeometry("LLC", ways=12, sets=512, slices=4),
        sf=CacheGeometry("SF", ways=16, sets=512, slices=4),
    )


def tiny_machine(cores: int = 2) -> MachineConfig:
    """Minimal geometry for unit tests; not representative of real hardware.

    Keeps the one structural requirement single-core SF priming needs:
    L2 ways exceed SF ways (as on every real part modelled here), so a core
    can keep a whole SF set's worth of lines resident privately.
    """
    return MachineConfig(
        name="tiny",
        cores=cores,
        clock_ghz=2.0,
        l1=CacheGeometry("L1D", ways=2, sets=16),
        l2=CacheGeometry("L2", ways=8, sets=64),
        llc=CacheGeometry("LLC", ways=4, sets=128, slices=2),
        sf=CacheGeometry("SF", ways=6, sets=128, slices=2),
        phys_bits=30,
    )


# ---------------------------------------------------------------------------
# Noise presets (rates from the paper's Figure 2 measurements)
# ---------------------------------------------------------------------------


def quiescent_local_noise() -> NoiseConfig:
    """Minimal-activity local machine: 0.29 accesses/ms/set (Section 4.3)."""
    return NoiseConfig(name="quiescent-local", llc_accesses_per_ms_per_set=0.29)


def cloud_run_noise() -> NoiseConfig:
    """Cloud Run: 11.5 accesses/ms/set (Section 4.3) plus rare preemptions."""
    return NoiseConfig(
        name="cloud-run",
        llc_accesses_per_ms_per_set=11.5,
        preemption_rate_hz=100.0,
    )


def cloud_run_quiet_hours_noise() -> NoiseConfig:
    """Cloud Run 3-5 am: the paper found no significant difference."""
    return NoiseConfig(
        name="cloud-run-3-5am",
        llc_accesses_per_ms_per_set=11.1,
        preemption_rate_hz=100.0,
    )


def no_noise() -> NoiseConfig:
    """Perfectly quiescent environment (used by correctness tests)."""
    return NoiseConfig(name="none", llc_accesses_per_ms_per_set=0.0)


def exposure_matched(base: NoiseConfig, cfg: MachineConfig,
                     reference: Optional[MachineConfig] = None,
                     exponent: float = 0.5) -> NoiseConfig:
    """Scale a noise preset so reduced geometries see the paper's exposure.

    The probability that one TestEviction gets disturbed is (noise rate) x
    (test duration), and test duration scales with the candidate-set size
    N = 3*U*W.  A reduced-geometry machine has a much smaller N, so running
    it against the raw per-set rate would understate the cloud's effect.

    A single factor cannot match both regimes at once, because the reduced
    geometry also has a smaller L2 uncertainty and therefore a weaker
    filtering ratio: matching the *unfiltered* tests exactly (factor
    N_ref/N_ours) would make the *filtered* tests several times harsher
    than the paper's.  The default square-root compromise
    ``(N_ref/N_ours) ** 0.5`` matches the filtered-test exposure almost
    exactly while still degrading unfiltered runs substantially — the
    regime every Table 3/4 comparison cares about.  Pass ``exponent=1.0``
    for strict unfiltered matching.  For the full-scale machine the factor
    is 1 either way and the preset is returned unchanged.
    """
    if reference is None:
        reference = skylake_sp()
    ours = cfg.u_llc * cfg.sf.ways
    ref = reference.u_llc * reference.sf.ways
    factor = (ref / ours) ** exponent
    if abs(factor - 1.0) < 1e-9:
        return base
    return base.scaled(factor)


#: Registry of noise presets by name.
NOISE_PRESETS: Dict[str, NoiseConfig] = {
    "local": quiescent_local_noise(),
    "cloud": cloud_run_noise(),
    "cloud-quiet": cloud_run_quiet_hours_noise(),
    "none": no_noise(),
}

#: Registry of machine presets by name.
MACHINE_PRESETS = {
    "skylake": skylake_sp,
    "skylake-local": skylake_sp_local,
    "icelake": icelake_sp,
    "skylake-small": skylake_sp_small,
    "skylake-small-local": skylake_sp_small_local,
    "icelake-small": icelake_sp_small,
    "tiny": tiny_machine,
}
