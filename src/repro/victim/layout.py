"""Memory layout of the vulnerable library (the paper's Figure 8b).

The attacker is assumed to know the library's layout (publicly released
binaries, loaded once at container start with a fixed VA->PA mapping), so
the *page offset* of the monitored cache line is known; its physical frame
— and hence its LLC/SF set — is not.

The layout distinguishes:

* the **monitored line** — the cache line whose per-iteration fetch pattern
  encodes the nonce bit (the `else`-direction line of the instrumented
  build: fetched at every iteration boundary, and again at the iteration
  midpoint when the bit is 0);
* **ladder working lines** — MAdd/MDouble code and field-element data
  fetched every iteration at other page offsets (the WholeSys
  false-positive sources of Section 7.2);
* **service working set** — lines touched by request parsing and response
  building (the non-vulnerable 75% of execution).
"""

from __future__ import annotations

import random
from typing import List

from ..config import LINE_BYTES, LINES_PER_PAGE
from ..errors import ConfigurationError
from ..memsys.address import AddressSpace


class VictimLayout:
    """Concrete address assignment for the victim's code and data."""

    def __init__(
        self,
        aspace: AddressSpace,
        rng: random.Random,
        code_pages: int = 4,
        data_pages: int = 2,
        ladder_lines: int = 4,
        data_lines: int = 4,
        service_lines: int = 16,
    ) -> None:
        if code_pages < 2 or data_pages < 1:
            raise ConfigurationError("need at least 2 code pages and 1 data page")
        self.aspace = aspace
        self._code_pages = aspace.alloc_pages(code_pages)
        self._data_pages = aspace.alloc_pages(data_pages)

        # Distinct line offsets within a page, so the monitored line is the
        # only victim line at its page offset (clean PageOffset scenario).
        offsets = rng.sample(range(LINES_PER_PAGE), ladder_lines + data_lines + 1)
        self.monitored_offset_lines = offsets[0]
        self.monitored_va = self._code_pages[0] + offsets[0] * LINE_BYTES

        self.ladder_vas: List[int] = []
        for i in range(ladder_lines):
            page = self._code_pages[1 + i % (code_pages - 1)]
            self.ladder_vas.append(page + offsets[1 + i] * LINE_BYTES)

        self.data_vas: List[int] = []
        for i in range(data_lines):
            page = self._data_pages[i % data_pages]
            self.data_vas.append(page + offsets[1 + ladder_lines + i] * LINE_BYTES)

        self.service_vas: List[int] = []
        service_offsets = rng.sample(range(LINES_PER_PAGE), min(service_lines, LINES_PER_PAGE))
        for i in range(service_lines):
            page = self._code_pages[i % code_pages]
            self.service_vas.append(
                page + service_offsets[i % len(service_offsets)] * LINE_BYTES
            )

    # -- Physical views ------------------------------------------------------

    @property
    def monitored_line(self) -> int:
        """Physical line address of the monitored cache line."""
        return self.aspace.translate_line(self.monitored_va)

    @property
    def target_page_offset(self) -> int:
        """Page offset (bytes) of the monitored line — known to the attacker."""
        return self.monitored_va % 4096

    def ladder_lines_physical(self) -> List[int]:
        return [self.aspace.translate_line(va) for va in self.ladder_vas]

    def data_lines_physical(self) -> List[int]:
        return [self.aspace.translate_line(va) for va in self.data_vas]

    def service_lines_physical(self) -> List[int]:
        return [self.aspace.translate_line(va) for va in self.service_vas]
