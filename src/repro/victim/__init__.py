"""The victim: a containerized service running vulnerable ECDSA signing.

Models the target of Section 7: a web service that, for a fraction of its
execution time, runs OpenSSL 1.0.1e's Montgomery-ladder scalar
multiplication whose secret-dependent control flow fetches different code
cache lines per nonce bit (Figure 8).  The victim executes *real* ladder
iterations (or a statistically identical fast path) and emits the
corresponding fetch schedule into the simulated machine, together with the
ground-truth instrumentation the paper uses for validation.
"""

from .layout import VictimLayout
from .ecdsa_victim import EcdsaVictim, SigningGroundTruth, VictimConfig
from .runner import expected_target_frequency, run_victim_alone

__all__ = [
    "EcdsaVictim",
    "SigningGroundTruth",
    "VictimConfig",
    "VictimLayout",
    "expected_target_frequency",
    "run_victim_alone",
]
