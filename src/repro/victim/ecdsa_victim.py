"""The ECDSA victim process and its access schedule.

Each signing runs the Montgomery ladder over the nonce; per iteration
(~9,700 cycles on the paper's 2 GHz hosts) the victim fetches:

* the monitored line at the iteration boundary (always), and again at the
  iteration midpoint when the bit is 0 (the instrumented build's
  `else`-direction line, Section 7.1);
* the MAdd/MDouble code and field-element data lines at other page offsets
  (periodic at similar frequencies — the WholeSys false-positive sources).

Signing occupies ``duty_cycle`` of the service's busy time; the rest is
request parsing/response work over the service working set (the
de-synchronization problem of Section 7.2).

Ground truth (nonce bits, iteration boundary times) is recorded exactly as
the paper instruments its victim binary — for validation only; the attack
never reads it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from .._util import make_rng, spawn_rng
from ..crypto import curve_by_name, generate_keypair, sign
from ..errors import ConfigurationError
from ..memsys.machine import Machine
from .layout import VictimLayout


@dataclass(frozen=True)
class VictimConfig:
    """Behavioral parameters of the victim service.

    The defaults mirror the paper's measurements on Cloud Run: 9,700-cycle
    ladder iterations (so zero-bit runs produce accesses 4,850 cycles
    apart and a PSD peak near 0.41 MHz at 2 GHz), and ~25% of busy time
    spent in the vulnerable code.
    """

    curve_name: str = "K-233"
    iter_cycles: int = 9700
    iter_jitter: int = 250
    duty_cycle: float = 0.25
    #: Idle gap between request sessions, as a fraction of session length.
    idle_fraction: float = 0.1
    #: Cycle period of working-set accesses outside the vulnerable code.
    service_access_period: int = 20_000
    #: Ladder/data decoy lines fetched per iteration.
    decoy_accesses_per_iter: int = 2
    #: When False, nonce bits are drawn directly (statistically identical
    #: to a real signing) instead of running full ECDSA — vastly faster for
    #: scanning experiments.  Real signing is used whenever signatures or
    #: key recovery are needed.
    real_signing: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in (0, 1]")
        if self.iter_cycles <= 2 * self.iter_jitter:
            raise ConfigurationError("iteration jitter too large for the period")

    @property
    def access_period_cycles(self) -> float:
        """Expected period between monitored-line accesses (~iter/2)."""
        return self.iter_cycles / 2.0


@dataclass
class SigningGroundTruth:
    """Validation record for one signing (the paper's instrumentation)."""

    nonce: Optional[int]
    bits: List[int]
    #: Iteration start (boundary) times, cycles; len == len(bits) + 1, the
    #: final entry being the end of the last iteration.
    boundaries: List[int]
    start: int
    end: int
    message: Optional[bytes] = None
    signature: object = None

    @property
    def n_bits(self) -> int:
        return len(self.bits)


class EcdsaVictim:
    """A victim container's workload on one core of a simulated machine."""

    def __init__(
        self,
        machine: Machine,
        core: int,
        cfg: VictimConfig = VictimConfig(),
        seed: int = 0,
    ) -> None:
        if not 0 <= core < machine.cfg.cores:
            raise ConfigurationError("victim core out of range")
        self.machine = machine
        self.core = core
        self.cfg = cfg
        self._rng = make_rng(("victim", seed))
        self._layout_rng = spawn_rng(self._rng, "layout")
        self._nonce_rng = spawn_rng(self._rng, "nonce")
        self._sched_rng = spawn_rng(self._rng, "sched")
        self.layout = VictimLayout(machine.new_address_space(), self._layout_rng)
        self.curve = curve_by_name(cfg.curve_name)
        self.keypair = generate_keypair(self.curve, spawn_rng(self._rng, "key"))
        self.truths: List[SigningGroundTruth] = []
        self._running = False

    # -- Internals -------------------------------------------------------------

    def _emit(self, when: int, line: int) -> None:
        """Schedule one code/data fetch by the victim core."""
        core = self.core
        hier = self.machine.hierarchy
        self.machine.schedule(when, lambda t: hier.access(core, line, t))

    def _draw_nonce_bits(self, real: bool):
        """(nonce, processed-bit sequence, message, signature) for a signing."""
        if real:
            message = self._nonce_rng.getrandbits(64).to_bytes(8, "big")
            bits: List[int] = []
            sig, k = sign(
                self.keypair,
                message,
                self._nonce_rng,
                observer=lambda i, b: bits.append(b),
            )
            return k, bits, message, sig
        # Fast path: random bits with the distribution of a real nonce's
        # ladder bit sequence (nonce uniform in [1, n)).
        k = self._nonce_rng.randrange(1, self.curve.n)
        n_iters = k.bit_length() - 1
        bits = [(k >> i) & 1 for i in range(n_iters - 1, -1, -1)]
        return k, bits, None, None

    # -- Scheduling ------------------------------------------------------------

    def schedule_signing(self, start: int, real: Optional[bool] = None) -> SigningGroundTruth:
        """Schedule one full signing starting at ``start``; returns ground truth."""
        real = self.cfg.real_signing if real is None else real
        k, bits, message, sig = self._draw_nonce_bits(real)
        cfg = self.cfg
        rng = self._sched_rng
        monitored = self.layout.monitored_line
        decoys = self.layout.ladder_lines_physical() + self.layout.data_lines_physical()
        t = start
        boundaries = [t]
        for bit in bits:
            duration = cfg.iter_cycles + rng.randint(-cfg.iter_jitter, cfg.iter_jitter)
            self._emit(t, monitored)
            for d in range(cfg.decoy_accesses_per_iter):
                line = decoys[(d + len(boundaries)) % len(decoys)]
                self._emit(t + rng.randint(duration // 8, duration - duration // 8), line)
            if bit == 0:
                self._emit(t + duration // 2, monitored)
            t += duration
            boundaries.append(t)
        # The loop condition is evaluated once more to exit, fetching the
        # monitored line at the final iteration boundary.
        if bits:
            self._emit(t, monitored)
        truth = SigningGroundTruth(
            nonce=k,
            bits=bits,
            boundaries=boundaries,
            start=start,
            end=t,
            message=message,
            signature=sig,
        )
        self.truths.append(truth)
        return truth

    def schedule_session(self, start: int, real: Optional[bool] = None) -> int:
        """Schedule one request session (preamble + signing + postamble).

        The signing occupies ``duty_cycle`` of the session's busy time; the
        rest is working-set traffic.  Returns the session end time.
        """
        cfg = self.cfg
        rng = self._sched_rng
        service = self.layout.service_lines_physical()
        signing_est = self.cfg.iter_cycles * (self.curve.nonce_bits - 1)
        other_total = int(signing_est * (1.0 - cfg.duty_cycle) / cfg.duty_cycle)
        preamble = other_total // 2
        t = start
        while t < start + preamble:
            self._emit(t, service[rng.randrange(len(service))])
            t += cfg.service_access_period
        truth = self.schedule_signing(start + preamble, real=real)
        t = truth.end
        postamble_end = truth.end + (other_total - preamble)
        while t < postamble_end:
            self._emit(t, service[rng.randrange(len(service))])
            t += cfg.service_access_period
        return postamble_end

    def run_continuously(self, start: Optional[int] = None) -> None:
        """Keep scheduling sessions back-to-back (with idle gaps) until stopped.

        Sessions self-perpetuate through the machine's event queue, so the
        victim stays active for as long as the attacker keeps the simulated
        clock moving — like a service receiving a steady request stream.
        """
        self._running = True
        first = self.machine.now if start is None else start

        def _session(at: int) -> None:
            if not self._running:
                return
            end = self.schedule_session(at)
            gap = int((end - at) * self.cfg.idle_fraction)
            self.machine.schedule(end + gap, _session)

        self.machine.schedule(first, _session)

    def stop(self) -> None:
        """Stop scheduling further sessions (already-queued events still run)."""
        self._running = False

    # -- Derived quantities ------------------------------------------------------

    def expected_peak_hz(self) -> float:
        """Expected PSD peak frequency of the monitored line's accesses."""
        return self.machine.clock_hz / self.cfg.access_period_cycles
