"""Victim/attacker co-simulation helpers."""

from __future__ import annotations

from typing import List

from ..memsys.machine import Machine
from .ecdsa_victim import EcdsaVictim, SigningGroundTruth, VictimConfig


def expected_target_frequency(cfg: VictimConfig, clock_hz: float) -> float:
    """Expected PSD peak frequency for a victim configuration.

    The victim touches the monitored line once per iteration boundary plus
    once mid-iteration for zero bits, giving a base period of about half an
    iteration (the paper's 2 GHz / 4,850 cycles ~= 0.41 MHz).
    """
    return clock_hz / cfg.access_period_cycles


def run_victim_alone(
    machine: Machine,
    victim: EcdsaVictim,
    n_signings: int,
    real: bool = False,
) -> List[SigningGroundTruth]:
    """Run ``n_signings`` back-to-back signings with no attacker present.

    Useful for calibration and unit tests: advances the clock through the
    scheduled events and returns the ground-truth records.
    """
    t = machine.now
    truths = []
    for _ in range(n_signings):
        truth = victim.schedule_signing(t, real=real)
        truths.append(truth)
        t = truth.end + 1000
    machine.run_until(t + 1)
    return truths
