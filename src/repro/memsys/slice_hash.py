"""LLC/SF slice hash functions.

Modern Intel parts hash *all* physical-address bits above the line offset to
pick an LLC slice (McCalpin's TACC report; Section 2.2.1 of the paper).  For
power-of-two slice counts the hash is linear over GF(2) (an XOR-fold of the
line address against per-output-bit masks); for non-power-of-two counts
(e.g. the 28-slice Skylake-SP or 22-slice Xeon Gold 6152) Intel uses a
complex non-linear function.  Two key properties matter for the attack:

1. A tenant controlling only page-offset bits cannot reduce the number of
   possible slices an address maps to — so U_LLC carries the full
   ``n_slices`` factor.
2. The hash distributes lines near-uniformly across slices.

Both hash families below have these properties and are deterministic given a
seed, which stands in for the (undocumented, per-SKU) real constants.
"""

from __future__ import annotations

import random
from typing import List, Protocol

from ..errors import ConfigurationError


class SliceHash(Protocol):
    """Maps a physical line address to a slice index."""

    n_slices: int

    def slice_of(self, line_addr: int) -> int:
        """Slice index in ``[0, n_slices)`` for a physical line address."""
        ...


def _parity(x: int) -> int:
    """Parity of the set bits of ``x``."""
    x ^= x >> 32
    x ^= x >> 16
    x ^= x >> 8
    x ^= x >> 4
    x ^= x >> 2
    x ^= x >> 1
    return x & 1


def _random_masks(rng: random.Random, n_bits: int, width: int) -> List[int]:
    """Draw ``n_bits`` distinct nonzero XOR masks over ``width`` input bits.

    Each mask covers roughly half the input bits, like the reverse-engineered
    Intel constants, which guarantees that unknown high-order frame bits
    always contribute to every output bit.
    """
    masks: List[int] = []
    seen = set()
    while len(masks) < n_bits:
        mask = 0
        for bit in range(width):
            if rng.random() < 0.5:
                mask |= 1 << bit
        # Force dependence on high (attacker-unknown) bits so page-offset
        # control never pins an output bit.
        mask |= 1 << (width - 1 - len(masks) % 8)
        if mask and mask not in seen:
            seen.add(mask)
            masks.append(mask)
    return masks


class LinearSliceHash:
    """GF(2)-linear slice hash for power-of-two slice counts.

    Output bit *i* is the parity of ``line_addr & mask_i``.
    """

    def __init__(self, n_slices: int, seed: int = 0, width: int = 30) -> None:
        if n_slices < 1 or n_slices & (n_slices - 1):
            raise ConfigurationError("LinearSliceHash needs a power-of-two slice count")
        self.n_slices = n_slices
        self._bits = n_slices.bit_length() - 1
        rng = random.Random(f"linear-slice-hash:{seed}")
        self._masks = _random_masks(rng, max(self._bits, 1), width)

    def slice_of(self, line_addr: int) -> int:
        if self.n_slices == 1:
            return 0
        out = 0
        for i in range(self._bits):
            out |= _parity(line_addr & self._masks[i]) << i
        return out


class ComplexSliceHash:
    """Non-linear slice hash for arbitrary (incl. non-power-of-two) counts.

    Computes a wide linear hash, sends it through a fixed pseudo-random
    permutation (the non-linearity), and reduces modulo the slice count.
    With a 14-bit intermediate hash the modulo bias is below 0.2%.
    """

    _INTERMEDIATE_BITS = 14

    def __init__(self, n_slices: int, seed: int = 0, width: int = 30) -> None:
        if n_slices < 1:
            raise ConfigurationError("need at least one slice")
        self.n_slices = n_slices
        rng = random.Random(f"complex-slice-hash:{seed}")
        self._masks = _random_masks(rng, self._INTERMEDIATE_BITS, width)
        size = 1 << self._INTERMEDIATE_BITS
        perm = list(range(size))
        rng.shuffle(perm)
        self._perm = perm

    def slice_of(self, line_addr: int) -> int:
        if self.n_slices == 1:
            return 0
        h = 0
        for i, mask in enumerate(self._masks):
            h |= _parity(line_addr & mask) << i
        return self._perm[h] % self.n_slices


def make_slice_hash(kind: str, n_slices: int, seed: int = 0, width: int = 30) -> SliceHash:
    """Create a slice hash of the configured family.

    ``kind`` is ``"linear"`` or ``"complex"``.  ``"linear"`` falls back to
    the complex hash when the slice count is not a power of two, mirroring
    real parts where only power-of-two SKUs use the plain XOR hash.
    """
    if kind not in ("linear", "complex"):
        raise ConfigurationError(f"unknown slice hash kind {kind!r}")
    if kind == "linear" and n_slices & (n_slices - 1) == 0:
        return LinearSliceHash(n_slices, seed=seed, width=width)
    return ComplexSliceHash(n_slices, seed=seed, width=width)
