"""Fused attack kernels over the flat data plane (DESIGN.md §2.3).

The PR-2 data plane made individual cache operations cheap; what remained
expensive was the Python orchestration *around* them: every
``TestEviction`` crosses the Machine call boundary several times per
candidate (flush, traverse, reload), re-translates the same candidate
pool, and re-hashes the same slice indices thousands of times per trial.
This module fuses those loops:

* :class:`TranslationPlane` — per candidate pool, precompute flat parallel
  tuples of ``va -> (line, l1_set, l2_set, shared_set, slice)`` plus the
  ``_where``-dict keys for every structure, once, and reuse them across
  all group-testing rounds (:class:`PlaneRows`).
* :class:`AttackKernels` — hierarchy-level kernels that walk those arrays
  with the per-line control flow of the unfused path expanded inline:
  ``test_eviction_kernel`` (prime + flush + traversal + timed reload),
  ``test_many_kernel`` (one translated traversal amortized over N
  targets), and ``prime_probe_kernel`` (the monitors' prime/probe
  rounds).

The RNG-order contract (what keeps trials bit-identical)
--------------------------------------------------------

Every kernel must consume the machine's RNG streams in exactly the
per-access order of the unfused path it replaces:

* the **hierarchy RNG** is drawn by ``_sf_install`` (reuse predictor) and
  ``_handle_l2_victim`` (victim-to-LLC), in cache-operation order;
* the **noise RNG** is drawn by per-set reconciliation (SF block before
  LLC block, one draw per structure in the common case — the inline
  blocks below mirror ``BackgroundNoise.reconcile`` statement for
  statement, including the ``lam < 0.01`` Bernoulli fast path);
* the **preempt RNG** is drawn once per batch/flush/timed access with a
  positive elapsed time, and the **jitter RNG** once per timed access.

Because clock advances determine reconciliation windows (and therefore
noise draws), kernels also charge exactly the cycles the unfused path
charges.  A kernel may *elide* an operation only when it is provably a
no-op on all state and all RNG streams (e.g. the second reconciliation
of a set at an unchanged ``now``, or a ``remove`` of an absent tag).
The parity gates are ``tests/test_kernel_parity.py`` (fused vs. unfused:
verdicts, stats, clock, and RNG ``getstate()`` across modes and noise
levels) and the golden fingerprints of ``tests/test_dataplane_parity.py``
(which run with kernels engaged); ``repro.memsys._reference`` remains
the oracle underneath both.

When to add a new kernel: only when a profile shows a per-line Python
loop above the Machine boundary, and only with both parity suites
extended first — see DESIGN.md §2.3.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from .._util import poisson
from ..cloud.noise import BackgroundNoise
from ..rng import S_NOISE_LLC, S_NOISE_SF
from .cache import SetAssociativeCache
from .hierarchy import (
    _NOISE_TAG_BASE,
    NOISE_OWNER,
    SHARED_OWNER,
    CacheHierarchy,
    Level,
)
from .policy_tables import TreePLRU8Table

#: Module-wide kill switch: the rewired call sites fall back to their
#: unfused implementations when False.  The parity suite and the perf
#: benchmark flip it to measure both paths in one process.
KERNELS_ENABLED = True


@contextmanager
def kernels_disabled():
    """Temporarily run every rewired call site on its unfused path."""
    global KERNELS_ENABLED
    saved = KERNELS_ENABLED
    KERNELS_ENABLED = False
    try:
        yield
    finally:
        KERNELS_ENABLED = saved


class PlaneRows:
    """Precomputed address geometry for one candidate tuple.

    Parallel tuples, one entry per VA.  The ``*_keys`` columns are the
    ``_where``-dict keys (``tag * n_sets + set_idx``) for the private
    caches and the shared structures — the kernels' hit tests are a
    single dict probe on a precomputed int.
    """

    __slots__ = (
        "vas",
        "lines",
        "l1_sets",
        "l2_sets",
        "shared_sets",
        "slices",
        "l1_keys",
        "l2_keys",
        "shared_keys",
    )

    def __init__(
        self,
        vas: Tuple[int, ...],
        lines: Tuple[int, ...],
        l1_sets: Tuple[int, ...],
        l2_sets: Tuple[int, ...],
        shared_sets: Tuple[int, ...],
        slices: Tuple[int, ...],
        l1_keys: Tuple[int, ...],
        l2_keys: Tuple[int, ...],
        shared_keys: Tuple[int, ...],
    ) -> None:
        self.vas = vas
        self.lines = lines
        self.l1_sets = l1_sets
        self.l2_sets = l2_sets
        self.shared_sets = shared_sets
        self.slices = slices
        self.l1_keys = l1_keys
        self.l2_keys = l2_keys
        self.shared_keys = shared_keys

    def __len__(self) -> int:
        return len(self.vas)


class TranslationPlane:
    """Pool-level VA -> geometry cache shared by every kernel call.

    Translation (``AddressSpace.translate_line``) and slice hashing are
    pure functions of the established page mapping, so caching them is
    parity-free; :meth:`invalidate` is the hook for address-space
    changes (page remaps), wired to
    ``AttackerContext.invalidate_translations``.
    """

    #: Row-tuple memo bound: group-testing "rest" lists and extension
    #: probes produce unbounded distinct tuples; clearing wholesale is
    #: cheaper than LRU bookkeeping at this size.
    _MEMO_CAP = 512

    __slots__ = ("_hier", "_translate", "_geo", "_memo", "_l1_nsets",
                 "_l2_nsets", "_shared_nsets", "_l1_mask", "_l2_mask",
                 "_sets_per_slice")

    def __init__(self, hierarchy: CacheHierarchy, translate) -> None:
        cfg = hierarchy.cfg
        self._hier = hierarchy
        self._translate = translate  # va -> physical line (pure)
        self._geo: Dict[int, tuple] = {}
        self._memo: Dict[Tuple[int, ...], PlaneRows] = {}
        self._l1_nsets = cfg.l1.sets
        self._l2_nsets = cfg.l2.sets
        self._shared_nsets = cfg.llc.total_sets
        self._l1_mask = hierarchy._l1_mask
        self._l2_mask = hierarchy._l2_mask
        self._sets_per_slice = hierarchy._shared_sets_per_slice

    def _add(self, va: int) -> tuple:
        line = self._translate(va)
        sidx = self._hier.shared_set_index(line)
        s1 = line & self._l1_mask
        s2 = line & self._l2_mask
        rec = (
            line,
            s1,
            s2,
            sidx,
            sidx // self._sets_per_slice,
            line * self._l1_nsets + s1,
            line * self._l2_nsets + s2,
            line * self._shared_nsets + sidx,
        )
        self._geo[va] = rec
        return rec

    def row(self, va: int) -> tuple:
        """(line, l1_set, l2_set, shared_set, slice, l1_key, l2_key, shared_key)."""
        rec = self._geo.get(va)
        if rec is None:
            rec = self._add(va)
        return rec

    def line(self, va: int) -> int:
        return self.row(va)[0]

    def rows(self, vas: Sequence[int]) -> PlaneRows:
        """Geometry columns for a candidate tuple (memoized per tuple).

        Tuples of one or two addresses (Prime+Scope's per-candidate
        traversals, SF extension probes) are built but not memoized —
        they would thrash the memo without ever being reused.
        """
        key = vas if type(vas) is tuple else tuple(vas)
        memo = self._memo
        r = memo.get(key)
        if r is not None:
            return r
        geo = self._geo
        add = self._add
        recs = [geo.get(va) or add(va) for va in key]
        cols = tuple(zip(*recs)) if recs else ((),) * 8
        r = PlaneRows(key, *cols)
        if len(key) > 2:
            if len(memo) >= self._MEMO_CAP:
                memo.clear()
            memo[key] = r
        return r

    def warm(self, vas: Sequence[int]) -> None:
        """Eagerly translate a pool (candidate-set construction time)."""
        geo = self._geo
        add = self._add
        for va in vas:
            if va not in geo:
                add(va)

    def invalidate(self) -> None:
        """Drop every cached translation (address-space change hook)."""
        self._geo.clear()
        self._memo.clear()

    @property
    def cached_addresses(self) -> int:
        return len(self._geo)


class AttackKernels:
    """Fused kernels bound to one machine and attacker core pair.

    Each public method is the batched equivalent of an unfused call
    sequence, named in its docstring; the parity suite runs both and
    diffs the complete observable state.
    """

    __slots__ = ("machine", "hierarchy", "main_core", "helper_core", "plane")

    def __init__(self, machine, plane: TranslationPlane,
                 main_core: int = 0, helper_core: int = 1) -> None:
        self.machine = machine
        self.hierarchy = machine.hierarchy
        self.main_core = main_core
        self.helper_core = helper_core
        self.plane = plane

    def engaged(self) -> bool:
        """Whether every structure the kernels poke is the flat plane.

        Duck-typed stand-ins (the seed reference oracle, defense
        wrappers like ``WayPartitionedCache``, test doubles for the
        noise source) disengage the kernels entirely — same rule as
        ``CacheHierarchy.access_many``.
        """
        hier = self.hierarchy
        if type(hier) is not CacheHierarchy:
            return False
        flat = SetAssociativeCache
        if type(hier.sf) is not flat or type(hier.llc) is not flat:
            return False
        for cache in hier.l1:
            if type(cache) is not flat:
                return False
        for cache in hier.l2:
            if type(cache) is not flat:
                return False
        noise = hier.noise_source
        return noise is None or type(noise) is BackgroundNoise

    # -- Fused flush ---------------------------------------------------------

    def flush_rows(self, rows: PlaneRows, count: int) -> int:
        """Mirror of ``Machine.flush_batch(rows.lines[:count])``.

        Per line: private invalidations by precomputed key (the common
        case — tag absent — is one dict probe, no call), inline noise
        reconciliation, inline SF then LLC removal.
        """
        m = self.machine
        if not count:
            return 0
        m._drain_events()
        hier = self.hierarchy
        now = m.now
        lines = rows.lines
        l1_sets = rows.l1_sets
        l2_sets = rows.l2_sets
        sidxs = rows.shared_sets
        l1_keys = rows.l1_keys
        l2_keys = rows.l2_keys
        skeys = rows.shared_keys
        # flush_line removes from cores in ascending order, L1 then L2
        # per core.  The caches are independent (disjoint state, no
        # shared counters or RNG), so visiting all L1s then all L2s is
        # unobservable — proven by the parity suite.
        l1_probe = [(c._where, c.remove) for c in hier.l1]
        l2_probe = [(c._where, c.remove) for c in hier.l2]
        sf = hier.sf
        llc = hier.llc
        sf_where = sf._where
        sf_tags = sf._tags
        sf_owners = sf._owners
        sf_occ = sf._occ
        sf_state = sf._state
        sf_lru = sf._lru
        sf_pinv = sf._pt_invalidate
        sf_pstride = sf._pstride
        sf_ways = sf.ways
        llc_where = llc._where
        llc_tags = llc._tags
        llc_owners = llc._owners
        llc_occ = llc._occ
        llc_state = llc._state
        llc_lru = llc._lru
        llc_pinv = llc._pt_invalidate
        llc_pstride = llc._pstride
        llc_ways = llc.ways
        noise = hier.noise_source
        if noise is not None:
            nrng = noise._rng
            nrand = nrng.random
            crng = noise.crng
            sf_rate = noise._sf_rate
            llc_rate = noise._llc_rate
            sf_nt = sf._noise_t
            sf_tt = sf._touched
            llc_nt = llc._noise_t
            llc_tt = llc._touched
            sf_cap = 3 * sf_ways
            llc_cap = 3 * llc_ways
            ins_sf = hier.noise_insert_sf
            ins_llc = hier.noise_insert_llc
        for j in range(count):
            line = lines[j]
            k1 = l1_keys[j]
            s1 = l1_sets[j]
            for where, rm in l1_probe:
                if k1 in where:
                    rm(s1, line)
            k2 = l2_keys[j]
            s2 = l2_sets[j]
            for where, rm in l2_probe:
                if k2 in where:
                    rm(s2, line)
            sidx = sidxs[j]
            if noise is not None:
                # Inline BackgroundNoise.reconcile (SF block, LLC block).
                if sf_rate > 0.0:
                    if not sf_tt[sidx]:
                        sf_tt[sidx] = 1
                        sf._touched_count += 1
                    old = sf_nt[sidx]
                    if now > old:
                        sf_nt[sidx] = now
                        lam = sf_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_SF, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > sf_cap:
                                n = sf_cap
                            for _ in range(n):
                                ins_sf(sidx)
                            noise.events += n
                if llc_rate > 0.0:
                    if not llc_tt[sidx]:
                        llc_tt[sidx] = 1
                        llc._touched_count += 1
                    old = llc_nt[sidx]
                    if now > old:
                        llc_nt[sidx] = now
                        lam = llc_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_LLC, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > llc_cap:
                                n = llc_cap
                            for _ in range(n):
                                ins_llc(sidx)
                            noise.events += n
            sk = skeys[j]
            slot = sf_where.get(sk)
            if slot is not None:  # inline SetAssociativeCache.remove
                del sf_where[sk]
                sf_tags[slot] = None
                sf_owners[slot] = 0
                sf_occ[sidx] -= 1
                if sf_lru is not None:
                    sf_lru._inv_stamp = stamp = sf_lru._inv_stamp - 1
                    sf_state[slot] = stamp
                else:
                    sf_pinv(sf_state, sidx * sf_pstride, slot - sidx * sf_ways)
            slot = llc_where.get(sk)
            if slot is not None:
                del llc_where[sk]
                llc_tags[slot] = None
                llc_owners[slot] = 0
                llc_occ[sidx] -= 1
                if llc_lru is not None:
                    llc_lru._inv_stamp = stamp = llc_lru._inv_stamp - 1
                    llc_state[slot] = stamp
                else:
                    llc_pinv(llc_state, sidx * llc_pstride, slot - sidx * llc_ways)
        hier.stats.flushes += count
        lat = m.cfg.latency
        cost = lat.flush + (count - 1) * lat.flush_gap
        cost += m._preemption_penalty(cost)
        m.advance(cost)
        return cost

    # -- Fused traversal sweeps ---------------------------------------------

    def load_sweep(self, rows: PlaneRows, count: int, shared: bool = False) -> int:
        """Mirror of ``Machine.access_batch(main, lines)`` — and, with
        ``shared=True``, of the shadowed form (helper-core access per
        line, main-core progress costed).

        The full read cascade of ``CacheHierarchy.access`` is expanded
        inline, including the post-flush miss path (SF install, private
        fill, DRAM) that dominates construction traversals.  The helper
        access skips its reconciliation: at an unchanged ``now`` the
        second reconcile of the same set draws nothing and moves no
        clock, so eliding it is a proven no-op.
        """
        m = self.machine
        if not count:
            return 0
        events = m._events
        if events and events[0][0] <= m.now:
            m._drain_events()
        m.batch_calls += 1
        m.batch_lines += count
        hier = self.hierarchy
        now = m.now
        core = self.main_core
        stats = hier.stats
        lat = m.cfg.latency
        lat_l1 = lat.l1_hit
        lat_l2 = lat.l2_hit
        lat_llc = lat.llc_hit
        lat_dram = lat.dram
        hit_gap = lat.hit_issue_gap
        miss_gap = lat.issue_gap
        lines = rows.lines
        l1_sets = rows.l1_sets
        l2_sets = rows.l2_sets
        sidxs = rows.shared_sets
        l1_keys = rows.l1_keys
        l2_keys = rows.l2_keys
        skeys = rows.shared_keys
        l1 = hier.l1[core]
        l2 = hier.l2[core]
        l1_where = l1._where
        l1_state = l1._state
        l1_lru = l1._lru
        l1_rrip = l1._rrip
        l1_ptouch = l1._pt_touch
        l1_pstride = l1._pstride
        l1_ways = l1.ways
        l1_insert = l1.insert
        l1_tree8 = type(l1._pol) is TreePLRU8Table
        l1_tags = l1._tags
        l1_owners = l1._owners
        l1_occ = l1._occ
        l1_nsets = l1.n_sets
        l1_pvict = l1._pt_victim
        l1_pfill = l1._pt_fill
        l1_tb = l1._touched
        l2_where = l2._where
        l2_state = l2._state
        l2_lru = l2._lru
        l2_rrip = l2._rrip
        l2_ptouch = l2._pt_touch
        l2_pstride = l2._pstride
        l2_ways = l2.ways
        l2_tags = l2._tags
        l2_owners = l2._owners
        l2_occ = l2._occ
        l2_nsets = l2.n_sets
        l2_pvict = l2._pt_victim
        l2_pfill = l2._pt_fill
        l2_tb = l2._touched
        sf = hier.sf
        llc = hier.llc
        sf_where = sf._where
        sf_owners = sf._owners
        sf_tags = sf._tags
        sf_occ = sf._occ
        sf_state = sf._state
        sf_lru = sf._lru
        sf_rrip = sf._rrip
        sf_ptouch = sf._pt_touch
        sf_pinv = sf._pt_invalidate
        sf_pvict = sf._pt_victim
        sf_pfill = sf._pt_fill
        sf_pstride = sf._pstride
        sf_ways = sf.ways
        sf_nsets = sf.n_sets
        sf_tb = sf._touched
        llc_where = llc._where
        llc_state = llc._state
        llc_lru = llc._lru
        llc_rrip = llc._rrip
        llc_ptouch = llc._pt_touch
        llc_pstride = llc._pstride
        llc_ways = llc.ways
        llc_insert = llc.insert
        llc_tags = llc._tags
        llc_owners = llc._owners
        llc_occ = llc._occ
        llc_nsets = llc.n_sets
        llc_pvict = llc._pt_victim
        llc_pfill = llc._pt_fill
        llc_tb = llc._touched
        hrand = hier._rng.random
        reuse_p = hier.cfg.reuse_predictor_p
        reuse_take = hier._reuse_take if hier.crng is not None else None
        handle_victim = hier._handle_l2_victim
        sidx_get = hier._sidx_memo.get
        shared_set_index = hier.shared_set_index
        l1_mask = hier._l1_mask
        l2_mask = hier._l2_mask
        l1_probe = [(c._where, c.remove) for c in hier.l1]
        l2_probe = [(c._where, c.remove) for c in hier.l2]

        # _invalidate_private_everywhere with the absent-tag probes done
        # by precomputed key; visiting all L1s then all L2s instead of
        # per-core (L1, L2) pairs is unobservable — the caches are
        # independent (same reorder as flush_rows).
        def inv_everywhere(etag):
            s1 = etag & l1_mask
            k1 = etag * l1_nsets + s1
            for w, rm in l1_probe:
                if k1 in w:
                    rm(s1, etag)
            s2 = etag & l2_mask
            k2 = etag * l2_nsets + s2
            for w, rm in l2_probe:
                if k2 in w:
                    rm(s2, etag)

        def inv_private(eowner, etag):  # _invalidate_private, probed
            s1 = etag & l1_mask
            w, rm = l1_probe[eowner]
            if etag * l1_nsets + s1 in w:
                rm(s1, etag)
            s2 = etag & l2_mask
            w, rm = l2_probe[eowner]
            if etag * l2_nsets + s2 in w:
                rm(s2, etag)

        if shared:
            helper = self.helper_core
            h1c = hier.l1[helper]
            h2c = hier.l2[helper]
            h1_where = h1c._where
            h1_state = h1c._state
            h1_lru = h1c._lru
            h1_rrip = h1c._rrip
            h1_ptouch = h1c._pt_touch
            h1_pstride = h1c._pstride
            h1_ways = h1c.ways
            h1_insert = h1c.insert
            h1_tree8 = type(h1c._pol) is TreePLRU8Table
            h1_tags = h1c._tags
            h1_owners = h1c._owners
            h1_occ = h1c._occ
            h1_pvict = h1c._pt_victim
            h1_pfill = h1c._pt_fill
            h1_tb = h1c._touched
            h2_where = h2c._where
            h2_state = h2c._state
            h2_lru = h2c._lru
            h2_rrip = h2c._rrip
            h2_ptouch = h2c._pt_touch
            h2_pstride = h2c._pstride
            h2_ways = h2c.ways
            h2_tags = h2c._tags
            h2_owners = h2c._owners
            h2_occ = h2c._occ
            h2_pvict = h2c._pt_victim
            h2_pfill = h2c._pt_fill
            h2_tb = h2c._touched
        noise = hier.noise_source
        if noise is not None:
            nrng = noise._rng
            nrand = nrng.random
            crng = noise.crng
            sf_rate = noise._sf_rate
            llc_rate = noise._llc_rate
            sf_nt = sf._noise_t
            sf_tt = sf._touched
            llc_nt = llc._noise_t
            llc_tt = llc._touched
            sf_cap = 3 * sf_ways
            llc_cap = 3 * llc_ways
            ins_sf = hier.noise_insert_sf
            ins_llc = hier.noise_insert_llc
        hits1 = hits2 = acc = 0
        hh1 = hh2 = 0
        llc_hits = dram = sft = llc_pt = back_inv = 0
        l1f = l1v = l2f = l2v = h1f = h1v = h2f = h2v = 0
        sff = sfv = sf_pt = llcf = llcv = 0
        worst = 0
        gaps = 0
        for j in range(count):
            line = lines[j]
            sidx = sidxs[j]
            if noise is not None:
                # Inline BackgroundNoise.reconcile (see flush_rows).
                if sf_rate > 0.0:
                    if not sf_tt[sidx]:
                        sf_tt[sidx] = 1
                        sf._touched_count += 1
                    old = sf_nt[sidx]
                    if now > old:
                        sf_nt[sidx] = now
                        lam = sf_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_SF, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > sf_cap:
                                n = sf_cap
                            for _ in range(n):
                                ins_sf(sidx)
                            noise.events += n
                if llc_rate > 0.0:
                    if not llc_tt[sidx]:
                        llc_tt[sidx] = 1
                        llc._touched_count += 1
                    old = llc_nt[sidx]
                    if now > old:
                        llc_nt[sidx] = now
                        lam = llc_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_LLC, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > llc_cap:
                                n = llc_cap
                            for _ in range(n):
                                ins_llc(sidx)
                            noise.events += n
            # Main-core read: CacheHierarchy.access inline.
            set_idx = l1_sets[j]
            slot = l1_where.get(l1_keys[j])
            if slot is not None:
                hits1 += 1
                if l1_tree8:
                    base = set_idx * 7
                    way = slot - set_idx * 8
                    b0 = (way >> 2) & 1
                    l1_state[base] = 1 - b0
                    b1 = (way >> 1) & 1
                    node = 1 + b0
                    l1_state[base + node] = 1 - b1
                    l1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                elif l1_lru is not None:
                    l1_lru._stamp = stamp = l1_lru._stamp + 1
                    l1_state[slot] = stamp
                elif l1_rrip:
                    l1_state[slot] = 0
                else:
                    l1_ptouch(l1_state, set_idx * l1_pstride, slot - set_idx * l1_ways)
                lt = lat_l1
                gp = hit_gap
            else:
                l2_idx = l2_sets[j]
                slot2 = l2_where.get(l2_keys[j])
                if slot2 is not None:
                    hits2 += 1
                    if l2_lru is not None:
                        l2_lru._stamp = stamp = l2_lru._stamp + 1
                        l2_state[slot2] = stamp
                    elif l2_rrip:
                        l2_state[slot2] = 0
                    else:
                        l2_ptouch(l2_state, l2_idx * l2_pstride, slot2 - l2_idx * l2_ways)
                    l1_insert(set_idx, line, core)
                    lt = lat_l2
                    gp = hit_gap
                else:
                    acc += 1
                    sk = skeys[j]
                    sslot = sf_where.get(sk)
                    if sslot is not None:
                        owner = sf_owners[sslot]
                        if owner == core or owner == NOISE_OWNER:
                            # Retake: sf.insert on a present tag degrades
                            # to a recency touch + owner rewrite.
                            sf_owners[sslot] = core
                            if sf_lru is not None:
                                sf_lru._stamp = stamp = sf_lru._stamp + 1
                                sf_state[sslot] = stamp
                            elif sf_rrip:
                                sf_state[sslot] = 0
                            else:
                                sf_ptouch(sf_state, sidx * sf_pstride,
                                          sslot - sidx * sf_ways)
                            sf_pt += 1
                            dram += 1
                            lt = lat_dram
                        else:
                            # SF transfer: line becomes shared.
                            del sf_where[sk]
                            sf_tags[sslot] = None
                            sf_owners[sslot] = 0
                            sf_occ[sidx] -= 1
                            if sf_lru is not None:
                                sf_lru._inv_stamp = stamp = sf_lru._inv_stamp - 1
                                sf_state[sslot] = stamp
                            else:
                                sf_pinv(sf_state, sidx * sf_pstride,
                                        sslot - sidx * sf_ways)
                            # LLC shared install, insert inline.
                            lslot = llc_where.get(sk)
                            if lslot is not None:
                                llc_owners[lslot] = SHARED_OWNER
                                if llc_lru is not None:
                                    llc_lru._stamp = stamp = llc_lru._stamp + 1
                                    llc_state[lslot] = stamp
                                elif llc_rrip:
                                    llc_state[lslot] = 0
                                else:
                                    llc_ptouch(llc_state, sidx * llc_pstride,
                                               lslot - sidx * llc_ways)
                                llc_pt += 1
                            else:
                                llc_base = sidx * llc_ways
                                if llc_occ[sidx] < llc_ways:
                                    lslot = llc_tags.index(
                                        None, llc_base, llc_base + llc_ways)
                                    wayl = lslot - llc_base
                                    llc_occ[sidx] += 1
                                    etag2 = None
                                else:
                                    if llc_lru is not None:
                                        seg = llc_state[llc_base:llc_base + llc_ways]
                                        wayl = seg.index(min(seg))
                                    else:
                                        wayl = llc_pvict(llc_state,
                                                         sidx * llc_pstride)
                                    llcv += 1
                                    lslot = llc_base + wayl
                                    etag2 = llc_tags[lslot]
                                    del llc_where[etag2 * llc_nsets + sidx]
                                llc_tags[lslot] = line
                                llc_owners[lslot] = SHARED_OWNER
                                llc_where[sk] = lslot
                                if llc_lru is not None:
                                    llc_lru._stamp = stamp = llc_lru._stamp + 1
                                    llc_state[lslot] = stamp
                                else:
                                    llc_pfill(llc_state, sidx * llc_pstride, wayl)
                                llcf += 1
                                if not llc_tb[sidx]:
                                    llc_tb[sidx] = 1
                                    llc._touched_count += 1
                                if etag2 is not None and etag2 < _NOISE_TAG_BASE:
                                    inv_everywhere(etag2)
                            sft += 1
                            lt = lat_llc
                    else:
                        lslot = llc_where.get(sk)
                        if lslot is not None:
                            llc_hits += 1
                            llc_pt += 1
                            if llc_lru is not None:
                                llc_lru._stamp = stamp = llc_lru._stamp + 1
                                llc_state[lslot] = stamp
                            elif llc_rrip:
                                llc_state[lslot] = 0
                            else:
                                llc_ptouch(llc_state, sidx * llc_pstride,
                                           lslot - sidx * llc_ways)
                            lt = lat_llc
                        else:
                            # Miss everywhere: _sf_install, insert inline.
                            sf_base = sidx * sf_ways
                            if sf_occ[sidx] < sf_ways:
                                fslot = sf_tags.index(
                                    None, sf_base, sf_base + sf_ways)
                                wayf = fslot - sf_base
                                sf_occ[sidx] += 1
                                etag = None
                            else:
                                if sf_lru is not None:
                                    seg = sf_state[sf_base:sf_base + sf_ways]
                                    wayf = seg.index(min(seg))
                                else:
                                    wayf = sf_pvict(sf_state, sidx * sf_pstride)
                                sfv += 1
                                fslot = sf_base + wayf
                                etag = sf_tags[fslot]
                                eowner = sf_owners[fslot]
                                del sf_where[etag * sf_nsets + sidx]
                            sf_tags[fslot] = line
                            sf_owners[fslot] = core
                            sf_where[sk] = fslot
                            if sf_lru is not None:
                                sf_lru._stamp = stamp = sf_lru._stamp + 1
                                sf_state[fslot] = stamp
                            else:
                                sf_pfill(sf_state, sidx * sf_pstride, wayf)
                            sff += 1
                            if not sf_tb[sidx]:
                                sf_tb[sidx] = 1
                                sf._touched_count += 1
                            if etag is not None:
                                if eowner >= 0:
                                    inv_private(eowner, etag)
                                    back_inv += 1
                                if ((hrand() < reuse_p) if reuse_take is None
                                        else reuse_take(sidx)):
                                    ev2 = llc_insert(sidx, etag, SHARED_OWNER)
                                    if ev2 is not None and ev2[0] < _NOISE_TAG_BASE:
                                        inv_everywhere(ev2[0])
                            dram += 1
                            lt = lat_dram
                    # Fill private (L2 then L1), insert + victim
                    # disposition inline; _handle_l2_victim only runs
                    # when its SF-ownership guard would fire.
                    l2_base = l2_idx * l2_ways
                    if l2_occ[l2_idx] < l2_ways:
                        slot2 = l2_tags.index(None, l2_base, l2_base + l2_ways)
                        way2 = slot2 - l2_base
                        l2_occ[l2_idx] += 1
                        vline = None
                    else:
                        if l2_lru is not None:
                            seg = l2_state[l2_base:l2_base + l2_ways]
                            way2 = seg.index(min(seg))
                        else:
                            way2 = l2_pvict(l2_state, l2_idx * l2_pstride)
                        l2v += 1
                        slot2 = l2_base + way2
                        vline = l2_tags[slot2]
                        del l2_where[vline * l2_nsets + l2_idx]
                    l2_tags[slot2] = line
                    l2_owners[slot2] = core
                    l2_where[l2_keys[j]] = slot2
                    if l2_lru is not None:
                        l2_lru._stamp = stamp = l2_lru._stamp + 1
                        l2_state[slot2] = stamp
                    else:
                        l2_pfill(l2_state, l2_idx * l2_pstride, way2)
                    l2f += 1
                    if not l2_tb[l2_idx]:
                        l2_tb[l2_idx] = 1
                        l2._touched_count += 1
                    if vline is not None:
                        vsid = sidx_get(vline)
                        if vsid is None:
                            vsid = shared_set_index(vline)
                        vslot = sf_where.get(vline * sf_nsets + vsid)
                        if vslot is not None and sf_owners[vslot] == core:
                            handle_victim(core, vline, now)
                    # L1 fill (victims are silent).
                    l1_base = set_idx * l1_ways
                    if l1_occ[set_idx] < l1_ways:
                        slot = l1_tags.index(None, l1_base, l1_base + l1_ways)
                        way1 = slot - l1_base
                        l1_occ[set_idx] += 1
                    else:
                        if l1_tree8:
                            sbase = set_idx * 7
                            b0 = l1_state[sbase]
                            node = 1 + b0
                            b1 = l1_state[sbase + node]
                            way1 = ((b0 << 2) | (b1 << 1)
                                    | l1_state[sbase + 2 * node + 1 + b1])
                        elif l1_lru is not None:
                            seg = l1_state[l1_base:l1_base + l1_ways]
                            way1 = seg.index(min(seg))
                        else:
                            way1 = l1_pvict(l1_state, set_idx * l1_pstride)
                        l1v += 1
                        slot = l1_base + way1
                        del l1_where[l1_tags[slot] * l1_nsets + set_idx]
                    l1_tags[slot] = line
                    l1_owners[slot] = core
                    l1_where[l1_keys[j]] = slot
                    if l1_tree8:
                        sbase = set_idx * 7
                        b0 = (way1 >> 2) & 1
                        l1_state[sbase] = 1 - b0
                        b1 = (way1 >> 1) & 1
                        node = 1 + b0
                        l1_state[sbase + node] = 1 - b1
                        l1_state[sbase + 2 * node + 1 + b1] = 1 - (way1 & 1)
                    elif l1_lru is not None:
                        l1_lru._stamp = stamp = l1_lru._stamp + 1
                        l1_state[slot] = stamp
                    else:
                        l1_pfill(l1_state, set_idx * l1_pstride, way1)
                    l1f += 1
                    if not l1_tb[set_idx]:
                        l1_tb[set_idx] = 1
                        l1._touched_count += 1
                    gp = miss_gap
            if lt > worst:
                worst = lt
            gaps += gp
            if not shared:
                continue
            # Helper-core shadow read (reconcile elided: dt == 0).
            slot = h1_where.get(l1_keys[j])
            if slot is not None:
                hh1 += 1
                if h1_tree8:
                    base = set_idx * 7
                    way = slot - set_idx * 8
                    b0 = (way >> 2) & 1
                    h1_state[base] = 1 - b0
                    b1 = (way >> 1) & 1
                    node = 1 + b0
                    h1_state[base + node] = 1 - b1
                    h1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                elif h1_lru is not None:
                    h1_lru._stamp = stamp = h1_lru._stamp + 1
                    h1_state[slot] = stamp
                elif h1_rrip:
                    h1_state[slot] = 0
                else:
                    h1_ptouch(h1_state, set_idx * h1_pstride, slot - set_idx * h1_ways)
                continue
            l2_idx = l2_sets[j]
            slot2 = h2_where.get(l2_keys[j])
            if slot2 is not None:
                hh2 += 1
                if h2_lru is not None:
                    h2_lru._stamp = stamp = h2_lru._stamp + 1
                    h2_state[slot2] = stamp
                elif h2_rrip:
                    h2_state[slot2] = 0
                else:
                    h2_ptouch(h2_state, l2_idx * h2_pstride, slot2 - l2_idx * h2_ways)
                h1_insert(set_idx, line, helper)
                continue
            acc += 1
            sk = skeys[j]
            sslot = sf_where.get(sk)
            if sslot is not None:
                owner = sf_owners[sslot]
                if owner == helper or owner == NOISE_OWNER:
                    # Retake (see the main-core cascade).
                    sf_owners[sslot] = helper
                    if sf_lru is not None:
                        sf_lru._stamp = stamp = sf_lru._stamp + 1
                        sf_state[sslot] = stamp
                    elif sf_rrip:
                        sf_state[sslot] = 0
                    else:
                        sf_ptouch(sf_state, sidx * sf_pstride,
                                  sslot - sidx * sf_ways)
                    sf_pt += 1
                    dram += 1
                else:
                    # The main core's private line read by the helper —
                    # the transition that makes eviction-set lines shared.
                    del sf_where[sk]
                    sf_tags[sslot] = None
                    sf_owners[sslot] = 0
                    sf_occ[sidx] -= 1
                    if sf_lru is not None:
                        sf_lru._inv_stamp = stamp = sf_lru._inv_stamp - 1
                        sf_state[sslot] = stamp
                    else:
                        sf_pinv(sf_state, sidx * sf_pstride, sslot - sidx * sf_ways)
                    lslot = llc_where.get(sk)
                    if lslot is not None:
                        llc_owners[lslot] = SHARED_OWNER
                        if llc_lru is not None:
                            llc_lru._stamp = stamp = llc_lru._stamp + 1
                            llc_state[lslot] = stamp
                        elif llc_rrip:
                            llc_state[lslot] = 0
                        else:
                            llc_ptouch(llc_state, sidx * llc_pstride,
                                       lslot - sidx * llc_ways)
                        llc_pt += 1
                    else:
                        llc_base = sidx * llc_ways
                        if llc_occ[sidx] < llc_ways:
                            lslot = llc_tags.index(
                                None, llc_base, llc_base + llc_ways)
                            wayl = lslot - llc_base
                            llc_occ[sidx] += 1
                            etag2 = None
                        else:
                            if llc_lru is not None:
                                seg = llc_state[llc_base:llc_base + llc_ways]
                                wayl = seg.index(min(seg))
                            else:
                                wayl = llc_pvict(llc_state, sidx * llc_pstride)
                            llcv += 1
                            lslot = llc_base + wayl
                            etag2 = llc_tags[lslot]
                            del llc_where[etag2 * llc_nsets + sidx]
                        llc_tags[lslot] = line
                        llc_owners[lslot] = SHARED_OWNER
                        llc_where[sk] = lslot
                        if llc_lru is not None:
                            llc_lru._stamp = stamp = llc_lru._stamp + 1
                            llc_state[lslot] = stamp
                        else:
                            llc_pfill(llc_state, sidx * llc_pstride, wayl)
                        llcf += 1
                        if not llc_tb[sidx]:
                            llc_tb[sidx] = 1
                            llc._touched_count += 1
                        if etag2 is not None and etag2 < _NOISE_TAG_BASE:
                            inv_everywhere(etag2)
                    sft += 1
            else:
                lslot = llc_where.get(sk)
                if lslot is not None:
                    llc_hits += 1
                    llc_pt += 1
                    if llc_lru is not None:
                        llc_lru._stamp = stamp = llc_lru._stamp + 1
                        llc_state[lslot] = stamp
                    elif llc_rrip:
                        llc_state[lslot] = 0
                    else:
                        llc_ptouch(llc_state, sidx * llc_pstride, lslot - sidx * llc_ways)
                else:
                    # Miss everywhere: _sf_install, insert inline.
                    sf_base = sidx * sf_ways
                    if sf_occ[sidx] < sf_ways:
                        fslot = sf_tags.index(None, sf_base, sf_base + sf_ways)
                        wayf = fslot - sf_base
                        sf_occ[sidx] += 1
                        etag = None
                    else:
                        if sf_lru is not None:
                            seg = sf_state[sf_base:sf_base + sf_ways]
                            wayf = seg.index(min(seg))
                        else:
                            wayf = sf_pvict(sf_state, sidx * sf_pstride)
                        sfv += 1
                        fslot = sf_base + wayf
                        etag = sf_tags[fslot]
                        eowner = sf_owners[fslot]
                        del sf_where[etag * sf_nsets + sidx]
                    sf_tags[fslot] = line
                    sf_owners[fslot] = helper
                    sf_where[sk] = fslot
                    if sf_lru is not None:
                        sf_lru._stamp = stamp = sf_lru._stamp + 1
                        sf_state[fslot] = stamp
                    else:
                        sf_pfill(sf_state, sidx * sf_pstride, wayf)
                    sff += 1
                    if not sf_tb[sidx]:
                        sf_tb[sidx] = 1
                        sf._touched_count += 1
                    if etag is not None:
                        if eowner >= 0:
                            inv_private(eowner, etag)
                            back_inv += 1
                        if ((hrand() < reuse_p) if reuse_take is None
                                else reuse_take(sidx)):
                            ev2 = llc_insert(sidx, etag, SHARED_OWNER)
                            if ev2 is not None and ev2[0] < _NOISE_TAG_BASE:
                                inv_everywhere(ev2[0])
                    dram += 1
            # Fill the helper's private caches (see the main-core block).
            l2_base = l2_idx * h2_ways
            if h2_occ[l2_idx] < h2_ways:
                slot2 = h2_tags.index(None, l2_base, l2_base + h2_ways)
                way2 = slot2 - l2_base
                h2_occ[l2_idx] += 1
                vline = None
            else:
                if h2_lru is not None:
                    seg = h2_state[l2_base:l2_base + h2_ways]
                    way2 = seg.index(min(seg))
                else:
                    way2 = h2_pvict(h2_state, l2_idx * h2_pstride)
                h2v += 1
                slot2 = l2_base + way2
                vline = h2_tags[slot2]
                del h2_where[vline * l2_nsets + l2_idx]
            h2_tags[slot2] = line
            h2_owners[slot2] = helper
            h2_where[l2_keys[j]] = slot2
            if h2_lru is not None:
                h2_lru._stamp = stamp = h2_lru._stamp + 1
                h2_state[slot2] = stamp
            else:
                h2_pfill(h2_state, l2_idx * h2_pstride, way2)
            h2f += 1
            if not h2_tb[l2_idx]:
                h2_tb[l2_idx] = 1
                h2c._touched_count += 1
            if vline is not None:
                vsid = sidx_get(vline)
                if vsid is None:
                    vsid = shared_set_index(vline)
                vslot = sf_where.get(vline * sf_nsets + vsid)
                if vslot is not None and sf_owners[vslot] == helper:
                    handle_victim(helper, vline, now)
            l1_base = set_idx * h1_ways
            if h1_occ[set_idx] < h1_ways:
                slot = h1_tags.index(None, l1_base, l1_base + h1_ways)
                way1 = slot - l1_base
                h1_occ[set_idx] += 1
            else:
                if h1_tree8:
                    sbase = set_idx * 7
                    b0 = h1_state[sbase]
                    node = 1 + b0
                    b1 = h1_state[sbase + node]
                    way1 = ((b0 << 2) | (b1 << 1)
                            | h1_state[sbase + 2 * node + 1 + b1])
                elif h1_lru is not None:
                    seg = h1_state[l1_base:l1_base + h1_ways]
                    way1 = seg.index(min(seg))
                else:
                    way1 = h1_pvict(h1_state, set_idx * h1_pstride)
                h1v += 1
                slot = l1_base + way1
                del h1_where[h1_tags[slot] * l1_nsets + set_idx]
            h1_tags[slot] = line
            h1_owners[slot] = helper
            h1_where[l1_keys[j]] = slot
            if h1_tree8:
                sbase = set_idx * 7
                b0 = (way1 >> 2) & 1
                h1_state[sbase] = 1 - b0
                b1 = (way1 >> 1) & 1
                node = 1 + b0
                h1_state[sbase + node] = 1 - b1
                h1_state[sbase + 2 * node + 1 + b1] = 1 - (way1 & 1)
            elif h1_lru is not None:
                h1_lru._stamp = stamp = h1_lru._stamp + 1
                h1_state[slot] = stamp
            else:
                h1_pfill(h1_state, set_idx * h1_pstride, way1)
            h1f += 1
            if not h1_tb[set_idx]:
                h1_tb[set_idx] = 1
                h1c._touched_count += 1
        if hits1 or hits2:
            stats.accesses += hits1 + hits2
            stats.l1_hits += hits1
            stats.l2_hits += hits2
            l1.policy_touches += hits1
            l2.policy_touches += hits2
        if shared and (hh1 or hh2):
            stats.accesses += hh1 + hh2
            stats.l1_hits += hh1
            stats.l2_hits += hh2
            h1c.policy_touches += hh1
            h2c.policy_touches += hh2
        if acc:
            stats.accesses += acc
            stats.llc_hits += llc_hits
            stats.dram_fetches += dram
            stats.sf_transfers += sft
            stats.sf_back_invalidations += back_inv
            llc.policy_touches += llc_pt
            llc.policy_fills += llcf
            llc.policy_victims += llcv
            sf.policy_touches += sf_pt
            sf.policy_fills += sff
            sf.policy_victims += sfv
            l1.policy_fills += l1f
            l1.policy_victims += l1v
            l2.policy_fills += l2f
            l2.policy_victims += l2v
            if shared:
                h1c.policy_fills += h1f
                h1c.policy_victims += h1v
                h2c.policy_fills += h2f
                h2c.policy_victims += h2v
        elapsed = worst + gaps
        elapsed += m._preemption_penalty(elapsed)
        m.advance(elapsed)
        return elapsed

    def store_sweep(self, rows: PlaneRows, count: int) -> int:
        """Mirror of ``Machine.access_batch(main, lines, write=True)``.

        Inlines the write-hit fast path (as ``access_many`` does) *and*
        the post-flush miss path — SF absent, LLC absent — which is the
        provably call-equivalent final branch of ``_write`` (its
        ``sf.remove`` is a no-op there).  Every other transition
        (ownership steal, shared->exclusive, stale self-owned entry)
        falls back to ``_write``, whose probes are side-effect-free on
        a miss, so the re-probe is unobservable.
        """
        m = self.machine
        if not count:
            return 0
        events = m._events
        if events and events[0][0] <= m.now:
            m._drain_events()
        m.batch_calls += 1
        m.batch_lines += count
        hier = self.hierarchy
        now = m.now
        core = self.main_core
        stats = hier.stats
        lat = m.cfg.latency
        lat_l1 = lat.l1_hit
        lat_l2 = lat.l2_hit
        lat_dram = lat.dram
        hit_gap = lat.hit_issue_gap
        miss_gap = lat.issue_gap
        level_lat = m._level_latency
        level_l2 = Level.L2
        lines = rows.lines
        l1_sets = rows.l1_sets
        l2_sets = rows.l2_sets
        sidxs = rows.shared_sets
        l1_keys = rows.l1_keys
        l2_keys = rows.l2_keys
        skeys = rows.shared_keys
        l1 = hier.l1[core]
        l2 = hier.l2[core]
        l1_where = l1._where
        l1_state = l1._state
        l1_lru = l1._lru
        l1_rrip = l1._rrip
        l1_ptouch = l1._pt_touch
        l1_pstride = l1._pstride
        l1_ways = l1.ways
        l1_insert = l1.insert
        l1_tree8 = type(l1._pol) is TreePLRU8Table
        l1_tags = l1._tags
        l1_owners = l1._owners
        l1_occ = l1._occ
        l1_nsets = l1.n_sets
        l1_pvict = l1._pt_victim
        l1_pfill = l1._pt_fill
        l1_tb = l1._touched
        l2_where = l2._where
        l2_state = l2._state
        l2_lru = l2._lru
        l2_rrip = l2._rrip
        l2_ptouch = l2._pt_touch
        l2_pstride = l2._pstride
        l2_ways = l2.ways
        l2_tags = l2._tags
        l2_owners = l2._owners
        l2_occ = l2._occ
        l2_nsets = l2.n_sets
        l2_pvict = l2._pt_victim
        l2_pfill = l2._pt_fill
        l2_tb = l2._touched
        sf = hier.sf
        llc = hier.llc
        sf_where = sf._where
        sf_owners = sf._owners
        sf_tags = sf._tags
        sf_occ = sf._occ
        sf_state = sf._state
        sf_lru = sf._lru
        sf_rrip = sf._rrip
        sf_ptouch = sf._pt_touch
        sf_pvict = sf._pt_victim
        sf_pfill = sf._pt_fill
        sf_pstride = sf._pstride
        sf_ways = sf.ways
        sf_nsets = sf.n_sets
        sf_tb = sf._touched
        llc_where = llc._where
        llc_insert = llc.insert
        hrand = hier._rng.random
        reuse_p = hier.cfg.reuse_predictor_p
        reuse_take = hier._reuse_take if hier.crng is not None else None
        handle_victim = hier._handle_l2_victim
        sidx_get = hier._sidx_memo.get
        shared_set_index = hier.shared_set_index
        l1_mask = hier._l1_mask
        l2_mask = hier._l2_mask
        l1_probe = [(c._where, c.remove) for c in hier.l1]
        l2_probe = [(c._where, c.remove) for c in hier.l2]
        wr = hier._write

        def inv_everywhere(etag):  # see load_sweep
            s1 = etag & l1_mask
            k1 = etag * l1_nsets + s1
            for w, rm in l1_probe:
                if k1 in w:
                    rm(s1, etag)
            s2 = etag & l2_mask
            k2 = etag * l2_nsets + s2
            for w, rm in l2_probe:
                if k2 in w:
                    rm(s2, etag)

        def inv_private(eowner, etag):
            s1 = etag & l1_mask
            w, rm = l1_probe[eowner]
            if etag * l1_nsets + s1 in w:
                rm(s1, etag)
            s2 = etag & l2_mask
            w, rm = l2_probe[eowner]
            if etag * l2_nsets + s2 in w:
                rm(s2, etag)
        noise = hier.noise_source
        if noise is not None:
            nrng = noise._rng
            nrand = nrng.random
            crng = noise.crng
            sf_rate = noise._sf_rate
            llc_rate = noise._llc_rate
            sf_nt = sf._noise_t
            sf_tt = sf._touched
            llc_nt = llc._noise_t
            llc_tt = llc._touched
            sf_cap = 3 * sf_ways
            llc_cap = 3 * llc.ways
            ins_sf = hier.noise_insert_sf
            ins_llc = hier.noise_insert_llc
        hits1 = hits2 = acc = dram = back_inv = 0
        l1f = l1v = l2f = l2v = sff = sfv = 0
        worst = 0
        gaps = 0
        for j in range(count):
            line = lines[j]
            sidx = sidxs[j]
            if noise is not None:
                # Inline BackgroundNoise.reconcile (see flush_rows).
                if sf_rate > 0.0:
                    if not sf_tt[sidx]:
                        sf_tt[sidx] = 1
                        sf._touched_count += 1
                    old = sf_nt[sidx]
                    if now > old:
                        sf_nt[sidx] = now
                        lam = sf_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_SF, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > sf_cap:
                                n = sf_cap
                            for _ in range(n):
                                ins_sf(sidx)
                            noise.events += n
                if llc_rate > 0.0:
                    if not llc_tt[sidx]:
                        llc_tt[sidx] = 1
                        llc._touched_count += 1
                    old = llc_nt[sidx]
                    if now > old:
                        llc_nt[sidx] = now
                        lam = llc_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_LLC, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > llc_cap:
                                n = llc_cap
                            for _ in range(n):
                                ins_llc(sidx)
                            noise.events += n
            sk = skeys[j]
            sslot = sf_where.get(sk)
            if sslot is None:
                if sk in llc_where:
                    level = wr(core, line, now, reconcile=False)
                    lt = level_lat[level]
                    gp = hit_gap if level <= level_l2 else miss_gap
                else:
                    # _write's final branch: fetch exclusive from DRAM
                    # (the sf.remove there is a no-op — entry absent).
                    # _sf_install + fill private, insert inline (see
                    # load_sweep for the expansion notes).
                    acc += 1
                    sf_base = sidx * sf_ways
                    if sf_occ[sidx] < sf_ways:
                        fslot = sf_tags.index(None, sf_base, sf_base + sf_ways)
                        wayf = fslot - sf_base
                        sf_occ[sidx] += 1
                        etag = None
                    else:
                        if sf_lru is not None:
                            seg = sf_state[sf_base:sf_base + sf_ways]
                            wayf = seg.index(min(seg))
                        else:
                            wayf = sf_pvict(sf_state, sidx * sf_pstride)
                        sfv += 1
                        fslot = sf_base + wayf
                        etag = sf_tags[fslot]
                        eowner = sf_owners[fslot]
                        del sf_where[etag * sf_nsets + sidx]
                    sf_tags[fslot] = line
                    sf_owners[fslot] = core
                    sf_where[sk] = fslot
                    if sf_lru is not None:
                        sf_lru._stamp = stamp = sf_lru._stamp + 1
                        sf_state[fslot] = stamp
                    else:
                        sf_pfill(sf_state, sidx * sf_pstride, wayf)
                    sff += 1
                    if not sf_tb[sidx]:
                        sf_tb[sidx] = 1
                        sf._touched_count += 1
                    if etag is not None:
                        if eowner >= 0:
                            inv_private(eowner, etag)
                            back_inv += 1
                        if ((hrand() < reuse_p) if reuse_take is None
                                else reuse_take(sidx)):
                            ev2 = llc_insert(sidx, etag, SHARED_OWNER)
                            if ev2 is not None and ev2[0] < _NOISE_TAG_BASE:
                                inv_everywhere(ev2[0])
                    l2_idx = l2_sets[j]
                    l2_base = l2_idx * l2_ways
                    if l2_occ[l2_idx] < l2_ways:
                        slot2 = l2_tags.index(None, l2_base, l2_base + l2_ways)
                        way2 = slot2 - l2_base
                        l2_occ[l2_idx] += 1
                        vline = None
                    else:
                        if l2_lru is not None:
                            seg = l2_state[l2_base:l2_base + l2_ways]
                            way2 = seg.index(min(seg))
                        else:
                            way2 = l2_pvict(l2_state, l2_idx * l2_pstride)
                        l2v += 1
                        slot2 = l2_base + way2
                        vline = l2_tags[slot2]
                        del l2_where[vline * l2_nsets + l2_idx]
                    l2_tags[slot2] = line
                    l2_owners[slot2] = core
                    l2_where[l2_keys[j]] = slot2
                    if l2_lru is not None:
                        l2_lru._stamp = stamp = l2_lru._stamp + 1
                        l2_state[slot2] = stamp
                    else:
                        l2_pfill(l2_state, l2_idx * l2_pstride, way2)
                    l2f += 1
                    if not l2_tb[l2_idx]:
                        l2_tb[l2_idx] = 1
                        l2._touched_count += 1
                    if vline is not None:
                        vsid = sidx_get(vline)
                        if vsid is None:
                            vsid = shared_set_index(vline)
                        vslot = sf_where.get(vline * sf_nsets + vsid)
                        if vslot is not None and sf_owners[vslot] == core:
                            handle_victim(core, vline, now)
                    set_idx = l1_sets[j]
                    l1_base = set_idx * l1_ways
                    if l1_occ[set_idx] < l1_ways:
                        slot = l1_tags.index(None, l1_base, l1_base + l1_ways)
                        way1 = slot - l1_base
                        l1_occ[set_idx] += 1
                    else:
                        if l1_tree8:
                            sbase = set_idx * 7
                            b0 = l1_state[sbase]
                            node = 1 + b0
                            b1 = l1_state[sbase + node]
                            way1 = ((b0 << 2) | (b1 << 1)
                                    | l1_state[sbase + 2 * node + 1 + b1])
                        elif l1_lru is not None:
                            seg = l1_state[l1_base:l1_base + l1_ways]
                            way1 = seg.index(min(seg))
                        else:
                            way1 = l1_pvict(l1_state, set_idx * l1_pstride)
                        l1v += 1
                        slot = l1_base + way1
                        del l1_where[l1_tags[slot] * l1_nsets + set_idx]
                    l1_tags[slot] = line
                    l1_owners[slot] = core
                    l1_where[l1_keys[j]] = slot
                    if l1_tree8:
                        sbase = set_idx * 7
                        b0 = (way1 >> 2) & 1
                        l1_state[sbase] = 1 - b0
                        b1 = (way1 >> 1) & 1
                        node = 1 + b0
                        l1_state[sbase + node] = 1 - b1
                        l1_state[sbase + 2 * node + 1 + b1] = 1 - (way1 & 1)
                    elif l1_lru is not None:
                        l1_lru._stamp = stamp = l1_lru._stamp + 1
                        l1_state[slot] = stamp
                    else:
                        l1_pfill(l1_state, set_idx * l1_pstride, way1)
                    l1f += 1
                    if not l1_tb[set_idx]:
                        l1_tb[set_idx] = 1
                        l1._touched_count += 1
                    dram += 1
                    lt = lat_dram
                    gp = miss_gap
            elif sf_owners[sslot] == core:
                set_idx = l1_sets[j]
                slot = l1_where.get(l1_keys[j])
                if slot is not None:
                    hits1 += 1
                    if l1_tree8:
                        base = set_idx * 7
                        way = slot - set_idx * 8
                        b0 = (way >> 2) & 1
                        l1_state[base] = 1 - b0
                        b1 = (way >> 1) & 1
                        node = 1 + b0
                        l1_state[base + node] = 1 - b1
                        l1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                    elif l1_lru is not None:
                        l1_lru._stamp = stamp = l1_lru._stamp + 1
                        l1_state[slot] = stamp
                    elif l1_rrip:
                        l1_state[slot] = 0
                    else:
                        l1_ptouch(l1_state, set_idx * l1_pstride,
                                  slot - set_idx * l1_ways)
                    lt = lat_l1
                    gp = hit_gap
                else:
                    l2_idx = l2_sets[j]
                    slot2 = l2_where.get(l2_keys[j])
                    if slot2 is None:
                        # Stale self-owned entry: generic path.
                        level = wr(core, line, now, reconcile=False)
                        lt = level_lat[level]
                        gp = hit_gap if level <= level_l2 else miss_gap
                        if lt > worst:
                            worst = lt
                        gaps += gp
                        continue
                    hits2 += 1
                    if l2_lru is not None:
                        l2_lru._stamp = stamp = l2_lru._stamp + 1
                        l2_state[slot2] = stamp
                    elif l2_rrip:
                        l2_state[slot2] = 0
                    else:
                        l2_ptouch(l2_state, l2_idx * l2_pstride,
                                  slot2 - l2_idx * l2_ways)
                    l1_insert(set_idx, line, core)
                    lt = lat_l2
                    gp = hit_gap
                # SF recency refresh == insert(update_owner=False) hit path.
                if sf_lru is not None:
                    sf_lru._stamp = stamp = sf_lru._stamp + 1
                    sf_state[sslot] = stamp
                elif sf_rrip:
                    sf_state[sslot] = 0
                else:
                    sf_ptouch(sf_state, sidx * sf_pstride, sslot - sidx * sf_ways)
            else:
                level = wr(core, line, now, reconcile=False)
                lt = level_lat[level]
                gp = hit_gap if level <= level_l2 else miss_gap
            if lt > worst:
                worst = lt
            gaps += gp
        if hits1 or hits2:
            stats.accesses += hits1 + hits2
            stats.l1_hits += hits1
            stats.l2_hits += hits2
            l1.policy_touches += hits1
            l2.policy_touches += hits2
            sf.policy_touches += hits1 + hits2
        if acc:
            stats.accesses += acc
            stats.dram_fetches += dram
            stats.sf_back_invalidations += back_inv
            sf.policy_fills += sff
            sf.policy_victims += sfv
            l1.policy_fills += l1f
            l1.policy_victims += l1v
            l2.policy_fills += l2f
            l2.policy_victims += l2v
        elapsed = worst + gaps
        elapsed += m._preemption_penalty(elapsed)
        m.advance(elapsed)
        return elapsed

    # -- Monitor kernels -----------------------------------------------------

    def prime_probe_kernel(self, rows: PlaneRows, count: int,
                           prime_rounds: int = 0, probe: bool = False) -> int:
        """Fused monitor rounds over one eviction set (``same_shared_set``).

        ``prime_rounds`` write sweeps mirror
        ``access_batch(main, lines, write=True, same_shared_set=True)``
        per round; ``probe=True`` appends one read sweep mirroring
        ``probe_batch(main, lines, same_shared_set=True)`` (the timer
        overhead is added to the returned measurement, not the clock —
        exactly as ``probe_batch`` does).  Noise is reconciled once per
        round on the congruent set; the steady-state all-hit walk is
        inline, anything else falls back to the generic access.
        """
        total = 0
        for _ in range(prime_rounds):
            total += self._monitor_round(rows, count, True)
        if probe:
            total += self._monitor_round(rows, count, False)
            total += self.machine.cfg.latency.timer_overhead
        return total

    def _monitor_round(self, rows: PlaneRows, count: int, write: bool) -> int:
        m = self.machine
        if not count:
            return 0
        events = m._events
        if events and events[0][0] <= m.now:
            m._drain_events()
        m.batch_calls += 1
        m.batch_lines += count
        hier = self.hierarchy
        now = m.now
        core = self.main_core
        stats = hier.stats
        noise = hier.noise_source
        if noise is not None:
            noise.reconcile(hier, rows.shared_sets[0], now)
        lat = m.cfg.latency
        lat_l1 = lat.l1_hit
        lat_l2 = lat.l2_hit
        hit_gap = lat.hit_issue_gap
        miss_gap = lat.issue_gap
        level_lat = m._level_latency
        level_l2 = Level.L2
        lines = rows.lines
        l1_sets = rows.l1_sets
        l2_sets = rows.l2_sets
        l1_keys = rows.l1_keys
        l2_keys = rows.l2_keys
        l1 = hier.l1[core]
        l2 = hier.l2[core]
        l1_where = l1._where
        l1_state = l1._state
        l1_lru = l1._lru
        l1_rrip = l1._rrip
        l1_ptouch = l1._pt_touch
        l1_pstride = l1._pstride
        l1_ways = l1.ways
        l1_insert = l1.insert
        l1_tree8 = type(l1._pol) is TreePLRU8Table
        l2_where = l2._where
        l2_state = l2._state
        l2_lru = l2._lru
        l2_rrip = l2._rrip
        l2_ptouch = l2._pt_touch
        l2_pstride = l2._pstride
        l2_ways = l2.ways
        hits1 = hits2 = 0
        worst = 0
        gaps = 0
        if write:
            sf = hier.sf
            sidxs = rows.shared_sets
            skeys = rows.shared_keys
            sf_where = sf._where
            sf_owners = sf._owners
            sf_state = sf._state
            sf_lru = sf._lru
            sf_rrip = sf._rrip
            sf_ptouch = sf._pt_touch
            sf_pstride = sf._pstride
            sf_ways = sf.ways
            wr = hier._write
            for j in range(count):
                line = lines[j]
                sidx = sidxs[j]
                sslot = sf_where.get(skeys[j])
                if sslot is None or sf_owners[sslot] != core:
                    level = wr(core, line, now, reconcile=False)
                    lt = level_lat[level]
                    gp = hit_gap if level <= level_l2 else miss_gap
                    if lt > worst:
                        worst = lt
                    gaps += gp
                    continue
                set_idx = l1_sets[j]
                slot = l1_where.get(l1_keys[j])
                if slot is not None:
                    hits1 += 1
                    if l1_tree8:
                        base = set_idx * 7
                        way = slot - set_idx * 8
                        b0 = (way >> 2) & 1
                        l1_state[base] = 1 - b0
                        b1 = (way >> 1) & 1
                        node = 1 + b0
                        l1_state[base + node] = 1 - b1
                        l1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                    elif l1_lru is not None:
                        l1_lru._stamp = stamp = l1_lru._stamp + 1
                        l1_state[slot] = stamp
                    elif l1_rrip:
                        l1_state[slot] = 0
                    else:
                        l1_ptouch(l1_state, set_idx * l1_pstride,
                                  slot - set_idx * l1_ways)
                    lt = lat_l1
                else:
                    l2_idx = l2_sets[j]
                    slot2 = l2_where.get(l2_keys[j])
                    if slot2 is None:
                        level = wr(core, line, now, reconcile=False)
                        lt = level_lat[level]
                        gp = hit_gap if level <= level_l2 else miss_gap
                        if lt > worst:
                            worst = lt
                        gaps += gp
                        continue
                    hits2 += 1
                    if l2_lru is not None:
                        l2_lru._stamp = stamp = l2_lru._stamp + 1
                        l2_state[slot2] = stamp
                    elif l2_rrip:
                        l2_state[slot2] = 0
                    else:
                        l2_ptouch(l2_state, l2_idx * l2_pstride,
                                  slot2 - l2_idx * l2_ways)
                    l1_insert(set_idx, line, core)
                    lt = lat_l2
                if sf_lru is not None:
                    sf_lru._stamp = stamp = sf_lru._stamp + 1
                    sf_state[sslot] = stamp
                elif sf_rrip:
                    sf_state[sslot] = 0
                else:
                    sf_ptouch(sf_state, sidx * sf_pstride, sslot - sidx * sf_ways)
                if lt > worst:
                    worst = lt
                gaps += hit_gap
            if hits1 or hits2:
                stats.accesses += hits1 + hits2
                stats.l1_hits += hits1
                stats.l2_hits += hits2
                l1.policy_touches += hits1
                l2.policy_touches += hits2
                hier.sf.policy_touches += hits1 + hits2
        else:
            access = hier.access
            for j in range(count):
                line = lines[j]
                set_idx = l1_sets[j]
                slot = l1_where.get(l1_keys[j])
                if slot is not None:
                    hits1 += 1
                    if l1_tree8:
                        base = set_idx * 7
                        way = slot - set_idx * 8
                        b0 = (way >> 2) & 1
                        l1_state[base] = 1 - b0
                        b1 = (way >> 1) & 1
                        node = 1 + b0
                        l1_state[base + node] = 1 - b1
                        l1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                    elif l1_lru is not None:
                        l1_lru._stamp = stamp = l1_lru._stamp + 1
                        l1_state[slot] = stamp
                    elif l1_rrip:
                        l1_state[slot] = 0
                    else:
                        l1_ptouch(l1_state, set_idx * l1_pstride,
                                  slot - set_idx * l1_ways)
                    if lat_l1 > worst:
                        worst = lat_l1
                    gaps += hit_gap
                    continue
                l2_idx = l2_sets[j]
                slot2 = l2_where.get(l2_keys[j])
                if slot2 is not None:
                    hits2 += 1
                    if l2_lru is not None:
                        l2_lru._stamp = stamp = l2_lru._stamp + 1
                        l2_state[slot2] = stamp
                    elif l2_rrip:
                        l2_state[slot2] = 0
                    else:
                        l2_ptouch(l2_state, l2_idx * l2_pstride,
                                  slot2 - l2_idx * l2_ways)
                    l1_insert(set_idx, line, core)
                    if lat_l2 > worst:
                        worst = lat_l2
                    gaps += hit_gap
                    continue
                level = access(core, line, now, reconcile=False)
                lt = level_lat[level]
                if lt > worst:
                    worst = lt
                gaps += hit_gap if level <= level_l2 else miss_gap
            if hits1 or hits2:
                stats.accesses += hits1 + hits2
                stats.l1_hits += hits1
                stats.l2_hits += hits2
                l1.policy_touches += hits1
                l2.policy_touches += hits2
        elapsed = worst + gaps
        elapsed += m._preemption_penalty(elapsed)
        m.advance(elapsed)
        return elapsed

    # -- TestEviction kernels -------------------------------------------------

    def _prime_line(self, mode: str, tline: int) -> None:
        """``EvictionTester.prime_target`` on a pre-translated line."""
        m = self.machine
        if mode == "llc":
            m.flush(tline)
            m.access(self.main_core, tline)
            m.access(self.helper_core, tline, advance=False)
        elif mode == "sf":
            m.access(self.main_core, tline, write=True)
        else:
            m.flush(tline)
            m.access(self.main_core, tline)

    def traverse_kernel(self, mode: str, rows: PlaneRows, count: int,
                        repeats: int) -> None:
        """``EvictionTester._traverse_lines`` (parallel form), fused."""
        self.flush_rows(rows, count)
        if mode == "llc":
            for _ in range(repeats):
                self.load_sweep(rows, count, shared=True)
        elif mode == "sf":
            for _ in range(repeats):
                self.store_sweep(rows, count)
        else:
            for _ in range(repeats):
                self.load_sweep(rows, count)

    def test_eviction_kernel(self, mode: str, tline: int, rows: PlaneRows,
                             count: int, repeats: int, threshold: int) -> bool:
        """One fused TestEviction: prime + flush + traversal + timed reload."""
        self._prime_line(mode, tline)
        self.traverse_kernel(mode, rows, count, repeats)
        return self.machine.timed_access(self.main_core, tline) > threshold

    def test_many_kernel(self, mode: str, tlines: Sequence[int],
                         rows: PlaneRows, count: int, repeats: int,
                         threshold: int) -> List[bool]:
        """TestEviction of N targets against one translated traversal."""
        m = self.machine
        main = self.main_core
        timed = m.timed_access
        out: List[bool] = []
        for tline in tlines:
            self._prime_line(mode, tline)
            self.traverse_kernel(mode, rows, count, repeats)
            out.append(timed(main, tline) > threshold)
        return out
