"""Simulated Intel-server memory system.

This subpackage is the hardware substrate of the reproduction: a
cycle-accounted model of a Skylake-SP-like cache hierarchy with private
L1/L2 caches, a sliced non-inclusive LLC, and a Snoop Filter (SF) that
tracks private lines, plus paging, slice hashing, replacement policies,
and a latency/MLP model.

The public entry point is :class:`repro.memsys.machine.Machine`.
"""

from .address import AddressSpace, line_address, page_offset
from .batchplane import (
    BatchLaneKernels,
    BatchSession,
    batch_disabled,
    batch_supported,
    run_batched,
    stack_shared_planes,
)
from .cache import SetAssociativeCache
from .hierarchy import CacheHierarchy, Level, NOISE_OWNER
from .kernels import AttackKernels, PlaneRows, TranslationPlane, kernels_disabled
from .lanes import HAVE_NUMPY, LaneKernels, lanes_disabled
from .machine import Machine
from .replacement import make_policy
from .slice_hash import ComplexSliceHash, LinearSliceHash, make_slice_hash
from .snapshot import MachineCheckpoint, checkpoint, checkpoint_key, restore
from .vec import VecKernels, construct_memo_disabled, vec_disabled

__all__ = [
    "AddressSpace",
    "AttackKernels",
    "BatchLaneKernels",
    "BatchSession",
    "CacheHierarchy",
    "ComplexSliceHash",
    "HAVE_NUMPY",
    "LaneKernels",
    "Level",
    "LinearSliceHash",
    "Machine",
    "MachineCheckpoint",
    "NOISE_OWNER",
    "PlaneRows",
    "SetAssociativeCache",
    "TranslationPlane",
    "VecKernels",
    "batch_disabled",
    "batch_supported",
    "checkpoint",
    "checkpoint_key",
    "construct_memo_disabled",
    "kernels_disabled",
    "restore",
    "lanes_disabled",
    "run_batched",
    "stack_shared_planes",
    "vec_disabled",
    "line_address",
    "make_policy",
    "make_slice_hash",
    "page_offset",
]
