"""Memo-replay monitor rounds — the counter-RNG vectorized lane tier.

:class:`VecKernels` extends :class:`~repro.memsys.lanes.LaneKernels` with a
round-level memoization of ``_monitor_round``, the Prime+Probe hot loop.
Under the serial RNG contract this optimization is illegal: whether a round
draws noise depends on the *order* of every draw before it, so no two rounds
are ever provably alike.  Under the counter (event-keyed) contract each
noise window's draw is a pure function of ``(structure, set, old_clock)``
— it can be computed *without consuming anything*, which turns "will this
round be disturbed?" into a cheap, side-effect-free precondition.

The steady-state monitor round (every line hits L1/L2, no noise due, no
machine events) is a pure function of a small, enumerable state slice:

* the L1 tag/owner/state plane of the touched sets (tree-PLRU bits are
  *read* on evictions, so they are validated raw),
* the L2 tags of the touched sets (stamps are write-only in a hit round:
  recency updates never read existing stamp values),
* the SF tags/owners of the congruent set (write rounds only; probe
  rounds never consult the SF).

A round is recorded once — run live, with the state delta captured only if
the stats deltas prove it was a pure hit walk — and replayed thereafter:
validate the slice, apply the recorded delta, advance the clock.  LRU
stamps are replayed *relative* to the current global stamp counter
(``state[slot] = stamp_now + k``), never as absolute values, because
untouched slots keep drifting absolute stamps between record and replay
while the within-round write order is invariant.

Preemption stays live in both paths (the serial preemption stream is part
of the machine contract in every RNG mode), as does event draining: any
pending machine event disables the replay path for that round.
"""

from __future__ import annotations

from contextlib import contextmanager
from operator import itemgetter
from typing import Dict, Optional, Tuple

from ..rng import S_NOISE_LLC, S_NOISE_SF
from .lanes import LaneKernels
from .policy_tables import TreePLRU8Table

#: Kill switch for the memo-replay path (the parity suites use it to run
#: the same VecKernels object live, proving replay == live bit for bit).
VEC_ENABLED = True


@contextmanager
def vec_disabled():
    """Temporarily run every monitor round live (no memo-replay)."""
    global VEC_ENABLED
    saved = VEC_ENABLED
    VEC_ENABLED = False
    try:
        yield
    finally:
        VEC_ENABLED = saved


def _tuple_getter(idx):
    """An ``itemgetter`` that always returns a tuple (even for one index)."""
    if len(idx) == 1:
        i = idx[0]
        return lambda seq, _i=i: (seq[_i],)
    return itemgetter(*idx)


class _RoundGeometry:
    """Precomputed index planes + recordings for one (vas, count, write).

    ``entries`` maps a pre-state vector (the validated slice, as a tuple
    of tuples) to the recorded post-state delta.  Steady-state monitoring
    cycles through a tiny number of distinct pre-states per shape, so the
    dict stays small; it is cleared wholesale if it ever grows past the
    cap (state churn from an unusual workload).
    """

    __slots__ = (
        "entries",
        "l1_sets",
        "l1_tag_ranges",
        "l1_state_ranges",
        "l1_slots",
        "l1_pos_sets",
        "g_l1",
        "g_l1_state",
        "g_l1_touched",
        "l2_slots",
        "g_l2",
        "sf_slots",
        "g_sf",
    )

    def __init__(self, rows, count: int, write: bool, l1, l2, sf) -> None:
        w1 = l1.ways
        l1_sets = sorted(set(rows.l1_sets[:count]))
        self.l1_sets = l1_sets
        self.l1_tag_ranges = [(s * w1, s * w1 + w1) for s in l1_sets]
        self.l1_state_ranges = [(s * 7, s * 7 + 7) for s in l1_sets]
        slots = [s * w1 + w for s in l1_sets for w in range(w1)]
        self.l1_slots = slots
        self.l1_pos_sets = [s for s in l1_sets for _ in range(w1)]
        self.g_l1 = _tuple_getter(slots)
        self.g_l1_state = _tuple_getter(
            [s * 7 + k for s in l1_sets for k in range(7)]
        )
        self.g_l1_touched = _tuple_getter(l1_sets)
        w2 = l2.ways
        l2_slots = [
            s * w2 + w for s in sorted(set(rows.l2_sets[:count]))
            for w in range(w2)
        ]
        self.l2_slots = l2_slots
        # LRU state stride == ways, so state indices coincide with slots
        # and one getter serves tags, owners, and stamps alike.
        self.g_l2 = _tuple_getter(l2_slots)
        if write:
            wsf = sf.ways
            sf_slots = [
                s * wsf + w for s in sorted(set(rows.shared_sets[:count]))
                for w in range(wsf)
            ]
            self.sf_slots = sf_slots
            self.g_sf = _tuple_getter(sf_slots)
        else:
            self.sf_slots = []
            self.g_sf = None
        self.entries: Dict[tuple, tuple] = {}


class VecKernels(LaneKernels):
    """Lane kernels with counter-mode memo-replay of monitor rounds.

    Engages only when the machine runs the counter RNG contract and the
    touched structures have the shapes the replay understands (tree-PLRU8
    L1, LRU L2/SF — the default microarchitecture); anything else falls
    back to the inherited live round, bit for bit.
    """

    #: Bound on distinct (vas, count, write) round shapes kept.
    _VMEMO_CAP = 1024
    #: Bound on recorded pre-states per shape.
    _ENTRY_CAP = 64

    __slots__ = ("_vmemo", "_vec_ok")

    def __init__(self, machine, plane, main_core: int = 0,
                 helper_core: int = 1) -> None:
        super().__init__(machine, plane, main_core, helper_core)
        self._vmemo: Dict[Tuple[Tuple[int, ...], int, bool],
                          _RoundGeometry] = {}
        self._vec_ok: Optional[bool] = None

    def invalidate_plans(self) -> None:
        super().invalidate_plans()
        self._vmemo.clear()

    def _vec_shapes_ok(self) -> bool:
        hier = self.hierarchy
        if getattr(hier, "crng", None) is None or not self.engaged():
            return False
        noise = hier.noise_source
        if noise is not None and noise.crng is None:
            return False
        l1 = hier.l1[self.main_core]
        l2 = hier.l2[self.main_core]
        return (
            type(l1._pol) is TreePLRU8Table
            and l1.ways == 8
            and l2._lru is not None
            and hier.sf._lru is not None
        )

    def _monitor_round(self, rows, count: int, write: bool) -> int:
        m = self.machine
        ok = self._vec_ok
        if ok is None:
            ok = self._vec_ok = self._vec_shapes_ok()
        if not ok or not VEC_ENABLED or not count or m._events:
            return super()._monitor_round(rows, count, write)
        hier = self.hierarchy
        now = m.now
        noise = hier.noise_source
        sf = hier.sf
        sidx0 = rows.shared_sets[0]
        if noise is not None:
            # Keyed draws are pure: peek at what reconciliation *would*
            # draw for the current windows without consuming or advancing
            # anything.  Nonzero means the round mutates shared state in
            # a data-dependent way — run it live (the live path re-derives
            # the identical draws, so nothing is lost or double-counted).
            crng = noise.crng
            rate = noise._sf_rate
            if rate > 0.0:
                old = sf._noise_t[sidx0]
                if now > old and crng.noise_poisson(
                    S_NOISE_SF, sidx0, old, rate * (now - old)
                ):
                    return super()._monitor_round(rows, count, write)
            rate = noise._llc_rate
            if rate > 0.0:
                old = hier.llc._noise_t[sidx0]
                if now > old and crng.noise_poisson(
                    S_NOISE_LLC, sidx0, old, rate * (now - old)
                ):
                    return super()._monitor_round(rows, count, write)
        core = self.main_core
        l1 = hier.l1[core]
        l2 = hier.l2[core]
        key = (rows.vas, count, write)
        vmemo = self._vmemo
        geom = vmemo.get(key)
        if geom is None:
            if len(vmemo) >= self._VMEMO_CAP:
                vmemo.clear()
            geom = _RoundGeometry(rows, count, write, l1, l2, sf)
            vmemo[key] = geom
        g_sf = geom.g_sf
        pre = (
            geom.g_l1(l1._tags),
            geom.g_l1(l1._owners),
            geom.g_l1_state(l1._state),
            geom.g_l1_touched(l1._touched),
            geom.g_l2(l2._tags),
            g_sf(sf._tags) if write else (),
            g_sf(sf._owners) if write else (),
        )
        rec = geom.entries.get(pre)
        if rec is not None:
            return self._replay(
                m, hier, noise, l1, l2, sf, sidx0, now, count, geom, rec
            )
        return self._record(m, rows, count, write, geom, pre, l1, l2, sf)

    def _record(self, m, rows, count: int, write: bool, geom, pre,
                l1, l2, sf) -> int:
        """Run the round live; capture its delta if it was a pure hit walk."""
        hier = self.hierarchy
        stats = hier.stats
        s0 = (
            stats.accesses, stats.l1_hits, stats.l2_hits, stats.llc_hits,
            stats.sf_transfers, stats.dram_fetches, stats.flushes,
            stats.noise_insertions, stats.sf_back_invalidations,
        )
        p0 = (
            l1.policy_touches, l1.policy_fills, l1.policy_victims,
            l2.policy_touches, sf.policy_touches,
        )
        l2_stamp0 = l2._lru._stamp
        sf_stamp0 = sf._lru._stamp
        l2_state_pre = geom.g_l2(l2._state)
        sf_state_pre = geom.g_sf(sf._state) if write else ()
        ret = super()._monitor_round(rows, count, write)
        d_acc = stats.accesses - s0[0]
        d_h1 = stats.l1_hits - s0[1]
        d_h2 = stats.l2_hits - s0[2]
        # Purity detector: every fallback path in the fused round bumps at
        # least one of these counters (misses, transfers, back-invals...),
        # so "count accesses, all of them L1/L2 hits, nothing else moved"
        # proves the round stayed on the inline hit walk.
        if (
            d_acc != count
            or d_h1 + d_h2 != count
            or stats.llc_hits != s0[3]
            or stats.sf_transfers != s0[4]
            or stats.dram_fetches != s0[5]
            or stats.flushes != s0[6]
            or stats.noise_insertions != s0[7]
            or stats.sf_back_invalidations != s0[8]
        ):
            return ret
        pre_t = pre[0]
        post_t = geom.g_l1(l1._tags)
        wdel = []
        wadd = []
        n1 = l1.n_sets
        slots = geom.l1_slots
        psets = geom.l1_pos_sets
        for i in range(len(slots)):
            a = pre_t[i]
            b = post_t[i]
            if a != b:
                if a is not None:
                    wdel.append(a * n1 + psets[i])
                if b is not None:
                    wadd.append((b * n1 + psets[i], slots[i]))
        tag_segs = tuple(l1._tags[a:b] for a, b in geom.l1_tag_ranges)
        own_segs = tuple(l1._owners[a:b] for a, b in geom.l1_tag_ranges)
        st_segs = tuple(l1._state[a:b] for a, b in geom.l1_state_ranges)
        occ_post = tuple(l1._occ[s] for s in geom.l1_sets)
        post_touch = geom.g_l1_touched(l1._touched)
        marks = tuple(
            s for s, a, b in zip(geom.l1_sets, pre[3], post_touch)
            if not a and b
        )
        l2_state_post = geom.g_l2(l2._state)
        l2_slots = geom.l2_slots
        l2w = [
            (l2_slots[i], l2_state_post[i] - l2_stamp0)
            for i in range(len(l2_slots))
            if l2_state_post[i] != l2_state_pre[i]
        ]
        if l2._lru._stamp - l2_stamp0 != len(l2w):
            return ret
        if write:
            sf_state_post = geom.g_sf(sf._state)
            sf_slots = geom.sf_slots
            sfw = [
                (sf_slots[i], sf_state_post[i] - sf_stamp0)
                for i in range(len(sf_slots))
                if sf_state_post[i] != sf_state_pre[i]
            ]
            if sf._lru._stamp - sf_stamp0 != len(sfw):
                return ret
        else:
            sfw = []
            if sf._lru._stamp != sf_stamp0:
                return ret
        # Base elapsed of a pure hit round, re-derived from the fused
        # loop's arithmetic (the preemption penalty is drawn live at
        # replay, so only the deterministic part is recorded).
        lat = m.cfg.latency
        worst = 0
        if d_h1:
            worst = lat.l1_hit
        if d_h2 and lat.l2_hit > worst:
            worst = lat.l2_hit
        elapsed_base = worst + count * lat.hit_issue_gap
        d = (
            d_acc, d_h1, d_h2,
            l1.policy_touches - p0[0],
            l1.policy_fills - p0[1],
            l1.policy_victims - p0[2],
            l2.policy_touches - p0[3],
            sf.policy_touches - p0[4],
        )
        entries = geom.entries
        if len(entries) >= self._ENTRY_CAP:
            entries.clear()
        entries[pre] = (
            tag_segs, own_segs, st_segs, occ_post, tuple(wdel), tuple(wadd),
            marks, tuple(l2w), tuple(sfw), d, elapsed_base,
        )
        return ret

    def _replay(self, m, hier, noise, l1, l2, sf, sidx0: int, now: int,
                count: int, geom, rec) -> int:
        """Apply a recorded pure round: O(touched slots), no per-line work."""
        if noise is not None:
            # Mirror reconcile's clock exchange for the (verified zero)
            # noise windows — marks the sets touched and floors the clocks.
            if noise._sf_rate > 0.0:
                sf.exchange_noise_clock(sidx0, now)
            if noise._llc_rate > 0.0:
                hier.llc.exchange_noise_clock(sidx0, now)
        m.batch_calls += 1
        m.batch_lines += count
        tags = l1._tags
        owners = l1._owners
        state = l1._state
        ranges = geom.l1_tag_ranges
        for (a, b), seg in zip(ranges, rec[0]):
            tags[a:b] = seg
        for (a, b), seg in zip(ranges, rec[1]):
            owners[a:b] = seg
        for (a, b), seg in zip(geom.l1_state_ranges, rec[2]):
            state[a:b] = seg
        occ = l1._occ
        for s, v in zip(geom.l1_sets, rec[3]):
            occ[s] = v
        where = l1._where
        for k in rec[4]:
            del where[k]
        for k, s in rec[5]:
            where[k] = s
        if rec[6]:
            touched = l1._touched
            for s in rec[6]:
                touched[s] = 1
            l1._touched_count += len(rec[6])
        l2w = rec[7]
        if l2w:
            lru = l2._lru
            base = lru._stamp
            st = l2._state
            for s, k in l2w:
                st[s] = base + k
            lru._stamp = base + len(l2w)
        sfw = rec[8]
        if sfw:
            lru = sf._lru
            base = lru._stamp
            st = sf._state
            for s, k in sfw:
                st[s] = base + k
            lru._stamp = base + len(sfw)
        d = rec[9]
        stats = hier.stats
        stats.accesses += d[0]
        stats.l1_hits += d[1]
        stats.l2_hits += d[2]
        l1.policy_touches += d[3]
        l1.policy_fills += d[4]
        l1.policy_victims += d[5]
        l2.policy_touches += d[6]
        sf.policy_touches += d[7]
        elapsed = rec[10]
        elapsed += m._preemption_penalty(elapsed)
        m.advance(elapsed)
        return elapsed
