"""Memo-replay monitor rounds — the counter-RNG vectorized lane tier.

:class:`VecKernels` extends :class:`~repro.memsys.lanes.LaneKernels` with a
round-level memoization of ``_monitor_round``, the Prime+Probe hot loop.
Under the serial RNG contract this optimization is illegal: whether a round
draws noise depends on the *order* of every draw before it, so no two rounds
are ever provably alike.  Under the counter (event-keyed) contract each
noise window's draw is a pure function of ``(structure, set, old_clock)``
— it can be computed *without consuming anything*, which turns "will this
round be disturbed?" into a cheap, side-effect-free precondition.

The steady-state monitor round (every line hits L1/L2, no noise due, no
machine events) is a pure function of a small, enumerable state slice:

* the L1 tag/owner/state plane of the touched sets (tree-PLRU bits are
  *read* on evictions, so they are validated raw),
* the L2 tags of the touched sets (stamps are write-only in a hit round:
  recency updates never read existing stamp values),
* the SF tags/owners of the congruent set (write rounds only; probe
  rounds never consult the SF).

A round is recorded once — run live, with the state delta captured only if
the stats deltas prove it was a pure hit walk — and replayed thereafter:
validate the slice, apply the recorded delta, advance the clock.  LRU
stamps are replayed *relative* to the current global stamp counter
(``state[slot] = stamp_now + k``), never as absolute values, because
untouched slots keep drifting absolute stamps between record and replay
while the within-round write order is invariant.

Preemption stays live in both paths (the serial preemption stream is part
of the machine contract in every RNG mode), as does event draining: any
pending machine event disables the replay path for that round.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from ..rng import S_NOISE_LLC, S_NOISE_SF
from .hierarchy import _NOISE_TAG_BASE
from .lanes import LaneKernels
from .policy_tables import TreePLRU8Table

#: Kill switch for the memo-replay path (the parity suites use it to run
#: the same VecKernels object live, proving replay == live bit for bit).
VEC_ENABLED = True

#: Kill switch for the construction-test memo (``test_eviction_kernel`` /
#: ``test_many_kernel`` record/replay).  Separate from :data:`VEC_ENABLED`
#: so benches can compare the two layers independently; additionally
#: disabled wholesale by ``REPRO_CMEMO=0``.
CMEMO_ENABLED = os.environ.get("REPRO_CMEMO", "1") != "0"


@contextmanager
def vec_disabled():
    """Temporarily run every monitor round live (no memo-replay)."""
    global VEC_ENABLED
    saved = VEC_ENABLED
    VEC_ENABLED = False
    try:
        yield
    finally:
        VEC_ENABLED = saved


@contextmanager
def construct_memo_disabled():
    """Temporarily run every eviction test live (no construct memo)."""
    global CMEMO_ENABLED
    saved = CMEMO_ENABLED
    CMEMO_ENABLED = False
    try:
        yield
    finally:
        CMEMO_ENABLED = saved


def _tuple_getter(idx):
    """An ``itemgetter`` that always returns a tuple (even for one index)."""
    if len(idx) == 1:
        i = idx[0]
        return lambda seq, _i=i: (seq[_i],)
    return itemgetter(*idx)


class _RoundGeometry:
    """Precomputed index planes + recordings for one (vas, count, write).

    ``entries`` maps a pre-state vector (the validated slice, as a tuple
    of tuples) to the recorded post-state delta.  Steady-state monitoring
    cycles through a tiny number of distinct pre-states per shape, so the
    dict stays small; it is cleared wholesale if it ever grows past the
    cap (state churn from an unusual workload).
    """

    __slots__ = (
        "entries",
        "l1_sets",
        "l1_tag_ranges",
        "l1_state_ranges",
        "l1_slots",
        "l1_pos_sets",
        "g_l1",
        "g_l1_state",
        "g_l1_touched",
        "l2_slots",
        "g_l2",
        "sf_slots",
        "g_sf",
    )

    def __init__(self, rows, count: int, write: bool, l1, l2, sf) -> None:
        w1 = l1.ways
        l1_sets = sorted(set(rows.l1_sets[:count]))
        self.l1_sets = l1_sets
        self.l1_tag_ranges = [(s * w1, s * w1 + w1) for s in l1_sets]
        self.l1_state_ranges = [(s * 7, s * 7 + 7) for s in l1_sets]
        slots = [s * w1 + w for s in l1_sets for w in range(w1)]
        self.l1_slots = slots
        self.l1_pos_sets = [s for s in l1_sets for _ in range(w1)]
        self.g_l1 = _tuple_getter(slots)
        self.g_l1_state = _tuple_getter(
            [s * 7 + k for s in l1_sets for k in range(7)]
        )
        self.g_l1_touched = _tuple_getter(l1_sets)
        w2 = l2.ways
        l2_slots = [
            s * w2 + w for s in sorted(set(rows.l2_sets[:count]))
            for w in range(w2)
        ]
        self.l2_slots = l2_slots
        # LRU state stride == ways, so state indices coincide with slots
        # and one getter serves tags, owners, and stamps alike.
        self.g_l2 = _tuple_getter(l2_slots)
        if write:
            wsf = sf.ways
            sf_slots = [
                s * wsf + w for s in sorted(set(rows.shared_sets[:count]))
                for w in range(wsf)
            ]
            self.sf_slots = sf_slots
            self.g_sf = _tuple_getter(sf_slots)
        else:
            self.sf_slots = []
            self.g_sf = None
        self.entries: Dict[tuple, tuple] = {}


class VecKernels(LaneKernels):
    """Lane kernels with counter-mode memo-replay of monitor rounds.

    Engages only when the machine runs the counter RNG contract and the
    touched structures have the shapes the replay understands (tree-PLRU8
    L1, LRU L2/SF — the default microarchitecture); anything else falls
    back to the inherited live round, bit for bit.
    """

    #: Bound on distinct (vas, count, write) round shapes kept.
    _VMEMO_CAP = 1024
    #: Bound on recorded pre-states per shape.
    _ENTRY_CAP = 64
    #: Bound on distinct construct-test shapes kept.  Sized to hold a
    #: whole construction's test sequence (a few thousand shapes) so a
    #: repeated run — the scenario the memo exists for — still finds
    #: every shape it marked the first time around.
    _CMEMO_CAP = 8192
    #: Bound on recorded pre-states per construct-test shape.
    _CM_ENTRY_CAP = 4
    #: Bound on the state-slice closure (rows across all structures); a
    #: test whose read/write closure is larger runs live, unmemoized.
    _CM_MAX_ROWS = 4096

    __slots__ = ("_vmemo", "_vec_ok", "_cmemo", "_cm_ok")

    def __init__(self, machine, plane, main_core: int = 0,
                 helper_core: int = 1) -> None:
        super().__init__(machine, plane, main_core, helper_core)
        self._vmemo: Dict[Tuple[Tuple[int, ...], int, bool],
                          _RoundGeometry] = {}
        self._vec_ok: Optional[bool] = None
        self._cmemo: Dict[tuple, Optional[dict]] = {}
        self._cm_ok: Optional[bool] = None

    def invalidate_plans(self) -> None:
        super().invalidate_plans()
        self._vmemo.clear()
        self._cmemo.clear()

    def _vec_shapes_ok(self) -> bool:
        hier = self.hierarchy
        if getattr(hier, "crng", None) is None or not self.engaged():
            return False
        noise = hier.noise_source
        if noise is not None and noise.crng is None:
            return False
        l1 = hier.l1[self.main_core]
        l2 = hier.l2[self.main_core]
        return (
            type(l1._pol) is TreePLRU8Table
            and l1.ways == 8
            and l2._lru is not None
            and hier.sf._lru is not None
        )

    def _monitor_round(self, rows, count: int, write: bool) -> int:
        m = self.machine
        ok = self._vec_ok
        if ok is None:
            ok = self._vec_ok = self._vec_shapes_ok()
        if not ok or not VEC_ENABLED or not count or m._events:
            return super()._monitor_round(rows, count, write)
        hier = self.hierarchy
        now = m.now
        noise = hier.noise_source
        sf = hier.sf
        sidx0 = rows.shared_sets[0]
        if noise is not None:
            # Keyed draws are pure: peek at what reconciliation *would*
            # draw for the current windows without consuming or advancing
            # anything.  Nonzero means the round mutates shared state in
            # a data-dependent way — run it live (the live path re-derives
            # the identical draws, so nothing is lost or double-counted).
            crng = noise.crng
            rate = noise._sf_rate
            if rate > 0.0:
                old = sf._noise_t[sidx0]
                if now > old and crng.noise_poisson(
                    S_NOISE_SF, sidx0, old, rate * (now - old)
                ):
                    return super()._monitor_round(rows, count, write)
            rate = noise._llc_rate
            if rate > 0.0:
                old = hier.llc._noise_t[sidx0]
                if now > old and crng.noise_poisson(
                    S_NOISE_LLC, sidx0, old, rate * (now - old)
                ):
                    return super()._monitor_round(rows, count, write)
        core = self.main_core
        l1 = hier.l1[core]
        l2 = hier.l2[core]
        key = (rows.vas, count, write)
        vmemo = self._vmemo
        geom = vmemo.get(key)
        if geom is None:
            if len(vmemo) >= self._VMEMO_CAP:
                vmemo.clear()
            geom = _RoundGeometry(rows, count, write, l1, l2, sf)
            vmemo[key] = geom
        g_sf = geom.g_sf
        pre = (
            geom.g_l1(l1._tags),
            geom.g_l1(l1._owners),
            geom.g_l1_state(l1._state),
            geom.g_l1_touched(l1._touched),
            geom.g_l2(l2._tags),
            g_sf(sf._tags) if write else (),
            g_sf(sf._owners) if write else (),
        )
        rec = geom.entries.get(pre)
        if rec is not None:
            return self._replay(
                m, hier, noise, l1, l2, sf, sidx0, now, count, geom, rec
            )
        return self._record(m, rows, count, write, geom, pre, l1, l2, sf)

    def _record(self, m, rows, count: int, write: bool, geom, pre,
                l1, l2, sf) -> int:
        """Run the round live; capture its delta if it was a pure hit walk."""
        hier = self.hierarchy
        stats = hier.stats
        s0 = (
            stats.accesses, stats.l1_hits, stats.l2_hits, stats.llc_hits,
            stats.sf_transfers, stats.dram_fetches, stats.flushes,
            stats.noise_insertions, stats.sf_back_invalidations,
        )
        p0 = (
            l1.policy_touches, l1.policy_fills, l1.policy_victims,
            l2.policy_touches, sf.policy_touches,
        )
        l2_stamp0 = l2._lru._stamp
        sf_stamp0 = sf._lru._stamp
        l2_state_pre = geom.g_l2(l2._state)
        sf_state_pre = geom.g_sf(sf._state) if write else ()
        ret = super()._monitor_round(rows, count, write)
        d_acc = stats.accesses - s0[0]
        d_h1 = stats.l1_hits - s0[1]
        d_h2 = stats.l2_hits - s0[2]
        # Purity detector: every fallback path in the fused round bumps at
        # least one of these counters (misses, transfers, back-invals...),
        # so "count accesses, all of them L1/L2 hits, nothing else moved"
        # proves the round stayed on the inline hit walk.
        if (
            d_acc != count
            or d_h1 + d_h2 != count
            or stats.llc_hits != s0[3]
            or stats.sf_transfers != s0[4]
            or stats.dram_fetches != s0[5]
            or stats.flushes != s0[6]
            or stats.noise_insertions != s0[7]
            or stats.sf_back_invalidations != s0[8]
        ):
            return ret
        pre_t = pre[0]
        post_t = geom.g_l1(l1._tags)
        wdel = []
        wadd = []
        n1 = l1.n_sets
        slots = geom.l1_slots
        psets = geom.l1_pos_sets
        for i in range(len(slots)):
            a = pre_t[i]
            b = post_t[i]
            if a != b:
                if a is not None:
                    wdel.append(a * n1 + psets[i])
                if b is not None:
                    wadd.append((b * n1 + psets[i], slots[i]))
        tag_segs = tuple(l1._tags[a:b] for a, b in geom.l1_tag_ranges)
        own_segs = tuple(l1._owners[a:b] for a, b in geom.l1_tag_ranges)
        st_segs = tuple(l1._state[a:b] for a, b in geom.l1_state_ranges)
        occ_post = tuple(l1._occ[s] for s in geom.l1_sets)
        post_touch = geom.g_l1_touched(l1._touched)
        marks = tuple(
            s for s, a, b in zip(geom.l1_sets, pre[3], post_touch)
            if not a and b
        )
        l2_state_post = geom.g_l2(l2._state)
        l2_slots = geom.l2_slots
        l2w = [
            (l2_slots[i], l2_state_post[i] - l2_stamp0)
            for i in range(len(l2_slots))
            if l2_state_post[i] != l2_state_pre[i]
        ]
        if l2._lru._stamp - l2_stamp0 != len(l2w):
            return ret
        if write:
            sf_state_post = geom.g_sf(sf._state)
            sf_slots = geom.sf_slots
            sfw = [
                (sf_slots[i], sf_state_post[i] - sf_stamp0)
                for i in range(len(sf_slots))
                if sf_state_post[i] != sf_state_pre[i]
            ]
            if sf._lru._stamp - sf_stamp0 != len(sfw):
                return ret
        else:
            sfw = []
            if sf._lru._stamp != sf_stamp0:
                return ret
        # Base elapsed of a pure hit round, re-derived from the fused
        # loop's arithmetic (the preemption penalty is drawn live at
        # replay, so only the deterministic part is recorded).
        lat = m.cfg.latency
        worst = 0
        if d_h1:
            worst = lat.l1_hit
        if d_h2 and lat.l2_hit > worst:
            worst = lat.l2_hit
        elapsed_base = worst + count * lat.hit_issue_gap
        d = (
            d_acc, d_h1, d_h2,
            l1.policy_touches - p0[0],
            l1.policy_fills - p0[1],
            l1.policy_victims - p0[2],
            l2.policy_touches - p0[3],
            sf.policy_touches - p0[4],
        )
        entries = geom.entries
        if len(entries) >= self._ENTRY_CAP:
            entries.clear()
        entries[pre] = (
            tag_segs, own_segs, st_segs, occ_post, tuple(wdel), tuple(wadd),
            marks, tuple(l2w), tuple(sfw), d, elapsed_base,
        )
        return ret

    def _replay(self, m, hier, noise, l1, l2, sf, sidx0: int, now: int,
                count: int, geom, rec) -> int:
        """Apply a recorded pure round: O(touched slots), no per-line work."""
        if noise is not None:
            # Mirror reconcile's clock exchange for the (verified zero)
            # noise windows — marks the sets touched and floors the clocks.
            if noise._sf_rate > 0.0:
                sf.exchange_noise_clock(sidx0, now)
            if noise._llc_rate > 0.0:
                hier.llc.exchange_noise_clock(sidx0, now)
        m.batch_calls += 1
        m.batch_lines += count
        tags = l1._tags
        owners = l1._owners
        state = l1._state
        ranges = geom.l1_tag_ranges
        for (a, b), seg in zip(ranges, rec[0]):
            tags[a:b] = seg
        for (a, b), seg in zip(ranges, rec[1]):
            owners[a:b] = seg
        for (a, b), seg in zip(geom.l1_state_ranges, rec[2]):
            state[a:b] = seg
        occ = l1._occ
        for s, v in zip(geom.l1_sets, rec[3]):
            occ[s] = v
        where = l1._where
        for k in rec[4]:
            del where[k]
        for k, s in rec[5]:
            where[k] = s
        if rec[6]:
            touched = l1._touched
            for s in rec[6]:
                touched[s] = 1
            l1._touched_count += len(rec[6])
        l2w = rec[7]
        if l2w:
            lru = l2._lru
            base = lru._stamp
            st = l2._state
            for s, k in l2w:
                st[s] = base + k
            lru._stamp = base + len(l2w)
        sfw = rec[8]
        if sfw:
            lru = sf._lru
            base = lru._stamp
            st = sf._state
            for s, k in sfw:
                st[s] = base + k
            lru._stamp = base + len(sfw)
        d = rec[9]
        stats = hier.stats
        stats.accesses += d[0]
        stats.l1_hits += d[1]
        stats.l2_hits += d[2]
        l1.policy_touches += d[3]
        l1.policy_fills += d[4]
        l1.policy_victims += d[5]
        l2.policy_touches += d[6]
        sf.policy_touches += d[7]
        elapsed = rec[10]
        elapsed += m._preemption_penalty(elapsed)
        m.advance(elapsed)
        return elapsed

    # -- Construction-test memo-replay ----------------------------------------
    #
    # ``test_eviction_kernel`` is the whole construction hot path: one
    # prime + flush + traversal + timed reload per group-testing or
    # binary-search iteration.  Under the counter contract every
    # stochastic draw the test can make is a pure function of state the
    # test reads — noise windows are keyed by (set, clock), reuse and
    # L2-victim draws by per-event counters, and the two serial streams
    # that stay live in every mode (preemption, timer jitter) are part
    # of the captured precondition.  A test whose *entire read closure*
    # matches a recorded precondition therefore replays exactly: same
    # verdict, same machine state after, same clock advance, same RNG
    # positions.  The memo key is (shape, pre-state slice) where shape =
    # (mode, target line, candidate tuple, count, repeats, threshold)
    # and the slice covers the transitive closure of rows the test can
    # touch (see _cm_closure).  Within one fresh construction keys
    # essentially never repeat (the machine state advances test to
    # test); the memo pays when work literally repeats — campaigns
    # restored from a trial-prefix checkpoint (repro.exec.prefix),
    # re-validation passes, and fleet shard replays.

    def _cm_shapes_ok(self) -> bool:
        """Construct memo gate: counter contract + stamp-policy planes.

        The row capture/restore is policy-agnostic over plain state
        planes, but keyed *victim* draws of random-replacement policies
        keep per-set counters inside the policy table; the default
        geometry (tree-PLRU8 L1, LRU L2/SF/LLC) has none.
        """
        if not self._vec_shapes_ok():
            return False
        hier = self.hierarchy
        if hier.llc._lru is None:
            return False
        for cache in (*hier.l1, *hier.l2, hier.sf, hier.llc):
            if getattr(cache._pol, "_ctr", None) is not None:
                return False
        return True

    def _cm_closure(self, plan, tline: int):
        """Transitive read/write closure of one test, as row index sets.

        Returns ``(S1, S2, SS)`` — L1, L2, and shared (SF/LLC) set
        indices — or None when the closure exceeds :data:`_CM_MAX_ROWS`.

        Closure rules (each a "this write can land there" edge):

        * the candidate rows and the target's rows are touched directly;
        * a shared-set row's *resident* real tags can be evicted (SF
          back-invalidation, LLC inclusion victim), which writes their
          private L1/L2 rows on every core;
        * a hot-core L2 row's resident tags can fall victim to a fill,
          and ``_handle_l2_victim`` then touches the victim line's
          shared set (SF disposition, write-back LLC install) — whose
          residents recurse through the first rule.

        Tags *installed during* the test are candidate lines, the
        target, or fresh noise tags — their rows are already in the
        closure (noise tags have no private copies and never
        back-invalidate), so the fixpoint over the initial state covers
        every intermediate state too.
        """
        hier = self.hierarchy
        l1_mask = hier._l1_mask
        l2_mask = hier._l2_mask
        sidx_memo = hier._sidx_memo
        sidx_of = hier.shared_set_index
        sf = hier.sf
        llc = hier.llc
        nb = _NOISE_TAG_BASE
        cores = hier.cfg.cores
        S1 = set(plan.l1_uniq)
        S2 = set(plan.l2_uniq)
        SS = set(plan.shared_uniq)
        S1.add(tline & l1_mask)
        S2.add(tline & l2_mask)
        ts = sidx_memo.get(tline)
        if ts is None:
            ts = sidx_of(tline)
        SS.add(ts)
        new_ss = list(SS)
        new_s2 = list(S2)
        sf_tags = sf._tags
        llc_tags = llc._tags
        sfw = sf.ways
        llcw = llc.ways
        hot_l2 = (hier.l2[self.main_core], hier.l2[self.helper_core])
        max_rows = self._CM_MAX_ROWS
        while new_ss or new_s2:
            if len(SS) * 2 + (len(S2) + len(S1)) * cores > max_rows:
                return None
            nxt_s2: List[int] = []
            for s in new_ss:
                for tags, w in ((sf_tags, sfw), (llc_tags, llcw)):
                    b = s * w
                    for t in tags[b:b + w]:
                        if t is not None and t < nb:
                            S1.add(t & l1_mask)
                            s2 = t & l2_mask
                            if s2 not in S2:
                                S2.add(s2)
                                nxt_s2.append(s2)
            nxt_ss: List[int] = []
            for s in new_s2:
                for c in hot_l2:
                    w = c.ways
                    b = s * w
                    for t in c._tags[b:b + w]:
                        if t is not None and t < nb:
                            ss = sidx_memo.get(t)
                            if ss is None:
                                ss = sidx_of(t)
                            if ss not in SS:
                                SS.add(ss)
                                nxt_ss.append(ss)
            new_ss = nxt_ss
            new_s2 = nxt_s2
        return S1, S2, SS

    def _cm_planes(self, s1, s2, ss):
        """The (cache, rows, is_shared) capture schedule for a closure."""
        hier = self.hierarchy
        return (
            tuple((c, s1, False) for c in hier.l1)
            + tuple((c, s2, False) for c in hier.l2)
            + ((hier.sf, ss, True), (hier.llc, ss, True))
        )

    @staticmethod
    def _cm_cap_rows(planes):
        """Row-state slice over the closure: one tuple per (cache, set).

        Each row entry is (tags, owners, policy-state, occupancy,
        noise clock, touched bit) — everything the data plane keeps per
        set.  All C-level slicing; tuples so the whole capture hashes as
        a memo key.
        """
        out = []
        for cache, rows_, shared in planes:
            w = cache.ways
            ps = cache._pstride
            tags = cache._tags
            owners = cache._owners
            state = cache._state
            occ = cache._occ
            nt = cache._noise_t
            tt = cache._touched
            for s in rows_:
                b = s * w
                sb = s * ps
                out.append((
                    tuple(tags[b:b + w]), tuple(owners[b:b + w]),
                    tuple(state[sb:sb + ps]), occ[s],
                    nt[s] if shared else 0, tt[s],
                ))
        return tuple(out)

    def _cm_scalars(self, ss_sorted, vcands):
        """Non-plane state the test can read: counters, stamps, RNGs.

        Stamps are captured (and replayed) absolute — exactness over
        hit rate: keys only ever repeat when the machine state literally
        repeats (checkpoint restore), where absolutes match anyway.
        """
        m = self.machine
        hier = self.hierarchy
        stamps = []
        for cache in (*hier.l1, *hier.l2, hier.sf, hier.llc):
            lru = cache._lru
            stamps.append(
                (lru._stamp, lru._inv_stamp) if lru is not None else None
            )
        rget = hier._sf_reuse_ctr.get
        vget = hier._l2v_ctr.get
        cores = hier.cfg.cores
        mc = self.main_core
        hc = self.helper_core
        return (
            m.now,
            tuple(stamps),
            tuple(rget(s, 0) for s in ss_sorted),
            tuple(
                (vget(v * cores + mc, 0), vget(v * cores + hc, 0))
                for v in vcands
            ),
            hier._noise_tag_next,
            m._preempt_rng.getstate(),
            m._jitter_rng.getstate(),
            hier._rng.getstate(),
            m.noise._rng.getstate(),
        )

    def _cm_vcands(self, plan, tline: int, s2):
        """Every line an L2-victim draw could be keyed by during the test:
        current hot-core L2 residents of closure rows, plus every line
        the test itself installs (candidates and the target)."""
        hier = self.hierarchy
        nb = _NOISE_TAG_BASE
        cands = set()
        for c in (hier.l2[self.main_core], hier.l2[self.helper_core]):
            w = c.ways
            tags = c._tags
            for s in s2:
                b = s * w
                for t in tags[b:b + w]:
                    if t is not None and t < nb:
                        cands.add(t)
        for step in plan.steps:
            cands.add(step[0])
        cands.add(tline)
        return sorted(cands)

    def test_eviction_kernel(self, mode: str, tline: int, rows, count: int,
                             repeats: int, threshold: int) -> bool:
        ok = self._cm_ok
        if ok is None:
            ok = self._cm_ok = self._cm_shapes_ok()
        m = self.machine
        if not ok or not CMEMO_ENABLED or not count or m._events:
            return super().test_eviction_kernel(
                mode, tline, rows, count, repeats, threshold)
        plan = self._plan(rows, count)
        if plan is None:
            return super().test_eviction_kernel(
                mode, tline, rows, count, repeats, threshold)
        shape = (mode, tline, rows.vas, count, repeats, threshold)
        cmemo = self._cmemo
        entries = cmemo.get(shape, _CM_UNSEEN)
        if entries is _CM_UNSEEN:
            # First sight of this shape: run live with zero capture cost.
            # A fresh construction's shapes are overwhelmingly unique
            # (the machine state advances test to test), so the memo
            # only starts paying attention once a shape repeats.
            if len(cmemo) >= self._CMEMO_CAP:
                cmemo.clear()
            cmemo[shape] = None
            return super().test_eviction_kernel(
                mode, tline, rows, count, repeats, threshold)
        closure = self._cm_closure(plan, tline)
        if closure is None:
            return super().test_eviction_kernel(
                mode, tline, rows, count, repeats, threshold)
        s1, s2, ss = closure
        s1 = sorted(s1)
        s2 = sorted(s2)
        ss = sorted(ss)
        planes = self._cm_planes(s1, s2, ss)
        vcands = self._cm_vcands(plan, tline, s2)
        pre = (self._cm_cap_rows(planes), self._cm_scalars(ss, vcands))
        if entries is None:
            entries = {}
            cmemo[shape] = entries
        rec = entries.get(pre)
        if rec is not None:
            return self._cm_replay(planes, rec)
        return self._cm_record(
            mode, tline, rows, count, repeats, threshold,
            planes, ss, vcands, pre, entries)

    def test_many_kernel(self, mode: str, tlines: Sequence[int], rows,
                         count: int, repeats: int,
                         threshold: int) -> List[bool]:
        return [
            self.test_eviction_kernel(
                mode, tline, rows, count, repeats, threshold)
            for tline in tlines
        ]

    def _cm_record(self, mode, tline, rows, count, repeats, threshold,
                   planes, ss, vcands, pre, entries):
        """Run the test live and capture its exact closure delta."""
        m = self.machine
        hier = self.hierarchy
        stats = hier.stats
        now0 = m.now
        stat_names = type(stats).__slots__
        stats0 = tuple(getattr(stats, n) for n in stat_names)
        pol0 = tuple(
            (c.policy_touches, c.policy_fills, c.policy_victims)
            for c, _, _ in planes
        )
        noise0 = m.noise.events
        bc0 = m.batch_calls
        bl0 = m.batch_lines
        verdict = super().test_eviction_kernel(
            mode, tline, rows, count, repeats, threshold)
        if m._events:
            # The test scheduled machine events; a closures-only replay
            # cannot reproduce the heap.  Keep the live result, record
            # nothing.
            return verdict
        post_rows = self._cm_cap_rows(planes)
        # Sparse row delta: the closure is deliberately conservative, so
        # most closure rows are never actually written by the test.
        # Storing (and replaying) only the rows whose captured state
        # moved makes replay cost proportional to what the test *did*,
        # not to what it *could have* touched.  A row whose capture is
        # unchanged needs no write at all: the replay precondition is
        # that every closure row currently equals its recorded pre.
        pre_rows = pre[0]
        row_delta = []
        rows_it = iter(zip(pre_rows, post_rows))
        for pi, (_cache, rows_, _shared) in enumerate(planes):
            for s in rows_:
                prow, qrow = next(rows_it)
                if prow != qrow:
                    row_delta.append((pi, s, qrow))
        # Sparse counter deltas: only keys whose value moved, so a
        # replay never materializes explicit zero entries the live run
        # would not have.
        rget = hier._sf_reuse_ctr.get
        vget = hier._l2v_ctr.get
        cores = hier.cfg.cores
        mc = self.main_core
        hc = self.helper_core
        pre_scal = pre[1]
        rdelta = tuple(
            (s, v) for s, p, v in zip(
                ss, pre_scal[2], (rget(s, 0) for s in ss))
            if v != p
        )
        vdelta = []
        for v, (pm, ph) in zip(vcands, pre_scal[3]):
            nm = vget(v * cores + mc, 0)
            nh = vget(v * cores + hc, 0)
            if nm != pm:
                vdelta.append((v * cores + mc, nm))
            if nh != ph:
                vdelta.append((v * cores + hc, nh))
        pre_stamps = pre_scal[1]
        stamp_delta = []
        for pi, (cache, _, _) in enumerate(planes):
            lru = cache._lru
            if lru is not None:
                st = (lru._stamp, lru._inv_stamp)
                if st != pre_stamps[pi]:
                    stamp_delta.append((pi, st))
        rec = (
            tuple(row_delta),
            tuple(stamp_delta),
            rdelta,
            tuple(vdelta),
            hier._noise_tag_next,
            m._preempt_rng.getstate(),
            m._jitter_rng.getstate(),
            hier._rng.getstate(),
            m.noise._rng.getstate(),
            tuple(
                getattr(stats, n) - v for n, v in zip(stat_names, stats0)
            ),
            tuple(
                (pi, c.policy_touches - a, c.policy_fills - b,
                 c.policy_victims - d)
                for pi, ((c, _, _), (a, b, d)) in enumerate(zip(planes, pol0))
                if (c.policy_touches, c.policy_fills, c.policy_victims)
                != (a, b, d)
            ),
            m.noise.events - noise0,
            m.batch_calls - bc0,
            m.batch_lines - bl0,
            m.now - now0,
            verdict,
        )
        if len(entries) >= self._CM_ENTRY_CAP:
            entries.clear()
        entries[pre] = rec
        return verdict

    def _cm_replay(self, planes, rec) -> bool:
        """Apply a recorded test delta: O(changed rows), no simulation."""
        m = self.machine
        hier = self.hierarchy
        for pi, s, (ptags, powners, pstate, pocc, pnt, ptt) in rec[0]:
            cache, _, shared = planes[pi]
            w = cache.ways
            ps = cache._pstride
            n_sets = cache.n_sets
            tags = cache._tags
            where = cache._where
            b = s * w
            sb = s * ps
            for t in tags[b:b + w]:
                if t is not None:
                    del where[t * n_sets + s]
            for i, t in enumerate(ptags):
                if t is not None:
                    where[t * n_sets + s] = b + i
            tags[b:b + w] = ptags
            cache._owners[b:b + w] = powners
            cache._state[sb:sb + ps] = pstate
            cache._occ[s] = pocc
            if shared:
                cache._noise_t[s] = pnt
            tt = cache._touched
            if ptt and not tt[s]:
                tt[s] = 1
                cache._touched_count += 1
        for pi, st in rec[1]:
            lru = planes[pi][0]._lru
            lru._stamp, lru._inv_stamp = st
        if rec[2]:
            ctr = hier._sf_reuse_ctr
            for k, v in rec[2]:
                ctr[k] = v
        if rec[3]:
            ctr = hier._l2v_ctr
            for k, v in rec[3]:
                ctr[k] = v
        hier._noise_tag_next = rec[4]
        m._preempt_rng.setstate(rec[5])
        m._jitter_rng.setstate(rec[6])
        hier._rng.setstate(rec[7])
        m.noise._rng.setstate(rec[8])
        stats = hier.stats
        for n, d in zip(type(stats).__slots__, rec[9]):
            if d:
                setattr(stats, n, getattr(stats, n) + d)
        for pi, dt, df, dv in rec[10]:
            cache = planes[pi][0]
            cache.policy_touches += dt
            cache.policy_fills += df
            cache.policy_victims += dv
        m.noise.events += rec[11]
        m.batch_calls += rec[12]
        m.batch_lines += rec[13]
        m.advance(rec[14])
        return rec[15]


#: Sentinel distinguishing "shape never seen" from "seen once, no
#: recordings yet" (None) in ``VecKernels._cmemo``.
_CM_UNSEEN = object()
