"""Cache replacement policies.

Each policy maintains per-set state over ``ways`` entries and answers three
questions: what happens on a hit (:meth:`touch`), what happens on a fill
(:meth:`fill`), and which way would be evicted next (:meth:`victim`).
:meth:`victim` is a *pure* query — the cache calls it and then overwrites the
returned way via :meth:`fill` — which is exactly the hook Prime+Scope needs
to reason about the eviction candidate (EVC).

Policies supported (Section 2.3 / Section 6.1 context: Intel's real policies
are undocumented; Parallel Probing is valuable precisely because it works
regardless of the policy):

* ``lru`` — true least-recently-used.
* ``tree_plru`` — binary-tree pseudo-LRU (power-of-two ways only).
* ``srrip`` — 2-bit static re-reference interval prediction.
* ``qlru`` — quad-age LRU approximation (hit promotes to age 0, fill at 1).
* ``random`` — uniform random victim.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import ConfigurationError
from ..rng import S_VICTIM


class ReplacementPolicy:
    """Base class; subclasses implement the three state hooks."""

    __slots__ = ("ways",)

    def __init__(self, ways: int) -> None:
        self.ways = ways

    def touch(self, way: int) -> None:
        """A hit on ``way``."""
        raise NotImplementedError

    def fill(self, way: int) -> None:
        """A new line was installed in ``way``."""
        raise NotImplementedError

    def victim(self) -> int:
        """The way that would be evicted next (no state change)."""
        raise NotImplementedError

    def invalidate(self, way: int) -> None:
        """``way`` was invalidated; make it maximally eviction-preferred."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Exact LRU; the recency stack is a list of ways, MRU last."""

    __slots__ = ("_stack",)

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        super().__init__(ways)
        self._stack: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        stack = self._stack
        stack.remove(way)
        stack.append(way)

    fill = touch

    def victim(self) -> int:
        return self._stack[0]

    def invalidate(self, way: int) -> None:
        stack = self._stack
        stack.remove(way)
        stack.insert(0, way)


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU; requires a power-of-two way count."""

    __slots__ = ("_bits", "_levels")

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        if ways & (ways - 1) or ways < 2:
            raise ConfigurationError("tree PLRU requires power-of-two ways >= 2")
        super().__init__(ways)
        self._levels = ways.bit_length() - 1
        self._bits = [0] * (ways - 1)

    def _update_towards(self, way: int) -> None:
        # Flip internal nodes to point *away* from the accessed way.
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            self._bits[node] = 1 - bit
            node = 2 * node + 1 + bit

    touch = _update_towards
    fill = _update_towards

    def victim(self) -> int:
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = self._bits[node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        return way

    def invalidate(self, way: int) -> None:
        # Point the tree at the invalidated way so it is refilled first.
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            self._bits[node] = bit
            node = 2 * node + 1 + bit


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values (RRPV).

    Hit promotes to RRPV 0; fills insert at RRPV 2 ("long"); the victim is
    the lowest-indexed way at RRPV 3, aging everyone until one exists.
    Victim search ages state, so :meth:`victim` precomputes the answer
    without mutating (the aging happens on :meth:`fill` of that way).
    """

    __slots__ = ("_rrpv",)

    _MAX = 3

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        super().__init__(ways)
        self._rrpv = [self._MAX] * ways

    def touch(self, way: int) -> None:
        self._rrpv[way] = 0

    def fill(self, way: int) -> None:
        rrpv = self._rrpv
        # Apply the aging that the victim search would have performed.
        bump = self._MAX - max(rrpv)
        if bump < 0:
            bump = 0
        if bump:
            for i in range(self.ways):
                rrpv[i] += bump
        rrpv[way] = 2

    def victim(self) -> int:
        rrpv = self._rrpv
        best = max(rrpv)
        return rrpv.index(best)

    def invalidate(self, way: int) -> None:
        self._rrpv[way] = self._MAX


class QLRUPolicy(ReplacementPolicy):
    """Quad-age LRU approximation (Intel client-like QLRU).

    Ages are 0 (youngest) to 3 (oldest).  Hits rejuvenate to 0, fills insert
    at age 1, victims are the oldest way (ties broken by lowest index) with
    aging applied when no way is at age 3 yet.
    """

    __slots__ = ("_age",)

    _MAX = 3

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        super().__init__(ways)
        self._age = [self._MAX] * ways

    def touch(self, way: int) -> None:
        self._age[way] = 0

    def fill(self, way: int) -> None:
        age = self._age
        bump = self._MAX - max(age)
        if bump > 0:
            for i in range(self.ways):
                age[i] += bump
        age[way] = 1

    def victim(self) -> int:
        age = self._age
        best = max(age)
        return age.index(best)

    def invalidate(self, way: int) -> None:
        self._age[way] = self._MAX


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection.

    ``victim`` must be stable between the query and the subsequent fill, so
    the choice is drawn lazily and cached until consumed by a fill.

    In counter mode (:meth:`bind_keyed`) each consumed draw is keyed by
    ``(cache_id, set_index, per-set draw count)`` — bit-identical to the
    flat :class:`repro.memsys.policy_tables.RandomTable` keyed draws,
    because the lazy caching (the consumption points) is the same.
    """

    __slots__ = ("_rng", "_pending", "_keyed", "_ctr")

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        super().__init__(ways)
        self._rng = rng if rng is not None else random.Random(0)
        self._pending = None
        self._keyed = None
        self._ctr = 0

    def bind_keyed(self, crng, cache_id: int, set_idx: int) -> None:
        """Switch victim draws to event-keyed mode (see repro.rng)."""
        self._keyed = (crng, cache_id, set_idx)

    def touch(self, way: int) -> None:
        pass

    def fill(self, way: int) -> None:
        self._pending = None

    def victim(self) -> int:
        if self._pending is None:
            keyed = self._keyed
            if keyed is None:
                self._pending = self._rng.randrange(self.ways)
            else:
                crng, cache_id, set_idx = keyed
                rc = self._ctr
                self._ctr = rc + 1
                self._pending = crng.randrange(
                    S_VICTIM, cache_id, set_idx, rc, self.ways)
        return self._pending

    def invalidate(self, way: int) -> None:
        self._pending = way


_POLICIES = {
    "lru": LRUPolicy,
    "tree_plru": TreePLRUPolicy,
    "srrip": SRRIPPolicy,
    "qlru": QLRUPolicy,
    "random": RandomPolicy,
}


def policy_names():
    """Names of all registered replacement policies."""
    return sorted(_POLICIES)


def make_policy(name: str, ways: int, rng: random.Random = None) -> ReplacementPolicy:
    """Instantiate the replacement policy ``name`` for a ``ways``-way set."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {policy_names()}"
        ) from None
    return cls(ways, rng)
