"""Set-associative cache structure — the flat, array-backed data plane.

:class:`SetAssociativeCache` stores tags (physical line addresses) with an
owner annotation per line and delegates recency decisions to a table-driven
replacement policy.  It is used both for private caches (L1/L2, one instance
per core) and, with externally computed global set indices, for the sliced
shared LLC and Snoop Filter.

Layout (one flat plane per cache, no per-set objects):

* ``_tags``/``_owners`` — ``n_sets * ways`` slots; slot ``set*W + way``.
  Empty ways hold ``None``.
* ``_state`` — flat per-set replacement-policy state with a policy-specific
  stride (see :mod:`repro.memsys.policy_tables`); one policy-table object
  per cache replaces the seed's policy object per *set*.
* ``_where`` — tag index: ``tag * n_sets + set_idx -> slot``.  Hit tests
  are a single dict probe instead of a per-set list scan, and misses do
  not pay an exception.
* ``_occ`` — per-set valid-line counts (victim-path fast check).
* ``_noise_t`` — per-set cycle up to which background noise has been
  reconciled (maintained through :meth:`noise_clock`/:meth:`set_noise_clock`
  by the hierarchy's noise hook).  The clock plane deliberately survives
  :meth:`flush_all`: dropping it with the lines would make the next access
  draw a Poisson catch-up over the entire elapsed simulated time.

The seed dict-of-sets implementation lives on in
:mod:`repro.memsys._reference` as the parity oracle; the parity suite pins
this plane to it seed-for-seed.
"""

from __future__ import annotations

import itertools
import random
from typing import List, Optional, Tuple

from .policy_tables import LRUTable, SRRIPTable, make_policy_table

#: Globally unique flush-generation labels (see ``_flush_epoch``).  Drawn
#: at construction and at every :meth:`SetAssociativeCache.flush_all` so
#: that no two flush generations — across caches, machines, or
#: checkpoint/restore lineages — ever share a value.  Pure identity
#: labels: never drawn from an RNG, never part of any digest.
_EPOCHS = itertools.count(1)


class SetAssociativeCache:
    """A (possibly sliced) set-associative cache indexed by set number.

    The caller computes the set index — for private caches that is the plain
    index field of the address, for the LLC/SF it is
    ``slice * sets_per_slice + index`` — so this class stays agnostic of
    slicing and address mapping.
    """

    __slots__ = (
        "name",
        "n_sets",
        "ways",
        "_policy_name",
        "_rng",
        "_pol",
        "_pstride",
        "_pt_touch",
        "_pt_fill",
        "_pt_victim",
        "_pt_invalidate",
        "_lru",
        "_rrip",
        "_tags",
        "_owners",
        "_occ",
        "_state",
        "_where",
        "_noise_t",
        "_touched",
        "_touched_count",
        "_flush_epoch",
        "policy_touches",
        "policy_fills",
        "policy_victims",
    )

    def __init__(
        self,
        name: str,
        n_sets: int,
        ways: int,
        policy_name: str,
        rng: random.Random,
    ) -> None:
        self.name = name
        self.n_sets = n_sets
        self.ways = ways
        self._policy_name = policy_name
        self._rng = rng
        pol = make_policy_table(policy_name, ways, rng)
        self._pol = pol
        self._pstride = pol.stride
        # Bound methods: one attribute hop at construction instead of two
        # (`self._pol.touch`) per access on the hot path.
        self._pt_touch = pol.touch
        self._pt_fill = pol.fill
        self._pt_victim = pol.victim
        self._pt_invalidate = pol.invalidate
        # Touch fast paths: for the stride == ways policies whose touch is a
        # single O(1) store, the state index equals the flat slot and the
        # table call is inlined at the two hit sites (lookup / insert-hit).
        self._lru = pol if type(pol) is LRUTable else None
        self._rrip = isinstance(pol, SRRIPTable)  # covers QLRU (subclass)
        n = n_sets * ways
        self._tags: List[Optional[int]] = [None] * n
        self._owners: List[int] = [0] * n
        self._occ: List[int] = [0] * n_sets
        self._state: List[int] = pol.make_state(n_sets)
        self._where: dict = {}
        self._noise_t: List[int] = [0] * n_sets
        self._touched = bytearray(n_sets)
        self._touched_count = 0
        #: Flush-generation label (snapshot machinery): rows whose
        #: ``_touched`` bit is clear are pristine *within* one epoch, so
        #: a checkpoint restore may skip them iff the epochs match.
        self._flush_epoch = next(_EPOCHS)
        #: Policy-table operation counters (data-plane observability).
        self.policy_touches = 0
        self.policy_fills = 0
        self.policy_victims = 0

    def bind_keyed_victims(self, crng, cache_id: int) -> None:
        """Counter-mode hook: key random-policy victim draws (no-op for
        deterministic policies — they draw nothing)."""
        bind = getattr(self._pol, "bind_keyed", None)
        if bind is not None:
            bind(crng, cache_id)

    def _mark_touched(self, set_idx: int) -> None:
        if not self._touched[set_idx]:
            self._touched[set_idx] = 1
            self._touched_count += 1

    # -- Noise reconciliation clock -----------------------------------------

    def noise_clock(self, set_idx: int) -> int:
        """Cycle up to which background noise is reconciled for the set."""
        self._mark_touched(set_idx)
        return self._noise_t[set_idx]

    def set_noise_clock(self, set_idx: int, now: int) -> None:
        self._mark_touched(set_idx)
        self._noise_t[set_idx] = now

    def exchange_noise_clock(self, set_idx: int, now: int) -> int:
        """Advance the set's noise clock to ``now``; returns the old value.

        Fused read-modify-write for the per-access reconciliation hot path
        (one call instead of a :meth:`noise_clock`/:meth:`set_noise_clock`
        pair).  A clock already past ``now`` is left alone.
        """
        if not self._touched[set_idx]:
            self._touched[set_idx] = 1
            self._touched_count += 1
        nt = self._noise_t
        old = nt[set_idx]
        if now > old:
            nt[set_idx] = now
        return old

    # -- Queries ---------------------------------------------------------

    def lookup(self, set_idx: int, tag: int) -> bool:
        """Hit test that updates replacement state on a hit."""
        slot = self._where.get(tag * self.n_sets + set_idx)
        if slot is None:
            return False
        lru = self._lru
        if lru is not None:  # inline LRUTable.touch (stamp counter shared)
            lru._stamp = stamp = lru._stamp + 1
            self._state[slot] = stamp
        elif self._rrip:  # inline SRRIPTable/QLRUTable.touch
            self._state[slot] = 0
        else:
            self._pt_touch(
                self._state, set_idx * self._pstride, slot - set_idx * self.ways
            )
        self.policy_touches += 1
        return True

    def contains(self, set_idx: int, tag: int) -> bool:
        """Hit test with no side effects."""
        return (tag * self.n_sets + set_idx) in self._where

    def owner_of(self, set_idx: int, tag: int) -> Optional[int]:
        """Owner annotation of ``tag``, or None if absent."""
        slot = self._where.get(tag * self.n_sets + set_idx)
        if slot is None:
            return None
        return self._owners[slot]

    def occupancy(self, set_idx: int) -> int:
        """Number of valid lines in the set."""
        return self._occ[set_idx]

    def tags_in_set(self, set_idx: int) -> List[int]:
        """Valid tags currently in the set (unordered snapshot)."""
        base = set_idx * self.ways
        return [t for t in self._tags[base : base + self.ways] if t is not None]

    def peek_victim(self, set_idx: int) -> Optional[int]:
        """Tag that the next fill into a *full* set would evict.

        Returns None when the set has a free way (no eviction would occur).
        This is the eviction candidate (EVC) that Prime+Scope relies on.
        """
        if self._occ[set_idx] < self.ways:
            return None
        way = self._pt_victim(self._state, set_idx * self._pstride)
        return self._tags[set_idx * self.ways + way]

    # -- Mutations ---------------------------------------------------------

    def insert(
        self, set_idx: int, tag: int, owner: int = 0, update_owner: bool = True
    ) -> Optional[Tuple[int, int]]:
        """Install ``tag``; returns the evicted ``(tag, owner)`` if any.

        If the tag is already present this degrades to a recency touch and
        nothing is evicted.  ``update_owner`` controls whether the
        touch-degraded path also rewrites the resident line's owner
        annotation: ownership-transferring call sites (SF entry retake,
        shared-line install) want the rewrite, while pure recency refreshes
        must pass ``update_owner=False`` so they cannot silently reassign a
        line they do not own.
        """
        n_sets = self.n_sets
        key = tag * n_sets + set_idx
        where = self._where
        slot = where.get(key)
        ways = self.ways
        if slot is not None:
            if update_owner:
                self._owners[slot] = owner
            lru = self._lru
            if lru is not None:  # inline touch fast paths (see lookup)
                lru._stamp = stamp = lru._stamp + 1
                self._state[slot] = stamp
            elif self._rrip:
                self._state[slot] = 0
            else:
                self._pt_touch(
                    self._state, set_idx * self._pstride, slot - set_idx * ways
                )
            self.policy_touches += 1
            return None
        base = set_idx * ways
        tags = self._tags
        occ = self._occ
        if occ[set_idx] < ways:
            slot = tags.index(None, base, base + ways)
            way = slot - base
            occ[set_idx] += 1
            evicted = None
        else:
            way = self._pt_victim(self._state, set_idx * self._pstride)
            self.policy_victims += 1
            slot = base + way
            etag = tags[slot]
            evicted = (etag, self._owners[slot])
            del where[etag * n_sets + set_idx]
        tags[slot] = tag
        self._owners[slot] = owner
        where[key] = slot
        lru = self._lru
        if lru is not None:  # inline LRUTable.fill (== touch; see lookup)
            lru._stamp = stamp = lru._stamp + 1
            self._state[slot] = stamp
        else:
            self._pt_fill(self._state, set_idx * self._pstride, way)
        self.policy_fills += 1
        if not self._touched[set_idx]:
            self._touched[set_idx] = 1
            self._touched_count += 1
        return evicted

    def remove(self, set_idx: int, tag: int) -> bool:
        """Invalidate ``tag`` if present; returns whether it was.

        One ``dict.pop`` replaces the probe-then-delete pair (the common
        flush path calls this hundreds of thousands of times per trial);
        every other effect is a single flat-plane write.
        """
        slot = self._where.pop(tag * self.n_sets + set_idx, None)
        if slot is None:
            return False
        self._tags[slot] = None
        self._owners[slot] = 0
        self._occ[set_idx] -= 1
        lru = self._lru
        if lru is not None:  # inline LRUTable.invalidate (see lookup)
            lru._inv_stamp = stamp = lru._inv_stamp - 1
            self._state[slot] = stamp
        else:
            self._pt_invalidate(
                self._state, set_idx * self._pstride, slot - set_idx * self.ways
            )
        return True

    def flush_all(self, now: int = 0) -> None:
        """Drop every line (used by tests and machine reset).

        The per-set noise-reconciliation clocks are *not* dropped — noise
        accumulated before the flush is irrelevant to the (now empty) sets,
        so the clocks are floored at ``now`` and otherwise carried.  Pass
        the current cycle so sets that were never reconciled do not draw a
        whole-history Poisson catch-up on their next access.
        """
        n = self.n_sets * self.ways
        self._tags = [None] * n
        self._owners = [0] * n
        self._occ = [0] * self.n_sets
        self._state = self._pol.make_state(self.n_sets)
        self._where = {}
        self._touched = bytearray(self.n_sets)
        self._touched_count = 0
        self._flush_epoch = next(_EPOCHS)
        if now > 0:
            self._noise_t = [t if t > now else now for t in self._noise_t]

    @property
    def touched_sets(self) -> int:
        """Number of sets ever inserted into or noise-reconciled."""
        return self._touched_count
