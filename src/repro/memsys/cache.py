"""Set-associative cache structure.

:class:`SetAssociativeCache` stores tags (physical line addresses) with an
owner annotation per line and delegates recency decisions to a pluggable
replacement policy.  It is used both for private caches (L1/L2, one instance
per core) and, with externally computed global set indices, for the sliced
shared LLC and Snoop Filter.

Sets are materialized lazily so full-scale presets (114k SF sets on a
28-slice part) cost nothing until touched.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .replacement import make_policy


class _CacheSet:
    """One set: parallel tag/owner arrays plus replacement state."""

    __slots__ = ("tags", "owners", "policy", "noise_t")

    def __init__(self, ways: int, policy_name: str, rng: random.Random) -> None:
        self.tags: List[Optional[int]] = [None] * ways
        self.owners: List[int] = [0] * ways
        self.policy = make_policy(policy_name, ways, rng)
        #: Cycle up to which background noise has been reconciled
        #: (maintained by the hierarchy's noise hook).
        self.noise_t = 0


class SetAssociativeCache:
    """A (possibly sliced) set-associative cache indexed by set number.

    The caller computes the set index — for private caches that is the plain
    index field of the address, for the LLC/SF it is
    ``slice * sets_per_slice + index`` — so this class stays agnostic of
    slicing and address mapping.
    """

    def __init__(
        self,
        name: str,
        n_sets: int,
        ways: int,
        policy_name: str,
        rng: random.Random,
    ) -> None:
        self.name = name
        self.n_sets = n_sets
        self.ways = ways
        self._policy_name = policy_name
        self._rng = rng
        self._sets: Dict[int, _CacheSet] = {}

    def _set(self, set_idx: int) -> _CacheSet:
        cset = self._sets.get(set_idx)
        if cset is None:
            cset = _CacheSet(self.ways, self._policy_name, self._rng)
            self._sets[set_idx] = cset
        return cset

    def get_set(self, set_idx: int) -> _CacheSet:
        """The set object (materializing it if needed); used by noise hooks."""
        return self._set(set_idx)

    # -- Queries ---------------------------------------------------------

    def lookup(self, set_idx: int, tag: int) -> bool:
        """Hit test that updates replacement state on a hit."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return False
        try:
            way = cset.tags.index(tag)
        except ValueError:
            return False
        cset.policy.touch(way)
        return True

    def contains(self, set_idx: int, tag: int) -> bool:
        """Hit test with no side effects."""
        cset = self._sets.get(set_idx)
        return cset is not None and tag in cset.tags

    def owner_of(self, set_idx: int, tag: int) -> Optional[int]:
        """Owner annotation of ``tag``, or None if absent."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return None
        try:
            return cset.owners[cset.tags.index(tag)]
        except ValueError:
            return None

    def occupancy(self, set_idx: int) -> int:
        """Number of valid lines in the set."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return 0
        return sum(1 for t in cset.tags if t is not None)

    def tags_in_set(self, set_idx: int) -> List[int]:
        """Valid tags currently in the set (unordered snapshot)."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return []
        return [t for t in cset.tags if t is not None]

    def peek_victim(self, set_idx: int) -> Optional[int]:
        """Tag that the next fill into a *full* set would evict.

        Returns None when the set has a free way (no eviction would occur).
        This is the eviction candidate (EVC) that Prime+Scope relies on.
        """
        cset = self._sets.get(set_idx)
        if cset is None or None in cset.tags:
            return None
        return cset.tags[cset.policy.victim()]

    # -- Mutations ---------------------------------------------------------

    def insert(
        self, set_idx: int, tag: int, owner: int = 0
    ) -> Optional[Tuple[int, int]]:
        """Install ``tag``; returns the evicted ``(tag, owner)`` if any.

        If the tag is already present this degrades to a touch (plus owner
        update) and nothing is evicted.
        """
        cset = self._set(set_idx)
        tags = cset.tags
        try:
            way = tags.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            cset.owners[way] = owner
            cset.policy.touch(way)
            return None
        try:
            way = tags.index(None)
            evicted = None
        except ValueError:
            way = cset.policy.victim()
            evicted = (tags[way], cset.owners[way])
        tags[way] = tag
        cset.owners[way] = owner
        cset.policy.fill(way)
        return evicted

    def remove(self, set_idx: int, tag: int) -> bool:
        """Invalidate ``tag`` if present; returns whether it was."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return False
        try:
            way = cset.tags.index(tag)
        except ValueError:
            return False
        cset.tags[way] = None
        cset.owners[way] = 0
        cset.policy.invalidate(way)
        return True

    def flush_all(self) -> None:
        """Drop every line (used by tests and machine reset)."""
        self._sets.clear()

    @property
    def touched_sets(self) -> int:
        """Number of sets that have been materialized."""
        return len(self._sets)
