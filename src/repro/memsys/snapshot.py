"""Exact, digest-verified machine checkpoints over the flat planes.

:func:`checkpoint` captures everything a trial's future behavior can
depend on — per-cache tag/owner/occupancy/policy-state planes, the
``_where`` tag index, per-set noise-reconciliation clocks, replacement
policy scalars (LRU stamp counters, keyed-victim draw counts), the
hierarchy stats block, the simulated clock and pending event heap, and
the full ``getstate()`` of every serial RNG stream — and
:func:`restore` puts a machine back bit-for-bit, verified against the
canonical :func:`~repro.check.digest.machine_digest` captured at
checkpoint time.

Restore cost is O(touched rows), not O(cache size): the planes'
existing dirty-set bytemap (``_touched``) tells both sides which sets
may differ, so only the union of rows touched at capture time and rows
touched since is rewritten.  A ``flush_all`` between checkpoint and
restore rebinds the planes and floors *every* noise clock (including
untouched sets), which the bytemap cannot see — each flush therefore
draws a globally unique *flush epoch* (:data:`repro.memsys.cache._EPOCHS`)
and an epoch mismatch downgrades that cache to a full plane rewrite.

Checkpoints deliberately exclude pure memo caches (translation planes,
lane plans, vec/construct memos, ``CounterRng`` staging): they are
derivable functions of state or of ``(seed, key)`` and restoring around
them cannot change observable behavior.  The digest verification at
restore is exactly the proof of that exclusion.

Works on all execution tiers: the flat plane
(:class:`~repro.memsys.cache.SetAssociativeCache`), the reference
oracle (:class:`~repro.memsys._reference.ReferenceSetAssociativeCache`,
snapshotted by policy-object deepcopy with RNG identity pinned), and
way-partitioned shared caches
(:class:`~repro.defenses.partition.WayPartitionedCache`, recursed).
"""

from __future__ import annotations

import copy
import re
from typing import Any, Dict, List, Optional, Tuple

from .cache import SetAssociativeCache

__all__ = [
    "MachineCheckpoint",
    "SnapshotParityError",
    "checkpoint",
    "restore",
    "checkpoint_key",
]

#: C-level scan for dirty-set bytes (values are only ever 0/1).
_DIRTY = re.compile(b"[^\x00]")


class SnapshotParityError(RuntimeError):
    """A restored machine's digest does not match the checkpoint's."""


class _PlaneSnap:
    """Full capture of one flat :class:`SetAssociativeCache`.

    Capture is all C-level copies (list/dict/bytes constructors); the
    sparse restore path only runs Python per *dirty* set.
    """

    __slots__ = (
        "epoch", "tags", "owners", "occ", "state", "where", "noise_t",
        "touched", "touched_count", "lru_stamp", "lru_inv", "vctr",
        "policy_touches", "policy_fills", "policy_victims",
    )

    def __init__(self, cache: SetAssociativeCache) -> None:
        self.epoch = cache._flush_epoch
        self.tags = list(cache._tags)
        self.owners = list(cache._owners)
        self.occ = list(cache._occ)
        self.state = list(cache._state)
        self.where = dict(cache._where)
        self.noise_t = list(cache._noise_t)
        self.touched = bytes(cache._touched)
        self.touched_count = cache._touched_count
        lru = cache._lru
        if lru is not None:
            self.lru_stamp = lru._stamp
            self.lru_inv = lru._inv_stamp
        else:
            self.lru_stamp = self.lru_inv = None
        ctr = getattr(cache._pol, "_ctr", None)
        self.vctr = dict(ctr) if ctr is not None else None
        self.policy_touches = cache.policy_touches
        self.policy_fills = cache.policy_fills
        self.policy_victims = cache.policy_victims

    def restore(self, cache: SetAssociativeCache) -> None:
        if cache._flush_epoch != self.epoch:
            # A flush_all happened on one side of the checkpoint: the
            # planes were rebound and every noise clock floored, which
            # the dirty bytemap cannot account for.  Full rewrite.
            cache._tags = list(self.tags)
            cache._owners = list(self.owners)
            cache._occ = list(self.occ)
            cache._state = list(self.state)
            cache._noise_t = list(self.noise_t)
            cache._touched = bytearray(self.touched)
            cache._flush_epoch = self.epoch
        else:
            # Same flush generation: any row not dirty on either side
            # is untouched since that flush in both states, hence
            # already identical.  Rewrite only the dirty union.
            union = (
                int.from_bytes(self.touched, "little")
                | int.from_bytes(cache._touched, "little")
            ).to_bytes(len(self.touched), "little")
            ways = cache.ways
            ps = cache._pstride
            tags, owners, state = cache._tags, cache._owners, cache._state
            stags, sowners, sstate = self.tags, self.owners, self.state
            occ, socc = cache._occ, self.occ
            nt, snt = cache._noise_t, self.noise_t
            for m in _DIRTY.finditer(union):
                i = m.start()
                b = i * ways
                e = b + ways
                tags[b:e] = stags[b:e]
                owners[b:e] = sowners[b:e]
                occ[i] = socc[i]
                nt[i] = snt[i]
                sb = i * ps
                state[sb:sb + ps] = sstate[sb:sb + ps]
            cache._touched[:] = self.touched
        cache._where = dict(self.where)
        cache._touched_count = self.touched_count
        lru = cache._lru
        if lru is not None:
            lru._stamp = self.lru_stamp
            lru._inv_stamp = self.lru_inv
        if self.vctr is not None:
            cache._pol._ctr = dict(self.vctr)
        cache.policy_touches = self.policy_touches
        cache.policy_fills = self.policy_fills
        cache.policy_victims = self.policy_victims


class _RefSnap:
    """Deepcopy capture of the reference dict-of-sets oracle.

    Policy objects hold a reference to the cache's (shared) serial RNG
    and, in counter mode, to the CounterRng — both are pinned by
    identity through the deepcopy so the snapshot shares them rather
    than cloning their state (RNG state is captured once at machine
    level).  Not a hot path, exactly like the tier it snapshots.
    """

    __slots__ = (
        "sets", "saved_vctr", "saved_clocks", "noise_floor",
        "policy_touches", "policy_fills", "policy_victims",
    )

    @staticmethod
    def _pin(cache) -> Dict[int, Any]:
        memo: Dict[int, Any] = {id(cache._rng): cache._rng}
        if cache._keyed is not None:
            memo[id(cache._keyed[0])] = cache._keyed[0]
        return memo

    def __init__(self, cache) -> None:
        self.sets = copy.deepcopy(cache._sets, self._pin(cache))
        self.saved_vctr = dict(cache._saved_vctr)
        self.saved_clocks = dict(cache._saved_clocks)
        self.noise_floor = cache._noise_floor
        self.policy_touches = cache.policy_touches
        self.policy_fills = cache.policy_fills
        self.policy_victims = cache.policy_victims

    def restore(self, cache) -> None:
        cache._sets = copy.deepcopy(self.sets, self._pin(cache))
        cache._saved_vctr = dict(self.saved_vctr)
        cache._saved_clocks = dict(self.saved_clocks)
        cache._noise_floor = self.noise_floor
        cache.policy_touches = self.policy_touches
        cache.policy_fills = self.policy_fills
        cache.policy_victims = self.policy_victims


class _PartSnap:
    """Recursive capture of any composite exposing the ``parts()``
    protocol (way partitions, randomized wrappers, soft copies).

    Wrapper-local state beyond the inner planes — residency maps, rekey
    epochs, auto-rekey counters — travels through the optional
    ``snapshot_extra()`` / ``restore_extra()`` pair, so new composite
    caches never need snapshot-layer edits.
    """

    __slots__ = ("parts", "extra")

    def __init__(self, cache) -> None:
        self.parts = {
            domain: _snap_cache(part) for domain, part in cache.parts().items()
        }
        extra = getattr(cache, "snapshot_extra", None)
        self.extra = extra() if callable(extra) else None

    def restore(self, cache) -> None:
        parts = cache.parts()
        for domain, snap in self.parts.items():
            snap.restore(parts[domain])
        if self.extra is not None:
            cache.restore_extra(self.extra)


def _snap_cache(cache):
    if isinstance(cache, SetAssociativeCache):
        return _PlaneSnap(cache)
    if callable(getattr(cache, "parts", None)):
        return _PartSnap(cache)
    if hasattr(cache, "_sets"):
        return _RefSnap(cache)
    raise TypeError(f"cannot snapshot cache type {type(cache).__name__}")


def _machine_caches(machine) -> List[Any]:
    hier = machine.hierarchy
    return [*hier.l1, *hier.l2, hier.llc, hier.sf]


class MachineCheckpoint:
    """One exact machine state capture (see module docstring).

    Immutable once taken; a single checkpoint may be restored any
    number of times, onto the machine it came from or onto a freshly
    built machine of identical configuration (the content-addressed
    trial-prefix store in :mod:`repro.exec.prefix` does the latter).
    """

    __slots__ = (
        "label", "caches", "now", "event_seq", "events",
        "batch_calls", "batch_lines", "stats", "noise_events",
        "rng_states", "used_frames", "noise_tag_next",
        "sf_reuse_ctr", "l2v_ctr", "digest",
    )

    def __init__(self, machine, label: Optional[str]) -> None:
        hier = machine.hierarchy
        self.label = label
        self.caches = [_snap_cache(c) for c in _machine_caches(machine)]
        self.now = machine.now
        self.event_seq = machine._event_seq
        self.events = tuple(machine._events)
        self.batch_calls = machine.batch_calls
        self.batch_lines = machine.batch_lines
        stats = hier.stats
        self.stats = tuple(
            getattr(stats, name) for name in type(stats).__slots__
        )
        self.noise_events = machine.noise.events
        self.rng_states = {
            "hierarchy": hier._rng.getstate(),
            "noise": machine.noise._rng.getstate(),
            "preempt": machine._preempt_rng.getstate(),
            "jitter": machine._jitter_rng.getstate(),
            "aspace": machine._aspace_rng.getstate(),
        }
        self.used_frames = frozenset(machine._used_frames)
        self.noise_tag_next = hier._noise_tag_next
        self.sf_reuse_ctr = dict(hier._sf_reuse_ctr)
        self.l2v_ctr = dict(hier._l2v_ctr)
        from ..check.digest import machine_digest

        self.digest = machine_digest(machine)


def checkpoint(machine, label: Optional[str] = None) -> MachineCheckpoint:
    """Capture the machine's exact observable state."""
    return MachineCheckpoint(machine, label)


def restore(machine, cp: MachineCheckpoint, verify: bool = True) -> None:
    """Put ``machine`` back into checkpoint state, bit for bit.

    With ``verify`` (the default) the restored machine's canonical
    digest is compared against the one captured at checkpoint time and
    a :class:`SnapshotParityError` naming the divergent paths is raised
    on mismatch — the digest is computed from live structures only, so
    equality proves no stale memo or index survived the restore.
    """
    caches = _machine_caches(machine)
    if len(caches) != len(cp.caches):
        raise SnapshotParityError(
            f"checkpoint has {len(cp.caches)} caches, machine has "
            f"{len(caches)} — structure changed since capture"
        )
    for cache, snap in zip(caches, cp.caches):
        snap.restore(cache)
    hier = machine.hierarchy
    machine.now = cp.now
    machine._event_seq = cp.event_seq
    machine._events = list(cp.events)
    machine.batch_calls = cp.batch_calls
    machine.batch_lines = cp.batch_lines
    stats = hier.stats
    for name, value in zip(type(stats).__slots__, cp.stats):
        setattr(stats, name, value)
    machine.noise.events = cp.noise_events
    hier._rng.setstate(cp.rng_states["hierarchy"])
    machine.noise._rng.setstate(cp.rng_states["noise"])
    machine._preempt_rng.setstate(cp.rng_states["preempt"])
    machine._jitter_rng.setstate(cp.rng_states["jitter"])
    machine._aspace_rng.setstate(cp.rng_states["aspace"])
    # In place, not rebound: every AddressSpace spawned from this machine
    # aliases the frame set, and a rebind would silently fork them from
    # the allocator (stale aliasing — frames double-allocated after
    # restore).
    machine._used_frames.clear()
    machine._used_frames.update(cp.used_frames)
    hier._noise_tag_next = cp.noise_tag_next
    hier._sf_reuse_ctr = dict(cp.sf_reuse_ctr)
    hier._l2v_ctr = dict(cp.l2v_ctr)
    if verify:
        from ..check.digest import diff_keys, machine_digest

        digest = machine_digest(machine)
        if digest != cp.digest:
            raise SnapshotParityError(
                "restored state diverges from checkpoint at: "
                + ", ".join(diff_keys(cp.digest, digest))
            )


def checkpoint_key(cp: MachineCheckpoint) -> str:
    """Stable content address of a checkpoint (digest + label).

    Two checkpoints of bit-identical machine states (same label) get
    the same key; fuzz artifacts and the trial-prefix store record it
    so a replay can assert it reconstructed the same state.
    """
    from ..check.digest import obj_digest

    return obj_digest({"label": cp.label, "digest": cp.digest})
