"""Table-driven replacement policies for the flat cache data plane.

The object-based policies in :mod:`repro.memsys.replacement` allocate one
policy instance per cache *set*; at full scale that is hundreds of
thousands of tiny objects, and every access pays an attribute hop and a
method dispatch into one of them.  The data plane instead keeps one
*table* object per cache and stores all per-set policy state in a single
flat integer list, indexed by ``set_idx * stride + slot``.

Each table implements the exact decision semantics of its object-based
counterpart — :mod:`repro.memsys.replacement` remains the executable
specification, and ``tests/test_policy_parity.py`` property-checks every
table against it over randomized touch/fill/invalidate/victim strings.

Equivalence notes (the non-obvious ones):

* ``lru`` is implemented with monotone stamps instead of an explicit
  recency stack: ``touch``/``fill`` assign the next value of a per-cache
  counter and ``victim`` takes the lowest-stamped way.  Untouched ways
  keep their initial stamp 0, so ties resolve to the lowest way index —
  exactly the seed stack's initial ``[0, 1, ..., W-1]`` order.
  ``invalidate`` assigns from a second, *decreasing* negative counter so
  the most recently invalidated way is most eviction-preferred, matching
  the stack's insert-at-front semantics.
* ``random`` keeps its pending-victim cache in the state table (one slot
  per set) and draws from the same shared cache RNG at the same points
  (lazily in ``victim``, cleared by ``fill``), so RNG consumption order —
  and therefore every downstream trial — is bit-identical.
"""

from __future__ import annotations

import random
from typing import Dict, List, Type

from ..errors import ConfigurationError
from ..rng import S_VICTIM


class PolicyTable:
    """Base: flat per-set policy state with ``stride`` slots per set."""

    __slots__ = ("ways", "stride")

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        self.ways = ways
        self.stride = ways

    def make_state(self, n_sets: int) -> List[int]:
        """Fresh state plane for ``n_sets`` sets (all sets initialized)."""
        raise NotImplementedError

    def touch(self, state: List[int], base: int, way: int) -> None:
        """A hit on ``way`` of the set whose state starts at ``base``."""
        raise NotImplementedError

    def fill(self, state: List[int], base: int, way: int) -> None:
        """A new line was installed in ``way``."""
        raise NotImplementedError

    def victim(self, state: List[int], base: int) -> int:
        """The way that would be evicted next (no state change)."""
        raise NotImplementedError

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        """``way`` was invalidated; make it maximally eviction-preferred."""
        raise NotImplementedError


class LRUTable(PolicyTable):
    """Exact LRU via monotone recency stamps (see module docstring)."""

    __slots__ = ("_stamp", "_inv_stamp")

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        super().__init__(ways, rng)
        self._stamp = 0
        self._inv_stamp = 0

    def make_state(self, n_sets: int) -> List[int]:
        return [0] * (n_sets * self.ways)

    def touch(self, state: List[int], base: int, way: int) -> None:
        self._stamp += 1
        state[base + way] = self._stamp

    fill = touch

    def victim(self, state: List[int], base: int) -> int:
        hi = base + self.ways
        seg = state[base:hi]
        return seg.index(min(seg))

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        self._inv_stamp -= 1
        state[base + way] = self._inv_stamp


class TreePLRUTable(PolicyTable):
    """Binary-tree pseudo-LRU; ``ways - 1`` internal-node bits per set."""

    __slots__ = ("_levels",)

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        if ways & (ways - 1) or ways < 2:
            raise ConfigurationError("tree PLRU requires power-of-two ways >= 2")
        super().__init__(ways, rng)
        self.stride = ways - 1
        self._levels = ways.bit_length() - 1

    def make_state(self, n_sets: int) -> List[int]:
        return [0] * (n_sets * self.stride)

    def touch(self, state: List[int], base: int, way: int) -> None:
        # Flip internal nodes to point *away* from the accessed way.
        node = 0
        levels = self._levels
        for level in range(levels):
            bit = (way >> (levels - 1 - level)) & 1
            state[base + node] = 1 - bit
            node = 2 * node + 1 + bit

    fill = touch

    def victim(self, state: List[int], base: int) -> int:
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = state[base + node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        return way

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        # Point the tree at the invalidated way so it is refilled first.
        node = 0
        levels = self._levels
        for level in range(levels):
            bit = (way >> (levels - 1 - level)) & 1
            state[base + node] = bit
            node = 2 * node + 1 + bit


class TreePLRU4Table(TreePLRUTable):
    """4-way Tree-PLRU with the 2-level tree walk unrolled (hot L1/L2 sizes)."""

    __slots__ = ()

    def touch(self, state: List[int], base: int, way: int) -> None:
        b0 = (way >> 1) & 1
        state[base] = 1 - b0
        state[base + 1 + b0] = 1 - (way & 1)

    fill = touch

    def victim(self, state: List[int], base: int) -> int:
        b0 = state[base]
        return (b0 << 1) | state[base + 1 + b0]

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        b0 = (way >> 1) & 1
        state[base] = b0
        state[base + 1 + b0] = way & 1


class TreePLRU8Table(TreePLRUTable):
    """8-way Tree-PLRU with the 3-level tree walk unrolled (hot L1/L2 sizes)."""

    __slots__ = ()

    def touch(self, state: List[int], base: int, way: int) -> None:
        b0 = (way >> 2) & 1
        state[base] = 1 - b0
        b1 = (way >> 1) & 1
        node = 1 + b0
        state[base + node] = 1 - b1
        state[base + 2 * node + 1 + b1] = 1 - (way & 1)

    fill = touch

    def victim(self, state: List[int], base: int) -> int:
        b0 = state[base]
        node = 1 + b0
        b1 = state[base + node]
        return (b0 << 2) | (b1 << 1) | state[base + 2 * node + 1 + b1]

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        b0 = (way >> 2) & 1
        state[base] = b0
        b1 = (way >> 1) & 1
        node = 1 + b0
        state[base + node] = b1
        state[base + 2 * node + 1 + b1] = way & 1


class SRRIPTable(PolicyTable):
    """Static RRIP with 2-bit RRPVs; aging applied on fill (as the seed)."""

    __slots__ = ()

    _MAX = 3

    def make_state(self, n_sets: int) -> List[int]:
        return [self._MAX] * (n_sets * self.ways)

    def touch(self, state: List[int], base: int, way: int) -> None:
        state[base + way] = 0

    def fill(self, state: List[int], base: int, way: int) -> None:
        hi = base + self.ways
        # Apply the aging that the victim search would have performed.
        bump = self._MAX - max(state[base:hi])
        if bump > 0:
            for i in range(base, hi):
                state[i] += bump
        state[base + way] = 2

    def victim(self, state: List[int], base: int) -> int:
        hi = base + self.ways
        seg = state[base:hi]
        return seg.index(max(seg))

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        state[base + way] = self._MAX


class QLRUTable(SRRIPTable):
    """Quad-age LRU approximation; fills insert at age 1 (SRRIP shape)."""

    __slots__ = ()

    def fill(self, state: List[int], base: int, way: int) -> None:
        hi = base + self.ways
        bump = self._MAX - max(state[base:hi])
        if bump > 0:
            for i in range(base, hi):
                state[i] += bump
        state[base + way] = 1


class RandomTable(PolicyTable):
    """Uniform random victim; one pending-victim slot per set (-1 = none).

    ``victim`` must be stable between the query and the subsequent fill,
    so the choice is drawn lazily and cached until consumed by a fill —
    preserving the seed policy's RNG consumption points exactly.

    In counter mode (:meth:`bind_keyed`) each consumed draw is keyed by
    ``(cache_id, set_index, per-set draw count)`` instead of the serial
    stream position; the lazy pending-victim caching (and therefore the
    points at which a draw is consumed) is identical in both modes,
    because ``stride == 1`` makes ``base`` the set index.
    """

    __slots__ = ("_rng", "_keyed", "_ctr")

    def __init__(self, ways: int, rng: random.Random = None) -> None:
        super().__init__(ways, rng)
        self.stride = 1
        self._rng = rng if rng is not None else random.Random(0)
        self._keyed = None
        self._ctr: Dict[int, int] = {}

    def bind_keyed(self, crng, cache_id: int) -> None:
        """Switch victim draws to event-keyed mode (see repro.rng)."""
        self._keyed = (crng, cache_id)

    def make_state(self, n_sets: int) -> List[int]:
        return [-1] * n_sets

    def touch(self, state: List[int], base: int, way: int) -> None:
        pass

    def fill(self, state: List[int], base: int, way: int) -> None:
        state[base] = -1

    def victim(self, state: List[int], base: int) -> int:
        pending = state[base]
        if pending < 0:
            keyed = self._keyed
            if keyed is None:
                pending = self._rng.randrange(self.ways)
            else:
                crng, cache_id = keyed
                ctr = self._ctr
                rc = ctr.get(base, 0)
                ctr[base] = rc + 1
                pending = crng.randrange(S_VICTIM, cache_id, base, rc, self.ways)
            state[base] = pending
        return pending

    def invalidate(self, state: List[int], base: int, way: int) -> None:
        state[base] = way


_TABLES: Dict[str, Type[PolicyTable]] = {
    "lru": LRUTable,
    "tree_plru": TreePLRUTable,
    "srrip": SRRIPTable,
    "qlru": QLRUTable,
    "random": RandomTable,
}


def table_names() -> List[str]:
    """Names of all registered policy tables (mirrors ``policy_names``)."""
    return sorted(_TABLES)


#: Unrolled Tree-PLRU specializations for the common associativities; the
#: generic loop implementation serves every other power of two.
_TREE_UNROLLED: Dict[int, Type[TreePLRUTable]] = {
    4: TreePLRU4Table,
    8: TreePLRU8Table,
}


def make_policy_table(
    name: str, ways: int, rng: random.Random = None
) -> PolicyTable:
    """Instantiate the policy table ``name`` for ``ways``-way sets."""
    try:
        cls = _TABLES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {table_names()}"
        ) from None
    if cls is TreePLRUTable:
        cls = _TREE_UNROLLED.get(ways, TreePLRUTable)
    return cls(ways, rng)
