"""Keyed (randomized) set-index functions for defense caches.

CEASER-style designs (Qureshi, MICRO'18) replace a cache's physical set
index with the output of a keyed low-latency block cipher over the line
address, and periodically *rekey* so an attacker can never accumulate a
stable congruence map.  Skewed variants (CEASER-S, Scatter-Cache) give
each way group its own index function, so two lines that collide in one
skew almost never collide in another.

This module holds the index math those defenses
(:mod:`repro.defenses.randomized`) plug into the shared caches:

* :class:`KeyedSetIndex` — a per-epoch keyed permutation of the set-index
  domain, *tweaked by the line tag*: for every ``(epoch, tag)`` the map
  ``set_idx -> index_of(set_idx, tag)`` is a bijection on
  ``[0, n_sets)`` (a balanced Feistel network with cycle-walking), and
  for a fixed set index, distinct tags land in unrelated sets — which is
  what breaks congruence-based eviction-set construction.
* :func:`keyed_choice` — a keyed deterministic selector (used for skew
  selection), a pure function of ``(key, tag)`` like every draw in the
  counter-RNG contract, so all execution tiers agree without consuming
  any shared RNG stream.

Everything here is deterministic in ``(seed, epoch)`` and free of
``random.Random`` draws at index time, mirroring
:mod:`repro.memsys.slice_hash` (whose seeded masks stand in for the
undocumented per-SKU hardware constants) and reusing the SplitMix64
finalizer from :mod:`repro.rng`.
"""

from __future__ import annotations

from .._util import make_rng
from ..errors import ConfigurationError
from ..rng import _mix64

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_TAG_C = 0xD1342543DE82EF95


def derive_master_key(label: str, seed: int) -> int:
    """64-bit master key from a seed, via the shared ``make_rng`` story."""
    return make_rng(("keyed-set-index", label, seed)).getrandbits(64)


def epoch_key(master: int, epoch: int) -> int:
    """The epoch's working key: a fresh avalanche of master and epoch."""
    return _mix64(master ^ _mix64((epoch * _GOLDEN) & _MASK))


def keyed_choice(key: int, tag: int, n: int) -> int:
    """Keyed deterministic pick in ``[0, n)`` — pure in ``(key, tag)``."""
    if n <= 1:
        return 0
    return _mix64(key ^ ((tag * _TAG_C) & _MASK)) % n


class KeyedSetIndex:
    """A tag-tweaked keyed permutation of the set-index domain.

    ``index_of(set_idx, tag)`` runs a balanced Feistel network (keyed by
    the current epoch key, tweaked by ``tag``) over the smallest even-bit
    domain covering ``n_sets`` and cycle-walks back into ``[0, n_sets)``.
    Properties the Hypothesis suite pins:

    * bijective per ``(epoch, tag)`` — no two set indices collide, so a
      rekey or remap never changes a cache's capacity balance;
    * epoch-sensitive — :meth:`rekey` draws a new working key, and a line
      whose image moved must be relocated or dropped by the caller.
    """

    __slots__ = ("n_sets", "epoch", "_master", "_key", "_hbits", "_hmask")

    #: Feistel rounds; 4 suffice for full avalanche with a strong F.
    ROUNDS = 4

    def __init__(self, n_sets: int, seed: int, label: str = "") -> None:
        if n_sets < 1:
            raise ConfigurationError("KeyedSetIndex needs at least one set")
        self.n_sets = n_sets
        self.epoch = 0
        self._master = derive_master_key(label, seed)
        self._key = epoch_key(self._master, 0)
        # Balanced halves: domain = 2^(2*hbits) >= n_sets.
        bits = max(2, (n_sets - 1).bit_length())
        self._hbits = (bits + 1) // 2
        self._hmask = (1 << self._hbits) - 1

    def rekey(self) -> int:
        """Advance to the next epoch key; returns the new epoch number."""
        self.epoch += 1
        self._key = epoch_key(self._master, self.epoch)
        return self.epoch

    def _permute(self, value: int, tweak: int) -> int:
        left = value >> self._hbits
        right = value & self._hmask
        key = self._key
        for rnd in range(self.ROUNDS):
            f = _mix64(
                key
                ^ ((tweak * _TAG_C) & _MASK)
                ^ ((right * _GOLDEN) & _MASK)
                ^ rnd
            ) & self._hmask
            left, right = right, left ^ f
        return (left << self._hbits) | right

    def index_of(self, set_idx: int, tag: int) -> int:
        """The keyed internal index for ``(set_idx, tag)`` this epoch."""
        n = self.n_sets
        if n == 1:
            return 0
        value = self._permute(set_idx % n, tag)
        # Cycle-walk: a permutation of the covering power-of-two domain
        # restricted to [0, n) by iteration is itself a bijection on it.
        while value >= n:
            value = self._permute(value, tag)
        return value
