"""Trial-batch tier: step N independent trials in lockstep (DESIGN.md §2.6).

Campaigns run thousands of independent trials whose RNG streams never
interact.  PR 4 proved that numpy execution *within* one trial is
impossible under the per-access RNG-order bit-parity contract (evset
rows are set-congruent; victims and stamps chain row to row), so the
remaining structural axis is *between* trials: run a batch of N trial
functions in lockstep over one interpreter, rendezvous them at the lane
kernels' two heavy operations (``flush_rows`` / ``traverse_kernel``),
and hand each rendezvous *group* to one coordinator that may execute
compatible operations across the batch as stacked-plane array ops.

The machinery here is three pieces:

* :class:`BatchSession` — the lockstep driver.  Each trial runs on its
  own worker thread; a thread reaching a lane operation *parks* the
  operation and blocks.  The coordinator waits until every live trial
  is parked (or finished — the **active mask**: trials that return or
  raise simply leave the barrier, so a batch of structurally divergent
  trials degrades gracefully instead of deadlocking), executes the
  parked group, and releases the threads.  A poll bound keeps a trial
  stuck in a long non-parkable phase (monitor loops, candidate
  generation) from stalling the rest of the batch: after ``poll_s`` the
  coordinator executes whatever is parked.  Grouping never changes
  results — only which interpreter executes an op — so the schedule is
  free to be timing-dependent while every trial stays bit-identical to
  its serial run.
* :class:`BatchLaneKernels` — the :class:`~repro.memsys.lanes.LaneKernels`
  sibling a trial's context hands out inside a session.  On the trial's
  own thread it parks; re-entered from the coordinator (or from any
  foreign thread) it behaves exactly like its parent, which is what
  makes bit-parity structural rather than re-proved: the group executor
  runs the *same* plan-specialized sweeps, per trial, in each trial's
  own per-access RNG/clock/noise order.
* :func:`stack_shared_planes` — the ``(N, sets, ways)`` stacked view of
  a batch's flat tag/owner/policy-state planes.  The parity suites and
  the batch-vs-serial differ compare entire stacked planes elementwise,
  a strictly stronger check than the digest alone.

Why the group executor is per-trial serial and not one fused numpy op
per plan step: we measured it (see DESIGN.md §2.6).  In the profiled
construction workload every sweep step is one SF fill + one L2 fill +
one L1 fill, and at steady state roughly half of the fills evict — each
eviction drawing from the trial's hierarchy RNG (reuse predictor, L2
victim disposition) and possibly reconciling per-set noise clocks
(Poisson draws in first-touch order).  A cross-trial vectorized step
therefore needs a scalar per-trial escape on nearly every step, and the
escapes mutate the same tag/stamp planes the vectorized phase would
operate on.  The measured ceiling of the remaining vectorizable phase
(victim argmin + stamp writes, ~0.9µs of a ~4µs step) is below the
gather/scatter and masking cost at realistic batch widths, so the
honest fast path *is* the serial lane sweep — batching buys one
interpreter, one numpy import, and one set of compiled plans per N
trials instead of per process, not SIMD arithmetic.  The rendezvous
architecture keeps the vectorized-group hook in place
(:meth:`BatchSession._execute_group`) for workloads whose ops do
qualify.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Tuple

from ..rng import S_NOISE_LLC, S_NOISE_SF, CounterRng
from .kernels import PlaneRows
from .lanes import HAVE_NUMPY, LaneKernels

try:  # pragma: no cover - exercised via the REPRO_NO_NUMPY CI leg
    import numpy as np
except Exception:  # noqa: BLE001 - any import failure means "no numpy"
    np = None

#: Master switch (tests use :func:`batch_disabled`; ``REPRO_NO_BATCH=1``
#: disables the tier for a whole process, mirroring ``REPRO_NO_NUMPY``).
BATCH_ENABLED = True

#: How long the coordinator waits for a full rendezvous before running a
#: partial group (seconds).  Purely a latency/grouping trade-off: results
#: are identical for any value.
DEFAULT_POLL_S = 0.005

_RUNNING, _PARKED, _EXECUTING, _DONE = 0, 1, 2, 3

_tls = threading.local()


@contextmanager
def batch_disabled():
    """Force the batch tier off inside the block (callers fall back)."""
    global BATCH_ENABLED
    saved = BATCH_ENABLED
    BATCH_ENABLED = False
    try:
        yield
    finally:
        BATCH_ENABLED = saved


def batch_supported() -> bool:
    """Whether this process can run lockstep batches at all.

    The batch tier is the lanes tier's sibling — without numpy there are
    no lane plans to batch, so executors must fall back to serial.
    """
    return (
        HAVE_NUMPY
        and BATCH_ENABLED
        and not os.environ.get("REPRO_NO_BATCH")
    )


def current_slot() -> Optional["_Slot"]:
    """The calling thread's session slot, if it is a batch lane thread."""
    slot = getattr(_tls, "slot", None)
    if slot is not None and not slot.session.active:
        return None
    return slot


class _ParkedOp:
    """One lane operation awaiting the coordinator."""

    __slots__ = ("kind", "args", "result", "error", "done")

    def __init__(self, kind: str, args: tuple) -> None:
        self.kind = kind
        self.args = args
        self.result = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()


class _Slot:
    """One trial's seat in a session (thread + lockstep state)."""

    __slots__ = ("session", "index", "thunk", "thread", "state", "op",
                 "value", "error", "executing")

    def __init__(self, session: "BatchSession", index: int, thunk) -> None:
        self.session = session
        self.index = index
        self.thunk = thunk
        self.thread: Optional[threading.Thread] = None
        self.state = _RUNNING
        self.op: Optional[_ParkedOp] = None
        self.value = None
        self.error: Optional[BaseException] = None
        # True while this slot's thread is executing a rendezvous group:
        # nested kernel entries (AttackKernels.traverse_kernel calls
        # self.flush_rows virtually) must run inline, not re-park.
        self.executing = False


class TrialOutcome:
    """What one batched trial produced: a value or the exception it raised."""

    __slots__ = ("index", "value", "error")

    def __init__(self, index: int, value, error: Optional[BaseException]) -> None:
        self.index = index
        self.value = value
        self.error = error

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchSession:
    """Run N independent trial thunks in lockstep on one interpreter.

    ``thunks`` are zero-argument callables (one per trial).  Each runs on
    its own worker thread; inside a thunk,
    :meth:`repro.core.context.AttackerContext.lane_kernels` resolves to a
    :class:`BatchLaneKernels` bound to this session, so the trial's lane
    operations rendezvous here.  :meth:`run` returns one
    :class:`TrialOutcome` per thunk, in order.

    Observability: ``rounds`` counts coordinator releases, ``parked_ops``
    the operations that went through the rendezvous, and ``peak_group``
    the largest group executed in one round — the measure of how much of
    the batch actually overlaps in lockstep.
    """

    def __init__(
        self,
        thunks: Sequence[Callable[[], object]],
        poll_s: float = DEFAULT_POLL_S,
        gather: bool = False,
    ) -> None:
        self._cv = threading.Condition()
        self._slots = [_Slot(self, i, t) for i, t in enumerate(thunks)]
        self._poll_s = poll_s
        self._gather = gather
        self.active = False
        self.rounds = 0
        self.parked_ops = 0
        self.peak_group = 0

    def __len__(self) -> int:
        return len(self._slots)

    # -- lane side -----------------------------------------------------------

    def park(self, slot: _Slot, kind: str, args: tuple):
        """Hand one lane op to the rendezvous; block until it ran.

        The *last* thread to reach the barrier executes the whole group
        itself — it already holds the GIL, so the common full-rendezvous
        round costs no coordinator handoff.  Earlier arrivals just wait
        for their result.
        """
        op = _ParkedOp(kind, args)
        with self._cv:
            slot.op = op
            slot.state = _PARKED
            if self._all_at_barrier():
                group = self._claim_group()
            elif not self._gather:
                # Eager mode: the barrier is incomplete and stalling here
                # would trade real work for group size with nothing to
                # vectorize yet — run own op now, keep the accounting.
                slot.state = _EXECUTING
                group = [slot]
            else:
                group = None
                self._cv.notify_all()
        if group is not None:
            self._run_group(group, me=slot)
        else:
            op.done.wait()
        if op.error is not None:
            raise op.error
        return op.result

    def _claim_group(self) -> List[_Slot]:
        """Take ownership of every parked slot (caller holds the lock)."""
        group = [s for s in self._slots if s.state == _PARKED]
        for s in group:
            s.state = _EXECUTING
        return group

    def _run_group(self, group: List[_Slot], me: Optional[_Slot]) -> None:
        """Execute a claimed group and release its waiters."""
        if me is not None:
            me.executing = True
        try:
            self._execute_group([s.op for s in group])
        finally:
            if me is not None:
                me.executing = False
        with self._cv:
            for s in group:
                op, s.op = s.op, None
                s.state = _RUNNING
                if s is not me:
                    op.done.set()

    def _lane_main(self, slot: _Slot) -> None:
        _tls.slot = slot
        try:
            slot.value = slot.thunk()
        except BaseException as exc:  # noqa: BLE001 - recorded per trial
            slot.error = exc
        finally:
            _tls.slot = None
            group = None
            with self._cv:
                slot.state = _DONE
                # A finishing trial shrinks the active mask and may be
                # the last arrival at the barrier; release the others
                # here rather than waiting for the fallback poll.
                if self._all_at_barrier():
                    group = self._claim_group()
                self._cv.notify_all()
            if group:
                self._run_group(group, me=None)

    # -- coordinator side -----------------------------------------------------

    def run(self) -> List[TrialOutcome]:
        """Drive every trial to completion; outcomes in thunk order."""
        if self.active:
            raise RuntimeError("BatchSession.run() is not reentrant")
        self.active = True
        # Lane threads are CPU-bound pure Python and (in eager mode)
        # never block on each other, so frequent GIL handoffs are pure
        # convoy overhead.  Stretch the switch interval for the run.
        old_switch = sys.getswitchinterval()
        sys.setswitchinterval(max(old_switch, 0.2))
        try:
            for slot in self._slots:
                slot.thread = threading.Thread(
                    target=self._lane_main,
                    args=(slot,),
                    name=f"batch-lane-{slot.index}",
                    daemon=True,
                )
                slot.thread.start()
            # The main thread is only the stall fallback: full rendezvous
            # groups execute on the last-parking lane thread (no GIL
            # handoff); this loop releases partial groups when one trial
            # sits in a long non-parkable phase, and reaps completion.
            while True:
                with self._cv:
                    if all(s.state == _DONE for s in self._slots):
                        break
                    notified = self._cv.wait(self._poll_s)
                    # Claim only on a quiet timeout: a notify means the
                    # barrier is still forming (parks claim it themselves
                    # when complete), so grabbing a partial group here
                    # would shrink rendezvous groups for no latency win.
                    group = [] if notified else self._claim_group()
                if group:
                    self._run_group(group, me=None)
            for slot in self._slots:
                slot.thread.join()
        finally:
            sys.setswitchinterval(old_switch)
            self.active = False
        for slot in self._slots:
            if slot.error is not None and not isinstance(slot.error, Exception):
                raise slot.error  # KeyboardInterrupt etc: behave like serial
        return [TrialOutcome(s.index, s.value, s.error) for s in self._slots]

    def _all_at_barrier(self) -> bool:
        return all(s.state != _RUNNING for s in self._slots)

    def _execute_group(self, ops: List[_ParkedOp]) -> None:
        """Execute one rendezvous group on the coordinator thread.

        This is the stacked-plane vectorization hook: compatible ops
        across trials arrive here together, and an executor is free to
        run them as one array op per plan step.  Under the serial-order
        RNG contract the per-access RNG/noise coupling leaves no
        profitable vectorized group (module docstring), so each op runs
        through the trial's own serial lane kernels — the explicit
        parent-class call cannot re-park, and bit-parity per trial is
        inherited rather than re-implemented.

        Under the event-keyed contract the coupling dissolves for the
        stochastic phase: every noise draw the group is about to perform
        is addressable before any op runs, so the coordinator evaluates
        them all in one cross-trial numpy pass
        (:meth:`_stage_keyed_noise`) and the serial sweeps consume the
        staged values.  Values are identical by construction (draws are
        pure in their key); only where they are computed changes.
        """
        self.rounds += 1
        self.parked_ops += len(ops)
        self.peak_group = max(self.peak_group, len(ops))
        if np is not None:
            self._stage_keyed_noise(ops)
        for op in ops:
            try:
                if op.kind == "flush":
                    op.result = LaneKernels.flush_rows(*op.args)
                else:
                    op.result = LaneKernels.traverse_kernel(*op.args)
            except BaseException as exc:  # noqa: BLE001 - re-raised in lane
                op.error = exc

    #: Below this many gathered windows the scalar draws win (numpy call
    #: overhead exceeds the per-draw saving).
    _STAGE_MIN = 16

    def _stage_keyed_noise(self, ops: List[_ParkedOp]) -> None:
        """Cross-trial SIMD for the group's first-touch noise draws.

        Under the event-keyed RNG contract (DESIGN.md §2.7) every noise
        draw a parked op will perform on its first sweep is addressable
        before the op runs: the key is ``(set_index, old_clock)`` with
        ``old`` read from the flat noise-clock plane and ``now`` fixed
        at the op's entry clock (planned ops advance time once, at the
        end).  The coordinator concatenates the windows of *every trial
        in the group* — each trial's 64-bit master key rides along as
        one more array column — and evaluates them in a single numpy
        pass (:meth:`~repro.rng.CounterRng.u01_keyed_many`), staging the
        results in each trial's ``CounterRng._pre`` for the serial
        sweeps to consume.  This is the cross-trial vectorization the
        serial-order contract structurally forbids.

        Only sub-Bernoulli-threshold windows are staged (steady state,
        essentially all of them) and only for the first op per machine
        in the group (a second op would run at a later clock); anything
        unstaged falls back to the bit-identical scalar draw.  Mid-op
        reconciles of sets outside the op's rows (L2-victim handling)
        likewise fall back — same key, same value, scalar path.
        """
        keys: List[int] = []
        streams: List[int] = []
        sidxs: List[int] = []
        olds: List[int] = []
        lams: List[float] = []
        targets: List[tuple] = []
        seen = set()
        for op in ops:
            kern = op.args[0]
            machine = kern.machine
            if id(machine) in seen:
                continue
            seen.add(id(machine))
            hier = kern.hierarchy
            noise = hier.noise_source
            crng = noise.crng if noise is not None else None
            if crng is None:
                continue
            if op.kind == "flush":
                rows, count = op.args[1], op.args[2]
            else:
                rows, count = op.args[2], op.args[3]
            now = machine.now
            pre = crng._pre
            pre.clear()  # earlier groups' leftovers are dead (old clocks)
            key = crng._key
            for stream, plane, rate in (
                (S_NOISE_SF, hier.sf, noise._sf_rate),
                (S_NOISE_LLC, hier.llc, noise._llc_rate),
            ):
                if rate <= 0.0:
                    continue
                nt = plane._noise_t
                for sidx in set(rows.shared_sets[:count]):
                    old = nt[sidx]
                    if now <= old:
                        continue
                    lam = rate * (now - old)
                    if lam < 0.01:
                        keys.append(key)
                        streams.append(stream)
                        sidxs.append(sidx)
                        olds.append(old)
                        lams.append(lam)
                        targets.append((pre, stream, sidx, old))
        if len(targets) < self._STAGE_MIN:
            return
        u = CounterRng.u01_keyed_many(
            np.array(keys, dtype=np.uint64),
            np.array(streams, dtype=np.uint64),
            np.array(sidxs, dtype=np.uint64),
            np.array(olds, dtype=np.uint64),
        )
        hits = u < np.array(lams)
        for (pre, stream, sidx, old), hit in zip(targets, hits.tolist()):
            pre[(stream, sidx, old)] = 1 if hit else 0


def run_batched(
    thunks: Sequence[Callable[[], object]],
    poll_s: float = DEFAULT_POLL_S,
) -> List[TrialOutcome]:
    """Run thunks as one lockstep batch (serial fallback when unsupported)."""
    if len(thunks) > 1 and batch_supported():
        return BatchSession(thunks, poll_s=poll_s).run()
    outcomes = []
    for i, thunk in enumerate(thunks):
        try:
            outcomes.append(TrialOutcome(i, thunk(), None))
        except Exception as exc:  # noqa: BLE001 - mirror BatchSession
            outcomes.append(TrialOutcome(i, None, exc))
    return outcomes


class BatchLaneKernels(LaneKernels):
    """Lane kernels that rendezvous with a :class:`BatchSession`.

    Constructed by ``AttackerContext.lane_kernels()`` when the calling
    thread is a session lane thread.  Only the two planned operations
    park; every other kernel (monitors' prime/probe, sweeps, chases)
    runs inline on the lane thread exactly as the parent would — parking
    an op whose serial cost is comparable to the rendezvous would be
    pure overhead.  Called from any *other* thread (the coordinator
    executing a group, or a context that leaked across threads), both
    overrides fall through to the parent, so re-entry is impossible.
    """

    __slots__ = ("_slot",)

    def __init__(self, machine, plane, main_core: int = 0,
                 helper_core: int = 1, slot: Optional[_Slot] = None) -> None:
        super().__init__(machine, plane, main_core, helper_core)
        self._slot = slot

    def _parkable(self) -> bool:
        slot = self._slot
        return (
            slot is not None
            and slot.session.active
            and not slot.executing
            and getattr(_tls, "slot", None) is slot
        )

    def flush_rows(self, rows: PlaneRows, count: int) -> int:
        if self._parkable():
            return self._slot.session.park(
                self._slot, "flush", (self, rows, count)
            )
        return super().flush_rows(rows, count)

    def traverse_kernel(self, mode: str, rows: PlaneRows, count: int,
                        repeats: int) -> None:
        if self._parkable():
            return self._slot.session.park(
                self._slot, "traverse", (self, mode, rows, count, repeats)
            )
        return super().traverse_kernel(mode, rows, count, repeats)


# -- stacked plane view -------------------------------------------------------


def stack_shared_planes(machines: Sequence) -> dict:
    """Stack a batch's flat cache planes into ``(N, sets, ways)`` arrays.

    For each shared structure (``sf``, ``llc``) of every machine in the
    batch, gather the flat tag / owner / policy-state planes and stack
    them along a new leading trial axis.  ``None`` tags (empty slots)
    map to ``-1``, which no real line address or noise tag uses.  The
    parity suites and the batch-vs-serial differ compare these arrays
    elementwise — full final-state equality, strictly stronger than the
    digest — and any stacked-plane group executor would operate on this
    exact layout.
    """
    if np is None:  # pragma: no cover - REPRO_NO_NUMPY leg
        raise RuntimeError("stack_shared_planes requires numpy")
    out = {}
    for name in ("sf", "llc"):
        if not all(
            hasattr(getattr(m.hierarchy, name), "_tags") for m in machines
        ):
            continue  # reference or partition-wrapped caches: no flat planes
        tags, owners, states = [], [], []
        for machine in machines:
            cache = getattr(machine.hierarchy, name)
            n_sets, ways = cache.n_sets, cache.ways
            tags.append(np.array(
                [-1 if t is None else t for t in cache._tags],
                dtype=np.int64).reshape(n_sets, ways))
            owners.append(np.asarray(
                cache._owners, dtype=np.int64).reshape(n_sets, ways))
            state = np.asarray(cache._state, dtype=np.int64)
            if state.size == n_sets * ways:
                state = state.reshape(n_sets, ways)
            else:  # per-set policy state (e.g. PLRU bit words)
                state = state.reshape(n_sets, -1)
            states.append(state)
        out[name] = {
            "tags": np.stack(tags),
            "owners": np.stack(owners),
            "state": np.stack(states),
        }
    return out


def planes_equal(a: dict, b: dict) -> Tuple[bool, List[str]]:
    """Elementwise comparison of two :func:`stack_shared_planes` views."""
    diffs = []
    for name in sorted(set(a) | set(b)):
        for field in ("tags", "owners", "state"):
            pa, pb = a[name][field], b[name][field]
            if pa.shape != pb.shape or not bool((pa == pb).all()):
                diffs.append(f"{name}.{field}")
    return (not diffs), diffs
