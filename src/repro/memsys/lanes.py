"""Set-parallel lane plane over the fused kernels (DESIGN.md §2.4).

The PR-3 kernels fused the attack loops; the profile that remains is the
per-row *re-derivation* of facts that are invariant for a whole sweep:
which rows share a cache set, whether a row's line can possibly be
resident, which slot arithmetic each row needs, and whether a row's
noise reconciliation can possibly draw.  This module compiles those
facts once per (candidate tuple, count) into a :class:`LanePlan` —
NumPy does the set-parallel grouping (uniqueness, first-touch-per-set
masks, base-offset arithmetic) in C for large tuples, a single scalar
pass handles small ones below the vectorization threshold — and then
executes the sweep through *specialized* kernels that skip every probe
the plan proves dead:

* :meth:`LaneKernels.flush_rows` runs the noise phase only on the first
  row of each (shared) set lane — later rows of the same lane reconcile
  at an unchanged clock and provably draw nothing — and retires each
  row's private-cache probes with one ``dict.pop`` per cache instead of
  a probe-then-remove call pair;
* the first post-flush traversal sweep runs :meth:`_sweep_all_miss`,
  which drops the L1/L2/SF/LLC hit probes entirely (a freshly flushed
  distinct line misses everywhere, on the main and the helper core) and
  fuses the shared-mode SF install/transfer pair into its net stamp
  effect.

Why the lanes are *planes of facts* and not planes of state: the flat
data plane keeps one recency counter per cache (``LRUTable._stamp`` /
``_inv_stamp``) and the hierarchy RNG is drawn in row order
(``_sf_install`` reuse predictor, ``_handle_l2_victim``), so genuinely
executing set lanes side by side would interleave those global streams
differently and break bit-parity.  The executing spine therefore stays
scalar and canonical-row-ordered; NumPy vectorizes the *planning* (the
grouping work that needs no RNG), and the plan licenses eliding scalar
work.  The pre-drawn noise contract holds trivially under this split:
draws happen at exactly the rows where the unfused path draws, in the
same order ``exchange_noise_clock`` consumes today.

The RNG-order contract of :mod:`repro.memsys.kernels` applies unchanged;
every elision below is a proven no-op on all state and all RNG streams
(proof sketches inline).  Parity gate: ``tests/test_lane_parity.py``
runs the three-way oracle chain reference -> kernels -> lanes on the
golden fingerprints.

NumPy is optional at runtime: with it absent (or ``REPRO_NO_NUMPY`` set,
or inside :func:`lanes_disabled`), :class:`LaneKernels` defers to the
inherited PR-3 kernels unchanged.
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager
from operator import itemgetter
from typing import Dict, Optional, Tuple

from .._util import poisson
from ..rng import S_NOISE_LLC, S_NOISE_SF
from .hierarchy import _NOISE_TAG_BASE, SHARED_OWNER
from .kernels import AttackKernels, PlaneRows
from .policy_tables import TreePLRU8Table

if os.environ.get("REPRO_NO_NUMPY"):
    np = None  # forced fallback (CI's without-NumPy leg)
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        np = None

HAVE_NUMPY = np is not None

#: Module-wide kill switch mirroring ``kernels.KERNELS_ENABLED``: the
#: rewired call sites fall back to the plain kernels when False.
LANES_ENABLED = True

#: Rows below this compile through one scalar pass: NumPy's per-call
#: overhead (array creation, two ``np.unique``) only amortizes once the
#: tuple is a few cache-ways deep.  Same number either way — the plan is
#: a pure function of the rows.
_NP_MIN = 128


@contextmanager
def lanes_disabled():
    """Temporarily run every rewired call site on the plain kernels."""
    global LANES_ENABLED
    saved = LANES_ENABLED
    LANES_ENABLED = False
    try:
        yield
    finally:
        LANES_ENABLED = saved


#: Memo sentinel: a tuple whose plan compiled to "not specializable"
#: (duplicate lines) is remembered as None, distinct from "not compiled".
_MISSING = object()

#: Step-tuple field extractors for the C-level plan precompute passes.
_L2SET = itemgetter(2)
_K1 = itemgetter(4)
_K2 = itemgetter(5)
_SK = itemgetter(6)


class LanePlan:
    """Sweep-invariant facts for one (candidate tuple, count) pair.

    ``steps`` carries one pre-unpacked row tuple per line —
    ``(line, l1_set, l2_set, shared_set, l1_key, l2_key, shared_key,
    b1, p1, b2, p2, bsf, bllc)`` where ``b*`` are the way-array base
    offsets (``set * ways``) and ``p*`` the policy-table bases (``set *
    pstride``) the executors would otherwise recompute per row — and
    the ``*_uniq`` lists are the distinct set indices per structure
    (for hoisted touched-bit marking).  The step tuples are shared with
    the per-VA facts table (:meth:`LaneKernels._build_facts`), so a
    plan is a list of pointers, not copies.

    ``k1set``/``k2set``/``skset`` are the plan's ``_where`` keys as
    frozensets: the flush kernel intersects them with each cache's live
    index once per call, so the ~89%-miss membership prechecks become
    one C-level set intersection instead of per-row dict probes.
    ``l2_need`` counts rows per L2 set (the no-evict fill gate).
    """

    __slots__ = ("steps", "l1_uniq", "l2_uniq", "shared_uniq",
                 "k1set", "k2set", "skset", "l2_need")

    def __init__(self, steps, l1_uniq, l2_uniq, shared_uniq) -> None:
        self.steps = steps
        self.l1_uniq = l1_uniq
        self.l2_uniq = l2_uniq
        self.shared_uniq = shared_uniq
        # C-level passes (itemgetter map / Counter) — plans are mostly
        # single-use during pruning (the candidate tuple changes every
        # test), so per-plan precompute must stay near-free.
        self.k1set = frozenset(map(_K1, steps))
        self.k2set = frozenset(map(_K2, steps))
        self.skset = frozenset(map(_SK, steps))
        self.l2_need = Counter(map(_L2SET, steps))


class LaneKernels(AttackKernels):
    """Plan-specialized kernels; every other method inherits from PR 3.

    Only ``flush_rows`` and ``traverse_kernel`` are overridden — the
    monitors' prime/probe rounds walk resident lines (nothing is
    provably dead there) and keep the inherited kernels.
    """

    #: Plan memo bound.  Plans are pointer lists into the facts table;
    #: the cap is sized so a whole binary-search pruning run (thousands
    #: of distinct subsets of one candidate pool) stays memoized across
    #: repeated constructions.
    _PLAN_CAP = 4096

    #: Facts-table bound (one entry per VA ever planned; a VA's facts
    #: are a few hundred bytes).
    _FACTS_CAP = 1 << 17

    __slots__ = ("_plans", "_facts")

    def __init__(self, machine, plane, main_core: int = 0,
                 helper_core: int = 1) -> None:
        super().__init__(machine, plane, main_core, helper_core)
        self._plans: Dict[Tuple[Tuple[int, ...], int], object] = {}
        self._facts: Dict[int, tuple] = {}

    def engaged(self) -> bool:
        return HAVE_NUMPY and LANES_ENABLED and super().engaged()

    def invalidate_plans(self) -> None:
        """Drop every compiled plan and fact (address-space change hook)."""
        self._plans.clear()
        self._facts.clear()

    def _plan(self, rows: PlaneRows, count: int) -> Optional[LanePlan]:
        if count <= 2:  # not worth the key build (cf. TranslationPlane.rows)
            return None
        key = (rows.vas, count)
        plans = self._plans
        plan = plans.get(key, _MISSING)
        if plan is _MISSING:
            if len(plans) >= self._PLAN_CAP:
                plans.clear()
            plan = self._compile_plan(rows, count)
            plans[key] = plan
        return plan

    def _compile_plan(self, rows: PlaneRows, count: int) -> Optional[LanePlan]:
        """Group the rows into set lanes; None when not specializable.

        Duplicate lines break the all-miss invariant (the second
        occurrence of a line hits), so such tuples fall back to the
        plain kernels.  Compilation has to be cheap: a binary-search
        pruning run tests thousands of *distinct* subsets of one pool,
        so a plan is amortized over very few uses.  The per-VA row
        facts (geometry, keys, base offsets) are therefore built once
        per pool into a facts table — NumPy computes the offset columns
        in bulk for large pools — and compiling a subset is a slice
        dup-check plus one dict-lookup comprehension, all C-speed.
        """
        lines = rows.lines[:count]
        if len(set(lines)) != count:
            return None
        vas = rows.vas[:count]
        facts = self._facts
        try:
            steps = [facts[va] for va in vas]
        except KeyError:
            self._build_facts(rows)
            steps = [facts[va] for va in vas]
        return LanePlan(
            steps,
            list(set(rows.l1_sets[:count])),
            list(set(rows.l2_sets[:count])),
            list(set(rows.shared_sets[:count])),
        )

    def _build_facts(self, rows: PlaneRows) -> None:
        """Populate the facts table for every VA of ``rows``.

        The per-level geometry (ways, policy stride) is homogeneous
        across cores by construction of ``CacheHierarchy``, so one set
        of base offsets serves the main and the helper caches.
        """
        facts = self._facts
        if len(facts) >= self._FACTS_CAP:
            self._plans.clear()  # plans alias the facts tuples
            facts.clear()
        hier = self.hierarchy
        l1 = hier.l1[self.main_core]
        l2 = hier.l2[self.main_core]
        l1w, l1p = l1.ways, l1._pstride
        l2w, l2p = l2.ways, l2._pstride
        sfw = hier.sf.ways
        llcw = hier.llc.ways
        l1s = rows.l1_sets
        l2s = rows.l2_sets
        ssets = rows.shared_sets
        n = len(rows.vas)
        if n >= _NP_MIN:
            a1 = np.fromiter(l1s, dtype=np.int64, count=n)
            a2 = np.fromiter(l2s, dtype=np.int64, count=n)
            asx = np.fromiter(ssets, dtype=np.int64, count=n)
            b1 = (a1 * l1w).tolist()
            p1 = (a1 * l1p).tolist()
            b2 = (a2 * l2w).tolist()
            p2 = (a2 * l2p).tolist()
            bsf = (asx * sfw).tolist()
            bllc = (asx * llcw).tolist()
        else:
            b1 = [s * l1w for s in l1s]
            p1 = [s * l1p for s in l1s]
            b2 = [s * l2w for s in l2s]
            p2 = [s * l2p for s in l2s]
            bsf = [s * sfw for s in ssets]
            bllc = [s * llcw for s in ssets]
        for va, f in zip(
            rows.vas,
            zip(
                rows.lines,
                l1s,
                l2s,
                ssets,
                rows.l1_keys,
                rows.l2_keys,
                rows.shared_keys,
                b1,
                p1,
                b2,
                p2,
                bsf,
                bllc,
            ),
        ):
            facts[va] = f

    # -- Specialized flush ---------------------------------------------------

    def flush_rows(self, rows: PlaneRows, count: int) -> int:
        if not count or not LANES_ENABLED or not HAVE_NUMPY:
            return super().flush_rows(rows, count)
        plan = self._plan(rows, count)
        if plan is None:
            return super().flush_rows(rows, count)
        return self._flush_planned(rows, count, plan)

    def _flush_planned(self, rows: PlaneRows, count: int,
                       plan: LanePlan) -> int:
        """``AttackKernels.flush_rows`` with the noise phase lane-gated.

        Rows after the first of a shared-set lane reconcile at a clock
        the first row already advanced to ``now``; flushing schedules no
        mid-loop reconciliations (no L2 fills happen here), so the
        skipped block is a no-op on state and on the noise RNG.  The
        touched-bit marking the block would do is idempotent and the
        first row performs it.

        The main and helper cores' private-cache probes — the ones the
        traversal sweeps actually populate — are retired inline
        (``SetAssociativeCache.remove`` semantics verbatim), bound to
        flat locals rather than looped; the remaining cores keep the
        probe-then-remove pair.  Each probe is an ``in`` test first:
        between tests the shared-structure thrash back-invalidates most
        private copies (SF holds ``ways`` of a pool an order of
        magnitude larger), so the overwhelmingly common flush outcome
        is "not resident" and the membership test is the whole cost.
        Cross-cache removal order is free to change: each cache owns
        its recency counters, and a flushed line occupies one slot per
        cache at most.
        """
        m = self.machine
        m._drain_events()
        hier = self.hierarchy
        now = m.now
        mc = self.main_core
        hc = self.helper_core
        two_hot = hc != mc
        hot = (mc, hc) if two_hot else (mc,)
        m1 = hier.l1[mc]
        m2 = hier.l2[mc]
        m1w, m1t, m1o, m1c, m1s, m1l, m1pi = (
            m1._where, m1._tags, m1._owners, m1._occ, m1._state,
            m1._lru, m1._pt_invalidate,
        )
        m2w, m2t, m2o, m2c, m2s, m2l, m2pi = (
            m2._where, m2._tags, m2._owners, m2._occ, m2._state,
            m2._lru, m2._pt_invalidate,
        )
        if two_hot:
            h1 = hier.l1[hc]
            h2 = hier.l2[hc]
            h1w, h1t, h1o, h1c, h1s, h1l, h1pi = (
                h1._where, h1._tags, h1._owners, h1._occ, h1._state,
                h1._lru, h1._pt_invalidate,
            )
            h2w, h2t, h2o, h2c, h2s, h2l, h2pi = (
                h2._where, h2._tags, h2._owners, h2._occ, h2._state,
                h2._lru, h2._pt_invalidate,
            )
        # Cold cores whose private caches are *empty* stay empty for the
        # whole flush (a flush never fills a private cache — noise-insert
        # back-invalidations only remove), so they can be dropped from
        # the per-row probe lists entirely.
        cold1 = [(c._where, c.remove)
                 for i, c in enumerate(hier.l1) if i not in hot and c._where]
        cold2 = [(c._where, c.remove)
                 for i, c in enumerate(hier.l2) if i not in hot and c._where]
        sf = hier.sf
        llc = hier.llc
        sf_where = sf._where
        sf_tags = sf._tags
        sf_owners = sf._owners
        sf_occ = sf._occ
        sf_state = sf._state
        sf_lru = sf._lru
        sf_pinv = sf._pt_invalidate
        sf_pstride = sf._pstride
        sf_ways = sf.ways
        llc_where = llc._where
        llc_tags = llc._tags
        llc_owners = llc._owners
        llc_occ = llc._occ
        llc_state = llc._state
        llc_lru = llc._lru
        llc_pinv = llc._pt_invalidate
        llc_pstride = llc._pstride
        llc_ways = llc.ways
        noise = hier.noise_source
        use_noise = noise is not None
        if use_noise:
            nrng = noise._rng
            nrand = nrng.random
            crng = noise.crng
            sf_rate = noise._sf_rate
            llc_rate = noise._llc_rate
            sf_nt = sf._noise_t
            sf_tt = sf._touched
            llc_nt = llc._noise_t
            llc_tt = llc._touched
            sf_cap = 3 * sf_ways
            llc_cap = 3 * llc_ways
            ins_sf = hier.noise_insert_sf
            ins_llc = hier.noise_insert_llc
            prev_sidx = -1
        # Batched membership prechecks (the ~89%-miss case): one C-level
        # ``dict.keys() & frozenset`` intersection per cache replaces the
        # per-row probes into the (much larger) live indexes.  Sound
        # because a flush never *installs* a real line into a private
        # cache or the SF: noise inserts carry tags >= _NOISE_TAG_BASE
        # (key-disjoint from plan keys) and the reuse path only moves
        # evicted real tags into the LLC — so a plan key absent here at
        # loop start stays absent until its own row.  The LLC is the one
        # structure that can *gain* a real plan key mid-loop (that reuse
        # path), so its probes stay live.  Keys found here are still
        # popped guardedly: a noise-insert eviction can back-invalidate
        # a private copy (or evict an SF line) before its row comes up.
        hit_m1 = m1w.keys() & plan.k1set
        hit_m2 = m2w.keys() & plan.k2set
        if two_hot:
            hit_h1 = h1w.keys() & plan.k1set
            hit_h2 = h2w.keys() & plan.k2set
        else:
            hit_h1 = hit_h2 = ()
        hit_sf = sf_where.keys() & plan.skset
        for (line, s1, s2, sidx, k1, k2, sk,
             b1, p1, b2, p2, bsf, bllc) in plan.steps:
            if k1 in hit_m1:
                slot = m1w.pop(k1, None)
                if slot is not None:
                    m1t[slot] = None
                    m1o[slot] = 0
                    m1c[s1] -= 1
                    if m1l is not None:
                        m1l._inv_stamp = stamp = m1l._inv_stamp - 1
                        m1s[slot] = stamp
                    else:
                        m1pi(m1s, p1, slot - b1)
            if k1 in hit_h1:
                slot = h1w.pop(k1, None)
                if slot is not None:
                    h1t[slot] = None
                    h1o[slot] = 0
                    h1c[s1] -= 1
                    if h1l is not None:
                        h1l._inv_stamp = stamp = h1l._inv_stamp - 1
                        h1s[slot] = stamp
                    else:
                        h1pi(h1s, p1, slot - b1)
            for w, rm in cold1:
                if k1 in w:
                    rm(s1, line)
            if k2 in hit_m2:
                slot = m2w.pop(k2, None)
                if slot is not None:
                    m2t[slot] = None
                    m2o[slot] = 0
                    m2c[s2] -= 1
                    if m2l is not None:
                        m2l._inv_stamp = stamp = m2l._inv_stamp - 1
                        m2s[slot] = stamp
                    else:
                        m2pi(m2s, p2, slot - b2)
            if k2 in hit_h2:
                slot = h2w.pop(k2, None)
                if slot is not None:
                    h2t[slot] = None
                    h2o[slot] = 0
                    h2c[s2] -= 1
                    if h2l is not None:
                        h2l._inv_stamp = stamp = h2l._inv_stamp - 1
                        h2s[slot] = stamp
                    else:
                        h2pi(h2s, p2, slot - b2)
            for w, rm in cold2:
                if k2 in w:
                    rm(s2, line)
            if use_noise and sidx != prev_sidx:
                prev_sidx = sidx
                # Inline BackgroundNoise.reconcile (see kernels.flush_rows);
                # lane-gated to the first row of each shared-set run (a
                # *re*-entered set reconciles again, but at an unchanged
                # clock that is a draw-free no-op, same as the unfused
                # per-row reconciles it replaces).
                if sf_rate > 0.0:
                    if not sf_tt[sidx]:
                        sf_tt[sidx] = 1
                        sf._touched_count += 1
                    old = sf_nt[sidx]
                    if now > old:
                        sf_nt[sidx] = now
                        lam = sf_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_SF, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > sf_cap:
                                n = sf_cap
                            for _ in range(n):
                                ins_sf(sidx)
                            noise.events += n
                if llc_rate > 0.0:
                    if not llc_tt[sidx]:
                        llc_tt[sidx] = 1
                        llc._touched_count += 1
                    old = llc_nt[sidx]
                    if now > old:
                        llc_nt[sidx] = now
                        lam = llc_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_LLC, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > llc_cap:
                                n = llc_cap
                            for _ in range(n):
                                ins_llc(sidx)
                            noise.events += n
            if sk in sf_where:  # inline SetAssociativeCache.remove
                slot = sf_where.pop(sk)
                sf_tags[slot] = None
                sf_owners[slot] = 0
                sf_occ[sidx] -= 1
                if sf_lru is not None:
                    sf_lru._inv_stamp = stamp = sf_lru._inv_stamp - 1
                    sf_state[slot] = stamp
                else:
                    sf_pinv(sf_state, sidx * sf_pstride, slot - bsf)
            if sk in llc_where:
                slot = llc_where.pop(sk)
                llc_tags[slot] = None
                llc_owners[slot] = 0
                llc_occ[sidx] -= 1
                if llc_lru is not None:
                    llc_lru._inv_stamp = stamp = llc_lru._inv_stamp - 1
                    llc_state[slot] = stamp
                else:
                    llc_pinv(llc_state, sidx * llc_pstride, slot - bllc)
        hier.stats.flushes += count
        lat = m.cfg.latency
        cost = lat.flush + (count - 1) * lat.flush_gap
        cost += m._preemption_penalty(cost)
        m.advance(cost)
        return cost

    # -- Specialized traversal ----------------------------------------------

    def traverse_kernel(self, mode: str, rows: PlaneRows, count: int,
                        repeats: int) -> None:
        if not count or not LANES_ENABLED or not HAVE_NUMPY:
            return super().traverse_kernel(mode, rows, count, repeats)
        shared = mode == "llc"
        if shared and self.main_core == self.helper_core:
            return super().traverse_kernel(mode, rows, count, repeats)
        plan = self._plan(rows, count)
        if plan is None:
            return super().traverse_kernel(mode, rows, count, repeats)
        self._flush_planned(rows, count, plan)
        m = self.machine
        done = 0
        # A due scheduled event (victim activity) would be drained by the
        # first sweep and can re-install arbitrary lines, voiding the
        # all-miss invariant — run the plain sweep in that case.
        if not (m._events and m._events[0][0] <= m.now):
            self._sweep_all_miss(rows, count, plan, shared)
            done = 1
        if shared:
            for _ in range(repeats - done):
                self.load_sweep(rows, count, shared=True)
        elif mode == "sf":
            for _ in range(repeats - done):
                self.store_sweep(rows, count)
        else:
            for _ in range(repeats - done):
                self.load_sweep(rows, count)

    def _sweep_all_miss(self, rows: PlaneRows, count: int, plan: LanePlan,
                        shared: bool) -> int:
        """One post-flush sweep where every row provably misses everywhere.

        Invariant: the rows were just flushed (private caches, SF, LLC)
        at this ``now`` with no intervening event drain, and the lines
        are distinct.  Nothing re-installs a flushed line before its own
        row — noise inserts carry tags >= ``_NOISE_TAG_BASE``, and the
        victim/reuse paths only move lines that are currently resident
        somewhere (a flushed line is resident nowhere until its row).
        So the L1/L2/SF/LLC hit probes of the main cascade — and, in
        shared mode, the helper's L1/L2 probes (the line only ever
        enters the *main* core's private caches) — are elided, and
        every row takes the miss-everywhere branch: ``_sf_install`` +
        private fills, plus the helper's guaranteed SF transfer in
        shared mode.  This mirrors ``load_sweep``'s miss branch (which
        is statement-identical to ``store_sweep``'s, so one body serves
        llc/l2/sf modes).
        """
        m = self.machine
        m.batch_calls += 1
        m.batch_lines += count
        hier = self.hierarchy
        now = m.now
        core = self.main_core
        stats = hier.stats
        lat = m.cfg.latency
        lat_dram = lat.dram
        miss_gap = lat.issue_gap
        l1 = hier.l1[core]
        l2 = hier.l2[core]
        l1_where = l1._where
        l1_state = l1._state
        l1_lru = l1._lru
        l1_tree8 = type(l1._pol) is TreePLRU8Table
        l1_tags = l1._tags
        l1_owners = l1._owners
        l1_occ = l1._occ
        l1_nsets = l1.n_sets
        l1_ways = l1.ways
        l1_pvict = l1._pt_victim
        l1_pfill = l1._pt_fill
        l2_where = l2._where
        l2_state = l2._state
        l2_lru = l2._lru
        l2_tags = l2._tags
        l2_owners = l2._owners
        l2_occ = l2._occ
        l2_nsets = l2.n_sets
        l2_ways = l2.ways
        l2_pvict = l2._pt_victim
        l2_pfill = l2._pt_fill
        sf = hier.sf
        llc = hier.llc
        sf_where = sf._where
        sf_owners = sf._owners
        sf_tags = sf._tags
        sf_occ = sf._occ
        sf_state = sf._state
        sf_lru = sf._lru
        sf_pinv = sf._pt_invalidate
        sf_pvict = sf._pt_victim
        sf_pfill = sf._pt_fill
        sf_pstride = sf._pstride
        sf_ways = sf.ways
        sf_nsets = sf.n_sets
        llc_insert = llc.insert
        hrand = hier._rng.random
        reuse_p = hier.cfg.reuse_predictor_p
        reuse_take = hier._reuse_take if hier.crng is not None else None
        handle_victim = hier._handle_l2_victim
        sidx_get = hier._sidx_memo.get
        shared_set_index = hier.shared_set_index
        l1_mask = hier._l1_mask
        l2_mask = hier._l2_mask
        l1_probe = [(c._where, c.remove) for c in hier.l1]
        l2_probe = [(c._where, c.remove) for c in hier.l2]

        def inv_everywhere(etag):  # see kernels.load_sweep
            s1 = etag & l1_mask
            k1 = etag * l1_nsets + s1
            for w, rm in l1_probe:
                if k1 in w:
                    rm(s1, etag)
            s2 = etag & l2_mask
            k2 = etag * l2_nsets + s2
            for w, rm in l2_probe:
                if k2 in w:
                    rm(s2, etag)

        def inv_private(eowner, etag):
            s1 = etag & l1_mask
            w, rm = l1_probe[eowner]
            if etag * l1_nsets + s1 in w:
                rm(s1, etag)
            s2 = etag & l2_mask
            w, rm = l2_probe[eowner]
            if etag * l2_nsets + s2 in w:
                rm(s2, etag)

        if shared:
            helper = self.helper_core
            h1c = hier.l1[helper]
            h2c = hier.l2[helper]
            h1_where = h1c._where
            h1_state = h1c._state
            h1_lru = h1c._lru
            h1_ways = h1c.ways
            h1_tree8 = type(h1c._pol) is TreePLRU8Table
            h1_tags = h1c._tags
            h1_owners = h1c._owners
            h1_occ = h1c._occ
            h1_pvict = h1c._pt_victim
            h1_pfill = h1c._pt_fill
            h2_where = h2c._where
            h2_state = h2c._state
            h2_lru = h2c._lru
            h2_tags = h2c._tags
            h2_owners = h2c._owners
            h2_occ = h2c._occ
            h2_pvict = h2c._pt_victim
            h2_pfill = h2c._pt_fill
            llc_where = llc._where
            llc_tags = llc._tags
            llc_owners = llc._owners
            llc_occ = llc._occ
            llc_state = llc._state
            llc_lru = llc._lru
            llc_pvict = llc._pt_victim
            llc_pfill = llc._pt_fill
            llc_pstride = llc._pstride
            llc_ways = llc.ways
            llc_nsets = llc.n_sets
        fused_ok = shared and sf_lru is not None
        noise = hier.noise_source
        use_noise = noise is not None
        if use_noise:
            nrng = noise._rng
            nrand = nrng.random
            crng = noise.crng
            sf_rate = noise._sf_rate
            llc_rate = noise._llc_rate
            sf_nt = sf._noise_t
            llc_nt = llc._noise_t
            sf_cap = 3 * sf_ways
            llc_cap = 3 * llc.ways
            ins_sf = hier.noise_insert_sf
            ins_llc = hier.noise_insert_llc
            prev_sidx = -1
        # FIFO victim predictor for the LLC lane (shared mode, LRU): a
        # guaranteed fill per row into one set evicts slots in fill-age
        # order, so one sorted scan serves the whole run of rows.  The
        # guard is exact: under a stamp policy every LLC state write
        # moves ``_stamp`` or ``_inv_stamp``, so counters equal to the
        # values captured right after our own last fill prove the plane
        # untouched in between (noise inserts, back-invalidations, and
        # victim dispositions all break the match and force a rescan).
        # Every one of our own fills also *pre-checks* continuity before
        # moving the counters: updating the guard blindly at a free-way
        # fill would mask a foreign write (reuse insert, noise, victim
        # disposition) that landed since our previous fill and leave a
        # stale captured order looking valid.
        vq_sidx = -1
        vq_order = None
        vq_ptr = vq_stamp = vq_inv = 0
        # The same predictor for the structures the non-shared sweeps
        # thrash: the SF lane (sf mode primes one congruent set, so a
        # single-set slot like the LLC's suffices) and the private L2
        # plane (rows interleave many L2 sets, so captured orders are
        # dict-keyed per set under one shared continuity guard — our own
        # tracked fills to other sets leave a set's age order intact).
        sfq_ok = not shared and sf_lru is not None
        sfq_sidx = -1
        sfq_order = None
        sfq_ptr = sfq_stamp = sfq_inv = 0
        l2q: Dict[int, list] = {}
        l2q_stamp = l2q_inv = 0
        if shared:
            h2q: Dict[int, list] = {}
            h2q_stamp = h2q_inv = 0
        # No-evict fill gate: when every planned L2 set has room for all
        # of its rows, no main-core L2 fill of this sweep can evict
        # (mid-sweep L2 traffic only ever removes lines), so the victim
        # branch and the per-row SF disposition probe are skipped
        # wholesale.
        l2_free_all = True
        for s, c in plan.l2_need.items():
            if l2_occ[s] + c > l2_ways:
                l2_free_all = False
                break
        if shared:
            h2_free_all = True
            for s, c in plan.l2_need.items():
                if h2_occ[s] + c > l2_ways:
                    h2_free_all = False
                    break
        # Touched-bit marking hoisted out of the row loop (idempotent;
        # same final bits and counts as the per-row marks it replaces).
        # The LLC bits are only marked by the unfused path when the
        # sweep itself touches the LLC plane: a shared-mode fill per
        # row, or an enabled LLC noise phase.
        for cache, sets in (
            ((l1, plan.l1_uniq), (l2, plan.l2_uniq), (sf, plan.shared_uniq))
            + (((h1c, plan.l1_uniq), (h2c, plan.l2_uniq)) if shared else ())
        ):
            tb = cache._touched
            for s in sets:
                if not tb[s]:
                    tb[s] = 1
                    cache._touched_count += 1
        if shared or (use_noise and llc_rate > 0.0):
            tb = llc._touched
            for s in plan.shared_uniq:
                if not tb[s]:
                    tb[s] = 1
                    llc._touched_count += 1
        sfv = llcv = l1v = l2v = h1v = h2v = back_inv = 0
        for (line, set_idx, l2_idx, sidx, k1, k2, sk,
             l1_base, sbase, l2_base, l2_pbase, sf_base, llc_base) in plan.steps:
            if use_noise and sidx != prev_sidx:
                prev_sidx = sidx
                # Lane-gated reconcile: later rows of the lane see the
                # clock this row advances.  The clock check stays live
                # even on first rows — a mid-sweep ``_handle_l2_victim``
                # can reconcile a later lane's set before its first row.
                if sf_rate > 0.0:
                    old = sf_nt[sidx]
                    if now > old:
                        sf_nt[sidx] = now
                        lam = sf_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_SF, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > sf_cap:
                                n = sf_cap
                            for _ in range(n):
                                ins_sf(sidx)
                            noise.events += n
                if llc_rate > 0.0:
                    old = llc_nt[sidx]
                    if now > old:
                        llc_nt[sidx] = now
                        lam = llc_rate * (now - old)
                        if crng is not None:
                            n = crng.noise_poisson(S_NOISE_LLC, sidx, old, lam)
                        elif lam < 0.01:
                            n = 1 if nrand() < lam else 0
                        else:
                            n = poisson(nrng, lam)
                        if n:
                            if n > llc_cap:
                                n = llc_cap
                            for _ in range(n):
                                ins_llc(sidx)
                            noise.events += n
            # Miss everywhere: _sf_install, insert inline.  In shared
            # mode with a free SF way and a stamp (LRU) policy, the
            # install/transfer pair is fused: the positive stamp the
            # install would write is dead (the helper-side transfer
            # overwrites it this row), so only the counters move at
            # their canonical positions.  Nothing reads the deferred
            # slot in between: a noise insert into this set is
            # impossible (its clock is already at ``now``, so any
            # mid-row reconcile draws nothing), and the L2 victim
            # disposition looks up a different tag.
            if sf_occ[sidx] < sf_ways:
                fslot = sf_tags.index(None, sf_base, sf_base + sf_ways)
                if fused_ok:
                    fused = True
                    sf_lru._stamp += 1
                else:
                    fused = False
                    sf_occ[sidx] += 1
                    sf_tags[fslot] = line
                    sf_owners[fslot] = core
                    sf_where[sk] = fslot
                    if sf_lru is not None:
                        sf_lru._stamp = stamp = sf_lru._stamp + 1
                        sf_state[fslot] = stamp
                        # Free-way fill: pre-check continuity, then move
                        # the guard past our own write.
                        if stamp - 1 != sfq_stamp or sf_lru._inv_stamp != sfq_inv:
                            sfq_sidx = -1
                        sfq_stamp = stamp
                        sfq_inv = sf_lru._inv_stamp
                    else:
                        sf_pfill(sf_state, sidx * sf_pstride, fslot - sf_base)
            else:
                fused = False
                if sf_lru is not None:
                    if (sfq_ok and sf_lru._stamp == sfq_stamp
                            and sf_lru._inv_stamp == sfq_inv):
                        if sidx == sfq_sidx:
                            wayf = sfq_order[sfq_ptr]
                            sfq_ptr += 1
                            if sfq_ptr == sf_ways:
                                sfq_ptr = 0
                        else:
                            # Guard chain intact but set unseen: a
                            # stable run — capture its age order.
                            seg = sf_state[sf_base:sf_base + sf_ways]
                            sfq_order = sorted(range(sf_ways),
                                               key=seg.__getitem__)
                            wayf = sfq_order[0]
                            sfq_sidx = sidx
                            sfq_ptr = 1 if sf_ways > 1 else 0
                    else:
                        # Guard broken (foreign SF write since our last
                        # fill) or shared mode: plain argmin, no capture
                        # — a sorted() here would be thrown away again
                        # next row in thrash-heavy sweeps.
                        seg = sf_state[sf_base:sf_base + sf_ways]
                        wayf = seg.index(min(seg))
                        sfq_sidx = -1
                else:
                    wayf = sf_pvict(sf_state, sidx * sf_pstride)
                sfv += 1
                fslot = sf_base + wayf
                etag = sf_tags[fslot]
                eowner = sf_owners[fslot]
                del sf_where[etag * sf_nsets + sidx]
                sf_tags[fslot] = line
                sf_owners[fslot] = core
                sf_where[sk] = fslot
                if sf_lru is not None:
                    sf_lru._stamp = stamp = sf_lru._stamp + 1
                    sf_state[fslot] = stamp
                    if sfq_ok:
                        # Continuity holds by construction: the victim
                        # selection just verified (or re-captured) the
                        # plane and nothing of ours intervened.
                        sfq_stamp = stamp
                        sfq_inv = sf_lru._inv_stamp
                else:
                    sf_pfill(sf_state, sidx * sf_pstride, wayf)
                if eowner >= 0:
                    inv_private(eowner, etag)
                    back_inv += 1
                if (hrand() < reuse_p) if reuse_take is None else reuse_take(sidx):
                    ev2 = llc_insert(sidx, etag, SHARED_OWNER)
                    if ev2 is not None and ev2[0] < _NOISE_TAG_BASE:
                        inv_everywhere(ev2[0])
            # Fill private (L2 then L1) — see kernels.load_sweep.
            if l2_free_all or l2_occ[l2_idx] < l2_ways:
                slot2 = l2_tags.index(None, l2_base, l2_base + l2_ways)
                way2 = slot2 - l2_base
                l2_occ[l2_idx] += 1
                vline = None
            else:
                if l2_lru is not None:
                    if (l2q_stamp == l2_lru._stamp
                            and l2q_inv == l2_lru._inv_stamp):
                        ent = l2q.get(l2_idx)
                        if ent is not None:
                            order = ent[0]
                            ptr = ent[1]
                            way2 = order[ptr]
                            ptr += 1
                            ent[1] = 0 if ptr == l2_ways else ptr
                        else:
                            seg = l2_state[l2_base:l2_base + l2_ways]
                            order = sorted(range(l2_ways),
                                           key=seg.__getitem__)
                            way2 = order[0]
                            l2q[l2_idx] = [order, 1 if l2_ways > 1 else 0]
                    else:
                        # Guard broken: plain argmin, drop every
                        # captured order (cheap — the back-invalidation
                        # heavy llc mode breaks the chain most rows and
                        # must not pay capture cost it cannot reuse).
                        if l2q:
                            l2q.clear()
                        seg = l2_state[l2_base:l2_base + l2_ways]
                        way2 = seg.index(min(seg))
                else:
                    way2 = l2_pvict(l2_state, l2_pbase)
                l2v += 1
                slot2 = l2_base + way2
                vline = l2_tags[slot2]
                del l2_where[vline * l2_nsets + l2_idx]
            l2_tags[slot2] = line
            l2_owners[slot2] = core
            l2_where[k2] = slot2
            if l2_lru is not None:
                l2_lru._stamp = stamp = l2_lru._stamp + 1
                l2_state[slot2] = stamp
                # Pre-write continuity check (see the predictor notes):
                # a mismatch means a foreign L2 write landed since our
                # last fill, so every captured age order is suspect.
                if stamp - 1 != l2q_stamp or l2_lru._inv_stamp != l2q_inv:
                    if l2q:
                        l2q.clear()
                l2q_stamp = stamp
                l2q_inv = l2_lru._inv_stamp
            else:
                l2_pfill(l2_state, l2_pbase, way2)
            if vline is not None:
                vsid = sidx_get(vline)
                if vsid is None:
                    vsid = shared_set_index(vline)
                vslot = sf_where.get(vline * sf_nsets + vsid)
                if vslot is not None and sf_owners[vslot] == core:
                    handle_victim(core, vline, now)
            if l1_occ[set_idx] < l1_ways:
                slot = l1_tags.index(None, l1_base, l1_base + l1_ways)
                way1 = slot - l1_base
                l1_occ[set_idx] += 1
            else:
                if l1_tree8:
                    b0 = l1_state[sbase]
                    node = 1 + b0
                    b1 = l1_state[sbase + node]
                    way1 = ((b0 << 2) | (b1 << 1)
                            | l1_state[sbase + 2 * node + 1 + b1])
                elif l1_lru is not None:
                    seg = l1_state[l1_base:l1_base + l1_ways]
                    way1 = seg.index(min(seg))
                else:
                    way1 = l1_pvict(l1_state, sbase)
                l1v += 1
                slot = l1_base + way1
                del l1_where[l1_tags[slot] * l1_nsets + set_idx]
            l1_tags[slot] = line
            l1_owners[slot] = core
            l1_where[k1] = slot
            if l1_tree8:
                b0 = (way1 >> 2) & 1
                l1_state[sbase] = 1 - b0
                b1 = (way1 >> 1) & 1
                node = 1 + b0
                l1_state[sbase + node] = 1 - b1
                l1_state[sbase + 2 * node + 1 + b1] = 1 - (way1 & 1)
            elif l1_lru is not None:
                l1_lru._stamp = stamp = l1_lru._stamp + 1
                l1_state[slot] = stamp
            else:
                l1_pfill(l1_state, sbase, way1)
            if not shared:
                continue
            # Helper shadow read: the line is SF-resident with the main
            # core as owner (nothing between the install and here can
            # evict it — see the fusion note), so the SF transfer branch
            # is guaranteed; the line is LLC-absent, so the shared
            # install is a guaranteed fill.
            if fused:
                sf_lru._inv_stamp = istamp = sf_lru._inv_stamp - 1
                sf_state[fslot] = istamp
            else:
                del sf_where[sk]
                sf_tags[fslot] = None
                sf_owners[fslot] = 0
                sf_occ[sidx] -= 1
                if sf_lru is not None:
                    sf_lru._inv_stamp = istamp = sf_lru._inv_stamp - 1
                    sf_state[fslot] = istamp
                else:
                    sf_pinv(sf_state, sidx * sf_pstride, fslot - sf_base)
            if llc_occ[sidx] < llc_ways:
                lslot = llc_tags.index(None, llc_base, llc_base + llc_ways)
                wayl = lslot - llc_base
                llc_occ[sidx] += 1
                etag2 = None
            else:
                if llc_lru is not None:
                    # Predicted FIFO victim when the guard proves the
                    # LLC plane untouched since our last fill; the
                    # argmin is then the first not-yet-refilled slot of
                    # the captured age order (stamps are unique, so the
                    # argmin is unambiguous and matches seg.index(min)).
                    if (sidx == vq_sidx
                            and llc_lru._stamp == vq_stamp
                            and llc_lru._inv_stamp == vq_inv):
                        wayl = vq_order[vq_ptr]
                        vq_ptr += 1
                        if vq_ptr == llc_ways:
                            vq_ptr = 0
                    else:
                        seg = llc_state[llc_base:llc_base + llc_ways]
                        vq_order = sorted(range(llc_ways), key=seg.__getitem__)
                        wayl = vq_order[0]
                        vq_sidx = sidx
                        vq_ptr = 1 if llc_ways > 1 else 0
                        # Resync the guard to capture time so the fill's
                        # continuity pre-check below recognizes this
                        # fresh order as valid.
                        vq_stamp = llc_lru._stamp
                        vq_inv = llc_lru._inv_stamp
                else:
                    wayl = llc_pvict(llc_state, sidx * llc_pstride)
                llcv += 1
                lslot = llc_base + wayl
                etag2 = llc_tags[lslot]
                del llc_where[etag2 * llc_nsets + sidx]
            llc_tags[lslot] = line
            llc_owners[lslot] = SHARED_OWNER
            llc_where[sk] = lslot
            if llc_lru is not None:
                llc_lru._stamp = stamp = llc_lru._stamp + 1
                llc_state[lslot] = stamp
                # Pre-write continuity check: a free-way fill that moved
                # the guard blindly would mask foreign LLC writes (reuse
                # inserts, noise, victim dispositions) landed earlier in
                # this row and leave a stale captured order looking
                # valid at the next victim fill.
                if stamp - 1 != vq_stamp or llc_lru._inv_stamp != vq_inv:
                    vq_sidx = -1
                vq_stamp = stamp
                vq_inv = llc_lru._inv_stamp
            else:
                llc_pfill(llc_state, sidx * llc_pstride, wayl)
            if etag2 is not None and etag2 < _NOISE_TAG_BASE:
                inv_everywhere(etag2)
            # Fill the helper's private caches.
            if h2_free_all or h2_occ[l2_idx] < l2_ways:
                slot2 = h2_tags.index(None, l2_base, l2_base + l2_ways)
                way2 = slot2 - l2_base
                h2_occ[l2_idx] += 1
                vline = None
            else:
                if h2_lru is not None:
                    if (h2q_stamp == h2_lru._stamp
                            and h2q_inv == h2_lru._inv_stamp):
                        ent = h2q.get(l2_idx)
                        if ent is not None:
                            order = ent[0]
                            ptr = ent[1]
                            way2 = order[ptr]
                            ptr += 1
                            ent[1] = 0 if ptr == l2_ways else ptr
                        else:
                            seg = h2_state[l2_base:l2_base + l2_ways]
                            order = sorted(range(l2_ways),
                                           key=seg.__getitem__)
                            way2 = order[0]
                            h2q[l2_idx] = [order, 1 if l2_ways > 1 else 0]
                    else:
                        if h2q:
                            h2q.clear()
                        seg = h2_state[l2_base:l2_base + l2_ways]
                        way2 = seg.index(min(seg))
                else:
                    way2 = h2_pvict(h2_state, l2_pbase)
                h2v += 1
                slot2 = l2_base + way2
                vline = h2_tags[slot2]
                del h2_where[vline * l2_nsets + l2_idx]
            h2_tags[slot2] = line
            h2_owners[slot2] = helper
            h2_where[k2] = slot2
            if h2_lru is not None:
                h2_lru._stamp = stamp = h2_lru._stamp + 1
                h2_state[slot2] = stamp
                if stamp - 1 != h2q_stamp or h2_lru._inv_stamp != h2q_inv:
                    if h2q:
                        h2q.clear()
                h2q_stamp = stamp
                h2q_inv = h2_lru._inv_stamp
            else:
                h2_pfill(h2_state, l2_pbase, way2)
            if vline is not None:
                vsid = sidx_get(vline)
                if vsid is None:
                    vsid = shared_set_index(vline)
                vslot = sf_where.get(vline * sf_nsets + vsid)
                if vslot is not None and sf_owners[vslot] == helper:
                    handle_victim(helper, vline, now)
            if h1_occ[set_idx] < h1_ways:
                slot = h1_tags.index(None, l1_base, l1_base + h1_ways)
                way1 = slot - l1_base
                h1_occ[set_idx] += 1
            else:
                if h1_tree8:
                    b0 = h1_state[sbase]
                    node = 1 + b0
                    b1 = h1_state[sbase + node]
                    way1 = ((b0 << 2) | (b1 << 1)
                            | h1_state[sbase + 2 * node + 1 + b1])
                elif h1_lru is not None:
                    seg = h1_state[l1_base:l1_base + h1_ways]
                    way1 = seg.index(min(seg))
                else:
                    way1 = h1_pvict(h1_state, sbase)
                h1v += 1
                slot = l1_base + way1
                del h1_where[h1_tags[slot] * l1_nsets + set_idx]
            h1_tags[slot] = line
            h1_owners[slot] = helper
            h1_where[k1] = slot
            if h1_tree8:
                b0 = (way1 >> 2) & 1
                h1_state[sbase] = 1 - b0
                b1 = (way1 >> 1) & 1
                node = 1 + b0
                h1_state[sbase + node] = 1 - b1
                h1_state[sbase + 2 * node + 1 + b1] = 1 - (way1 & 1)
            elif h1_lru is not None:
                h1_lru._stamp = stamp = h1_lru._stamp + 1
                h1_state[slot] = stamp
            else:
                h1_pfill(h1_state, sbase, way1)
        # Counter folding: every row is one main miss-everywhere access
        # (and one helper transfer access in shared mode).
        stats.accesses += 2 * count if shared else count
        stats.dram_fetches += count
        stats.sf_back_invalidations += back_inv
        sf.policy_fills += count
        sf.policy_victims += sfv
        l1.policy_fills += count
        l1.policy_victims += l1v
        l2.policy_fills += count
        l2.policy_victims += l2v
        if shared:
            stats.sf_transfers += count
            llc.policy_fills += count
            llc.policy_victims += llcv
            h1c.policy_fills += count
            h1c.policy_victims += h1v
            h2c.policy_fills += count
            h2c.policy_victims += h2v
        elapsed = lat_dram + count * miss_gap
        elapsed += m._preemption_penalty(elapsed)
        m.advance(elapsed)
        return elapsed
