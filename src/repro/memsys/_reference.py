"""The seed (pre-data-plane) set-associative cache — kept as a parity oracle.

This is the object-based implementation the repository started with: one
lazily materialized :class:`_CacheSet` per touched set, each holding its own
:class:`~repro.memsys.replacement.ReplacementPolicy` instance.  The hot path
now runs on the flat array-backed :class:`~repro.memsys.cache.SetAssociativeCache`;
this module exists so that

* the parity suite (``tests/test_dataplane_parity.py``) can prove, seed for
  seed, that the data plane reproduces the seed behavior exactly, and
* ``benchmarks/bench_perf_memsys.py`` can measure genuine before/after
  numbers on the same host by swapping this class into the hierarchy.

It mirrors the full duck interface the hierarchy and noise source use,
including the newer ``noise_clock``/``set_noise_clock`` accessors and the
``flush_all(now)`` reconciliation-clock carry (without which the seed bug —
a post-flush Poisson catch-up over the entire elapsed simulated time —
would make old/new traces diverge for reasons unrelated to the data plane).

Do not use this class on any hot path.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .replacement import make_policy


class _CacheSet:
    """One set: parallel tag/owner arrays plus replacement state."""

    __slots__ = ("tags", "owners", "policy", "noise_t")

    def __init__(self, ways: int, policy_name: str, rng: random.Random) -> None:
        self.tags: List[Optional[int]] = [None] * ways
        self.owners: List[int] = [0] * ways
        self.policy = make_policy(policy_name, ways, rng)
        #: Cycle up to which background noise has been reconciled
        #: (maintained by the hierarchy's noise hook).
        self.noise_t = 0


class ReferenceSetAssociativeCache:
    """The seed dict-of-sets cache (see module docstring)."""

    def __init__(
        self,
        name: str,
        n_sets: int,
        ways: int,
        policy_name: str,
        rng: random.Random,
    ) -> None:
        self.name = name
        self.n_sets = n_sets
        self.ways = ways
        self._policy_name = policy_name
        self._rng = rng
        self._sets: Dict[int, _CacheSet] = {}
        #: Counter-mode keyed-victim binding (crng, cache_id); applied to
        #: each set's policy at materialization (random policy only).
        self._keyed = None
        #: Keyed-victim draw counts carried across flush_all, mirroring
        #: the flat plane's table-level counter dict (which survives a
        #: flush): replaying counters would replay identical victims.
        self._saved_vctr: Dict[int, int] = {}
        #: Reconciliation clocks carried across flush_all (parity with the
        #: flat plane's persistent per-set noise clocks): per-set survivors
        #: plus a floor for sets never materialized before the flush.
        self._saved_clocks: Dict[int, int] = {}
        self._noise_floor = 0
        self.policy_fills = 0
        self.policy_touches = 0
        self.policy_victims = 0

    def bind_keyed_victims(self, crng, cache_id: int) -> None:
        """Counter-mode hook: key random-policy victim draws per set."""
        self._keyed = (crng, cache_id)
        for set_idx, cset in self._sets.items():
            bind = getattr(cset.policy, "bind_keyed", None)
            if bind is not None:
                bind(crng, cache_id, set_idx)

    def _set(self, set_idx: int) -> _CacheSet:
        cset = self._sets.get(set_idx)
        if cset is None:
            cset = _CacheSet(self.ways, self._policy_name, self._rng)
            cset.noise_t = self._saved_clocks.get(set_idx, self._noise_floor)
            if self._keyed is not None:
                bind = getattr(cset.policy, "bind_keyed", None)
                if bind is not None:
                    bind(self._keyed[0], self._keyed[1], set_idx)
                    cset.policy._ctr = self._saved_vctr.get(set_idx, 0)
            self._sets[set_idx] = cset
        return cset

    def get_set(self, set_idx: int) -> _CacheSet:
        """The set object (materializing it if needed); used by noise hooks."""
        return self._set(set_idx)

    # -- Noise reconciliation clock ---------------------------------------

    def noise_clock(self, set_idx: int) -> int:
        return self._set(set_idx).noise_t

    def set_noise_clock(self, set_idx: int, now: int) -> None:
        self._set(set_idx).noise_t = now

    def exchange_noise_clock(self, set_idx: int, now: int) -> int:
        """Advance the set's noise clock to ``now``; returns the old value."""
        cset = self._set(set_idx)
        old = cset.noise_t
        if now > old:
            cset.noise_t = now
        return old

    # -- Queries ---------------------------------------------------------

    def lookup(self, set_idx: int, tag: int) -> bool:
        """Hit test that updates replacement state on a hit."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return False
        try:
            way = cset.tags.index(tag)
        except ValueError:
            return False
        cset.policy.touch(way)
        self.policy_touches += 1
        return True

    def contains(self, set_idx: int, tag: int) -> bool:
        """Hit test with no side effects."""
        cset = self._sets.get(set_idx)
        return cset is not None and tag in cset.tags

    def owner_of(self, set_idx: int, tag: int) -> Optional[int]:
        """Owner annotation of ``tag``, or None if absent."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return None
        try:
            return cset.owners[cset.tags.index(tag)]
        except ValueError:
            return None

    def occupancy(self, set_idx: int) -> int:
        """Number of valid lines in the set."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return 0
        return sum(1 for t in cset.tags if t is not None)

    def tags_in_set(self, set_idx: int) -> List[int]:
        """Valid tags currently in the set (unordered snapshot)."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return []
        return [t for t in cset.tags if t is not None]

    def peek_victim(self, set_idx: int) -> Optional[int]:
        """Tag that the next fill into a *full* set would evict."""
        cset = self._sets.get(set_idx)
        if cset is None or None in cset.tags:
            return None
        return cset.tags[cset.policy.victim()]

    # -- Mutations ---------------------------------------------------------

    def insert(
        self, set_idx: int, tag: int, owner: int = 0, update_owner: bool = True
    ) -> Optional[Tuple[int, int]]:
        """Install ``tag``; returns the evicted ``(tag, owner)`` if any."""
        cset = self._set(set_idx)
        tags = cset.tags
        try:
            way = tags.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            if update_owner:
                cset.owners[way] = owner
            cset.policy.touch(way)
            self.policy_touches += 1
            return None
        try:
            way = tags.index(None)
            evicted = None
        except ValueError:
            way = cset.policy.victim()
            self.policy_victims += 1
            evicted = (tags[way], cset.owners[way])
        tags[way] = tag
        cset.owners[way] = owner
        cset.policy.fill(way)
        self.policy_fills += 1
        return evicted

    def remove(self, set_idx: int, tag: int) -> bool:
        """Invalidate ``tag`` if present; returns whether it was."""
        cset = self._sets.get(set_idx)
        if cset is None:
            return False
        try:
            way = cset.tags.index(tag)
        except ValueError:
            return False
        cset.tags[way] = None
        cset.owners[way] = 0
        cset.policy.invalidate(way)
        return True

    def flush_all(self, now: int = 0) -> None:
        """Drop every line; carry the noise-reconciliation clocks forward."""
        saved = self._saved_clocks
        for set_idx, cset in self._sets.items():
            saved[set_idx] = cset.noise_t
            ctr = getattr(cset.policy, "_ctr", 0)
            if ctr:
                self._saved_vctr[set_idx] = ctr
        self._sets.clear()
        if now > 0:
            for set_idx, t in saved.items():
                if t < now:
                    saved[set_idx] = now
            if now > self._noise_floor:
                self._noise_floor = now

    @property
    def touched_sets(self) -> int:
        """Number of sets that have been materialized."""
        return len(self._sets)
