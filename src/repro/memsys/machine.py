"""The simulated machine: hierarchy + clock + latency model + events.

:class:`Machine` is the substrate the whole attack runs on.  It owns:

* the :class:`~repro.memsys.hierarchy.CacheHierarchy`,
* a global cycle clock (``now``) at the configured frequency,
* the latency/MLP model that converts hit levels into cycles,
* a priority queue of scheduled events (the victim's accesses, tenant
  bursts), drained as the clock advances,
* the background-noise source and the preemption model.

All attack code manipulates *physical line addresses* (ints); address
spaces provide the VA->PA mapping and are created per tenant via
:meth:`Machine.new_address_space`.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Optional, Sequence, Tuple

from .._util import make_rng, poisson, spawn_rng
from ..cloud.noise import BackgroundNoise
from ..config import MachineConfig, NoiseConfig, no_noise
from ..errors import ConfigurationError
from .address import AddressSpace
from .hierarchy import CacheHierarchy, Level


class Machine:
    """A simulated multi-core Intel server host.

    Args:
        cfg: Machine description (geometry, latencies, policies).
        noise: Background-tenant activity; defaults to perfectly quiet.
        seed: Master seed; all internal randomness derives from it.
    """

    def __init__(
        self,
        cfg: MachineConfig,
        noise: Optional[NoiseConfig] = None,
        seed: int = 0,
    ) -> None:
        self.cfg = cfg
        self.noise_cfg = noise if noise is not None else no_noise()
        self._rng = make_rng(("machine", seed))
        self.hierarchy = CacheHierarchy(
            cfg, spawn_rng(self._rng, "hierarchy"), hash_seed=seed
        )
        self.noise = BackgroundNoise(
            self.noise_cfg, cfg.clock_ghz, spawn_rng(self._rng, "noise")
        )
        if self.noise.enabled:
            self.hierarchy.noise_source = self.noise
        if cfg.rng_mode == "counter":
            # Built straight from the seed, NOT from self._rng: the
            # spawn sequence above is the serial-mode determinism
            # contract and must not shift between modes (preemption,
            # jitter and address-space layout stay serial either way).
            from ..rng import CounterRng

            crng = CounterRng(seed)
            self.hierarchy.bind_counter_rng(crng)
            self.noise.crng = crng
        self._preempt_rng = spawn_rng(self._rng, "preempt")
        self._jitter_rng = spawn_rng(self._rng, "jitter")
        self._aspace_rng = spawn_rng(self._rng, "aspace")
        self._used_frames: set = set()
        self.now: int = 0
        self._events: List[Tuple[int, int, Callable[[int], None]]] = []
        self._event_seq = 0
        lat = cfg.latency
        self._level_latency = {
            Level.L1: lat.l1_hit,
            Level.L2: lat.l2_hit,
            Level.LLC: lat.llc_hit,
            Level.SF_TRANSFER: lat.llc_hit,
            Level.DRAM: lat.dram,
        }
        preempt_hz = self.noise_cfg.preemption_rate_hz
        self._preempt_per_cycle = preempt_hz / self.clock_hz if preempt_hz else 0.0
        #: Data-plane batch counters (see ``repro.analysis.dataplane_summary``).
        self.batch_calls: int = 0
        self.batch_lines: int = 0

    # -- Basic properties ----------------------------------------------------

    @property
    def clock_hz(self) -> float:
        return self.cfg.clock_ghz * 1e9

    def seconds(self, cycles: Optional[int] = None) -> float:
        """Convert ``cycles`` (default: current time) to seconds."""
        c = self.now if cycles is None else cycles
        return c / self.clock_hz

    def new_address_space(self, va_base: int = None) -> AddressSpace:
        """A fresh address space sharing this machine's physical frames."""
        kwargs = {}
        if va_base is not None:
            kwargs["va_base"] = va_base
        return AddressSpace(
            self.cfg.phys_bits,
            spawn_rng(self._aspace_rng, f"aspace-{len(self._used_frames)}"),
            used_frames=self._used_frames,
            **kwargs,
        )

    # -- Event scheduling ------------------------------------------------------

    def schedule(self, time: int, fn: Callable[[int], None]) -> None:
        """Run ``fn(time)`` when the clock reaches ``time``."""
        if time < self.now:
            time = self.now
        self._event_seq += 1
        heapq.heappush(self._events, (time, self._event_seq, fn))

    def pending_events(self) -> int:
        return len(self._events)

    def _drain_events(self) -> None:
        events = self._events
        while events and events[0][0] <= self.now:
            t, _, fn = heapq.heappop(events)
            fn(t)

    def advance(self, cycles: int) -> None:
        """Advance the clock, running any events that come due.

        Events are executed after the clock reaches their timestamp; within
        one call they run in timestamp order.
        """
        target = self.now + cycles
        events = self._events
        while events and events[0][0] <= target:
            t, _, fn = heapq.heappop(events)
            if t > self.now:
                self.now = t
            fn(t)
        self.now = target

    def run_until(self, time: int) -> None:
        """Advance the clock to an absolute timestamp."""
        if time > self.now:
            self.advance(time - self.now)

    # -- Preemption (interrupts / context switches on the attacker core) ------

    def _preemption_penalty(self, dt: int) -> int:
        if self._preempt_per_cycle <= 0.0 or dt <= 0:
            return 0
        n = poisson(self._preempt_rng, self._preempt_per_cycle * dt)
        return n * self.noise_cfg.preemption_cycles

    # -- Memory operations -------------------------------------------------------

    def access(
        self, core: int, line: int, write: bool = False, advance: bool = True
    ) -> Tuple[Level, int]:
        """One load (or store); returns (hit level, latency).

        ``advance=False`` applies the cache-state effects without moving the
        clock — used for work that overlaps the main thread, like the helper
        thread's shadowing accesses.
        """
        events = self._events
        if events and events[0][0] <= self.now:
            self._drain_events()
        level = self.hierarchy.access(core, line, self.now, write=write)
        latency = self._level_latency[level]
        if advance:
            self.advance(latency)
        return level, latency

    def timed_access(self, core: int, line: int) -> int:
        """A load bracketed by timers, as the attacker would measure it.

        Includes fixed instrumentation overhead, uniform timer jitter, and
        any preemption that lands inside the measurement.
        """
        lat = self.cfg.latency
        events = self._events
        if events and events[0][0] <= self.now:
            self._drain_events()
        level = self.hierarchy.access(core, line, self.now)
        measured = (
            self._level_latency[level]
            + lat.timer_overhead
            + self._jitter_rng.randint(-lat.timer_jitter, lat.timer_jitter)
        )
        measured += self._preemption_penalty(measured)
        self.advance(measured)
        return measured

    def access_batch(
        self,
        core: int,
        lines: Sequence[int],
        write: bool = False,
        advance: bool = True,
        same_shared_set: bool = False,
        shadow_core: Optional[int] = None,
    ) -> int:
        """Overlapped (MLP) traversal of ``lines``; returns elapsed cycles.

        The one batched entry point every traversal routes through: the
        Python-call boundary into the memory system is crossed once per
        batch, not once per line.

        Cost model: the slowest access's full latency plus a per-line issue
        gap (small for private-cache hits, larger for uncore misses).  State
        updates are applied in order; events due at the start are drained
        first and the whole burst is atomic, which is accurate at the
        microsecond scale of one traversal.

        ``shadow_core`` interleaves a concurrent shadow access per line by
        that core (the helper thread making lines shared); only the main
        core's progress is costed.  ``same_shared_set=True`` asserts all
        lines are congruent (an eviction set) so background noise is
        reconciled once per batch — the hot path of every monitoring loop.
        The shadowed variant always reconciles per access, matching the
        per-line semantics it replaced.
        """
        if not lines:
            return 0
        events = self._events
        if events and events[0][0] <= self.now:
            self._drain_events()
        self.batch_calls += 1
        self.batch_lines += len(lines)
        lat = self.cfg.latency
        hier = self.hierarchy
        haccess = hier.access
        now = self.now
        worst = 0
        gaps = 0
        level_lat = self._level_latency
        hit_gap = lat.hit_issue_gap
        miss_gap = lat.issue_gap
        l2 = Level.L2
        if shadow_core is None:
            reconcile_each = True
            if same_shared_set:
                reconcile_each = False
                if hier.noise_source is not None:
                    hier.noise_source.reconcile(
                        hier, hier.shared_set_index(lines[0]), now
                    )
            for level in hier.access_many(
                core, lines, now, write=write, reconcile_each=reconcile_each
            ):
                lt = level_lat[level]
                if lt > worst:
                    worst = lt
                gaps += hit_gap if level <= l2 else miss_gap
        else:
            for line in lines:
                level = haccess(core, line, now)
                haccess(shadow_core, line, now)
                lt = level_lat[level]
                if lt > worst:
                    worst = lt
                gaps += hit_gap if level <= l2 else miss_gap
        elapsed = worst + gaps
        elapsed += self._preemption_penalty(elapsed)
        if advance:
            self.advance(elapsed)
        return elapsed

    def access_parallel(
        self,
        core: int,
        lines: Sequence[int],
        write: bool = False,
        advance: bool = True,
        same_shared_set: bool = False,
    ) -> int:
        """Compatibility alias for :meth:`access_batch` (no shadow core)."""
        return self.access_batch(
            core,
            lines,
            write=write,
            advance=advance,
            same_shared_set=same_shared_set,
        )

    def probe_batch(
        self,
        core: int,
        lines: Sequence[int],
        write: bool = False,
        same_shared_set: bool = False,
    ) -> int:
        """Timed overlapped traversal, as the attacker's probe measures it.

        Returns the traversal's elapsed cycles plus the fixed timer
        overhead — exactly what the monitoring loops previously computed by
        hand around :meth:`access_parallel`.
        """
        elapsed = self.access_batch(
            core, lines, write=write, same_shared_set=same_shared_set
        )
        return elapsed + self.cfg.latency.timer_overhead

    def access_chase(
        self,
        core: int,
        lines: Sequence[int],
        write: bool = False,
        shadow_core: Optional[int] = None,
    ) -> int:
        """Serialized pointer-chase traversal; returns elapsed cycles.

        Each access waits for the previous one (plus address-generation/TLB
        overhead), and scheduled events interleave between accesses — so a
        long chase exposes the target set to the full noise window.

        ``shadow_core`` interleaves a concurrent (zero-cost) shadow access
        per line, turning each line shared.  The shadowed chase is costed as
        the main core's load latency plus the chase overhead per line — the
        overhead overlaps the helper's work, so it is charged but not
        clocked — and ``write`` does not apply (the main access is a plain
        load; making a line shared and exclusive at once is contradictory).
        """
        lat = self.cfg.latency
        total = 0
        if shadow_core is None:
            events = self._events
            for line in lines:
                if events and events[0][0] <= self.now:
                    self._drain_events()
                level = self.hierarchy.access(core, line, self.now, write=write)
                step = self._level_latency[level] + lat.chase_overhead
                step += self._preemption_penalty(step)
                self.advance(step)
                total += step
        else:
            for line in lines:
                _, latency = self.access(core, line)
                self.access(shadow_core, line, advance=False)
                total += latency + lat.chase_overhead
        return total

    def flush(self, line: int) -> int:
        """clflush one line; returns elapsed cycles."""
        self._drain_events()
        self.hierarchy.flush_line(line, self.now)
        cost = self.cfg.latency.flush
        self.advance(cost)
        return cost

    def flush_batch(self, lines: Sequence[int]) -> int:
        """Back-to-back clflushes (they pipeline); returns elapsed cycles."""
        if not lines:
            return 0
        self._drain_events()
        for line in lines:
            self.hierarchy.flush_line(line, self.now)
        lat = self.cfg.latency
        cost = lat.flush + (len(lines) - 1) * lat.flush_gap
        cost += self._preemption_penalty(cost)
        self.advance(cost)
        return cost

    def flush_all_caches(self) -> None:
        """Drop every cached line from every structure (instantaneous).

        Passes the current cycle into each cache's ``flush_all`` so the
        per-set noise-reconciliation clocks are carried forward instead of
        being reset — a reset would make the next access to each set draw a
        Poisson catch-up over the machine's entire elapsed history.
        """
        hier = self.hierarchy
        now = self.now
        for cache in hier.l1:
            cache.flush_all(now)
        for cache in hier.l2:
            cache.flush_all(now)
        hier.sf.flush_all(now)
        hier.llc.flush_all(now)

    # -- Attacker-visible timing helpers -----------------------------------------

    def hit_threshold_private(self) -> int:
        """Latency threshold separating private-cache hits from the uncore."""
        lat = self.cfg.latency
        return lat.timer_overhead + (lat.l2_hit + lat.llc_hit) // 2

    def hit_threshold_llc(self) -> int:
        """Latency threshold separating LLC hits from DRAM."""
        lat = self.cfg.latency
        return lat.timer_overhead + (lat.llc_hit + lat.dram) // 2
