"""Virtual/physical addressing and page allocation.

The attacker is an unprivileged tenant: it controls the *page offset* of its
addresses (low 12 bits, shared between VA and PA) but neither controls nor
knows the physical frame bits above the page offset (Section 2.2.1 of the
paper).  :class:`AddressSpace` models exactly that: virtual pages are mapped
to uniformly random, distinct physical frames.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

from ..config import LINE_BYTES, PAGE_BYTES
from ..errors import AddressError

#: Number of low-order line-offset bits.
LINE_BITS = LINE_BYTES.bit_length() - 1

#: Number of low-order page-offset bits.
PAGE_BITS = PAGE_BYTES.bit_length() - 1


def line_address(addr: int) -> int:
    """The line-granular address (address with the line offset dropped)."""
    return addr >> LINE_BITS


def page_offset(addr: int) -> int:
    """Offset of ``addr`` within its 4 kB page."""
    return addr & (PAGE_BYTES - 1)


def line_offset_in_page(addr: int) -> int:
    """Line index of ``addr`` within its page (0..63 for 4 kB / 64 B)."""
    return (addr & (PAGE_BYTES - 1)) >> LINE_BITS


class AddressSpace:
    """A per-tenant virtual address space with randomized VA->PA mapping.

    Virtual pages are handed out from a private, monotonically growing VA
    region; each is backed by a distinct physical frame drawn uniformly at
    random.  Translation preserves the page offset, so the attacker's partial
    control over cache-set index bits is modelled faithfully.

    Multiple address spaces (attacker, victim, helper buffers) can share one
    physical memory; frame collisions across spaces are prevented by a shared
    frame allocator when constructed through :class:`~repro.memsys.machine.Machine`.
    """

    def __init__(
        self,
        phys_bits: int,
        rng: random.Random,
        used_frames: set = None,
        va_base: int = 0x10_0000_0000,
    ) -> None:
        if phys_bits <= PAGE_BITS + 1:
            raise AddressError("physical address space too small")
        self._phys_frames = 1 << (phys_bits - PAGE_BITS)
        self._rng = rng
        self._page_table: Dict[int, int] = {}
        self._used_frames = used_frames if used_frames is not None else set()
        self._next_vpn = va_base >> PAGE_BITS

    @property
    def mapped_pages(self) -> int:
        """Number of virtual pages currently mapped."""
        return len(self._page_table)

    def alloc_pages(self, count: int) -> List[int]:
        """Map ``count`` fresh virtual pages; returns their VA bases.

        The virtual pages are contiguous (like one large mmap) but their
        physical frames are independent uniform draws, matching anonymous
        memory handed to a container.
        """
        if count < 1:
            raise AddressError("count must be >= 1")
        if len(self._used_frames) + count > self._phys_frames // 2:
            raise AddressError(
                "physical memory over half full; allocation would skew the "
                "frame distribution (increase phys_bits)"
            )
        bases = []
        for _ in range(count):
            vpn = self._next_vpn
            self._next_vpn += 1
            while True:
                frame = self._rng.randrange(self._phys_frames)
                if frame not in self._used_frames:
                    break
            self._used_frames.add(frame)
            self._page_table[vpn] = frame
            bases.append(vpn << PAGE_BITS)
        return bases

    def alloc_page(self) -> int:
        """Map one fresh virtual page; returns its VA base."""
        return self.alloc_pages(1)[0]

    def translate(self, va: int) -> int:
        """Translate a virtual address to its physical address."""
        vpn = va >> PAGE_BITS
        try:
            frame = self._page_table[vpn]
        except KeyError:
            raise AddressError(f"virtual address {va:#x} is not mapped") from None
        return (frame << PAGE_BITS) | (va & (PAGE_BYTES - 1))

    def translate_line(self, va: int) -> int:
        """Translate ``va`` and return the physical *line* address."""
        return line_address(self.translate(va))

    def is_mapped(self, va: int) -> bool:
        """Whether the page containing ``va`` is mapped."""
        return (va >> PAGE_BITS) in self._page_table

    def lines_at_offset(self, va_pages: Iterable[int], offset: int) -> List[int]:
        """Virtual line addresses at page offset ``offset`` in each page.

        ``offset`` must be line-aligned within the page.
        """
        if not 0 <= offset < PAGE_BYTES or offset % LINE_BYTES:
            raise AddressError(f"offset {offset:#x} is not line-aligned in a page")
        return [base + offset for base in va_pages]
