"""The non-inclusive Skylake-SP-style cache hierarchy.

Structures (Section 2.3 of the paper):

* Per-core private **L1** and **L2**.
* A sliced, shared, **non-inclusive LLC** holding *shared* (S-state) lines.
* A sliced, shared **Snoop Filter (SF)** tracking *private* (E/M-state)
  lines that live only in some core's L1/L2.  The SF mirrors the LLC's set
  count, slice count, and slice hash, and has more ways.

State transitions modelled (private = tracked by SF, shared = resident in
LLC):

* Miss everywhere -> DRAM fetch, line becomes private to the requesting
  core (SF entry allocated).
* A second core reads a private line -> the line becomes shared: the SF
  entry is freed and the line is inserted into the LLC.
* SF entry evicted (capacity) -> the owner's private copies are
  **back-invalidated** (this is the attacker-observable event of an SF
  Prime+Probe); the line is inserted into the LLC with probability
  ``reuse_predictor_p``, else dropped.
* Private line evicted from an L2 -> its SF entry is freed; the line moves
  to the LLC (as shared) with probability ``l2_victim_to_llc_p``, else it is
  dropped.  This victim-cache behaviour is what makes the LLC-eviction test
  (`TestEviction` with an LLC threshold) reliable.
* LLC line evicted -> any private copies are invalidated.

Background-tenant noise enters through ``noise_source.reconcile``: before
real traffic touches a shared set, accumulated Poisson noise events are
applied to that set (lazy reconciliation; see DESIGN.md).
"""

from __future__ import annotations

import enum
import random
from typing import Dict, List, Optional

from ..config import MachineConfig
from ..rng import S_L2_VICTIM, S_SF_REUSE
from .cache import SetAssociativeCache
from .policy_tables import TreePLRU8Table
from .slice_hash import make_slice_hash

#: Owner annotation for background-tenant (noise) lines.
NOISE_OWNER = -1
#: Owner annotation for shared (LLC-resident) lines.
SHARED_OWNER = -2

#: Tags at or above this value denote background-tenant (noise) lines.
_NOISE_TAG_BASE = 1 << 60


class Level(enum.IntEnum):
    """Where an access was satisfied; maps to a latency in LatencyConfig."""

    L1 = 0
    L2 = 1
    LLC = 2
    #: Cross-core transfer through the SF (private line read by another core).
    SF_TRANSFER = 3
    DRAM = 4


class HierarchyStats:
    """Cheap event counters, reset with :meth:`reset`."""

    __slots__ = (
        "accesses",
        "l1_hits",
        "l2_hits",
        "llc_hits",
        "sf_transfers",
        "dram_fetches",
        "sf_back_invalidations",
        "noise_insertions",
        "flushes",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.llc_hits = 0
        self.sf_transfers = 0
        self.dram_fetches = 0
        self.sf_back_invalidations = 0
        self.noise_insertions = 0
        self.flushes = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class CacheHierarchy:
    """L1/L2 per core + sliced LLC and SF, with coherence-lite semantics."""

    def __init__(self, cfg: MachineConfig, rng: random.Random, hash_seed: int = 0):
        self.cfg = cfg
        self._rng = rng
        self.slice_hash = make_slice_hash(
            cfg.slice_hash, cfg.llc.slices, seed=hash_seed, width=cfg.phys_bits - 6
        )
        self.l1: List[SetAssociativeCache] = [
            SetAssociativeCache(f"L1[{c}]", cfg.l1.sets, cfg.l1.ways, cfg.l1_policy, rng)
            for c in range(cfg.cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(f"L2[{c}]", cfg.l2.sets, cfg.l2.ways, cfg.l2_policy, rng)
            for c in range(cfg.cores)
        ]
        n_shared_sets = cfg.llc.total_sets
        self.llc = SetAssociativeCache("LLC", n_shared_sets, cfg.llc.ways, cfg.llc_policy, rng)
        self.sf = SetAssociativeCache("SF", n_shared_sets, cfg.sf.ways, cfg.sf_policy, rng)
        self.stats = HierarchyStats()
        #: Optional background-noise source; duck-typed object exposing
        #: ``reconcile(hierarchy, shared_set_idx, now)``.
        self.noise_source = None
        self._slice_memo: Dict[int, int] = {}
        self._sidx_memo: Dict[int, int] = {}
        self._l1_mask = cfg.l1.sets - 1
        self._l2_mask = cfg.l2.sets - 1
        self._shared_mask = cfg.llc.sets - 1
        self._shared_sets_per_slice = cfg.llc.sets
        self._noise_tag_next = _NOISE_TAG_BASE
        #: Event-keyed RNG (counter mode); None selects the serial-order
        #: contract.  Bound by :meth:`bind_counter_rng`.
        self.crng = None
        #: Counter-mode event counters: reuse-predictor draws per shared
        #: set, and L2-victim write-back draws per (victim line, core).
        self._sf_reuse_ctr: Dict[int, int] = {}
        self._l2v_ctr: Dict[int, int] = {}

    def bind_counter_rng(self, crng) -> None:
        """Switch every stochastic draw site to event-keyed draws.

        Cache ids for keyed random-policy victims follow construction
        order — L1[c] = c, L2[c] = cores + c, LLC = 2*cores,
        SF = 2*cores + 1 — so every tier derives the same ids.
        """
        self.crng = crng
        cores = self.cfg.cores
        for c, cache in enumerate(self.l1):
            bind = getattr(cache, "bind_keyed_victims", None)
            if bind is not None:
                bind(crng, c)
        for c, cache in enumerate(self.l2):
            bind = getattr(cache, "bind_keyed_victims", None)
            if bind is not None:
                bind(crng, cores + c)
        for cache_id, cache in ((2 * cores, self.llc), (2 * cores + 1, self.sf)):
            bind = getattr(cache, "bind_keyed_victims", None)
            if bind is not None:
                bind(crng, cache_id)

    def _reuse_take(self, sidx: int) -> bool:
        """Counter-mode reuse-predictor draw, keyed (set, per-set count)."""
        ctr = self._sf_reuse_ctr
        rc = ctr.get(sidx, 0)
        ctr[sidx] = rc + 1
        return self.crng.u01(S_SF_REUSE, sidx, rc, 0) < self.cfg.reuse_predictor_p

    def _l2v_take(self, core: int, vline: int) -> bool:
        """Counter-mode L2-victim draw, keyed (line, core, per-pair count)."""
        key = vline * self.cfg.cores + core
        ctr = self._l2v_ctr
        rc = ctr.get(key, 0)
        ctr[key] = rc + 1
        return self.crng.u01(S_L2_VICTIM, key, rc, 0) < self.cfg.l2_victim_to_llc_p

    # -- Address mapping ---------------------------------------------------

    def slice_of(self, line: int) -> int:
        """LLC/SF slice of a physical line address (memoized)."""
        memo = self._slice_memo
        s = memo.get(line)
        if s is None:
            s = self.slice_hash.slice_of(line)
            memo[line] = s
        return s

    def shared_set_index(self, line: int) -> int:
        """Global LLC/SF set index (slice * sets_per_slice + set; memoized)."""
        memo = self._sidx_memo
        sidx = memo.get(line)
        if sidx is None:
            sidx = self.slice_of(line) * self._shared_sets_per_slice + (
                line & self._shared_mask
            )
            memo[line] = sidx
        return sidx

    def l1_index(self, line: int) -> int:
        return line & self._l1_mask

    def l2_index(self, line: int) -> int:
        return line & self._l2_mask

    # -- Internal helpers --------------------------------------------------

    def _reconcile_noise(self, sidx: int, now: int) -> None:
        if self.noise_source is not None:
            self.noise_source.reconcile(self, sidx, now)

    def _invalidate_private(self, core: int, line: int) -> None:
        """Drop ``line`` from one core's private caches."""
        self.l1[core].remove(line & self._l1_mask, line)
        self.l2[core].remove(line & self._l2_mask, line)

    def _invalidate_private_everywhere(self, line: int) -> None:
        for core in range(self.cfg.cores):
            self._invalidate_private(core, line)

    def _llc_install(self, sidx: int, line: int) -> None:
        """Install a shared line into the LLC, handling the LLC victim."""
        evicted = self.llc.insert(sidx, line, SHARED_OWNER)
        if evicted is not None:
            etag, _ = evicted
            if etag < _NOISE_TAG_BASE:  # foreign lines have no private copies
                self._invalidate_private_everywhere(etag)

    def _sf_install(self, sidx: int, line: int, owner: int) -> None:
        """Allocate an SF entry (line becomes private), handling the victim.

        An evicted SF entry back-invalidates its owner's private copies and
        is inserted into the LLC with probability ``reuse_predictor_p``.
        """
        evicted = self.sf.insert(sidx, line, owner)
        if evicted is None:
            return
        etag, eowner = evicted
        if eowner >= 0:
            self._invalidate_private(eowner, etag)
            self.stats.sf_back_invalidations += 1
        if (self._rng.random() < self.cfg.reuse_predictor_p
                if self.crng is None else self._reuse_take(sidx)):
            self._llc_install(sidx, etag)

    def _handle_l2_victim(self, core: int, vline: int, now: int) -> None:
        """A line fell out of core's L2; reconcile its SF/LLC residence."""
        sidx = self._sidx_memo.get(vline)
        if sidx is None:
            sidx = self.shared_set_index(vline)
        if self.sf.owner_of(sidx, vline) == core:
            # Private line lost its only cached copy (unless still in L1;
            # treat the L2 as the private point of residence).
            self.sf.remove(sidx, vline)
            self.l1[core].remove(vline & self._l1_mask, vline)
            if (self._rng.random() < self.cfg.l2_victim_to_llc_p
                    if self.crng is None else self._l2v_take(core, vline)):
                self._reconcile_noise(sidx, now)
                self._llc_install(sidx, vline)
        # Shared lines keep their LLC copy; nothing to do.

    def _fill_private(self, core: int, line: int, now: int) -> None:
        """Install ``line`` into core's L2 then L1 (victims handled)."""
        evicted = self.l2[core].insert(line & self._l2_mask, line, core)
        if evicted is not None:
            self._handle_l2_victim(core, evicted[0], now)
        # L1 victims are silent: the line usually still lives in the L2, and
        # if not, its SF entry is lazily cleaned up on the next access.
        self.l1[core].insert(line & self._l1_mask, line, core)

    # -- Public operations ---------------------------------------------------

    def access(
        self, core: int, line: int, now: int, write: bool = False,
        reconcile: bool = True,
    ) -> Level:
        """A load (or code fetch) of physical line ``line`` by ``core``.

        Returns the level that satisfied the access.  The caller (the
        Machine) converts levels to latencies and advances the clock.
        ``write=True`` models a store: a read-for-ownership that forces the
        line exclusive (private, SF-tracked) even if it was shared.
        ``reconcile=False`` skips the noise reconciliation — only for batch
        callers that already reconciled this line's shared set.
        """
        if write:
            return self._write(core, line, now, reconcile=reconcile)
        stats = self.stats
        stats.accesses += 1
        # Reconcile background noise *before* the private lookup: a pending
        # noise eviction of this line's LLC/SF entry back-invalidates its
        # private copies, and that must be visible to this access's timing.
        if reconcile and self.noise_source is not None:
            self.noise_source.reconcile(self, self.shared_set_index(line), now)
        if self.l1[core].lookup(line & self._l1_mask, line):
            stats.l1_hits += 1
            return Level.L1
        if self.l2[core].lookup(line & self._l2_mask, line):
            stats.l2_hits += 1
            self.l1[core].insert(line & self._l1_mask, line, core)
            return Level.L2
        sidx = self._sidx_memo.get(line)
        if sidx is None:
            sidx = self.shared_set_index(line)
        owner = self.sf.owner_of(sidx, line)
        if owner is not None:
            if owner == core or owner == NOISE_OWNER:
                # Stale self-owned entry (L1-only residence lost) or a
                # noise-owned line: serve from memory, keep/retake the entry.
                self.sf.insert(sidx, line, core)
                self._fill_private(core, line, now)
                stats.dram_fetches += 1
                return Level.DRAM
            # Another core holds it privately: the line becomes shared.
            self.sf.remove(sidx, line)
            self._llc_install(sidx, line)
            self._fill_private(core, line, now)
            stats.sf_transfers += 1
            return Level.SF_TRANSFER
        if self.llc.lookup(sidx, line):
            stats.llc_hits += 1
            self._fill_private(core, line, now)
            return Level.LLC
        # Miss everywhere: fetch from DRAM, line becomes private to core.
        self._sf_install(sidx, line, core)
        self._fill_private(core, line, now)
        stats.dram_fetches += 1
        return Level.DRAM

    def access_many(
        self,
        core: int,
        lines,
        now: int,
        write: bool = False,
        reconcile_each: bool = True,
    ) -> List[Level]:
        """Batched :meth:`access`: one call per traversal, not per line.

        Semantically identical to ``[access(core, ln, now, write=write,
        reconcile=reconcile_each) for ln in lines]`` — the parity suite pins
        this equivalence — but the private-cache *hit* path (the bulk of
        every monitoring traversal) is walked inline on the flat planes:
        one dict probe plus one state store per line, no per-line Python
        call frames.  Anything that is not a plain hit falls back to
        :meth:`access` / :meth:`_write`, whose hit probes are side-effect-
        free on a miss, so the re-probe is unobservable.

        When a cache has been swapped for a duck-typed stand-in (the seed
        reference oracle, a way-partitioned defense wrapper), the fast path
        disengages and every line takes the generic route.
        """
        l1 = self.l1[core]
        l2 = self.l2[core]
        if (
            type(l1) is not SetAssociativeCache
            or type(l2) is not SetAssociativeCache
            or (write and type(self.sf) is not SetAssociativeCache)
        ):
            if write:
                w = self._write
                return [w(core, ln, now, reconcile=reconcile_each) for ln in lines]
            a = self.access
            return [a(core, ln, now, reconcile=reconcile_each) for ln in lines]
        stats = self.stats
        noise = self.noise_source if reconcile_each else None
        memo = self._sidx_memo
        l1_mask = self._l1_mask
        l1_nsets = l1.n_sets
        l1_where = l1._where
        l1_state = l1._state
        l1_lru = l1._lru
        l1_rrip = l1._rrip
        l1_touch = l1._pt_touch
        l1_pstride = l1._pstride
        l1_ways = l1.ways
        l1_insert = l1.insert
        # The 8-way Tree-PLRU L1 of the Skylake presets gets its unrolled
        # touch (see TreePLRU8Table) expanded in the traversal loop itself —
        # the single hottest statement in the simulator.
        l1_tree8 = type(l1._pol) is TreePLRU8Table
        l2_mask = self._l2_mask
        l2_nsets = l2.n_sets
        l2_where = l2._where
        l2_state = l2._state
        l2_lru = l2._lru
        l2_rrip = l2._rrip
        l2_touch = l2._pt_touch
        l2_pstride = l2._pstride
        l2_ways = l2.ways
        level_l1 = Level.L1
        level_l2 = Level.L2
        out: List[Level] = []
        append = out.append
        # Fast-path hit counts, folded into the shared counters once at the
        # end instead of three attribute read-modify-writes per line.
        hits1 = 0
        hits2 = 0
        if not write:
            access = self.access
            for line in lines:
                if noise is not None:
                    sidx = memo.get(line)
                    if sidx is None:
                        sidx = self.shared_set_index(line)
                    noise.reconcile(self, sidx, now)
                set_idx = line & l1_mask
                slot = l1_where.get(line * l1_nsets + set_idx)
                if slot is not None:
                    hits1 += 1
                    if l1_tree8:
                        base = set_idx * 7
                        way = slot - set_idx * 8
                        b0 = (way >> 2) & 1
                        l1_state[base] = 1 - b0
                        b1 = (way >> 1) & 1
                        node = 1 + b0
                        l1_state[base + node] = 1 - b1
                        l1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                    elif l1_lru is not None:
                        l1_lru._stamp = stamp = l1_lru._stamp + 1
                        l1_state[slot] = stamp
                    elif l1_rrip:
                        l1_state[slot] = 0
                    else:
                        l1_touch(
                            l1_state, set_idx * l1_pstride, slot - set_idx * l1_ways
                        )
                    append(level_l1)
                    continue
                # A traversal of a ways-sized eviction set spills its own
                # lines out of the (smaller) L1 set — the L2 hit is just as
                # hot as the L1 hit, so it is inlined too.
                l2_idx = line & l2_mask
                slot2 = l2_where.get(line * l2_nsets + l2_idx)
                if slot2 is None:
                    append(access(core, line, now, reconcile=False))
                    continue
                hits2 += 1
                if l2_lru is not None:
                    l2_lru._stamp = stamp = l2_lru._stamp + 1
                    l2_state[slot2] = stamp
                elif l2_rrip:
                    l2_state[slot2] = 0
                else:
                    l2_touch(l2_state, l2_idx * l2_pstride, slot2 - l2_idx * l2_ways)
                l1_insert(set_idx, line, core)
                append(level_l2)
            if hits1 or hits2:
                stats.accesses += hits1 + hits2
                stats.l1_hits += hits1
                stats.l2_hits += hits2
                l1.policy_touches += hits1
                l2.policy_touches += hits2
            return out
        # Store traversal: the fast path is the already-exclusive write hit
        # (SF owner == core, line in L1 or L2) — probe SF and the private
        # caches inline, touch in the generic path's exact order (private
        # touch/refill, then the SF recency refresh), and leave every other
        # transition to _write.
        sf = self.sf
        sf_nsets = sf.n_sets
        sf_where = sf._where
        sf_owners = sf._owners
        sf_state = sf._state
        sf_lru = sf._lru
        sf_rrip = sf._rrip
        sf_touch = sf._pt_touch
        sf_pstride = sf._pstride
        sf_ways = sf.ways
        wr = self._write
        for line in lines:
            sidx = memo.get(line)
            if sidx is None:
                sidx = self.shared_set_index(line)
            if noise is not None:
                noise.reconcile(self, sidx, now)
            sslot = sf_where.get(line * sf_nsets + sidx)
            if sslot is None or sf_owners[sslot] != core:
                append(wr(core, line, now, reconcile=False))
                continue
            set_idx = line & l1_mask
            slot = l1_where.get(line * l1_nsets + set_idx)
            if slot is not None:
                hits1 += 1
                if l1_tree8:
                    base = set_idx * 7
                    way = slot - set_idx * 8
                    b0 = (way >> 2) & 1
                    l1_state[base] = 1 - b0
                    b1 = (way >> 1) & 1
                    node = 1 + b0
                    l1_state[base + node] = 1 - b1
                    l1_state[base + 2 * node + 1 + b1] = 1 - (way & 1)
                elif l1_lru is not None:
                    l1_lru._stamp = stamp = l1_lru._stamp + 1
                    l1_state[slot] = stamp
                elif l1_rrip:
                    l1_state[slot] = 0
                else:
                    l1_touch(l1_state, set_idx * l1_pstride, slot - set_idx * l1_ways)
                level = level_l1
            else:
                l2_idx = line & l2_mask
                slot2 = l2_where.get(line * l2_nsets + l2_idx)
                if slot2 is None:
                    append(wr(core, line, now, reconcile=False))
                    continue
                hits2 += 1
                if l2_lru is not None:
                    l2_lru._stamp = stamp = l2_lru._stamp + 1
                    l2_state[slot2] = stamp
                elif l2_rrip:
                    l2_state[slot2] = 0
                else:
                    l2_touch(l2_state, l2_idx * l2_pstride, slot2 - l2_idx * l2_ways)
                l1_insert(set_idx, line, core)
                level = level_l2
            # SF recency refresh == insert(update_owner=False) hit path.
            if sf_lru is not None:
                sf_lru._stamp = stamp = sf_lru._stamp + 1
                sf_state[sslot] = stamp
            elif sf_rrip:
                sf_state[sslot] = 0
            else:
                sf_touch(sf_state, sidx * sf_pstride, sslot - sidx * sf_ways)
            append(level)
        if hits1 or hits2:
            stats.accesses += hits1 + hits2
            stats.l1_hits += hits1
            stats.l2_hits += hits2
            l1.policy_touches += hits1
            l2.policy_touches += hits2
            sf.policy_touches += hits1 + hits2
        return out

    def _write(self, core: int, line: int, now: int, reconcile: bool = True) -> Level:
        """A store: hit fast if already exclusive, else read-for-ownership.

        The RFO removes any LLC (shared) copy, invalidates other cores'
        private copies, and allocates an SF entry owned by ``core`` — this is
        how the attacker forces its eviction-set lines to be SF-tracked.
        """
        stats = self.stats
        stats.accesses += 1
        sidx = self._sidx_memo.get(line)
        if sidx is None:
            sidx = self.shared_set_index(line)
        if reconcile:
            self._reconcile_noise(sidx, now)
        sf = self.sf
        owner = sf.owner_of(sidx, line)
        if owner == core:
            # Possibly already exclusive here: a plain private-cache write
            # hit.  The L1 probe doubles as the recency touch (lookup only
            # touches on a hit, so a miss leaves no trace — same end state
            # as the seed's separate contains-then-lookup).  The SF inserts
            # are pure recency refreshes of an entry this core already owns
            # — update_owner=False makes that explicit (and keeps a refresh
            # from ever reassigning a line, see SetAssociativeCache.insert).
            l1 = self.l1[core]
            l1_idx = line & self._l1_mask
            if l1.lookup(l1_idx, line):
                stats.l1_hits += 1
                sf.insert(sidx, line, core, update_owner=False)
                return Level.L1
            l2 = self.l2[core]
            l2_idx = line & self._l2_mask
            if l2.contains(l2_idx, line):
                l2.lookup(l2_idx, line)
                l1.insert(l1_idx, line, core)
                sf.insert(sidx, line, core, update_owner=False)
                stats.l2_hits += 1
                return Level.L2
            # Stale self-owned entry with no private copy: fall through to
            # the shared-copy check / exclusive refetch below.
        elif owner is not None and owner != NOISE_OWNER:
            # Steal exclusivity from the current private owner.
            self._invalidate_private(owner, line)
            self.sf.remove(sidx, line)
            self._sf_install(sidx, line, core)
            self._fill_private(core, line, now)
            stats.sf_transfers += 1
            return Level.SF_TRANSFER
        if self.llc.contains(sidx, line):
            # Shared -> exclusive: drop the LLC copy and all other sharers.
            self.llc.remove(sidx, line)
            self._invalidate_private_everywhere(line)
            self._sf_install(sidx, line, core)
            self._fill_private(core, line, now)
            stats.llc_hits += 1
            return Level.LLC
        # Miss (or stale/noise-owned SF entry): fetch exclusive from DRAM.
        self.sf.remove(sidx, line)
        self._sf_install(sidx, line, core)
        self._fill_private(core, line, now)
        stats.dram_fetches += 1
        return Level.DRAM

    def flush_line(self, line: int, now: int = 0) -> None:
        """clflush: remove ``line`` from every structure."""
        self.stats.flushes += 1
        self._invalidate_private_everywhere(line)
        sidx = self.shared_set_index(line)
        self._reconcile_noise(sidx, now)
        self.sf.remove(sidx, line)
        self.llc.remove(sidx, line)

    # -- Noise entry points (called by the noise source) --------------------

    def fresh_noise_tag(self) -> int:
        """A unique tag representing another tenant's line."""
        tag = self._noise_tag_next
        self._noise_tag_next += 1
        return tag

    def noise_insert_sf(self, sidx: int) -> None:
        """Insert a foreign private line into SF set ``sidx``."""
        self.stats.noise_insertions += 1
        self._sf_install(sidx, self.fresh_noise_tag(), NOISE_OWNER)

    def noise_insert_llc(self, sidx: int) -> None:
        """Insert a foreign shared line into LLC set ``sidx``."""
        self.stats.noise_insertions += 1
        self._llc_install(sidx, self.fresh_noise_tag())

    # -- Inspection helpers (tests, scanners) --------------------------------

    def in_private_cache(self, core: int, line: int) -> bool:
        """Whether ``line`` is in core's L1 or L2 (no state change)."""
        return self.l1[core].contains(self.l1_index(line), line) or self.l2[
            core
        ].contains(self.l2_index(line), line)

    def in_sf(self, line: int) -> bool:
        return self.sf.contains(self.shared_set_index(line), line)

    def in_llc(self, line: int) -> bool:
        return self.llc.contains(self.shared_set_index(line), line)

    def cached_anywhere(self, line: int) -> bool:
        if self.in_sf(line) or self.in_llc(line):
            return True
        return any(self.in_private_cache(c, line) for c in range(self.cfg.cores))
