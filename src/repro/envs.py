"""Named simulation environments shared by benchmarks, campaigns, and the CLI.

Every experiment in the harness needs the same three-step setup: pick a
machine geometry, pick a background-noise process (optionally exposure
matched to the full-scale geometry), and build a calibrated
:class:`~repro.core.context.AttackerContext` on top.  This module is the
single home for that setup so the benchmark files, the campaign trial
functions in :mod:`repro.exec`, and ``python -m repro`` all build
bit-identical environments from the same names and seeds.

Two naming schemes coexist:

* The *benchmark environments* (``ENVIRONMENTS``: ``local``, ``cloud``,
  ``cloud-quiet``, ``cloud-raw``, ``local-raw``) — the paper's evaluation
  settings, with the historical seeding convention (context seed
  ``seed * 7 + 1``).
* :class:`EnvSpec` — an explicit (machine preset, noise preset,
  exposure-matched) triple matching the CLI's flags, with the CLI's
  seeding convention (context seed ``seed + 1``).

Both are picklable, so campaign trials can carry them into worker
processes.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Tuple, Union

from .config import (
    MACHINE_PRESETS,
    MachineConfig,
    NOISE_PRESETS,
    NoiseConfig,
    cloud_run_noise,
    cloud_run_quiet_hours_noise,
    exposure_matched,
    icelake_sp_small,
    quiescent_local_noise,
    skylake_sp_small,
    skylake_sp_small_local,
)
from .core.context import AttackerContext
from .memsys.machine import Machine
from .rng import resolve_rng_mode
from .victim import EcdsaVictim, VictimConfig


def cloud_machine_cfg() -> MachineConfig:
    """The scaled stand-in for the Cloud Run Xeon Platinum 8173M."""
    return skylake_sp_small()


def local_machine_cfg() -> MachineConfig:
    """The scaled stand-in for the local Xeon Gold 6152 (fewer slices)."""
    return skylake_sp_small_local()


def icelake_machine_cfg() -> MachineConfig:
    """The scaled stand-in for the Ice Lake Xeon Gold 5320."""
    return icelake_sp_small()


#: Environment name -> (machine config factory, noise factory, matched?).
#: "Matched" environments scale the noise rate so per-TestEviction exposure
#: corresponds to the paper's full-scale machines (see
#: repro.config.exposure_matched).
ENVIRONMENTS = {
    "local": (local_machine_cfg, quiescent_local_noise, True),
    "cloud": (cloud_machine_cfg, cloud_run_noise, True),
    "cloud-quiet": (cloud_machine_cfg, cloud_run_quiet_hours_noise, True),
    # Raw (unscaled) rates: correct for monitoring-side experiments whose
    # exposure windows don't shrink with the geometry.
    "cloud-raw": (cloud_machine_cfg, cloud_run_noise, False),
    "local-raw": (local_machine_cfg, quiescent_local_noise, False),
}


@dataclasses.dataclass(frozen=True)
class EnvSpec:
    """An explicit environment: machine preset + noise preset + matching.

    Mirrors the CLI's ``--machine`` / ``--env`` / ``--exposure-matched``
    flags; campaign trials carry an ``EnvSpec`` when they were launched
    from the CLI rather than from a named benchmark environment.
    """

    machine: str = "skylake-small"
    noise: str = "cloud"
    exposure_matched: bool = False
    #: RNG contract for the machine (``None`` = serial unless ``REPRO_RNG``
    #: overrides; see :func:`repro.rng.resolve_rng_mode`).
    rng_mode: Optional[str] = None

    def build(self, seed: int) -> Tuple[Machine, AttackerContext]:
        cfg = MACHINE_PRESETS[self.machine]()
        noise = NOISE_PRESETS[self.noise]
        if self.exposure_matched:
            noise = exposure_matched(noise, cfg)
        return make_custom_env(
            cfg, noise=noise, seed=seed, ctx_seed=seed + 1,
            rng_mode=self.rng_mode,
        )


#: Anything that names an environment: a benchmark name or an EnvSpec.
EnvLike = Union[str, EnvSpec]


def make_custom_env(
    cfg: MachineConfig,
    noise: Optional[NoiseConfig] = None,
    seed: int = 0,
    ctx_seed: Optional[int] = None,
    rng_mode: Optional[str] = None,
) -> Tuple[Machine, AttackerContext]:
    """Machine + calibrated attacker context from explicit configs.

    The one place that performs the machine/context/calibrate dance; the
    named-environment helpers and the ad-hoc benchmark setups (replacement
    sweeps, associativity studies) all route through here.

    ``rng_mode`` (or the ``REPRO_RNG`` environment variable) selects the
    machine's RNG contract; when neither is given the config's own mode
    stands, so explicitly-built counter configs pass through untouched.
    """
    mode = rng_mode if rng_mode else os.environ.get("REPRO_RNG")
    if mode:
        mode = resolve_rng_mode(mode)
        if cfg.rng_mode != mode:
            cfg = dataclasses.replace(cfg, rng_mode=mode)
    machine = Machine(cfg, noise=noise, seed=seed)
    ctx = AttackerContext(
        machine, seed=(seed + 1) if ctx_seed is None else ctx_seed
    )
    ctx.calibrate()
    return machine, ctx


def make_env(
    env: EnvLike, seed: int, rng_mode: Optional[str] = None
) -> Tuple[Machine, AttackerContext]:
    """A machine + calibrated attacker context for a named environment."""
    if isinstance(env, EnvSpec):
        if rng_mode and env.rng_mode != rng_mode:
            env = dataclasses.replace(env, rng_mode=rng_mode)
        return env.build(seed)
    cfg_factory, noise_factory, matched = ENVIRONMENTS[env]
    cfg = cfg_factory()
    noise = noise_factory()
    if matched:
        noise = exposure_matched(noise, cfg)
    return make_custom_env(
        cfg, noise=noise, seed=seed, ctx_seed=seed * 7 + 1, rng_mode=rng_mode
    )


def make_victim_env(
    env: EnvLike, seed: int, victim_cfg: Optional[VictimConfig] = None
) -> Tuple[Machine, AttackerContext, EcdsaVictim]:
    """Environment plus a victim container pinned to core 2."""
    machine, ctx = make_env(env, seed)
    victim = EcdsaVictim(
        machine, core=2, cfg=victim_cfg or VictimConfig(), seed=seed + 100
    )
    return machine, ctx, victim


def environment_names() -> Tuple[str, ...]:
    """The named benchmark environments, for CLI choices."""
    return tuple(sorted(ENVIRONMENTS))
