"""The paper's contribution: the end-to-end LLC/SF Prime+Probe attack.

Layout (one module per attack stage, Table 1 of the paper):

* :mod:`repro.core.context` — the attacker's runtime (address space, two
  cores, timing thresholds).
* :mod:`repro.core.evset` — Step 1: eviction-set construction.  The
  existing algorithms (group testing, Prime+Scope) plus the paper's
  contributions: L2-driven candidate filtering and the binary-search
  pruning algorithm, and bulk construction for the SingleSet / PageOffset
  / WholeSys scenarios.
* :mod:`repro.core.monitor` — Steps 2-3 substrate: Prime+Probe monitoring
  strategies (PS-Flush, PS-Alt, and the paper's Parallel Probing).
* :mod:`repro.core.traces` — access-trace data structures.
* :mod:`repro.core.scanner` — Step 2: PSD-based target-set identification.
* :mod:`repro.core.extraction` — Step 3: nonce-bit extraction.
* :mod:`repro.core.pipeline` — the full Steps 1-3 attack.
"""

from .context import AttackerContext
from .traces import AccessTrace
from .monitor import (
    LatencySummary,
    MonitorStrategy,
    ParallelProbing,
    PrimeScopeAlt,
    PrimeScopeFlush,
    make_monitor,
    monitor_set,
)
from .scanner import Scanner, ScannerConfig, ScanResult, TargetSetClassifier
from .extraction import (
    ExtractionConfig,
    ExtractionScore,
    ForestBoundaryClassifier,
    HeuristicBoundaryClassifier,
    extract_bits,
    score_extraction,
)
from .pipeline import AttackConfig, AttackReport, run_end_to_end, segment_trace
from .keyrec import SigningCapture, leading_run, recover_key_from_captures

__all__ = [
    "AccessTrace",
    "AttackConfig",
    "AttackReport",
    "AttackerContext",
    "ExtractionConfig",
    "ExtractionScore",
    "ForestBoundaryClassifier",
    "HeuristicBoundaryClassifier",
    "LatencySummary",
    "MonitorStrategy",
    "ParallelProbing",
    "PrimeScopeAlt",
    "PrimeScopeFlush",
    "Scanner",
    "SigningCapture",
    "leading_run",
    "recover_key_from_captures",
    "ScannerConfig",
    "ScanResult",
    "TargetSetClassifier",
    "extract_bits",
    "make_monitor",
    "monitor_set",
    "run_end_to_end",
    "score_extraction",
    "segment_trace",
]
