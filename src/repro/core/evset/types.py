"""Shared data types for eviction-set construction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...errors import ConfigurationError


@dataclass(frozen=True)
class EvsetConfig:
    """Knobs of the construction process (paper defaults).

    ``budget_ms`` is the per-eviction-set wall budget: 1,000 ms for the
    unfiltered Table 3 experiments, 100 ms once candidate filtering is on
    (Section 5.3).  Budgets are in *simulated* milliseconds.
    """

    #: Candidate set size multiplier: N = scale * U * W (Section 4.2).
    candidate_scale: float = 3.0
    #: Construction attempts before declaring failure (Section 4.2).
    max_attempts: int = 10
    #: Backtracks allowed per attempt (group testing and binary search).
    max_backtracks: int = 20
    #: Per-eviction-set time budget in simulated milliseconds.
    budget_ms: float = 1000.0
    #: Times each TestEviction traverses the candidate prefix.
    traversal_repeats: int = 1
    #: Backtracking stride of the binary search, as a fraction of N.
    backtrack_stride_frac: float = 0.1
    #: Group count for group testing; None = W + 1 (the common choice).
    groups: Optional[int] = None

    def __post_init__(self) -> None:
        if self.candidate_scale <= 1.0:
            raise ConfigurationError("candidate_scale must exceed 1")
        if self.max_attempts < 1 or self.max_backtracks < 0:
            raise ConfigurationError("invalid attempt/backtrack limits")
        if self.budget_ms <= 0:
            raise ConfigurationError("budget must be positive")

    def budget_cycles(self, clock_ghz: float) -> int:
        return int(self.budget_ms * clock_ghz * 1e6)


@dataclass
class CandidateSet:
    """Candidate addresses at one page offset (one physical page each)."""

    page_offset: int
    vas: List[int]

    def __len__(self) -> int:
        return len(self.vas)


@dataclass(frozen=True)
class EvictionSet:
    """A (believed-)minimal eviction set for one cache set.

    ``kind`` is ``"sf"``, ``"llc"``, or ``"l2"``.  ``target_va`` is the
    address the set was built against (used for re-validation).
    """

    kind: str
    vas: List[int]
    target_va: int

    def __len__(self) -> int:
        return len(self.vas)


@dataclass
class AlgorithmStats:
    """Work counters accumulated during one construction."""

    tests: int = 0
    traversed_addresses: int = 0
    backtracks: int = 0
    attempts: int = 0


@dataclass
class BuildOutcome:
    """Result of one eviction-set construction (success or failure)."""

    success: bool
    evset: Optional[EvictionSet]
    elapsed_cycles: int
    stats: AlgorithmStats = field(default_factory=AlgorithmStats)
    failure_reason: str = ""

    def elapsed_ms(self, clock_ghz: float) -> float:
        return self.elapsed_cycles / (clock_ghz * 1e6)
