"""Group-testing address pruning (Algorithm 1; Vila et al. + Appendix A).

Three variants, selected by constructor flags:

* **GT** (baseline): split the working set into G = W + 1 groups; withhold
  groups one at a time; as soon as one group proves removable, discard it
  and *re-partition* (early termination).
* **GTOp** (the paper's optimization): within a round, keep testing the
  remaining groups after a removal instead of re-partitioning — pruning
  larger chunks per round gives better performance and success rate on
  Skylake-SP (Appendix A).
* **Song variant**: withhold a random len/W-sized sample each step.

All variants share the backtracking mechanism: when no group is removable
(usually because an earlier noise-induced false positive discarded
congruent addresses), the most recently discarded group is restored.

Every membership query routes through ``tester.test``, so on an engaged
data plane the whole pruner runs on the fused attack kernels
(DESIGN.md §2.3): the working set is translated once per round and each
TestEviction is a single prime+traverse+reload sweep.
"""

from __future__ import annotations

from typing import List

from ..._util import chunked
from ...errors import BudgetExceededError, EvictionSetError
from .primitives import EvictionTester
from .types import AlgorithmStats, EvsetConfig


class GroupTesting:
    """Group-testing pruner.

    Args:
        early_termination: True for baseline GT, False for GTOp.
        random_withhold: True for the Song et al. random variant (implies
            no fixed group structure).
    """

    def __init__(
        self, early_termination: bool = True, random_withhold: bool = False
    ) -> None:
        self.early_termination = early_termination
        self.random_withhold = random_withhold
        if random_withhold:
            self.name = "gt-song"
        else:
            self.name = "gt" if early_termination else "gtop"
        #: Group testing benefits from the parallel TestEviction (Section 4.1).
        self.wants_parallel = True

    def prune(
        self,
        tester: EvictionTester,
        target_va: int,
        candidates: List[int],
        cfg: EvsetConfig,
        deadline: int,
        stats: AlgorithmStats,
    ) -> List[int]:
        """Reduce ``candidates`` to a believed-minimal eviction set."""
        work = list(candidates)
        w = tester.ways
        if len(work) < w:
            raise EvictionSetError("candidate set smaller than associativity")
        discard_stack: List[List[int]] = []
        backtracks = 0
        machine = tester.ctx.machine
        rng = tester.ctx.rng
        n_groups = cfg.groups or (w + 1)

        while len(work) > w:
            if machine.now > deadline:
                raise BudgetExceededError("group testing ran out of budget")
            removed_any = False
            if self.random_withhold:
                # A "round" gives the random variant as many draws as group
                # testing gets groups; a single unlucky (congruent-heavy)
                # sample should trigger a redraw, not a backtrack.
                for _ in range(n_groups):
                    k = max(1, len(work) // w)
                    withheld_idx = set(rng.sample(range(len(work)), k))
                    withheld = [work[i] for i in withheld_idx]
                    rest = [a for i, a in enumerate(work) if i not in withheld_idx]
                    stats.tests += 1
                    if tester.test(target_va, rest):
                        work = rest
                        discard_stack.append(withheld)
                        removed_any = True
                        break
            else:
                groups = chunked(work, min(n_groups, len(work)))
                for gi in range(len(groups)):
                    if machine.now > deadline:
                        raise BudgetExceededError("group testing ran out of budget")
                    group = groups[gi]
                    if not group:
                        continue
                    rest = [a for gj, g in enumerate(groups) if gj != gi for a in g]
                    stats.tests += 1
                    if tester.test(target_va, rest):
                        groups[gi] = []
                        discard_stack.append(group)
                        removed_any = True
                        if self.early_termination:
                            break
                work = [a for g in groups for a in g]
            if not removed_any:
                # Every withholding failed: either we are already minimal-ish
                # or noise previously made us discard congruent addresses.
                if len(work) <= w:
                    break
                if not discard_stack:
                    raise EvictionSetError("group testing stuck with no history")
                backtracks += 1
                stats.backtracks += 1
                if backtracks > cfg.max_backtracks:
                    raise EvictionSetError("group testing exceeded backtrack limit")
                work.extend(discard_stack.pop())
                # Reshuffle so the retry sees different group boundaries —
                # without this, a deterministic replacement-state corner
                # (e.g. the target gone LLC-stale under its L1 copy) makes
                # the exact same erroneous discard repeat forever.
                rng.shuffle(work)

        if len(work) != w:
            # Over-pruned (noise) or could not reduce further.
            raise EvictionSetError(
                f"group testing finished with {len(work)} != {w} addresses"
            )
        stats.tests += 1
        if not tester.test(target_va, work):
            raise EvictionSetError("group testing result failed verification")
        return work
