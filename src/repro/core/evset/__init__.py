"""Eviction-set construction (Step 1 of the attack).

Implements the full algorithm zoo of Sections 2, 4, 5 and Appendix A:

* :mod:`candidates` — candidate-set construction (one page per candidate at
  the target page offset; N = 3*U*W as measured in Section 4.2).
* :mod:`primitives` — the ``TestEviction`` primitive in its sequential and
  parallel (MLP-exploiting) forms, for the LLC (shared lines), SF (private
  lines), and L2 targets.
* :mod:`group_testing` — Vila-style group testing: GT (early termination),
  GTOp (the paper's no-early-termination optimization), and the Song
  random-withholding variant.
* :mod:`prime_scope` — Prime+Scope sequential scanning, PS and the PsOp
  front-recharging optimization.
* :mod:`binary_search` — the paper's binary-search pruning (Figure 4) with
  its stride backtracking.
* :mod:`filtering` — L2-driven candidate address filtering (Section 5.1).
* :mod:`driver` — the attempt/budget/verification loop shared by all
  algorithms, and the two-phase LLC->SF construction of Section 4.2.
* :mod:`bulk` — SingleSet / PageOffset / WholeSys bulk construction with
  filtered-group reuse and the page-offset-delta optimization (5.3.1).
"""

from .types import (
    AlgorithmStats,
    BuildOutcome,
    CandidateSet,
    EvictionSet,
    EvsetConfig,
)
from .candidates import build_candidate_set, candidate_set_size
from .primitives import EvictionTester
from .group_testing import GroupTesting
from .prime_scope import PrimeScope
from .binary_search import BinarySearchPruning
from .filtering import build_l2_eviction_set, filter_candidates, shift_candidates
from .driver import construct_l2_evset, construct_sf_evset, make_algorithm
from .bulk import BulkResult, bulk_construct_page_offset, bulk_construct_whole_sys

__all__ = [
    "AlgorithmStats",
    "BinarySearchPruning",
    "BuildOutcome",
    "BulkResult",
    "CandidateSet",
    "EvictionSet",
    "EvictionTester",
    "EvsetConfig",
    "GroupTesting",
    "PrimeScope",
    "build_candidate_set",
    "build_l2_eviction_set",
    "bulk_construct_page_offset",
    "bulk_construct_whole_sys",
    "candidate_set_size",
    "construct_l2_evset",
    "construct_sf_evset",
    "filter_candidates",
    "make_algorithm",
    "shift_candidates",
]
